//! The distributed gate: a 4-rank job over the full rank-aware stack —
//! per-rank tf-Darshan sessions under a `JobCtx`, barrier-ordered
//! disjoint writes to a shared checkpoint, shard reads, an allreduce —
//! run under the I/O sanitizer. Fails (exit 1) on any sanitizer finding
//! or if the job-level reduction loses the shared checkpoint record.
//! CI runs this binary in the `mpi` job.
//!
//! ```text
//! cargo run --release --example distributed_gate
//! ```

use tf_darshan::workloads::run_distributed_gate;

fn main() {
    const WORLD_SIZE: usize = 4;
    println!("running {WORLD_SIZE}-rank distributed gate under iosan ...");
    let out = run_distributed_gate(WORLD_SIZE);

    println!(
        "  job: {} ranks, {} bytes read, {} bytes written",
        out.report.world_size, out.report.job.io.bytes_read, out.report.job.io.bytes_written
    );
    println!(
        "  sanitizer: {} events analyzed, {} finding(s)",
        out.sanitizer.events_analyzed,
        out.sanitizer.findings.len()
    );
    for f in &out.sanitizer.findings {
        println!(
            "    {:?}/{:?} {}: {}",
            f.severity, f.category, f.file, f.message
        );
    }

    let mut failed = false;
    if !out.sanitizer.findings.is_empty() {
        println!("FAIL: sanitizer findings on a barrier-ordered job");
        failed = true;
    }
    if out.report.world_size as usize != WORLD_SIZE {
        println!(
            "FAIL: job report saw {} ranks, expected {WORLD_SIZE}",
            out.report.world_size
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("distributed gate: clean");
}
