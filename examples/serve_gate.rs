//! The serve gate: six concurrent simulated training jobs stream session
//! diffs to one live daemon — half in-process, half over the NDJSON TCP
//! ingest socket — and the gate checks *exactness*: every job's
//! `/metrics` rollup must equal the sum of the session reports the job
//! itself published, u64-identically, while `/jobs`, `/jobs/<id>/report`
//! and the escaped live HTML page all serve. Fails (exit 1) on any
//! mismatch. CI runs this binary in the `serve` job.
//!
//! ```text
//! cargo run --release --example serve_gate
//! ```

use tf_darshan::workloads::run_serve_gate;

fn main() {
    const JOBS: usize = 6;
    const EPOCHS: usize = 3;
    println!("running serve gate: {JOBS} concurrent jobs x {EPOCHS} sessions ...");
    let out = run_serve_gate(JOBS, EPOCHS);

    println!(
        "  published {} session diffs across {} jobs (both transports)",
        out.sessions_published, out.jobs
    );
    for line in out.metrics.lines().filter(|l| !l.starts_with('#')) {
        println!("  {line}");
    }

    if out.passed() {
        println!("serve gate PASSED: daemon rollups match every job's own reduction exactly");
    } else {
        println!("serve gate FAILED:");
        for m in &out.mismatches {
            println!("  MISMATCH: {m}");
        }
        std::process::exit(1);
    }
}
