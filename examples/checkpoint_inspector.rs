//! Paper §IV.D: checkpoint I/O lands on the STDIO layer.
//!
//! Trains the image-classification case for 10 steps with a checkpoint
//! after every step (all kept), then shows that Darshan's STDIO module
//! captured the `fwrite` traffic (~1 400 calls) while the POSIX module —
//! which only sees descriptor calls made through the application's GOT —
//! recorded none of it.
//!
//! ```text
//! cargo run --release --example checkpoint_inspector
//! ```

use tf_darshan::workloads::{run, Profiling, RunConfig, Scale, Workload};

fn main() {
    let mut cfg = RunConfig::paper(Workload::ImageNet, Scale::of(1.0));
    cfg.steps = 10;
    cfg.checkpoint_every = Some(1);
    cfg.profiling = Profiling::TfDarshan { full_export: true };
    let out = run(Workload::ImageNet, cfg);
    let rep = out.report.expect("report");

    println!("checkpoints written : {}", out.checkpoints);
    println!("STDIO fopen calls   : {}", rep.stdio.opens);
    println!("STDIO fwrite calls  : {}", rep.stdio.writes);
    println!(
        "STDIO bytes written : {:.2} GB (10 × AlexNet ≈ 244 MB each)",
        rep.stdio.bytes_written as f64 / 1e9
    );
    println!(
        "POSIX writes        : {} (fwrite's descriptor I/O bypasses the GOT)",
        rep.io.writes
    );
    println!("\n{}", rep.render_ascii());
}
