//! The scheduler scale smoke: 2 000 simulated threads on the event-driven
//! DES core, run under the I/O sanitizer. Fails (exit 1) on any sanitizer
//! finding or if the simulated fleet leaked into the OS-thread count. CI
//! runs this binary in the `scale` job.
//!
//! ```text
//! cargo run --release --example scale_smoke
//! ```

use tf_darshan::workloads::sched_scale::{run_sched_scale, CARRIER_POOL};

const SIM_THREADS: usize = 2_000;
const ROUNDS: usize = 3;

fn main() {
    println!("running {SIM_THREADS} simulated threads × {ROUNDS} barrier rounds under iosan ...");
    let out = run_sched_scale(SIM_THREADS, ROUNDS, true);
    let s = &out.stats;
    println!(
        "tasks: {} carrier + {} event (peak live {}) | switches {} | event polls {}",
        s.carrier_spawns, s.event_spawns, s.peak_live_tasks, s.switches, s.event_polls
    );
    println!(
        "run calendar: peak depth {} | compactions {} | virtual wall {:.3}s",
        s.peak_heap_depth,
        s.heap_compactions,
        out.virtual_wall.as_secs_f64()
    );
    let mut failed = false;

    let san = out.sanitizer.as_ref().expect("smoke runs sanitized");
    if san.is_clean() {
        println!("iosan: clean ({} events analyzed)", san.events_analyzed);
    } else {
        println!("iosan FINDINGS:\n{}", san.render_ascii());
        failed = true;
    }

    if s.event_spawns as usize != SIM_THREADS {
        println!(
            "FAIL: expected {SIM_THREADS} event tasks, scheduler saw {}",
            s.event_spawns
        );
        failed = true;
    }
    match out.peak_os_threads {
        Some(peak) => {
            println!("peak OS threads: {peak} (carrier pool: {CARRIER_POOL})");
            // A generous constant: the pool, the host thread, and whatever
            // the runtime itself needs — but nowhere near SIM_THREADS.
            if peak > 64 {
                println!("FAIL: OS-thread count scaled with the simulated fleet");
                failed = true;
            }
        }
        None => println!("peak OS threads: unavailable (no procfs)"),
    }
    if failed {
        std::process::exit(1);
    }
    println!("scale smoke passed");
}
