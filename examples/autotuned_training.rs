//! Darshan-driven auto-tuning in action (paper §VII): the tuner watches
//! tf-Darshan's in-situ window bandwidth and adjusts `num_parallel_calls`
//! while the training runs — climbing on Lustre, backing off on HDD.
//!
//! ```text
//! cargo run --release --example autotuned_training
//! ```

use tf_darshan::tfdarshan::{IoAutoTuner, TfDarshanConfig, TfDarshanWrapper};
use tf_darshan::tfsim::{fit, Callback, Dataset, DynamicParallelism, Parallelism};
use tf_darshan::workloads::{self, dataset, models, mounts, Scale};

fn main() {
    println!("== ImageNet on Lustre: tuner starts at 1 thread ==");
    let m = workloads::kebnekaise();
    let ds = dataset::imagenet(&m.stack, mounts::LUSTRE, Scale::of(0.04));
    let wrapper = TfDarshanWrapper::install(m.process.clone(), TfDarshanConfig::default());
    let ctl = DynamicParallelism::new(1, 28);
    let mut tuner = IoAutoTuner::new(wrapper, ctl.clone(), 4);
    let rt = m.rt.clone();
    let files = ds.files.clone();
    let steps = ds.len() / 256;
    let h = m.sim.spawn("train", move || {
        let pipeline = Dataset::from_files(files)
            .map(models::imagenet_capture(), Parallelism::Dynamic(ctl))
            .batch(256)
            .prefetch(10);
        let model = models::alexnet(256, 2);
        let mut cbs: Vec<&mut dyn Callback> = vec![&mut tuner];
        fit(&rt, &model, &pipeline, steps, &mut cbs);
        tuner.history
    });
    m.sim.run();
    for (i, step) in h.join().iter().enumerate() {
        println!(
            "  window {i}: {} threads → {:.1} MiB/s (next: {})",
            step.target, step.bandwidth, step.next_target
        );
    }

    println!("\n== Malware on HDD: tuner starts at 16 threads ==");
    let m = workloads::greendog();
    let ds = dataset::malware(&m.stack, mounts::HDD, Scale::of(0.25));
    m.drop_caches();
    let wrapper = TfDarshanWrapper::install(m.process.clone(), TfDarshanConfig::default());
    let ctl = DynamicParallelism::new(16, 16);
    let mut tuner = IoAutoTuner::new(wrapper, ctl.clone(), 10);
    let rt = m.rt.clone();
    let files = ds.files.clone();
    let steps = ds.len() / 32;
    let h = m.sim.spawn("train", move || {
        let pipeline = Dataset::from_files(files)
            .map(models::malware_capture(), Parallelism::Dynamic(ctl))
            .batch(32)
            .prefetch(10);
        let model = models::malware_cnn(32);
        let mut cbs: Vec<&mut dyn Callback> = vec![&mut tuner];
        fit(&rt, &model, &pipeline, steps, &mut cbs);
        tuner.history
    });
    m.sim.run();
    for (i, step) in h.join().iter().enumerate() {
        println!(
            "  window {i}: {} threads → {:.1} MiB/s (next: {})",
            step.target, step.bandwidth, step.next_target
        );
    }
}
