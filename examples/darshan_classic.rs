//! The classic (pre-tf-Darshan) Darshan workflow, for comparison with the
//! in-situ path: attach, run the application to completion, shut down,
//! write the binary log, and parse it offline — Table I's left column.
//!
//! Also demonstrates the `darshan-parser`-style text summary and the
//! binary round trip.
//!
//! ```text
//! cargo run --release --example darshan_classic
//! ```

use std::sync::Arc;

use tf_darshan::darshan::{DarshanConfig, DarshanLibrary, DarshanLog};
use tf_darshan::posix::{OpenFlags, Process};
use tf_darshan::storage::{
    Device, DeviceSpec, FileSystem, LocalFs, LocalFsParams, PageCache, StorageStack,
};

fn main() {
    let sim = simrt::Sim::new();
    let fs = LocalFs::new(
        Device::new(DeviceSpec::hdd("sda")),
        Arc::new(PageCache::new(1 << 30)),
        LocalFsParams::default(),
    );
    let stack = StorageStack::new();
    stack.mount("/data", fs.clone() as Arc<dyn FileSystem>);
    for i in 0..16u64 {
        fs.create_synthetic(&format!("/data/sample-{i:02}"), (i + 1) * 10_000, i)
            .unwrap();
    }
    let process = Process::new(stack);

    let h = sim.spawn("application", move || {
        // "LD_PRELOAD" equivalent: attach before the application's I/O.
        let lib = DarshanLibrary::load_into(&process, DarshanConfig::default());
        lib.attach(&process).unwrap();

        // The application: read every sample once, sequentially.
        for i in 0..16u64 {
            let path = format!("/data/sample-{i:02}");
            let fd = process.open(&path, OpenFlags::rdonly()).unwrap();
            let mut off = 0;
            loop {
                let n = process.pread(fd, off, 1 << 20, None).unwrap();
                if n == 0 {
                    break;
                }
                off += n;
            }
            process.close(fd).unwrap();
        }

        // Application exit → Darshan shutdown: reduce and emit the log.
        lib.shutdown(&process).unwrap()
    });
    sim.run();
    let log = h.join();

    // Offline: binary round trip + darshan-parser-style summary. The log
    // is also written to the host filesystem for the standalone parser:
    //   cargo run -p darshan-sim --bin darshan-parser -- results/classic.darshan
    let bytes = log.encode();
    std::fs::create_dir_all("results").ok();
    if std::fs::write("results/classic.darshan", &bytes).is_ok() {
        println!("log written to results/classic.darshan");
    }
    println!("binary log: {} bytes", bytes.len());
    let parsed = DarshanLog::decode(&bytes).expect("valid log");
    println!(
        "job: {:.3}s, {} POSIX records, {} name records, {} files with DXT",
        parsed.job_end - parsed.job_start,
        parsed.posix.len(),
        parsed.names.len(),
        parsed.dxt.len()
    );
    println!("\n--- darshan-parser output (non-zero counters) ---");
    print!("{}", parsed.summary());
}
