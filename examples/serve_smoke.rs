//! Quickstart for the live observability daemon: start a daemon, run
//! four concurrent simulated training jobs that stream their session
//! diffs to it, then scrape it exactly the way an operator would —
//! `/metrics` for Prometheus, `/jobs` for the tenant listing, and a live
//! per-job HTML report page.
//!
//! While this binary sleeps between scrapes you can curl the printed
//! endpoints yourself:
//!
//! ```text
//! cargo run --release --example serve_smoke
//! # in another shell, while it runs:
//! curl http://<printed addr>/metrics
//! curl http://<printed addr>/jobs
//! curl http://<printed addr>/jobs/train-0/html
//! ```

use std::sync::Arc;

use tf_darshan::posix::OpenFlags;
use tf_darshan::serve::{
    LocalPublisher, Publisher, ServeConfig, ServeDaemon, ServeSink, TcpPublisher,
};
use tf_darshan::tfdarshan::{JobCtx, TfDarshanConfig};
use tf_darshan::workloads::greendog;

fn main() {
    let daemon = ServeDaemon::start(ServeConfig::default()).expect("daemon binds");
    println!("serve daemon up:");
    println!("  http   http://{}", daemon.http_addr());
    println!("  ingest {} (NDJSON session diffs)", daemon.ingest_addr());

    // Four jobs on four host threads; two publish in-process, two over TCP.
    let handles: Vec<_> = (0..4usize)
        .map(|j| {
            let publisher: Arc<dyn Publisher> = if j % 2 == 0 {
                Arc::new(LocalPublisher::new(daemon.service()))
            } else {
                Arc::new(TcpPublisher::new(daemon.ingest_addr()))
            };
            std::thread::spawn(move || run_job(j, publisher))
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Give the TCP path a beat to drain, then scrape like an operator.
    // simlint: allow(host-sleep)
    std::thread::sleep(std::time::Duration::from_millis(100));
    let (_, metrics) = daemon.get("/metrics").expect("scrape");
    println!("\n$ curl /metrics (per-job families)");
    for line in metrics
        .lines()
        .filter(|l| l.starts_with("tfdarshan_job_bytes_read_total") && !l.starts_with('#'))
    {
        println!("  {line}");
    }
    let (_, jobs) = daemon.get("/jobs").expect("listing");
    println!("\n$ curl /jobs\n{jobs}");
    let (status, page) = daemon.get("/jobs/train-0/html").expect("html");
    println!(
        "\n$ curl /jobs/train-0/html  -> {status}, {} bytes of live report",
        page.len()
    );

    daemon.shutdown();
    println!("\ndaemon stopped.");
}

/// One simulated training job: three epochs over a small private dataset,
/// publishing each profiling window as a session diff.
fn run_job(j: usize, publisher: Arc<dyn Publisher>) {
    let m = greendog();
    let path = format!("/data/ssd/smoke/j{j}/data.bin");
    m.stack
        .create_synthetic(&path, 512 << 10, j as u64)
        .unwrap();

    let job = Arc::new(JobCtx::new(&m.stack, 1, &TfDarshanConfig::default()));
    let sink = Arc::new(ServeSink::new(format!("train-{j}"), publisher));
    let (j2, sink2) = (job.clone(), sink.clone());
    m.sim.spawn("trainer", move || {
        let process = j2.rank(0).process().clone();
        for _ in 0..3 {
            j2.mark_start().expect("attach");
            let fd = process.open(&path, OpenFlags::rdonly()).unwrap();
            let mut off = 0u64;
            loop {
                let n = process.pread(fd, off, 64 << 10, None).unwrap();
                if n == 0 {
                    break;
                }
                off += n;
            }
            process.close(fd).unwrap();
            j2.mark_stop();
            let session = j2.rank(0).session().expect("window closed");
            sink2.publish_session(&session);
        }
    });
    m.sim.run();
}
