//! Quickstart: profile an input pipeline with tf-Darshan in ~40 lines.
//!
//! Builds a one-SSD machine, creates a small synthetic dataset, registers
//! the tf-Darshan tracer with the TensorFlow-like profiler, runs one
//! epoch, and prints the TensorBoard-style report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use tf_darshan::posix::Process;
use tf_darshan::storage::{
    Device, DeviceSpec, FileSystem, LocalFs, LocalFsParams, PageCache, StorageStack,
};
use tf_darshan::tfdarshan::{DarshanTracerFactory, TfDarshanConfig, TfDarshanWrapper};
use tf_darshan::tfsim::{
    ops, Dataset, Element, Parallelism, PipelineCtx, ProfilerOptions, TfRuntime,
};

fn main() {
    // 1. A machine: one SATA SSD behind an ext4-like filesystem.
    let sim = simrt::Sim::new();
    let fs = LocalFs::new(
        Device::new(DeviceSpec::sata_ssd("ssd0")),
        Arc::new(PageCache::new(1 << 30)),
        LocalFsParams::default(),
    );
    let stack = StorageStack::new();
    stack.mount("/data", fs.clone() as Arc<dyn FileSystem>);

    // 2. A synthetic dataset: 256 files of ~88 KB.
    let files: Vec<String> = (0..256u64)
        .map(|i| {
            let path = format!("/data/img-{i:04}");
            fs.create_synthetic(&path, 88 * 1024, i).unwrap();
            path
        })
        .collect();

    // 3. The process + TensorFlow runtime, with tf-Darshan installed.
    let process = Process::new(stack);
    let rt = TfRuntime::new(process.clone(), sim.clone(), 8);
    let wrapper = TfDarshanWrapper::install(process, TfDarshanConfig::default());
    let tfd = DarshanTracerFactory::register(&rt, wrapper);

    // 4. Run one profiled epoch of a read+decode pipeline.
    let tfd2 = tfd.clone();
    sim.spawn("main", move || {
        let capture = Arc::new(|ctx: &PipelineCtx, index, path: &str| {
            let bytes = ops::read_file(&ctx.rt, path).unwrap_or(0);
            ops::compute(&ctx.rt, "Decode", std::time::Duration::from_millis(2));
            Element { index, bytes }
        });
        let ds = Dataset::from_files(files)
            .map(capture, Parallelism::Fixed(4))
            .batch(32)
            .prefetch(4);

        rt.profiler_start(ProfilerOptions::default()).unwrap();
        let mut it = ds.iterate(&rt);
        while it.next().is_some() {}
        let trace = rt.profiler_stop().unwrap();

        // 5. Inspect what Darshan saw.
        let report = tfd2.last_report().expect("session analyzed");
        println!("{}", report.render_ascii());
        std::fs::create_dir_all("results").ok();
        if std::fs::write("results/quickstart_report.html", report.render_html()).is_ok() {
            println!("(TensorBoard-style HTML report: results/quickstart_report.html)");
        }
        println!(
            "trace: {} events across {} planes (chrome-trace exportable)",
            trace.event_count(),
            trace.planes.len()
        );
    });
    sim.run();
    println!("virtual time elapsed: {}", sim.now());
}
