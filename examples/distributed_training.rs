//! Distributed data-parallel training under parallel Darshan — the paper's
//! §III forward-compatibility scenario: "If TensorFlow employs MPI as a
//! distributed strategy for I/O in the future, one can employ the parallel
//! version of Darshan with the MPI module."
//!
//! Four ranks share a Lustre filesystem; each reads its shard with POSIX
//! (independent I/O, the ML pattern of §II), gradients allreduce each
//! step, and the final checkpoint is a collective `MPI_File_write_at_all`.
//! Per-rank Darshan records reduce to one job log, summarized like
//! `darshan-job-summary`.
//!
//! ```text
//! cargo run --release --example distributed_training
//! ```

use std::sync::Arc;

use tf_darshan::darshan::{reduce_job, DarshanConfig, DarshanLibrary, DarshanLog, JobSummary};
use tf_darshan::mpi::{DarshanMpiio, DefaultMpiIo, MpiIoLayer, MpiWorld, NetworkModel};
use tf_darshan::posix::OpenFlags;
use tf_darshan::storage::{FileSystem, LustreFs, LustreParams, PageCache, StorageStack};

const RANKS: usize = 4;
const FILES_PER_RANK: usize = 128;

fn main() {
    let sim = simrt::Sim::new();
    let stack = StorageStack::new();
    let lustre = LustreFs::new(LustreParams::default(), Arc::new(PageCache::new(1 << 36)));
    stack.mount("/scratch", lustre as Arc<dyn FileSystem>);
    for r in 0..RANKS {
        for i in 0..FILES_PER_RANK {
            stack
                .create_synthetic(
                    &format!("/scratch/shard{r}/{i:05}"),
                    88 * 1024,
                    (r * FILES_PER_RANK + i) as u64,
                )
                .unwrap();
        }
    }

    let world = MpiWorld::new(&stack, RANKS, NetworkModel::default());
    let mpiio = DarshanMpiio::new(Arc::new(DefaultMpiIo));
    world.pmpi_interpose(mpiio.clone() as Arc<dyn MpiIoLayer>);
    let darshans: Vec<_> = (0..RANKS)
        .map(|_| DarshanLibrary::new(DarshanConfig::default()))
        .collect();

    let d2 = darshans.clone();
    let handles = world.spawn_ranks(&sim, move |comm| {
        let p = comm.process();
        d2[comm.rank()].attach(&p).unwrap();
        for step in 0..4 {
            for i in 0..32 {
                let path = format!("/scratch/shard{}/{:05}", comm.rank(), step * 32 + i);
                let fd = p.open(&path, OpenFlags::rdonly()).unwrap();
                let mut off = 0;
                loop {
                    let n = p.pread(fd, off, 1 << 20, None).unwrap();
                    if n == 0 {
                        break;
                    }
                    off += n;
                }
                p.close(fd).unwrap();
            }
            comm.allreduce_bytes(244 << 20); // AlexNet gradients
        }
        let fh = comm.file_open("/scratch/ckpt", true).unwrap();
        comm.file_write_at_all(&fh, comm.rank() as u64 * (61 << 20), 61 << 20)
            .unwrap();
        comm.file_close(fh).unwrap();
        d2[comm.rank()].detach(&p).unwrap();
        d2[comm.rank()].runtime().snapshot()
    });
    sim.run();

    let per_rank: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
    let job_records = reduce_job(&per_rank.iter().map(|s| s.posix.clone()).collect::<Vec<_>>());
    let mut names = std::collections::HashMap::new();
    for s in &per_rank {
        names.extend(s.names.iter().map(|(k, v)| (*k, v.clone())));
    }
    let log = DarshanLog {
        job_start: 0.0,
        job_end: sim.now().as_secs_f64(),
        nprocs: RANKS as u32,
        names,
        posix: job_records,
        posix_partial: false,
        stdio: vec![],
        stdio_partial: false,
        dxt: Default::default(),
    };
    println!("{}", JobSummary::from_log(&log, 5).render());
    println!("MPI-IO module (job view):");
    for (path, rec) in mpiio.reduce_job() {
        println!(
            "  {path}: {} collective opens, {} collective writes, {:.0} MiB",
            rec.coll_opens,
            rec.coll_writes,
            rec.bytes_written as f64 / (1024.0 * 1024.0)
        );
    }
}
