//! The iosan gate: re-run every example workload under the I/O sanitizer
//! and fail (exit 1) on any finding.
//!
//! Covers the two trainings, the two STREAM benchmarks, checkpointing,
//! staging, and the dstat daemon — each with happens-before race
//! detection over file ranges, FD-lifecycle checks, lock-order analysis,
//! the symtab balance check, and the origin audit. CI runs this binary.
//!
//! ```text
//! cargo run --release --example iosan_gate
//! ```

use tf_darshan::workloads::iosan_gate;

fn main() {
    let mut results = Vec::new();
    for entry in iosan_gate::entries() {
        let name = entry.name;
        println!("sanitizing {name} ...");
        let r = iosan_gate::run_entry(entry);
        println!(
            "  {}: {} events, {} finding(s)",
            name,
            r.report.events_analyzed,
            r.report.findings.len()
        );
        results.push(r);
    }
    println!("\n{}", iosan_gate::render(&results));
    if iosan_gate::total_findings(&results) > 0 {
        std::process::exit(1);
    }
}
