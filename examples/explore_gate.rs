//! The exploration gate: schedule-space model checking in CI, exit 1 on
//! failure.
//!
//! Entry one carries a seeded order-dependent data race that the FIFO
//! schedule — i.e. a plain `iosan` run — can never observe. The gate
//! demands that bounded DFS exploration finds it, that greedy shrinking
//! yields a minimal replay token, and that replaying the token twice
//! reproduces the finding with byte-identical canonical event streams.
//! Entry two is the cured workload, which must stay clean on *every*
//! explored schedule.
//!
//! ```text
//! cargo run --release --example explore_gate
//! ```

use tf_darshan::explore::{replay, ReplayToken};
use tf_darshan::workloads::explore_gate;

fn main() {
    // `explore_gate replay rt1:1` re-executes one schedule of the seeded
    // workload from a replay token and prints its verdicts.
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 3 && args[1] == "replay" {
        let token: ReplayToken = args[2].parse().expect("valid replay token");
        let out = replay(explore_gate::racy_workload, &token);
        println!("replayed {} ({} events)", out.token, out.events.len());
        print!("{}", out.report.render_ascii());
        std::process::exit(i32::from(!out.report.findings.is_empty()));
    }

    let results = explore_gate::run_gate();
    for r in &results {
        if let Some(f) = r.report.findings.first() {
            println!(
                "{}: finding '{}' reproducible with: cargo run --example explore_gate -- replay {}",
                r.name,
                f.finding.category.name(),
                f.token
            );
        }
        println!(
            "{}: explore summary: {}",
            r.name,
            serde_json::to_string(&r.report.summary()).expect("summary serializes")
        );
    }
    println!("\n{}", explore_gate::render(&results));
    if !explore_gate::gate_passes(&results) {
        std::process::exit(1);
    }
}
