//! The third invocation mode (paper §III.A): *interactive* profiling —
//! TensorBoard connects to a profiler server on a running training and
//! captures a window on demand, without the application cooperating.
//!
//! Here a long training runs, and a "remote operator" thread captures a
//! 10-second window mid-flight through the [`ProfilerServer`] control
//! surface; tf-Darshan contributes its plane to the captured trace.
//!
//! ```text
//! cargo run --release --example interactive_profiler
//! ```

use std::time::Duration;

use tf_darshan::tfdarshan::{DarshanTracerFactory, TfDarshanConfig, TfDarshanWrapper, DXT_PLANE};
use tf_darshan::tfsim::{fit, Dataset, Parallelism, ProfilerOptions, ProfilerServer};
use tf_darshan::workloads::{self, dataset, models, mounts, Scale};

fn main() {
    // A Greendog machine with the malware dataset.
    let m = workloads::greendog();
    let ds = dataset::malware(&m.stack, mounts::HDD, Scale::of(0.1));
    m.drop_caches();
    let wrapper = TfDarshanWrapper::install(m.process.clone(), TfDarshanConfig::default());
    let tfd = DarshanTracerFactory::register(&m.rt, wrapper);

    // The training job (knows nothing about profiling).
    {
        let rt = m.rt.clone();
        let files = ds.files.clone();
        m.sim.spawn("training", move || {
            let pipeline = Dataset::from_files(files)
                .map(models::malware_capture(), Parallelism::Fixed(1))
                .batch(32)
                .prefetch(10);
            let model = models::malware_cnn(32);
            let r = fit(&rt, &model, &pipeline, 33, &mut []);
            println!(
                "training done: {} steps in {:.1}s",
                r.steps_run,
                r.wall.as_secs_f64()
            );
        });
    }

    // The remote operator: start the server, wait a bit, capture 10 s.
    {
        let rt = m.rt.clone();
        let tfd = tfd.clone();
        m.sim.spawn("tensorboard-operator", move || {
            let server = ProfilerServer::start(rt, 6009);
            simrt::sleep(Duration::from_secs(5)); // training is mid-flight
            println!("operator: capturing 10s window via port {}", server.port());
            server.remote_start(ProfilerOptions::default()).unwrap();
            simrt::sleep(Duration::from_secs(10));
            let space = server.remote_stop().unwrap();
            let report = tfd.last_report().expect("in-situ analysis ran");
            println!(
                "operator: captured {} events; POSIX bandwidth in window: {:.1} MiB/s ({} reads)",
                space.event_count(),
                report.io.read_bandwidth_mibps,
                report.io.reads
            );
            let dxt_lines = space.plane(DXT_PLANE).map(|p| p.lines.len()).unwrap_or(0);
            println!("operator: {dxt_lines} file timelines for the TraceViewer");
        });
    }

    m.sim.run();
    println!("virtual time: {}", m.sim.now());
}
