//! Case study I (paper §V.A): diagnose and fix the ImageNet input
//! bottleneck.
//!
//! 1. Train with one pipeline thread and profile: tf-Darshan shows ~3 MB/s
//!    POSIX bandwidth, twice as many reads as opens (the trailing
//!    zero-length read of TensorFlow's ReadFile loop), and a TF-level step
//!    breakdown that is ~96% input-bound.
//! 2. Apply the profile-guided fix — more `num_parallel_calls` — and
//!    verify the ~8× bandwidth improvement.
//!
//! ```text
//! cargo run --release --example imagenet_profiling
//! ```

use tf_darshan::tfdarshan::overview;
use tf_darshan::tfsim::Parallelism;
use tf_darshan::workloads::{run, Profiling, RunConfig, Scale, Workload};

fn main() {
    let scale = Scale::of(0.05); // 6 400 files; bandwidths are scale-free
    println!("== step 1: profile the naive configuration (1 thread) ==\n");
    let mut cfg = RunConfig::paper(Workload::ImageNet, scale);
    cfg.threads = Parallelism::Fixed(1);
    cfg.profiling = Profiling::TfDarshan { full_export: true };
    let naive = run(Workload::ImageNet, cfg);
    let rep = naive.report.expect("report");
    println!("{}", overview(naive.fit.input_bound_fraction(), &rep.io));
    println!(
        "reads = {} vs opens = {} → {} zero-length reads ({:.0}%): ReadFile \
         loops on pread until it returns 0",
        rep.io.reads,
        rep.io.opens,
        rep.io.zero_reads,
        rep.io.zero_read_fraction() * 100.0
    );
    println!("\n{}", rep.render_ascii());

    println!("\n== step 2: apply the fix (28 pipeline threads) ==\n");
    let mut cfg = RunConfig::paper(Workload::ImageNet, scale);
    cfg.threads = Parallelism::Fixed(28);
    cfg.profiling = Profiling::TfDarshan { full_export: true };
    let fixed = run(Workload::ImageNet, cfg);
    let rep28 = fixed.report.expect("report");
    println!("{}", overview(fixed.fit.input_bound_fraction(), &rep28.io));
    println!(
        "\nbandwidth: {:.2} → {:.2} MiB/s ({:.1}×)",
        rep.io.read_bandwidth_mibps,
        rep28.io.read_bandwidth_mibps,
        rep28.io.read_bandwidth_mibps / rep.io.read_bandwidth_mibps
    );
}
