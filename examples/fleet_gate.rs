//! The fleet gate: a 256-rank job over the sharded fleet stack — node
//! carriers driving 64 ranks each, per-shard probe buses, the lazily
//! attached job-wide bus under the I/O sanitizer, and the log-depth tree
//! reduction on the same calendar. Fails (exit 1) on any sanitizer
//! finding, a missing rank, or a reduce that regressed to the flat-merge
//! cost. CI runs this binary in the `fleet` job.
//!
//! ```text
//! cargo run --release --example fleet_gate
//! ```

use tf_darshan::workloads::run_fleet_gate;

fn main() {
    const WORLD_SIZE: usize = 256;
    println!("running {WORLD_SIZE}-rank fleet gate under iosan ...");
    let out = run_fleet_gate(WORLD_SIZE);

    println!(
        "  job: {} ranks on {} nodes, {} bytes read, {:.1} MiB/s aggregate",
        out.report.world_size, out.nodes, out.bytes_read, out.aggregate_read_mib_s
    );
    println!(
        "  reduce: {} leaves, {} levels, {} pair merges, modeled {:?} (flat would be {:?})",
        out.reduce.leaves,
        out.reduce.levels,
        out.reduce.pair_merges,
        out.reduce.modeled,
        out.reduce.modeled_flat
    );
    let san = out.sanitizer.as_ref().expect("gate runs sanitized");
    println!(
        "  sanitizer: {} events analyzed, {} finding(s)",
        san.events_analyzed,
        san.findings.len()
    );
    for f in &san.findings {
        println!(
            "    {:?}/{:?} {}: {}",
            f.severity, f.category, f.file, f.message
        );
    }

    let mut failed = false;
    if !san.findings.is_empty() {
        println!("FAIL: sanitizer findings on a barrier-ordered fleet job");
        failed = true;
    }
    if out.report.world_size as usize != WORLD_SIZE {
        println!(
            "FAIL: job report saw {} ranks, expected {WORLD_SIZE}",
            out.report.world_size
        );
        failed = true;
    }
    if !out.report.missing_ranks.is_empty() {
        println!("FAIL: missing ranks: {:?}", out.report.missing_ranks);
        failed = true;
    }
    if out.reduce.modeled >= out.reduce.modeled_flat {
        println!(
            "FAIL: tree reduce ({:?}) not cheaper than the flat merge ({:?})",
            out.reduce.modeled, out.reduce.modeled_flat
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("fleet gate: clean");
}
