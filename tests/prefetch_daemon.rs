//! Integration tests of the online staging daemon against the full stack:
//! Darshan attribution (daemon I/O must contribute **zero** bytes to the
//! POSIX module), device-level visibility, and the staging-mode bandwidth
//! ordering on a miniature STREAM(ImageNet) run.

use std::sync::Arc;
use std::time::Duration;

use tf_darshan::darshan::{DarshanConfig, DarshanLibrary};
use tf_darshan::posix::OpenFlags;
use tf_darshan::prefetch::{Policy, PrefetchConfig, PrefetchDaemon};
use tf_darshan::tfsim::EpochOrder;
use tf_darshan::workloads::prefetch_ablation::{run_all, AblationConfig};
use tf_darshan::workloads::{self, mounts};

/// A clairvoyant daemon stages an entire (tiny) dataset while the
/// application does nothing but sleep: Darshan sees zero POSIX bytes, the
/// devices see all of them, and a subsequent application read adds exactly
/// its own bytes and nothing more.
#[test]
fn daemon_io_contributes_zero_bytes_to_darshan() {
    let m = workloads::greendog();
    let n_files = 8u64;
    let file_size = 64 << 10;
    let files: Vec<String> = (0..n_files)
        .map(|i| {
            let p = format!("{}/warm{i}", mounts::HDD);
            m.stack.create_synthetic(&p, file_size, i).unwrap();
            p
        })
        .collect();
    m.drop_caches();

    let lib = DarshanLibrary::new(DarshanConfig::default());
    let hint = EpochOrder::new();
    hint.preload(Arc::new(files.clone()));
    let daemon = PrefetchDaemon::spawn(
        &m.sim,
        m.process.clone(),
        PrefetchConfig::new(Policy::Clairvoyant, mounts::HDD, mounts::OPTANE, 1 << 30),
        Some(hint),
    );

    let (p, lib2, d2) = (m.process.clone(), lib.clone(), daemon.clone());
    let first = files[0].clone();
    m.sim.spawn("app", move || {
        lib2.attach(&p).unwrap();
        // Phase 1: pure daemon activity. The app sleeps while the
        // clairvoyant policy drains the preloaded order hint.
        simrt::sleep(Duration::from_millis(500));
        assert_eq!(
            lib2.runtime().totals().posix_bytes_read,
            0,
            "daemon staged the dataset, yet Darshan saw no application I/O"
        );
        assert_eq!(lib2.runtime().posix_record_count(), 0, "no records either");

        // Phase 2: one application read. Only its own bytes may appear —
        // on the *app* path, even though the open was redirected to the
        // staged fast-tier copy.
        let fd = p.open(&first, OpenFlags::rdonly()).unwrap();
        let got = p.read(fd, file_size, None).unwrap();
        p.close(fd).unwrap();
        assert_eq!(got, file_size);
        let totals = lib2.runtime().totals();
        assert_eq!(totals.posix_bytes_read, file_size);
        assert_eq!(totals.posix_opens, 1);
        let snap = lib2.runtime().snapshot();
        assert!(
            snap.posix_by_path(&first).is_some(),
            "attribution stays on the application path, not the fast copy"
        );
        d2.stop();
        lib2.detach(&p).unwrap();
    });
    m.sim.run();

    // The daemon really did move the data: everything staged, and the
    // devices (system-wide view) served the copy traffic Darshan ignored.
    assert_eq!(m.stack.staged_files(), n_files as usize);
    assert_eq!(m.stack.staged_bytes(), n_files * file_size);
    let hdd = m.device_of(mounts::HDD).unwrap().snapshot();
    assert!(
        hdd.bytes_read >= n_files * file_size,
        "the HDD served every staged byte: {}",
        hdd.bytes_read
    );
    let optane = m.device_of(mounts::OPTANE).unwrap().snapshot();
    assert!(optane.bytes_written >= n_files * file_size);
}

/// The four staging modes order as the design intends, end to end, on a
/// dataset small enough for a test: clairvoyant ≥ reactive ≥ static ≥ none.
#[test]
fn staging_modes_order_end_to_end() {
    let cfg = AblationConfig {
        scale: workloads::Scale::of(0.02),
        epochs: 2,
        warmup: Duration::from_millis(500),
        ..Default::default()
    };
    let runs = run_all(&cfg);
    let bw: Vec<f64> = runs.iter().map(|r| r.read_mibps).collect();
    assert!(
        bw[3] >= bw[2] * 0.99 && bw[2] >= bw[1] * 0.99 && bw[1] > bw[0],
        "expected clairvoyant ≥ reactive ≥ static ≥ none, got {bw:?}"
    );
    assert!(runs[1].staged_bytes > 0, "static staged under its budget");
    assert!(runs[3].promoted_files as usize >= runs[1].promoted_files as usize);
}
