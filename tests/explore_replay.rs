//! Replay-token determinism properties for the `explore` model checker.
//!
//! For arbitrary small task sets and arbitrary decision traces, a token
//! that survives a serialize → deserialize round trip must replay to a
//! byte-identical canonical probe event stream and identical sanitizer
//! finding fingerprints, every time. This is the contract that makes a
//! token pasted from a CI log a real reproducer.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use tf_darshan::explore::{canonicalize, replay, ReplayToken};
use tf_darshan::posix::{OpenFlags, Process};
use tf_darshan::probe::ProbeBus;
use tf_darshan::simrt::Sim;
use tf_darshan::storage::{
    Device, DeviceSpec, FileSystem, LocalFs, LocalFsParams, PageCache, StorageStack, WritePayload,
};

/// One operation a generated task performs.
#[derive(Clone, Debug)]
enum Op {
    /// `pwrite` of `len` bytes at `offset` into file `file`, optionally
    /// under the shared lock.
    Write {
        file: u8,
        offset: u64,
        len: u64,
        locked: bool,
    },
    /// `pread` of `len` bytes at `offset` from file `file`.
    Read { file: u8, offset: u64, len: u64 },
    /// Advance virtual time (creates decision points when tasks collide).
    Sleep { micros: u64 },
}

#[derive(Clone, Debug)]
struct TaskSpec {
    ops: Vec<Op>,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..2, 0u64..3, 1u64..3, any::<bool>()).prop_map(|(file, off, len, locked)| {
            Op::Write {
                file,
                offset: off * 4096,
                len: len * 4096,
                locked,
            }
        }),
        (0u8..2, 0u64..3, 1u64..3).prop_map(|(file, off, len)| Op::Read {
            file,
            offset: off * 4096,
            len: len * 4096,
        }),
        (1u64..4).prop_map(|ms| Op::Sleep { micros: ms * 500 }),
    ]
}

fn tasks_strategy() -> impl Strategy<Value = Vec<TaskSpec>> {
    prop::collection::vec(
        prop::collection::vec(op_strategy(), 1..4).prop_map(|ops| TaskSpec { ops }),
        2..4,
    )
}

fn decisions_strategy() -> impl Strategy<Value = Vec<u32>> {
    // Out-of-range indices are legal: the policy clamps to the last
    // candidate, and the property must hold regardless.
    prop::collection::vec(0u32..4, 0..6)
}

/// Build the workload closure for one generated task set.
fn workload(tasks: Vec<TaskSpec>) -> impl Fn(&Sim) -> ProbeBus {
    move |sim: &Sim| {
        let fs = LocalFs::new(
            Device::new(DeviceSpec::sata_ssd("ssd0")),
            Arc::new(PageCache::new(1 << 30)),
            LocalFsParams::default(),
        );
        let stack = StorageStack::new();
        stack.mount("/data", fs as Arc<dyn FileSystem>);
        let p = Process::new(stack);
        let bus = p.probe().clone();
        let lock = Arc::new(tf_darshan::simrt::sync::Mutex::named((), Some("shared")));
        for (i, spec) in tasks.iter().cloned().enumerate() {
            let (p, lock) = (p.clone(), lock.clone());
            sim.spawn(format!("t{i}"), move || {
                // Rendezvous so every task is runnable at the same instant.
                tf_darshan::simrt::sleep(Duration::from_millis(1));
                let flags = OpenFlags {
                    read: true,
                    write: true,
                    create: true,
                    ..Default::default()
                };
                let fds = [
                    p.open("/data/f0", flags).unwrap(),
                    p.open("/data/f1", flags).unwrap(),
                ];
                for op in &spec.ops {
                    match *op {
                        Op::Write {
                            file,
                            offset,
                            len,
                            locked,
                        } => {
                            let fd = fds[file as usize];
                            if locked {
                                let _g = lock.lock();
                                p.pwrite(fd, offset, WritePayload::Synthetic(len)).unwrap();
                            } else {
                                p.pwrite(fd, offset, WritePayload::Synthetic(len)).unwrap();
                            }
                        }
                        Op::Read { file, offset, len } => {
                            // Short reads past EOF are fine; errors are not
                            // expected but must not abort the schedule.
                            let _ = p.pread(fds[file as usize], offset, len, None);
                        }
                        Op::Sleep { micros } => {
                            tf_darshan::simrt::sleep(Duration::from_micros(micros));
                        }
                    }
                }
                for fd in fds {
                    p.close(fd).unwrap();
                }
            });
        }
        bus
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// serialize → deserialize → replay twice ⇒ identical canonical event
    /// streams and identical finding fingerprints, also identical to a
    /// replay of the original (never-serialized) token.
    #[test]
    fn replay_token_roundtrip_is_byte_identical(
        tasks in tasks_strategy(),
        decisions in decisions_strategy(),
    ) {
        let token = ReplayToken::new(decisions);

        // Wire round trips: compact display form and JSON.
        let compact: ReplayToken = token.to_string().parse().unwrap();
        prop_assert_eq!(&compact, &token);
        let json = serde_json::to_string(&token).unwrap();
        let parsed: ReplayToken = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&parsed, &token);

        let w = workload(tasks);
        let r0 = replay(&w, &token);
        let r1 = replay(&w, &parsed);
        let r2 = replay(&w, &parsed);

        prop_assert_eq!(canonicalize(&r0.events), canonicalize(&r1.events));
        prop_assert_eq!(canonicalize(&r1.events), canonicalize(&r2.events));
        prop_assert_eq!(&r0.fingerprints, &r1.fingerprints);
        prop_assert_eq!(&r1.fingerprints, &r2.fingerprints);
        prop_assert_eq!(r1.token, r2.token);
    }

    /// The FIFO token (no forced decisions) is the plain sanitized run:
    /// replaying it twice is deterministic too.
    #[test]
    fn fifo_replay_is_deterministic(tasks in tasks_strategy()) {
        let w = workload(tasks);
        let a = replay(&w, &ReplayToken::fifo());
        let b = replay(&w, &ReplayToken::fifo());
        prop_assert_eq!(canonicalize(&a.events), canonicalize(&b.events));
        prop_assert_eq!(&a.fingerprints, &b.fingerprints);
        prop_assert_eq!(a.report.findings.len(), b.report.findings.len());
    }
}
