//! Tool-validation integration tests (paper §IV.B): tf-Darshan's derived
//! bandwidth must agree with the dstat ground truth, and the optimization
//! results must hold end to end.

use tf_darshan::tfsim::Parallelism;
use tf_darshan::workloads::{run, Profiling, RunConfig, Scale, Workload};

#[test]
fn tfdarshan_bandwidth_tracks_dstat() {
    let mut cfg = RunConfig::paper(Workload::StreamImageNet, Scale::of(0.25));
    cfg.threads = Parallelism::Fixed(16);
    cfg.profiling = Profiling::ManualWindows { every_steps: 5 };
    cfg.dstat = true;
    let out = run(Workload::StreamImageNet, cfg);
    assert!(out.bandwidth_points.len() >= 4);
    assert!(out.dstat_samples.len() >= 5);

    // Compare each tf-Darshan window to the dstat samples inside it.
    let mut errs = Vec::new();
    let mut prev = 0.0f64;
    for (t, bw) in &out.bandwidth_points {
        let ds: Vec<f64> = out
            .dstat_samples
            .iter()
            .filter(|s| s.t.as_secs_f64() > prev && s.t.as_secs_f64() <= t + 1.0)
            .map(|s| s.read_mib_per_s(std::time::Duration::from_secs(1)))
            .collect();
        if !ds.is_empty() {
            let mean = ds.iter().sum::<f64>() / ds.len() as f64;
            if mean > 0.0 {
                errs.push(((bw - mean) / mean).abs());
            }
        }
        prev = *t;
    }
    assert!(!errs.is_empty());
    let mare = errs.iter().sum::<f64>() / errs.len() as f64;
    assert!(mare < 0.10, "mean abs relative error {mare:.3}");
}

#[test]
fn threading_hurts_malware_but_helps_imagenet() {
    let malware_bw = |threads| {
        let mut cfg = RunConfig::paper(Workload::Malware, Scale::of(0.1));
        cfg.threads = Parallelism::Fixed(threads);
        cfg.profiling = Profiling::TfDarshan { full_export: false };
        run(Workload::Malware, cfg)
            .report
            .map(|r| r.io.read_bandwidth_mibps)
            .unwrap()
    };
    let m1 = malware_bw(1);
    let m16 = malware_bw(16);
    assert!(
        m16 < m1 * 0.95,
        "threads must hurt malware on HDD: {m1:.1} → {m16:.1}"
    );

    let imagenet_bw = |threads| {
        let mut cfg = RunConfig::paper(Workload::ImageNet, Scale::of(0.02));
        cfg.threads = Parallelism::Fixed(threads);
        cfg.profiling = Profiling::TfDarshan { full_export: false };
        run(Workload::ImageNet, cfg)
            .report
            .map(|r| r.io.read_bandwidth_mibps)
            .unwrap()
    };
    let i1 = imagenet_bw(1);
    let i28 = imagenet_bw(28);
    assert!(
        i28 > i1 * 4.0,
        "threads must help imagenet on Lustre: {i1:.1} → {i28:.1}"
    );
}

#[test]
fn staging_improves_bandwidth_with_small_byte_cost() {
    let bw_of = |stage: Option<u64>| {
        let mut cfg = RunConfig::paper(Workload::Malware, Scale::of(0.1));
        cfg.profiling = Profiling::TfDarshan { full_export: false };
        cfg.stage_below = stage;
        let out = run(Workload::Malware, cfg);
        (
            out.report.map(|r| r.io.read_bandwidth_mibps).unwrap(),
            out.staged,
        )
    };
    let (naive, _) = bw_of(None);
    let (staged, plan) = bw_of(Some(2 << 20));
    let plan = plan.expect("plan");
    let gain = (staged - naive) / naive;
    assert!(
        (0.08..0.30).contains(&gain),
        "staging gain {gain:.3} (naive {naive:.1}, staged {staged:.1})"
    );
    assert!(plan.byte_fraction() < 0.12, "{}", plan.byte_fraction());
    assert!((0.3..0.5).contains(&plan.file_fraction()));
}

#[test]
fn dstat_observes_checkpoint_writes() {
    let mut cfg = RunConfig::paper(Workload::Malware, Scale::of(0.05));
    cfg.steps = 10;
    cfg.checkpoint_every = Some(2);
    cfg.dstat = true;
    let out = run(Workload::Malware, cfg);
    assert_eq!(out.checkpoints, 5);
    let written: u64 = out.dstat_samples.iter().map(|s| s.total_write()).sum();
    // 5 checkpoints × ~12 MB CNN ≈ 60 MB of writes visible to dstat.
    assert!(
        written > 50 << 20,
        "checkpoint writes must reach the device: {written}"
    );
}

#[test]
fn zero_reads_visible_in_both_workloads_with_right_ratio() {
    let ratio = |w: Workload, scale: f64| {
        let mut cfg = RunConfig::paper(w, Scale::of(scale));
        cfg.profiling = Profiling::TfDarshan { full_export: true };
        let rep = run(w, cfg).report.unwrap();
        rep.io.zero_read_fraction()
    };
    let imagenet = ratio(Workload::ImageNet, 0.02);
    let malware = ratio(Workload::Malware, 0.05);
    assert!((0.49..=0.51).contains(&imagenet), "imagenet {imagenet}");
    assert!(malware < 0.25, "malware {malware} (many segments per file)");
}
