//! Failure-injection tests: device faults, capacity exhaustion, and
//! instrumentation-state errors must surface as typed errors (never hangs
//! or silent corruption), and Darshan must keep a consistent view.

use std::sync::Arc;

use tf_darshan::darshan::{DarshanConfig, DarshanLibrary, PosixCounter as P};
use tf_darshan::posix::{Errno, OpenFlags, Process};
use tf_darshan::storage::{
    Device, DeviceFault, DeviceSpec, FileSystem, LocalFs, LocalFsParams, PageCache, StorageStack,
};

fn fixture(capacity: u64) -> (simrt::Sim, Arc<Process>, Arc<LocalFs>) {
    let sim = simrt::Sim::new();
    let fs = LocalFs::new(
        Device::new(DeviceSpec::sata_ssd("ssd0")),
        Arc::new(PageCache::new(1 << 30)),
        LocalFsParams {
            capacity,
            ..Default::default()
        },
    );
    let stack = StorageStack::new();
    stack.mount("/data", fs.clone() as Arc<dyn FileSystem>);
    (sim, Process::new(stack), fs)
}

#[test]
fn device_fault_mid_read_surfaces_eio_and_darshan_stays_consistent() {
    let (sim, p, fs) = fixture(1 << 30);
    fs.create_synthetic("/data/f", 8 << 20, 1).unwrap();
    let lib = DarshanLibrary::new(DarshanConfig::default());
    let dev = fs.device().clone();
    let h = sim.spawn("t", move || {
        lib.attach(&p).unwrap();
        let fd = p.open("/data/f", OpenFlags::rdonly()).unwrap();
        // First two 1 MiB preads succeed; then the device breaks.
        assert_eq!(p.pread(fd, 0, 1 << 20, None).unwrap(), 1 << 20);
        assert_eq!(p.pread(fd, 1 << 20, 1 << 20, None).unwrap(), 1 << 20);
        dev.set_fault(Some(DeviceFault::Broken));
        assert_eq!(p.pread(fd, 2 << 20, 1 << 20, None).unwrap_err(), Errno::EIO);
        dev.set_fault(None);
        assert_eq!(p.pread(fd, 2 << 20, 1 << 20, None).unwrap(), 1 << 20);
        p.close(fd).unwrap();
        lib.runtime().snapshot()
    });
    sim.run();
    // Darshan counted only the successful reads (the failed call returned
    // an error and is not attributed).
    let snap = h.join();
    let r = snap.posix_by_path("/data/f").unwrap();
    assert_eq!(r.get(P::POSIX_READS), 3);
    assert_eq!(r.get(P::POSIX_BYTES_READ), 3 << 20);
}

#[test]
fn enospc_surfaces_through_posix_and_stdio() {
    let (sim, p, _fs) = fixture(1 << 20); // 1 MiB filesystem
    sim.spawn("t", move || {
        // POSIX write beyond capacity.
        let fd = p
            .open("/data/big", OpenFlags::wronly_create_trunc())
            .unwrap();
        let r = p.pwrite(fd, 0, storage_sim::WritePayload::Synthetic(8 << 20));
        assert_eq!(r.unwrap_err(), Errno::ENOSPC);
        p.close(fd).unwrap();

        // STDIO path: buffered writes fail at the flush that spills.
        let s = p.fopen("/data/big2", "w").unwrap();
        let mut failed = false;
        for _ in 0..512 {
            match p.fwrite(s, storage_sim::WritePayload::Synthetic(64 << 10)) {
                Ok(_) => {}
                Err(e) => {
                    assert_eq!(e, Errno::ENOSPC);
                    failed = true;
                    break;
                }
            }
        }
        assert!(failed, "32 MiB of fwrites cannot fit a 1 MiB fs");
    });
    sim.run();
}

#[test]
fn staging_to_exhausted_tier_fails_cleanly() {
    let sim = simrt::Sim::new();
    let cache = Arc::new(PageCache::new(1 << 30));
    let hdd = LocalFs::new(
        Device::new(DeviceSpec::hdd("hdd0")),
        cache.clone(),
        LocalFsParams::default(),
    );
    let tiny_fast = LocalFs::new(
        Device::new(DeviceSpec::optane("nvme0")),
        cache,
        LocalFsParams {
            capacity: 1 << 20,
            ..Default::default()
        },
    );
    let stack = StorageStack::new();
    stack.mount("/hdd", hdd as Arc<dyn FileSystem>);
    stack.mount("/fast", tiny_fast as Arc<dyn FileSystem>);
    for i in 0..8 {
        stack
            .create_synthetic(&format!("/hdd/f{i}"), 512 << 10, i)
            .unwrap();
    }
    let files: Vec<tf_darshan::tfdarshan::FileActivity> = (0..8)
        .map(|i| tf_darshan::tfdarshan::FileActivity {
            path: format!("/hdd/f{i}"),
            reads: 0,
            bytes_read: 0,
            apparent_size: 512 << 10,
            read_time: 0.0,
        })
        .collect();
    let plan = tf_darshan::tfdarshan::plan_by_threshold(&files, 1 << 20);
    assert_eq!(plan.files.len(), 8);
    let stack2 = stack.clone();
    let h = sim.spawn("stage", move || {
        tf_darshan::tfdarshan::apply_staging(&stack2, &plan, "/hdd", "/fast")
    });
    sim.run();
    let r = h.join();
    assert!(r.is_err(), "4 MiB into a 1 MiB tier must fail");
    // Some files staged before the failure; none were lost. Promotion
    // copies (the original stays intact — eviction needs no copy-back),
    // so every original must still resolve, every staged file must have a
    // complete fast copy, and the ledger must agree with the tier.
    let mut staged = 0usize;
    for i in 0..8 {
        let src = format!("/hdd/f{i}");
        let on_hdd = stack.resolve(&src).unwrap().content_info(&src).is_ok();
        assert!(on_hdd, "file {i}: original lost by a failed staging run");
        if stack.is_staged(&src) {
            let dst = format!("/fast/f{i}");
            let on_fast = stack.resolve(&dst).unwrap().content_info(&dst).is_ok();
            assert!(on_fast, "file {i}: staged but fast copy missing");
            staged += 1;
        }
    }
    assert!(staged < 8, "the exhausted tier cannot hold everything");
    assert_eq!(stack.staged_files(), staged, "ledger matches the tier");
    assert!(stack.staged_bytes() <= 1 << 20, "staged set fits the tier");
}

#[test]
fn detach_mid_profiler_session_flushes_pending_events() {
    // Regression: detach() restores the GOT and unregisters Darshan's spine
    // sink. Events from operations that completed without a context switch
    // (pure-CPU lseek/fstat never sleep) are still sitting in the emitting
    // thread's buffer at that moment — detach must flush them into the
    // records, not drop them, and the open profiler session must still
    // close cleanly afterwards.
    let (sim, p, fs) = fixture(1 << 30);
    fs.create_synthetic("/data/f", 64 << 10, 1).unwrap();
    let rt = tf_darshan::tfsim::TfRuntime::new(p.clone(), sim.clone(), 4);
    sim.spawn("t", move || {
        use tf_darshan::tfsim::ProfilerOptions;
        let lib = DarshanLibrary::new(DarshanConfig::default());
        lib.attach(&p).unwrap();
        rt.profiler_start(ProfilerOptions::default()).unwrap();
        let fd = p.open("/data/f", OpenFlags::rdonly()).unwrap();
        p.pread(fd, 0, 64 << 10, None).unwrap();
        p.lseek(fd, 0, tf_darshan::posix::Whence::Set).unwrap();
        p.fstat(fd).unwrap();
        p.close(fd).unwrap();
        lib.detach(&p).unwrap();
        let snap = lib.runtime().snapshot();
        let r = snap.posix_by_path("/data/f").unwrap();
        assert_eq!(r.get(P::POSIX_OPENS), 1);
        assert_eq!(r.get(P::POSIX_READS), 1);
        assert_eq!(r.get(P::POSIX_BYTES_READ), 64 << 10);
        assert_eq!(r.get(P::POSIX_SEEKS), 1, "buffered lseek survives detach");
        assert_eq!(r.get(P::POSIX_STATS), 1, "buffered fstat survives detach");
        // The profiler session outlived the detach; stopping it still
        // produces the host-plane trace.
        let space = rt.profiler_stop().unwrap();
        assert!(space.planes.iter().any(|pl| pl.name == "/host:CPU"));
    });
    sim.run();
}

#[test]
fn detach_mid_session_yields_correct_incremental_diff() {
    // Regression for the incremental snapshot engine: a detach between the
    // start and stop snapshots must flush the buffered events into the
    // records *before* the stop-side extraction, and the epoch-skipping
    // diff must attribute exactly the in-window activity — a file only
    // touched before the window contributes nothing, even though its
    // record is still resident (and Arc-shared) in both snapshots.
    let (sim, p, fs) = fixture(1 << 30);
    fs.create_synthetic("/data/pre", 32 << 10, 1).unwrap();
    fs.create_synthetic("/data/live", 64 << 10, 2).unwrap();
    sim.spawn("t", move || {
        let lib = DarshanLibrary::new(DarshanConfig::default());
        lib.attach(&p).unwrap();
        // Pre-window activity only.
        let fd = p.open("/data/pre", OpenFlags::rdonly()).unwrap();
        p.pread(fd, 0, 32 << 10, None).unwrap();
        p.close(fd).unwrap();
        let start = lib.runtime().snapshot();
        // In-window activity, then detach before the stop snapshot. The
        // trailing lseek/fstat never context-switch, so they are still in
        // the thread buffer when detach unhooks the sink.
        let fd = p.open("/data/live", OpenFlags::rdonly()).unwrap();
        p.pread(fd, 0, 64 << 10, None).unwrap();
        p.lseek(fd, 0, tf_darshan::posix::Whence::Set).unwrap();
        p.fstat(fd).unwrap();
        p.close(fd).unwrap();
        lib.detach(&p).unwrap();
        let stop = lib.runtime().snapshot();
        assert!(stop.epoch > start.epoch, "each extraction claims an epoch");

        let d = tf_darshan::tfdarshan::diff(&start, &stop);
        assert_eq!(d.posix.len(), 1, "only the in-window file has a delta");
        let live_id = d.posix[0].rec_id;
        assert_eq!(d.names[&live_id], "/data/live");
        assert_eq!(d.posix[0].get(P::POSIX_OPENS), 1);
        assert_eq!(d.posix[0].get(P::POSIX_READS), 1);
        assert_eq!(d.posix[0].get(P::POSIX_BYTES_READ), 64 << 10);
        assert_eq!(
            d.posix[0].get(P::POSIX_SEEKS),
            1,
            "buffered lseek flushed by detach lands inside the window"
        );
        assert_eq!(d.posix[0].get(P::POSIX_STATS), 1);
        // The untouched record was carried into the stop snapshot by
        // Arc-sharing, not copied — same allocation in both.
        let pre_id = tf_darshan::darshan::record_id("/data/pre");
        let find = |s: &tf_darshan::darshan::Snapshot| {
            s.posix
                .iter()
                .find(|r| r.rec_id == pre_id)
                .cloned()
                .unwrap()
        };
        assert!(Arc::ptr_eq(&find(&start), &find(&stop)));
    });
    sim.run();
}

#[test]
fn profiler_state_errors_are_typed() {
    let (sim, p, _fs) = fixture(1 << 30);
    let rt = tf_darshan::tfsim::TfRuntime::new(p, sim.clone(), 4);
    sim.spawn("t", move || {
        use tf_darshan::tfsim::{ProfilerError, ProfilerOptions};
        assert_eq!(rt.profiler_stop().unwrap_err(), ProfilerError::NotActive);
        rt.profiler_start(ProfilerOptions::default()).unwrap();
        assert_eq!(
            rt.profiler_start(ProfilerOptions::default()).unwrap_err(),
            ProfilerError::AlreadyActive
        );
        rt.profiler_stop().unwrap();
    });
    sim.run();
}

#[test]
fn darshan_record_exhaustion_degrades_gracefully_under_training() {
    // A tiny record budget: the module goes partial, the run completes,
    // and the report flags partial data instead of lying.
    use tf_darshan::tfdarshan::{DarshanTracerFactory, TfDarshanConfig, TfDarshanWrapper};
    use tf_darshan::tfsim::{
        Dataset, Element, Parallelism, PipelineCtx, ProfilerOptions, TfRuntime,
    };

    let (sim, p, fs) = fixture(1 << 30);
    let files: Vec<String> = (0..64)
        .map(|i| {
            let path = format!("/data/s{i}");
            fs.create_synthetic(&path, 10_000, i).unwrap();
            path
        })
        .collect();
    let rt = TfRuntime::new(p.clone(), sim.clone(), 4);
    let wrapper = TfDarshanWrapper::install(
        p,
        TfDarshanConfig {
            darshan: DarshanConfig {
                max_records_per_module: 16,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let tfd = DarshanTracerFactory::register(&rt, wrapper);
    let tfd2 = tfd.clone();
    sim.spawn("t", move || {
        let ds = Dataset::from_files(files)
            .map(
                Arc::new(|ctx: &PipelineCtx, index, path: &str| Element {
                    index,
                    bytes: tf_darshan::tfsim::ops::read_file(&ctx.rt, path).unwrap_or(0),
                }),
                Parallelism::Fixed(2),
            )
            .batch(8);
        rt.profiler_start(ProfilerOptions::default()).unwrap();
        let mut it = ds.iterate(&rt);
        let mut total = 0u64;
        while let Some(b) = it.next() {
            total += b.bytes;
        }
        assert_eq!(total, 64 * 10_000, "training itself is unaffected");
        rt.profiler_stop().unwrap();
        let rep = tfd2.last_report().unwrap();
        assert!(rep.io.partial, "report must flag dropped records");
        assert_eq!(rep.io.files_opened, 16, "only the tracked files");
    });
    sim.run();
}
