//! Rank/job integration (PR 5): the `world_size == 1` job path must be
//! byte-identical to the single-process tracer path, and mpi-sim
//! collectives must carry the happens-before edges that order shared-file
//! access across ranks.

use std::sync::Arc;

use parking_lot::Mutex;
use tf_darshan::iosan::{Category, IoSanitizer};
use tf_darshan::mpi::{MpiWorld, NetworkModel};
use tf_darshan::posix::{OpenFlags, Process};
use tf_darshan::probe::ProbeBus;
use tf_darshan::storage::{
    FileSystem, LustreFs, LustreParams, PageCache, StorageStack, WritePayload,
};
use tf_darshan::tfdarshan::{
    analyze, diff, per_file, JobCtx, TfDarshanConfig, TfDarshanReport, TfDarshanWrapper,
};

fn scratch_stack() -> StorageStack {
    let stack = StorageStack::new();
    let lustre = LustreFs::new(LustreParams::default(), Arc::new(PageCache::new(1 << 30)));
    stack.mount("/scratch", lustre as Arc<dyn FileSystem>);
    stack
}

fn seed_files(stack: &StorageStack) {
    for i in 0..3 {
        stack
            .create_synthetic(&format!("/scratch/dj/f{i}"), 192 << 10, i as u64)
            .unwrap();
    }
    stack
        .create_synthetic("/scratch/dj/out.bin", 64 << 10, 9)
        .unwrap();
}

/// The deterministic workload both paths run: three chunked shard reads
/// plus one checkpoint write.
fn exercise(process: &Arc<Process>) {
    for i in 0..3 {
        let fd = process
            .open(&format!("/scratch/dj/f{i}"), OpenFlags::rdonly())
            .unwrap();
        let mut off = 0u64;
        loop {
            let n = process.pread(fd, off, 64 << 10, None).unwrap();
            if n == 0 {
                break;
            }
            off += n;
        }
        process.close(fd).unwrap();
    }
    let fd = process
        .open(
            "/scratch/dj/out.bin",
            OpenFlags {
                write: true,
                ..Default::default()
            },
        )
        .unwrap();
    process
        .pwrite(fd, 0, WritePayload::Synthetic(64 << 10))
        .unwrap();
    process.fsync(fd).unwrap();
    process.close(fd).unwrap();
}

/// The pre-JobCtx path: a bare wrapper on a bare process, report built
/// exactly as `DarshanTracer::collect` builds it.
fn single_process_report() -> TfDarshanReport {
    let sim = simrt::Sim::new();
    let stack = scratch_stack();
    seed_files(&stack);
    let process = Process::new(stack);
    let wrapper = TfDarshanWrapper::install(process.clone(), TfDarshanConfig::default());
    let out = Arc::new(Mutex::new(None));
    let slot = out.clone();
    sim.spawn("single", move || {
        wrapper.mark_start().unwrap();
        exercise(&process);
        wrapper.mark_stop();
        let (start, stop) = wrapper.session_snapshots().unwrap();
        let d = diff(&start, &stop);
        let dxt = wrapper.session_dxt();
        let (io, stdio) = analyze(&d, &dxt);
        *slot.lock() = Some(TfDarshanReport {
            window: d.window,
            io,
            stdio,
            files: per_file(&d),
            sanitizer: None,
            scheduler: None,
            explore: None,
        });
    });
    sim.run();
    let report = out.lock().take().unwrap();
    report
}

#[test]
fn ws1_job_path_is_byte_identical_to_single_process_path() {
    let single = single_process_report();

    let sim = simrt::Sim::new();
    let stack = scratch_stack();
    seed_files(&stack);
    let job = Arc::new(JobCtx::new(&stack, 1, &TfDarshanConfig::default()));
    let j2 = job.clone();
    sim.spawn("job", move || {
        j2.mark_start().unwrap();
        exercise(j2.rank(0).process());
        j2.mark_stop();
    });
    sim.run();
    let report = job.collect().unwrap();

    assert_eq!(report.world_size, 1);
    assert_eq!(
        report.job.to_json(),
        single.to_json(),
        "ws==1 job view must be the single-process report, byte for byte"
    );
    assert_eq!(
        report.per_rank[0].to_json(),
        single.to_json(),
        "the sole rank's view is the same report"
    );
}

/// Two ranks write the same region of a shared file; `ordered` inserts the
/// barrier between them. Returns the data-race finding count.
fn interleaved_writes(ordered: bool) -> usize {
    let sim = simrt::Sim::new();
    let stack = scratch_stack();
    stack
        .create_synthetic("/scratch/shared.bin", 64 << 10, 7)
        .unwrap();
    let world = MpiWorld::new(&stack, 2, NetworkModel::default());
    let bus = ProbeBus::new();
    for r in 0..2 {
        world.process(r).attach_shared_spine(&bus);
    }
    let san = IoSanitizer::install(&sim, &bus);
    world.spawn_ranks(&sim, move |comm| {
        let p = comm.process();
        let fd = p
            .open(
                "/scratch/shared.bin",
                OpenFlags {
                    write: true,
                    ..Default::default()
                },
            )
            .unwrap();
        if comm.rank() == 0 {
            p.pwrite(fd, 0, WritePayload::Synthetic(4 << 10)).unwrap();
        }
        if ordered {
            comm.barrier();
        }
        if comm.rank() == 1 {
            p.pwrite(fd, 0, WritePayload::Synthetic(4 << 10)).unwrap();
        }
        p.close(fd).unwrap();
    });
    sim.run();
    san.finalize()
        .findings
        .iter()
        .filter(|f| f.category == Category::DataRace)
        .count()
}

/// Satellite 1: the barrier's Signal/Wait pair is a cross-rank
/// happens-before edge — same workload, race with it removed.
#[test]
fn collective_sync_events_order_shared_file_writes() {
    assert_eq!(
        interleaved_writes(true),
        0,
        "barrier-ordered same-range writes are race-free"
    );
    assert!(
        interleaved_writes(false) > 0,
        "without the collective the same writes race"
    );
}
