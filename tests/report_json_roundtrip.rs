//! Property test: `TfDarshanReport` JSON round-trips byte-stably and
//! field-identically — including the `#[serde(default)]` optional
//! sanitizer/scheduler sections, whose presence must survive and whose
//! absence must stay absent (old reports keep parsing). The same holds
//! one level up for the serve daemon's NDJSON wire messages.

use proptest::prelude::*;

use tf_darshan::iosan::SanitizerSummary;
use tf_darshan::tfdarshan::analysis::{FileActivity, IoStats, StdioStats};
use tf_darshan::tfdarshan::wire::{SessionDiffMsg, WIRE_VERSION};
use tf_darshan::tfdarshan::{SchedStatsReport, TfDarshanReport};

/// Floats that print as short exact decimals (dyadic n/64), so
/// `parse(print(x)) == x` holds bit-exactly and byte-stability is a fair
/// ask of the serializer.
fn exact_f64() -> impl Strategy<Value = f64> {
    any::<u32>().prop_map(|n| (n % 2_000_000) as f64 / 64.0)
}

fn hist() -> impl Strategy<Value = [u64; 10]> {
    prop::collection::vec(any::<u64>(), 10usize)
        .prop_map(|v| <[u64; 10]>::try_from(v).expect("exactly 10"))
}

fn io_stats() -> impl Strategy<Value = IoStats> {
    (
        (
            exact_f64(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (exact_f64(), exact_f64()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (hist(), hist(), hist()),
        (
            prop::collection::vec((any::<u64>(), any::<u64>()), 0..4),
            exact_f64(),
            exact_f64(),
            any::<bool>(),
        ),
    )
        .prop_map(
            |(
                (window_secs, files_opened, files_active, opens, reads, writes),
                (seeks, stats, bytes_read, bytes_written),
                (read_bandwidth_mibps, write_bandwidth_mibps),
                (seq_reads, consec_reads, zero_reads),
                (read_size_hist, write_size_hist, file_size_hist),
                (common_read_sizes, read_time, meta_time, partial),
            )| IoStats {
                window_secs,
                files_opened,
                files_active,
                opens,
                reads,
                writes,
                seeks,
                stats,
                bytes_read,
                bytes_written,
                read_bandwidth_mibps,
                write_bandwidth_mibps,
                seq_reads,
                consec_reads,
                zero_reads,
                read_size_hist,
                write_size_hist,
                file_size_hist,
                common_read_sizes,
                read_time,
                meta_time,
                partial,
            },
        )
}

fn stdio_stats() -> impl Strategy<Value = StdioStats> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(opens, writes, reads, bytes_written, bytes_read, flushes)| StdioStats {
                opens,
                writes,
                reads,
                bytes_written,
                bytes_read,
                flushes,
            },
        )
}

/// Paths with JSON- and HTML-hostile characters: quotes, backslashes,
/// angle brackets, ampersands, non-ASCII — all printable ASCII plus a few
/// multibyte literals.
fn path() -> impl Strategy<Value = String> {
    r#"[ -~α✓]{0,24}"#
}

fn file_activity() -> impl Strategy<Value = FileActivity> {
    (
        path(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        exact_f64(),
    )
        .prop_map(
            |(path, reads, bytes_read, apparent_size, read_time)| FileActivity {
                path,
                reads,
                bytes_read,
                apparent_size,
                read_time,
            },
        )
}

fn sanitizer() -> impl Strategy<Value = Option<SanitizerSummary>> {
    prop_oneof![
        Just(None),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec(path(), 0..3),
        )
            .prop_map(
                |(findings, errors, warnings, events_analyzed, categories)| {
                    Some(SanitizerSummary {
                        findings,
                        errors,
                        warnings,
                        events_analyzed,
                        categories,
                    })
                }
            ),
    ]
}

fn scheduler() -> impl Strategy<Value = Option<SchedStatsReport>> {
    prop_oneof![
        Just(None),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(
                |(switches, fast_advances, event_polls, carrier_spawns, a, b)| {
                    Some(SchedStatsReport {
                        switches,
                        fast_advances,
                        event_polls,
                        carrier_spawns,
                        event_spawns: a,
                        peak_heap_depth: b,
                        peak_live_tasks: a ^ b,
                        heap_compactions: switches.wrapping_add(b),
                        decision_points: a.wrapping_add(b),
                        schedules_run: a ^ switches,
                        schedules_pruned: b ^ event_polls,
                        max_preemptions_used: carrier_spawns.wrapping_add(a),
                    })
                }
            ),
    ]
}

fn report() -> impl Strategy<Value = TfDarshanReport> {
    (
        (exact_f64(), exact_f64()),
        io_stats(),
        stdio_stats(),
        prop::collection::vec(file_activity(), 0..5),
        sanitizer(),
        scheduler(),
    )
        .prop_map(
            |(window, io, stdio, files, sanitizer, scheduler)| TfDarshanReport {
                window,
                io,
                stdio,
                files,
                sanitizer,
                scheduler,
                explore: None,
            },
        )
}

fn assert_reports_identical(a: &TfDarshanReport, b: &TfDarshanReport) {
    assert_eq!(a.window, b.window);
    let (x, y) = (&a.io, &b.io);
    assert_eq!(x.window_secs, y.window_secs);
    assert_eq!(x.files_opened, y.files_opened);
    assert_eq!(x.files_active, y.files_active);
    assert_eq!(x.opens, y.opens);
    assert_eq!(x.reads, y.reads);
    assert_eq!(x.writes, y.writes);
    assert_eq!(x.seeks, y.seeks);
    assert_eq!(x.stats, y.stats);
    assert_eq!(x.bytes_read, y.bytes_read);
    assert_eq!(x.bytes_written, y.bytes_written);
    assert_eq!(x.read_bandwidth_mibps, y.read_bandwidth_mibps);
    assert_eq!(x.write_bandwidth_mibps, y.write_bandwidth_mibps);
    assert_eq!(x.seq_reads, y.seq_reads);
    assert_eq!(x.consec_reads, y.consec_reads);
    assert_eq!(x.zero_reads, y.zero_reads);
    assert_eq!(x.read_size_hist, y.read_size_hist);
    assert_eq!(x.write_size_hist, y.write_size_hist);
    assert_eq!(x.file_size_hist, y.file_size_hist);
    assert_eq!(x.common_read_sizes, y.common_read_sizes);
    assert_eq!(x.read_time, y.read_time);
    assert_eq!(x.meta_time, y.meta_time);
    assert_eq!(x.partial, y.partial);
    let (x, y) = (&a.stdio, &b.stdio);
    assert_eq!(
        (
            x.opens,
            x.writes,
            x.reads,
            x.bytes_written,
            x.bytes_read,
            x.flushes
        ),
        (
            y.opens,
            y.writes,
            y.reads,
            y.bytes_written,
            y.bytes_read,
            y.flushes
        )
    );
    assert_eq!(a.files.len(), b.files.len());
    for (f, g) in a.files.iter().zip(&b.files) {
        assert_eq!(f.path, g.path);
        assert_eq!(f.reads, g.reads);
        assert_eq!(f.bytes_read, g.bytes_read);
        assert_eq!(f.apparent_size, g.apparent_size);
        assert_eq!(f.read_time, g.read_time);
    }
    assert_eq!(a.sanitizer, b.sanitizer);
    assert_eq!(a.scheduler, b.scheduler);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn report_json_roundtrip_is_byte_stable_and_field_identical(r in report()) {
        let json = r.to_json();
        let back = TfDarshanReport::from_json(&json).expect("round-trip parses");
        assert_reports_identical(&r, &back);
        // Byte-stable: serializing the parsed report reproduces the exact
        // bytes (so stored reports never churn on rewrite).
        prop_assert_eq!(back.to_json(), json);

        // Absent optional sections stay absent on the wire...
        if r.sanitizer.is_none() {
            prop_assert!(!json.contains("\"sanitizer\""));
        }
        if r.scheduler.is_none() {
            prop_assert!(!json.contains("\"scheduler\""));
        }

        // ...and the same report survives the serve daemon's NDJSON wire
        // format unchanged.
        let msg = SessionDiffMsg { v: WIRE_VERSION, job: "p".into(), rank: 1, seq: 2, report: r };
        let line = msg.to_line();
        prop_assert!(!line.contains('\n'));
        let back = SessionDiffMsg::from_line(&line).expect("wire parses");
        assert_reports_identical(&msg.report, &back.report);
        prop_assert_eq!(back.to_line(), line);
    }
}
