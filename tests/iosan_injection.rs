//! Failure-injection tests for the `iosan` sanitizer: each violation
//! class, injected on purpose, must be reported under the right category —
//! and clean runs (ordered, locked, or disjoint) must report nothing.

use std::sync::Arc;

use proptest::prelude::*;

use simrt::sync::Mutex;
use simrt::{SimTime, TaskId};
use tf_darshan::iosan::{Category, IoSanitizer, Severity};
use tf_darshan::posix::{OpenFlags, Process, POSIX_SYMBOLS, STDIO_SYMBOLS};
use tf_darshan::probe::{self, EventKind, IoEvent, Origin, ProbeBus};
use tf_darshan::storage::{
    Device, DeviceSpec, FileSystem, LocalFs, LocalFsParams, PageCache, StorageStack, WritePayload,
};
use tf_darshan::tfdarshan::{TfDarshanConfig, TfDarshanWrapper};

fn fixture() -> (simrt::Sim, Arc<Process>) {
    let sim = simrt::Sim::new();
    let fs = LocalFs::new(
        Device::new(DeviceSpec::sata_ssd("ssd0")),
        Arc::new(PageCache::new(1 << 30)),
        LocalFsParams::default(),
    );
    let stack = StorageStack::new();
    stack.mount("/data", fs as Arc<dyn FileSystem>);
    (sim, Process::new(stack))
}

fn rdwr_create() -> OpenFlags {
    OpenFlags {
        read: true,
        write: true,
        create: true,
        ..Default::default()
    }
}

// ---------------------------------------------------------------------------
// Data races: real unlocked overlap, and its locked/ordered cures
// ---------------------------------------------------------------------------

#[test]
fn unlocked_concurrent_overlapping_writes_are_a_data_race() {
    let (sim, p) = fixture();
    let handle = IoSanitizer::install(&sim, p.probe());
    for name in ["w1", "w2"] {
        let p = p.clone();
        // Spawned from the host: no spawn edge orders the two writers.
        sim.spawn(name, move || {
            let fd = p.open("/data/shared", rdwr_create()).unwrap();
            p.pwrite(fd, 0, WritePayload::Synthetic(4096)).unwrap();
            p.close(fd).unwrap();
        });
    }
    sim.run();
    let report = handle.finalize();
    let races = report.of_category(Category::DataRace);
    assert_eq!(races.len(), 1, "report: {}", report.render_ascii());
    let f = races[0];
    assert_eq!(f.severity, Severity::Error);
    assert_eq!(f.file, "/data/shared");
    assert_eq!(f.tasks.len(), 2);
    assert_eq!(f.segments.len(), 2, "both offending DXT segments");
    assert!(f.segments.iter().all(|s| s.write && s.len == 4096));
    assert_eq!(f.witnesses.len(), 2);
    // No other category fires on this run.
    assert_eq!(report.findings.len(), 1);
}

#[test]
fn mutex_protected_overlapping_writes_are_clean() {
    let (sim, p) = fixture();
    let handle = IoSanitizer::install(&sim, p.probe());
    let lock = Arc::new(Mutex::named((), Some("shared-file")));
    for name in ["w1", "w2"] {
        let p = p.clone();
        let lock = lock.clone();
        sim.spawn(name, move || {
            let _g = lock.lock();
            let fd = p.open("/data/shared", rdwr_create()).unwrap();
            p.pwrite(fd, 0, WritePayload::Synthetic(4096)).unwrap();
            p.close(fd).unwrap();
        });
    }
    sim.run();
    let report = handle.finalize();
    assert!(report.is_clean(), "report: {}", report.render_ascii());
    assert_eq!(report.locks_tracked, 1);
}

#[test]
fn spawn_join_ordered_overlapping_writes_are_clean() {
    let (sim, p) = fixture();
    let handle = IoSanitizer::install(&sim, p.probe());
    {
        let p = p.clone();
        let sim2 = sim.clone();
        sim.spawn("parent", move || {
            let fd = p.open("/data/shared", rdwr_create()).unwrap();
            p.pwrite(fd, 0, WritePayload::Synthetic(4096)).unwrap();
            p.close(fd).unwrap();
            let p2 = p.clone();
            // The child is ordered after the parent's write by the spawn
            // edge; the parent's second write is ordered after the child's
            // by the join edge.
            sim2.spawn("child", move || {
                let fd = p2.open("/data/shared", rdwr_create()).unwrap();
                p2.pwrite(fd, 0, WritePayload::Synthetic(4096)).unwrap();
                p2.close(fd).unwrap();
            })
            .join();
            let fd = p.open("/data/shared", rdwr_create()).unwrap();
            p.pwrite(fd, 0, WritePayload::Synthetic(4096)).unwrap();
            p.close(fd).unwrap();
        });
    }
    sim.run();
    let report = handle.finalize();
    assert!(report.is_clean(), "report: {}", report.render_ascii());
}

#[test]
fn disjoint_concurrent_writes_are_clean() {
    let (sim, p) = fixture();
    let handle = IoSanitizer::install(&sim, p.probe());
    for (name, offset) in [("w1", 0u64), ("w2", 1 << 20)] {
        let p = p.clone();
        sim.spawn(name, move || {
            let fd = p.open("/data/shared", rdwr_create()).unwrap();
            p.pwrite(fd, offset, WritePayload::Synthetic(4096)).unwrap();
            p.close(fd).unwrap();
        });
    }
    sim.run();
    let report = handle.finalize();
    assert!(report.is_clean(), "report: {}", report.render_ascii());
}

// ---------------------------------------------------------------------------
// Lock-order inversion: predicted even though this run never deadlocks
// ---------------------------------------------------------------------------

#[test]
fn lock_order_inversion_is_predicted_without_a_deadlock() {
    let (sim, p) = fixture();
    let handle = IoSanitizer::install(&sim, p.probe());
    let a = Arc::new(Mutex::named(0u32, Some("A")));
    let b = Arc::new(Mutex::named(0u32, Some("B")));
    {
        let (a, b) = (a.clone(), b.clone());
        let sim2 = sim.clone();
        sim.spawn("driver", move || {
            // t1 takes A then B; after it is *joined*, t2 takes B then A.
            // The run cannot deadlock, but the lock-order graph has the
            // A->B->A cycle that a different interleaving would hit.
            let (a1, b1) = (a.clone(), b.clone());
            sim2.spawn("ab", move || {
                let _ga = a1.lock();
                let _gb = b1.lock();
            })
            .join();
            sim2.spawn("ba", move || {
                let _gb = b.lock();
                let _ga = a.lock();
            })
            .join();
        });
    }
    sim.run();
    let report = handle.finalize();
    let cycles = report.of_category(Category::LockOrderCycle);
    assert_eq!(cycles.len(), 1, "report: {}", report.render_ascii());
    assert_eq!(cycles[0].severity, Severity::Warning);
    assert!(
        cycles[0].message.contains("'A'") && cycles[0].message.contains("'B'"),
        "cycle names the locks: {}",
        cycles[0].message
    );
    assert!(!cycles[0].witnesses.is_empty(), "edge witness event ids");
    let _ = p;
}

// ---------------------------------------------------------------------------
// FD lifecycle: double-close / use-after-close (synthesized — the posix
// layer's monotonic fd table cannot produce them organically) and leaks
// ---------------------------------------------------------------------------

fn synthetic(task: u64, target: &str, kind: EventKind) -> IoEvent {
    IoEvent {
        task: TaskId(task),
        pid: 0,
        t0: SimTime::ZERO,
        t1: SimTime::ZERO,
        origin: Origin::App,
        target: probe::intern(target),
        kind,
    }
}

#[test]
fn injected_double_close_and_use_after_close_are_reported() {
    let bus = ProbeBus::new();
    let san = IoSanitizer::new();
    let sink = bus.register(san.clone());
    for ev in [
        synthetic(1, "/data/f", EventKind::Open { fd: 3 }),
        synthetic(1, "/data/f", EventKind::Close { fd: 3 }),
        synthetic(2, "/data/f", EventKind::Close { fd: 3 }),
        synthetic(
            2,
            "/data/f",
            EventKind::Read {
                fd: 3,
                offset: 0,
                len: 512,
            },
        ),
    ] {
        bus.emit(ev);
    }
    probe::flush_current_thread();
    bus.unregister(sink);
    let report = san.finalize_report();
    let dc = report.of_category(Category::DoubleClose);
    assert_eq!(dc.len(), 1);
    assert_eq!(dc[0].severity, Severity::Error);
    assert_eq!(dc[0].file, "/data/f");
    assert_eq!(dc[0].witnesses.len(), 2, "first close + offending close");
    let uac = report.of_category(Category::UseAfterClose);
    assert_eq!(uac.len(), 1);
    assert_eq!(uac[0].severity, Severity::Error);
}

#[test]
fn fd_still_open_at_task_exit_is_a_leak() {
    let (sim, p) = fixture();
    let handle = IoSanitizer::install(&sim, p.probe());
    {
        let p = p.clone();
        sim.spawn("leaky", move || {
            let _fd = p.open("/data/leaked", rdwr_create()).unwrap();
            // never closed
        });
    }
    sim.run();
    let report = handle.finalize();
    let leaks = report.of_category(Category::FdLeak);
    assert_eq!(leaks.len(), 1, "report: {}", report.render_ascii());
    assert_eq!(leaks[0].severity, Severity::Warning);
    assert_eq!(leaks[0].file, "/data/leaked");
    assert_eq!(leaks[0].witnesses.len(), 2, "open + finish witnesses");
}

// ---------------------------------------------------------------------------
// Symtab balance: attach/detach cycles must leave the GOT pristine
// ---------------------------------------------------------------------------

#[test]
fn attach_detach_cycles_restore_default_bindings() {
    let (sim, p) = fixture();
    let wrapper = TfDarshanWrapper::install(p.clone(), TfDarshanConfig::default());
    let h = {
        let p = p.clone();
        sim.spawn("t", move || {
            for round in 0..5 {
                wrapper.attach().unwrap();
                assert!(
                    !p.got().patched_symbols().is_empty(),
                    "round {round}: attach patches symbols"
                );
                // Traffic while attached, so detach has live state to undo.
                let fd = p.open("/data/f", rdwr_create()).unwrap();
                p.pwrite(fd, 0, WritePayload::Synthetic(8192)).unwrap();
                p.pread(fd, 0, 4096, None).unwrap();
                p.close(fd).unwrap();
                wrapper.detach().unwrap();
                let left = p.got().patched_symbols();
                assert!(
                    left.is_empty(),
                    "round {round}: symbols left patched after detach: {left:?}"
                );
                for sym in POSIX_SYMBOLS.iter().chain(STDIO_SYMBOLS) {
                    assert!(
                        p.got().resolves_to_default(sym),
                        "round {round}: '{sym}' not re-resolved to the default binding"
                    );
                }
            }
        })
    };
    sim.run();
    h.join();
    // The sanitizer-facing check agrees: a balanced symtab adds no finding.
    let san = IoSanitizer::new();
    san.note_patched_symbols(&p.got().patched_symbols());
    assert!(san.finalize_report().is_clean());
}

// ---------------------------------------------------------------------------
// Property: clean interleavings produce zero findings
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn clean_interleavings_produce_zero_findings(
        writers in 1usize..4,
        ops_per_writer in 1usize..6,
        lens in prop::collection::vec(1u64..8192, 1..24),
        shared_rounds in 0usize..4,
    ) {
        // Each writer owns a private file (disjoint targets can never
        // race); all writers also hit one shared file, but only under a
        // common lock. However the scheduler interleaves them, the
        // sanitizer must stay quiet.
        let (sim, p) = fixture();
        let handle = IoSanitizer::install(&sim, p.probe());
        let lock = Arc::new(Mutex::named((), Some("shared")));
        for wi in 0..writers {
            let p = p.clone();
            let lock = lock.clone();
            let lens = lens.clone();
            sim.spawn(format!("w{wi}"), move || {
                let path = format!("/data/own-{wi}");
                let fd = p.open(&path, rdwr_create()).unwrap();
                for op in 0..ops_per_writer {
                    let len = lens[(wi * 7 + op) % lens.len()];
                    p.pwrite(fd, (op as u64) * 8192, WritePayload::Synthetic(len)).unwrap();
                    p.pread(fd, (op as u64) * 8192, len, None).unwrap();
                    simrt::yield_now();
                }
                p.close(fd).unwrap();
                for round in 0..shared_rounds {
                    let _g = lock.lock();
                    let fd = p.open("/data/shared", rdwr_create()).unwrap();
                    let len = lens[(wi + round) % lens.len()];
                    p.pwrite(fd, 0, WritePayload::Synthetic(len)).unwrap();
                    p.close(fd).unwrap();
                }
            });
        }
        sim.run();
        let report = handle.finalize();
        prop_assert!(report.is_clean(), "report: {}", report.render_ascii());
    }
}

// ---------------------------------------------------------------------------
// Acceptance: the full example-workload gate reports zero findings
// ---------------------------------------------------------------------------

#[test]
fn gate_workloads_report_zero_findings() {
    let results = tf_darshan::workloads::iosan_gate::run_gate();
    assert_eq!(results.len(), 5);
    for r in &results {
        assert!(
            r.report.is_clean(),
            "{}: {}",
            r.name,
            r.report.render_ascii()
        );
        assert!(r.report.events_analyzed > 1000, "{} saw the run", r.name);
    }
}
