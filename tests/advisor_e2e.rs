//! End-to-end advisor test: profile the two case studies, feed the *real*
//! reports to the advisor, and verify it recommends exactly the paper's
//! optimizations — then apply them and verify they work.

use tf_darshan::tfdarshan::{recommend, AdvisorContext, Recommendation, StorageClass};
use tf_darshan::tfsim::Parallelism;
use tf_darshan::workloads::{run, Profiling, RunConfig, Scale, Workload};

#[test]
fn advisor_reproduces_case_study_one() {
    // §V.A: ImageNet on Lustre at one thread → "add threads".
    let mut cfg = RunConfig::paper(Workload::ImageNet, Scale::of(0.02));
    cfg.profiling = Profiling::TfDarshan { full_export: true };
    let out = run(Workload::ImageNet, cfg);
    let report = out.report.expect("report");
    let recs = recommend(
        &report,
        &AdvisorContext {
            storage: StorageClass::ParallelFs,
            threads: 1,
            fast_tier_budget: 0,
        },
    );
    let advised = recs
        .iter()
        .find_map(|r| match r {
            Recommendation::IncreaseParallelism { to, .. } => Some(*to),
            _ => None,
        })
        .expect("advisor must suggest threading");
    assert!(advised >= 8);
    assert!(recs
        .iter()
        .any(|r| matches!(r, Recommendation::ZeroReadSignature { .. })));

    // Apply the advice and verify the improvement is real.
    let mut cfg = RunConfig::paper(Workload::ImageNet, Scale::of(0.02));
    cfg.threads = Parallelism::Fixed(advised.min(28));
    cfg.profiling = Profiling::TfDarshan { full_export: false };
    let fixed = run(Workload::ImageNet, cfg);
    let before = report.io.read_bandwidth_mibps;
    let after = fixed.report.unwrap().io.read_bandwidth_mibps;
    assert!(
        after > before * 3.0,
        "advice must pay off: {before:.1} → {after:.1} MiB/s"
    );
}

#[test]
fn advisor_reproduces_case_study_two() {
    // §V.B: Malware on HDD at 16 threads → "back off threads" and "stage
    // small files".
    let mut cfg = RunConfig::paper(Workload::Malware, Scale::of(0.1));
    cfg.threads = Parallelism::Fixed(16);
    cfg.profiling = Profiling::TfDarshan { full_export: true };
    let out = run(Workload::Malware, cfg);
    let report = out.report.expect("report");
    let recs = recommend(
        &report,
        &AdvisorContext {
            storage: StorageClass::Rotational,
            threads: 16,
            fast_tier_budget: 48 << 30, // plenty of Optane
        },
    );
    assert!(
        matches!(recs[0], Recommendation::DecreaseParallelism { to: 1, .. }),
        "first advice must be to back off threads, got {recs:?}"
    );
    let (threshold, byte_fraction) = recs
        .iter()
        .find_map(|r| match r {
            Recommendation::StageSmallFiles {
                threshold,
                byte_fraction,
                ..
            } => Some((*threshold, *byte_fraction)),
            _ => None,
        })
        .expect("advisor must suggest staging");
    assert!(byte_fraction < 0.5);

    // Apply both pieces of advice.
    let mut cfg = RunConfig::paper(Workload::Malware, Scale::of(0.1));
    cfg.threads = Parallelism::Fixed(1);
    cfg.profiling = Profiling::TfDarshan { full_export: false };
    cfg.stage_below = Some(threshold.min(2 << 20));
    let fixed = run(Workload::Malware, cfg);
    let before = report.io.read_bandwidth_mibps;
    let after = fixed.report.unwrap().io.read_bandwidth_mibps;
    assert!(
        after > before * 1.2,
        "advice must pay off: {before:.1} → {after:.1} MiB/s"
    );
}
