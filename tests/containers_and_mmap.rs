//! Integration tests for the §VII extension paths: TFRecord containers
//! beat per-file reads on metadata-bound storage, and the mmap data path
//! is invisible to the instrumented symbol layer while fully visible to
//! the device.

use std::sync::Arc;

use tf_darshan::darshan::{DarshanConfig, DarshanLibrary, PosixCounter as P};
use tf_darshan::storage::{FileSystem, LustreFs, LustreParams, PageCache, StorageStack};
use tf_darshan::tfsim::{self, TfRecordDataset, TfRuntime};
use tf_darshan::workloads::{self, lmdb, mounts};

#[test]
fn tfrecord_beats_per_file_on_lustre() {
    let sim = simrt::Sim::new();
    let stack = StorageStack::new();
    let lustre = LustreFs::new(LustreParams::default(), Arc::new(PageCache::new(1 << 34)));
    stack.mount("/scratch", lustre as Arc<dyn FileSystem>);
    let n = 400usize;
    let files: Vec<String> = (0..n)
        .map(|i| {
            let p = format!("/scratch/src/{i:05}");
            stack.create_synthetic(&p, 88 * 1024, i as u64).unwrap();
            p
        })
        .collect();
    let rt = TfRuntime::new(
        tf_darshan::posix::Process::new(stack.clone()),
        sim.clone(),
        8,
    );
    let h = sim.spawn("t", move || {
        // Per-file epoch.
        let t0 = simrt::now();
        let ds = tfsim::Dataset::from_files(files.clone())
            .map(
                Arc::new(
                    |ctx: &tfsim::PipelineCtx, index, path: &str| tfsim::Element {
                        index,
                        bytes: tfsim::ops::read_file(&ctx.rt, path).unwrap_or(0),
                    },
                ),
                tfsim::Parallelism::Fixed(4),
            )
            .batch(32);
        let mut it = ds.iterate(&rt);
        let mut per_file_bytes = 0u64;
        while let Some(b) = it.next() {
            per_file_bytes += b.bytes;
        }
        let per_file_time = simrt::now() - t0;

        // Pack once, then read the container.
        let shards = tfsim::pack_files(&rt, &files, 32 << 20, "/scratch/packed").unwrap();
        let t0 = simrt::now();
        let ds = TfRecordDataset::new(shards).parallel_reads(4).batch(32);
        let mut it = ds.iterate(&rt);
        let mut packed_bytes = 0u64;
        while let Some(b) = it.next() {
            packed_bytes += b.bytes;
        }
        let packed_time = simrt::now() - t0;
        (per_file_bytes, per_file_time, packed_bytes, packed_time)
    });
    sim.run();
    let (per_file_bytes, per_file_time, packed_bytes, packed_time) = h.join();
    assert_eq!(per_file_bytes, packed_bytes, "same payload either way");
    assert!(
        packed_time.as_secs_f64() < per_file_time.as_secs_f64() / 3.0,
        "containers must amortize metadata: {per_file_time:?} vs {packed_time:?}"
    );
}

#[test]
fn mmap_traffic_is_invisible_to_darshan_but_visible_to_devices() {
    let m = workloads::greendog();
    let idx = lmdb::create_untimed(&m.stack, "/data/hdd/db.mdb", &[512 << 10; 100]);
    m.drop_caches();
    let lib = DarshanLibrary::new(DarshanConfig::default());
    let (p, lib2) = (m.process.clone(), lib.clone());
    let h = m.sim.spawn("caffe", move || {
        lib2.attach(&p).unwrap();
        let env = lmdb::LmdbEnv::open(&p, idx).unwrap();
        let consumed = lmdb::caffe_epoch(
            &env,
            10,
            10,
            |_| std::time::Duration::ZERO,
            std::time::Duration::ZERO,
        )
        .unwrap();
        env.put(3).unwrap();
        env.close().unwrap();
        lib2.detach(&p).unwrap();
        (consumed, lib2.runtime().snapshot())
    });
    m.sim.run();
    let (consumed, snap) = h.join();
    assert_eq!(consumed, 100 * (512 << 10));
    let r = snap.posix_by_path("/data/hdd/db.mdb").unwrap();
    assert_eq!(r.get(P::POSIX_OPENS), 1);
    assert_eq!(r.get(P::POSIX_MMAPS), 1);
    assert_eq!(r.get(P::POSIX_MSYNCS), 1);
    assert_eq!(
        r.get(P::POSIX_BYTES_READ),
        0,
        "page faults bypass the symbol layer"
    );
    let hdd = m.device_of(mounts::HDD).unwrap().snapshot();
    assert!(hdd.bytes_read >= consumed, "the device served every byte");
    assert!(hdd.bytes_written >= 512 << 10, "msync reached the device");
}
