//! Property tests for the extension subsystems: cross-rank reduction,
//! TFRecord packing, and the dynamic-parallelism knob.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use tf_darshan::darshan::{
    merge_posix_records, reduce_job, DxtOp, DxtSegment, PosixCounter as P, PosixRecord,
};
use tf_darshan::tfdarshan::{reduce_job_sessions, RankSession, SnapshotDiff};

fn arb_record(id: u64) -> impl Strategy<Value = PosixRecord> {
    (0i64..1000, 0i64..1_000_000, 0i64..1_000_000, 0i64..100).prop_map(
        move |(reads, bytes, max_byte, opens)| {
            let mut r = PosixRecord::new(id);
            *r.get_mut(P::POSIX_OPENS) = opens;
            *r.get_mut(P::POSIX_READS) = reads;
            *r.get_mut(P::POSIX_BYTES_READ) = bytes;
            *r.get_mut(P::POSIX_MAX_BYTE_READ) = max_byte;
            *r.get_mut(P::POSIX_SEQ_READS) = reads / 2;
            r
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Reduction is order-insensitive and grouping-insensitive for the
    /// additive and max counters (MPI reduce semantics).
    #[test]
    fn rank_reduction_is_associative_and_commutative(
        recs in prop::collection::vec(arb_record(42), 2..8),
        split in 1usize..7,
    ) {
        let split = split.min(recs.len() - 1);
        let all_at_once = merge_posix_records(&recs).unwrap();
        // Merge in two groups, then merge the merged pair.
        let left = merge_posix_records(&recs[..split]).unwrap();
        let right = merge_posix_records(&recs[split..]).unwrap();
        let grouped = merge_posix_records(&[left, right]).unwrap();
        let mut rev = recs.clone();
        rev.reverse();
        let reversed = merge_posix_records(&rev).unwrap();
        for c in [
            P::POSIX_OPENS,
            P::POSIX_READS,
            P::POSIX_BYTES_READ,
            P::POSIX_MAX_BYTE_READ,
            P::POSIX_SEQ_READS,
        ] {
            prop_assert_eq!(all_at_once.get(c), grouped.get(c), "{} grouped", c.name());
            prop_assert_eq!(all_at_once.get(c), reversed.get(c), "{} reversed", c.name());
        }
    }

    /// Job reduction conserves additive totals across arbitrary rank
    /// partitions of the records.
    #[test]
    fn job_reduction_conserves_totals(
        files in prop::collection::vec(1u64..6, 1..24),
        ranks in 1usize..5,
    ) {
        // Build per-rank record lists: each entry is (rank, file) with a
        // deterministic payload derived from its index.
        let mut per_rank: Vec<Vec<PosixRecord>> = vec![Vec::new(); ranks];
        let mut expect_reads = 0i64;
        for (i, f) in files.iter().enumerate() {
            let mut r = PosixRecord::new(*f);
            *r.get_mut(P::POSIX_READS) = i as i64 + 1;
            *r.get_mut(P::POSIX_BYTES_READ) = (i as i64 + 1) * 100;
            expect_reads += i as i64 + 1;
            per_rank[i % ranks].push(r);
        }
        let job = reduce_job(&per_rank);
        let total_reads: i64 = job.iter().map(|r| r.get(P::POSIX_READS)).sum();
        let total_bytes: i64 = job.iter().map(|r| r.get(P::POSIX_BYTES_READ)).sum();
        prop_assert_eq!(total_reads, expect_reads);
        prop_assert_eq!(total_bytes, expect_reads * 100);
        // One record per distinct file id.
        let mut ids: Vec<u64> = files.clone();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(job.len(), ids.len());
    }

    /// TFRecord pack → read returns exactly the payload bytes, for any
    /// size mix and shard split.
    #[test]
    fn tfrecord_roundtrip_conserves_payload(
        sizes in prop::collection::vec(1u64..200_000, 1..30),
        shard_mb in 1u64..4,
    ) {
        use tf_darshan::storage::{Device, DeviceSpec, FileSystem, LocalFs, LocalFsParams,
                                  PageCache, StorageStack};
        use tf_darshan::tfsim::{TfRecordDataset, TfRuntime};

        let sim = simrt::Sim::new();
        let fs = LocalFs::new(
            Device::new(DeviceSpec::optane("nvme0")),
            Arc::new(PageCache::new(1 << 30)),
            LocalFsParams::default(),
        );
        let stack = StorageStack::new();
        stack.mount("/d", fs.clone() as Arc<dyn FileSystem>);
        let rt = TfRuntime::new(tf_darshan::posix::Process::new(stack), sim.clone(), 4);
        let sizes2 = sizes.clone();
        let h = sim.spawn("t", move || {
            // Source files.
            let files: Vec<String> = sizes2
                .iter()
                .enumerate()
                .map(|(i, &s)| {
                    let path = format!("/d/src/{i}");
                    fs.create_synthetic(&path, s, i as u64).unwrap();
                    path
                })
                .collect();
            let shards =
                tf_darshan::tfsim::pack_files(&rt, &files, shard_mb << 20, "/d/packed").unwrap();
            let n_records: usize = shards.iter().map(|s| s.len()).sum();
            let ds = TfRecordDataset::new(shards).batch(4);
            let mut it = ds.iterate(&rt);
            let mut bytes = 0u64;
            let mut count = 0usize;
            while let Some(b) = it.next() {
                bytes += b.bytes;
                count += b.len;
            }
            (n_records, count, bytes)
        });
        sim.run();
        let (n_records, count, bytes) = h.join();
        prop_assert_eq!(n_records, sizes.len());
        prop_assert_eq!(count, sizes.len());
        prop_assert_eq!(bytes, sizes.iter().sum::<u64>());
    }

    /// Dynamic parallelism: for any target sequence, every element is
    /// processed exactly once and concurrency never exceeds the max.
    #[test]
    fn dynamic_parallelism_is_safe_under_target_changes(
        targets in prop::collection::vec(1usize..6, 1..8),
        n_files in 8usize..40,
    ) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use tf_darshan::tfsim::{Dataset, DynamicParallelism, Element, Parallelism, TfRuntime};

        let sim = simrt::Sim::new();
        let stack = tf_darshan::storage::StorageStack::new();
        let rt = TfRuntime::new(tf_darshan::posix::Process::new(stack), sim.clone(), 8);
        let ctl = DynamicParallelism::new(targets[0], 6);
        let peak = Arc::new(AtomicUsize::new(0));
        let cur = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(AtomicUsize::new(0));
        {
            let (p2, c2, d2) = (peak.clone(), cur.clone(), done.clone());
            let map: tf_darshan::tfsim::MapFn = Arc::new(move |_ctx, index, _path| {
                let c = c2.fetch_add(1, Ordering::SeqCst) + 1;
                p2.fetch_max(c, Ordering::SeqCst);
                simrt::sleep(Duration::from_micros(50));
                c2.fetch_sub(1, Ordering::SeqCst);
                d2.fetch_add(1, Ordering::SeqCst);
                Element { index, bytes: 1 }
            });
            let ctl2 = ctl.clone();
            let targets2 = targets.clone();
            let files: Vec<String> = (0..n_files).map(|i| format!("/f{i}")).collect();
            sim.spawn("consumer", move || {
                let ds = Dataset::from_files(files)
                    .map(map, Parallelism::Dynamic(ctl2.clone()))
                    .batch(2);
                let mut it = ds.iterate(&rt);
                let mut i = 0;
                while it.next().is_some() {
                    // Retarget as batches arrive.
                    ctl2.set_target(targets2[i % targets2.len()]);
                    i += 1;
                }
            });
        }
        sim.run();
        prop_assert_eq!(done.load(std::sync::atomic::Ordering::SeqCst), n_files);
        prop_assert!(peak.load(std::sync::atomic::Ordering::SeqCst) <= 6);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Incremental extraction is lossless: an arbitrary interleaving of
    /// I/O and incremental `snapshot()` calls yields record blocks
    /// byte-identical (counters incl. histograms and ACCESS1..4,
    /// fcounters, names, DXT) to replaying the same ops on a fresh
    /// runtime and extracting once at the end — the dirty-set engine
    /// loses nothing and double-counts nothing.
    #[test]
    fn incremental_snapshots_equal_one_shot_extraction(
        ops in prop::collection::vec(
            (0usize..4, 0u8..6, 1u64..9_000, 1u64..500), 1..120),
    ) {
        use simrt::SimTime;
        use tf_darshan::darshan::{DarshanConfig, DarshanRuntime};

        let sim = simrt::Sim::new();
        let ops2 = ops.clone();
        let h = sim.spawn("t", move || {
            let mk = || {
                DarshanRuntime::new(DarshanConfig {
                    per_op_overhead: Duration::ZERO,
                    new_record_overhead: Duration::ZERO,
                    snapshot_cost_per_record: Duration::ZERO,
                    ..Default::default()
                })
            };
            let live = mk();
            let replay = mk();
            let t0 = SimTime::from_nanos(0);
            let mut ids = Vec::new();
            let mut sids = Vec::new();
            for f in 0..4 {
                let path = format!("/d/f{f}");
                ids.push((
                    live.posix_open(&path, t0, t0).unwrap(),
                    replay.posix_open(&path, t0, t0).unwrap(),
                ));
                let spath = format!("/d/s{f}");
                sids.push((
                    live.stdio_open(&spath, t0, t0).unwrap(),
                    replay.stdio_open(&spath, t0, t0).unwrap(),
                ));
            }
            let mut offs = [0u64; 4];
            for (i, (f, kind, len, dur_us)) in ops2.into_iter().enumerate() {
                // Synthetic timeline: monotonic starts, randomized
                // durations, so DXT end times arrive out of order too.
                let a = SimTime::from_nanos((i as u64 + 1) * 1_000_000);
                let b = SimTime::from_nanos((i as u64 + 1) * 1_000_000 + dur_us * 1_000);
                let (lid, rid) = ids[f];
                match kind {
                    0 | 1 => {
                        // Sequential reads with occasional back-jumps
                        // (exercises SEQ/CONSEC and the histograms).
                        let off = if kind == 0 { offs[f] } else { offs[f] / 2 };
                        live.posix_read(lid, off, len, a, b);
                        replay.posix_read(rid, off, len, a, b);
                        offs[f] = off + len;
                    }
                    2 => {
                        live.posix_write(lid, offs[f], len, a, b);
                        replay.posix_write(rid, offs[f], len, a, b);
                        offs[f] += len;
                    }
                    3 => {
                        live.posix_meta(lid, P::POSIX_STATS, a, b);
                        replay.posix_meta(rid, P::POSIX_STATS, a, b);
                    }
                    4 => {
                        let (ls, rs) = sids[f];
                        live.stdio_write(ls, offs[f], len, a, b);
                        replay.stdio_write(rs, offs[f], len, a, b);
                    }
                    _ => {
                        // Incremental extraction on the live runtime only.
                        live.snapshot();
                    }
                }
            }
            let dxt_live: Vec<_> = ids.iter().map(|&(l, _)| live.dxt_of(l)).collect();
            let dxt_replay: Vec<_> = ids.iter().map(|&(_, r)| replay.dxt_of(r)).collect();
            (live.snapshot(), replay.snapshot(), dxt_live, dxt_replay)
        });
        sim.run();
        let (live, one_shot, dxt_live, dxt_replay) = h.join();

        prop_assert_eq!(&*live.names, &*one_shot.names);
        prop_assert_eq!(live.posix.len(), one_shot.posix.len());
        for (l, r) in live.posix.iter().zip(one_shot.posix.iter()) {
            prop_assert_eq!(l.rec_id, r.rec_id);
            prop_assert_eq!(l.counters, r.counters);
            prop_assert_eq!(l.fcounters, r.fcounters);
        }
        prop_assert_eq!(live.stdio.len(), one_shot.stdio.len());
        for (l, r) in live.stdio.iter().zip(one_shot.stdio.iter()) {
            prop_assert_eq!(l.rec_id, r.rec_id);
            prop_assert_eq!(l.counters, r.counters);
            prop_assert_eq!(l.fcounters, r.fcounters);
        }
        prop_assert_eq!(live.dxt_segments, one_shot.dxt_segments);
        for (l, r) in dxt_live.iter().zip(dxt_replay.iter()) {
            prop_assert_eq!(l.len(), r.len());
            for (x, y) in l.iter().zip(r.iter()) {
                prop_assert_eq!(
                    (x.op, x.offset, x.length, x.start.to_bits(), x.end.to_bits()),
                    (y.op, y.offset, y.length, y.start.to_bits(), y.end.to_bits())
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Job-level reduction (PR 5): ws==1 byte-identity and shared-record merging
// ---------------------------------------------------------------------------

/// A record with at least one read, so it survives the per-file filter.
fn arb_active_record(id: u64) -> impl Strategy<Value = PosixRecord> {
    (1i64..1000, 1i64..1_000_000, 0i64..1_000_000, 1i64..100).prop_map(
        move |(reads, bytes, max_byte, opens)| {
            let mut r = PosixRecord::new(id);
            *r.get_mut(P::POSIX_OPENS) = opens;
            *r.get_mut(P::POSIX_READS) = reads;
            *r.get_mut(P::POSIX_BYTES_READ) = bytes;
            *r.get_mut(P::POSIX_MAX_BYTE_READ) = max_byte;
            *r.get_mut(P::POSIX_SEQ_READS) = reads / 2;
            r
        },
    )
}

fn arb_dxt(rank: u32) -> impl Strategy<Value = (u64, DxtSegment)> {
    (
        0u64..4,
        0u64..1_000_000,
        1u64..65536,
        0.0f64..1.0,
        0.0f64..1.0,
    )
        .prop_map(move |(rec, offset, length, t, d)| {
            let op = if length % 2 == 0 {
                DxtOp::Read
            } else {
                DxtOp::Write
            };
            (
                rec,
                DxtSegment {
                    op,
                    offset,
                    length,
                    start: t,
                    end: t + d,
                    rank,
                },
            )
        })
}

fn session_of(rank: u32, recs: Vec<PosixRecord>, dxt: Vec<(u64, DxtSegment)>) -> RankSession {
    let names = recs
        .iter()
        .map(|r| (r.rec_id, format!("/data/rec{}", r.rec_id)))
        .collect();
    RankSession {
        rank,
        diff: SnapshotDiff {
            window: (0.0, 2.0),
            posix: recs,
            stdio: Vec::new(),
            names: Arc::new(names),
            partial: false,
        },
        dxt,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The refactor is behaviour-preserving: reducing a single rank's
    /// session yields the single-process report byte for byte, for
    /// arbitrary record sets and DXT timelines.
    #[test]
    fn ws1_job_reduction_is_byte_identical(
        recs in prop::collection::vec(arb_active_record(0), 1..6),
        dxt in prop::collection::vec(arb_dxt(0), 0..12),
    ) {
        let recs: Vec<PosixRecord> = recs
            .into_iter()
            .enumerate()
            .map(|(i, mut r)| {
                r.rec_id = 100 + i as u64;
                r
            })
            .collect();
        let session = session_of(0, recs, dxt);
        let single = session.report();
        let job = reduce_job_sessions(&[session]);
        prop_assert_eq!(job.world_size, 1);
        prop_assert_eq!(&job.job.to_json(), &single.to_json());
        prop_assert_eq!(&job.per_rank[0].to_json(), &single.to_json());
    }

    /// Shared records merge with fold semantics: for a record id seen by
    /// every rank, the job view's per-file row carries the sums of the
    /// additive counters and the max of the byte extremum, exactly as a
    /// brute-force fold over the per-rank records computes them; private
    /// records pass through untouched.
    #[test]
    fn merged_shared_records_equal_brute_force_fold(
        shared in prop::collection::vec(arb_active_record(42), 2..5),
        private in arb_active_record(7),
        owner in 0u32..4,
    ) {
        let owner = owner.min(shared.len() as u32 - 1);
        let sessions: Vec<RankSession> = shared
            .iter()
            .enumerate()
            .map(|(r, rec)| {
                let mut recs = vec![rec.clone()];
                if r as u32 == owner {
                    let mut p = private.clone();
                    p.rec_id = 7;
                    recs.push(p);
                }
                recs.sort_by_key(|x| x.rec_id);
                session_of(r as u32, recs, Vec::new())
            })
            .collect();
        let job = reduce_job_sessions(&sessions);
        prop_assert_eq!(job.world_size as usize, sessions.len());

        let row = job
            .job
            .files
            .iter()
            .find(|f| f.path == "/data/rec42")
            .expect("shared record present once");
        let reads: i64 = shared.iter().map(|r| r.get(P::POSIX_READS)).sum();
        let bytes: i64 = shared.iter().map(|r| r.get(P::POSIX_BYTES_READ)).sum();
        let max_byte: i64 = shared.iter().map(|r| r.get(P::POSIX_MAX_BYTE_READ)).max().unwrap();
        prop_assert_eq!(row.reads, reads as u64, "reads sum across ranks");
        prop_assert_eq!(row.bytes_read, bytes as u64, "bytes sum across ranks");
        prop_assert_eq!(row.apparent_size, max_byte as u64 + 1, "extremum is the max");
        prop_assert_eq!(
            job.job.files.iter().filter(|f| f.path == "/data/rec42").count(),
            1,
            "one merged row, not one per rank"
        );

        // The private record reaches the job view unchanged.
        let prow = job
            .job
            .files
            .iter()
            .find(|f| f.path == "/data/rec7")
            .expect("private record present");
        prop_assert_eq!(prow.bytes_read, private.get(P::POSIX_BYTES_READ) as u64);
        // ... and only its owner's rank view has it.
        for (r, view) in job.per_rank.iter().enumerate() {
            prop_assert_eq!(
                view.files.iter().any(|f| f.path == "/data/rec7"),
                r as u32 == owner
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Tree reduction (PR 10): log-depth reduce ≡ flat reduce, byte for byte
// ---------------------------------------------------------------------------

use tf_darshan::darshan::reduce::PosixFold;
use tf_darshan::darshan::PosixFCounter as FP;
use tf_darshan::tfdarshan::{
    reduce_job_sessions_sized, reduce_job_sessions_tree, TreeReduceConfig,
};

/// A record exercising every field class the reduction touches: additive
/// counters, byte extrema, the four common-access slots (the bounded
/// histogram whose eviction order makes naive pairwise merging
/// non-associative), timestamp pairs, and the order-sensitive cumulative
/// time floats.
fn arb_fleet_record(id: u64) -> impl Strategy<Value = PosixRecord> {
    (
        (1i64..1000, 1i64..1_000_000, 0i64..1_000_000, 1i64..100),
        prop::collection::vec((1i64..1_000_000, 1i64..50), 0..4),
        (
            0.001f64..100.0,
            0.0f64..2.0,
            0.0f64..2.0,
            0.0f64..2.0,
            0.0f64..0.5,
        ),
    )
        .prop_map(
            move |((reads, bytes, max_byte, opens), slots, (t0, rt, wt, mt, maxr))| {
                let mut r = PosixRecord::new(id);
                *r.get_mut(P::POSIX_OPENS) = opens;
                *r.get_mut(P::POSIX_READS) = reads;
                *r.get_mut(P::POSIX_BYTES_READ) = bytes;
                *r.get_mut(P::POSIX_MAX_BYTE_READ) = max_byte;
                *r.get_mut(P::POSIX_SEQ_READS) = reads / 2;
                let slot_c = [
                    (P::POSIX_ACCESS1_ACCESS, P::POSIX_ACCESS1_COUNT),
                    (P::POSIX_ACCESS2_ACCESS, P::POSIX_ACCESS2_COUNT),
                    (P::POSIX_ACCESS3_ACCESS, P::POSIX_ACCESS3_COUNT),
                    (P::POSIX_ACCESS4_ACCESS, P::POSIX_ACCESS4_COUNT),
                ];
                for (i, (sz, cnt)) in slots.iter().enumerate() {
                    *r.get_mut(slot_c[i].0) = *sz;
                    *r.get_mut(slot_c[i].1) = *cnt;
                }
                *r.fget_mut(FP::POSIX_F_OPEN_START_TIMESTAMP) = t0;
                *r.fget_mut(FP::POSIX_F_OPEN_END_TIMESTAMP) = t0 + 0.001;
                *r.fget_mut(FP::POSIX_F_READ_START_TIMESTAMP) = t0 + 0.01;
                *r.fget_mut(FP::POSIX_F_READ_END_TIMESTAMP) = t0 + 0.01 + rt;
                *r.fget_mut(FP::POSIX_F_READ_TIME) = rt;
                *r.fget_mut(FP::POSIX_F_WRITE_TIME) = wt;
                *r.fget_mut(FP::POSIX_F_META_TIME) = mt;
                *r.fget_mut(FP::POSIX_F_MAX_READ_TIME) = maxr;
                r
            },
        )
}

/// Fold `recs` up a balanced binary tree with the pairwise operators.
fn tree_fold(recs: &[PosixRecord]) -> PosixRecord {
    fn build(recs: &[PosixRecord]) -> PosixFold {
        if recs.len() == 1 {
            PosixFold::leaf(recs[0].clone())
        } else {
            let mid = recs.len() / 2;
            build(&recs[..mid]).absorb(build(&recs[mid..]))
        }
    }
    build(recs).finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The pairwise fold operators reproduce the flat group merge byte
    /// for byte — every integer counter equal, every float counter
    /// *bitwise* equal (the cumulative-time sums are replayed in rank
    /// order at the root, so even f64 non-associativity cannot show).
    #[test]
    fn pairwise_fold_equals_flat_merge_bitwise(
        recs in prop::collection::vec(arb_fleet_record(42), 1..9),
    ) {
        let flat = merge_posix_records(&recs).unwrap();
        let tree = tree_fold(&recs);
        for c in P::ALL {
            prop_assert_eq!(flat.get(c), tree.get(c), "{} diverged", c.name());
        }
        for c in FP::ALL {
            prop_assert_eq!(
                flat.fget(c).to_bits(),
                tree.fget(c).to_bits(),
                "{} diverged: {} vs {}",
                c.name(),
                flat.fget(c),
                tree.fget(c)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The log-depth job reduction is byte-identical to the flat one —
    /// identical serialized [`tf_darshan::tfdarshan::JobReport`]s (job
    /// view, per-rank views, names, DXT-derived analyses, world size,
    /// missing ranks) — for arbitrary shared/private record mixes at
    /// world sizes 1..=64, including the ws==1 passthrough.
    #[test]
    fn tree_job_reduction_is_byte_identical_to_flat(
        ws in 1usize..65,
        shared in arb_fleet_record(42),
        private in arb_fleet_record(0),
        dxt_per_rank in prop::collection::vec(arb_dxt(0), 0..6),
        arity in 2usize..5,
    ) {
        let sessions: Vec<RankSession> = (0..ws)
            .map(|r| {
                // Every rank touches the shared record (its own mutation of
                // it); odd ranks also carry a private record; rank-tagged
                // DXT segments ride along.
                let mut s = shared.clone();
                *s.get_mut(P::POSIX_READS) += r as i64;
                *s.fget_mut(FP::POSIX_F_READ_TIME) += r as f64 * 0.013;
                let mut recs = vec![s];
                if r % 2 == 1 {
                    let mut p = private.clone();
                    p.rec_id = 1000 + r as u64;
                    recs.push(p);
                }
                let dxt = dxt_per_rank
                    .iter()
                    .map(|(rec, seg)| (*rec, DxtSegment { rank: r as u32, ..*seg }))
                    .collect();
                session_of(r as u32, recs, dxt)
            })
            .collect();

        let flat = reduce_job_sessions_sized(&sessions, ws as u32);
        let (tree, stats) = reduce_job_sessions_tree(
            &sessions,
            ws as u32,
            &TreeReduceConfig { arity, host_parallel: true },
        );
        prop_assert_eq!(
            serde_json::to_string(&flat).unwrap(),
            serde_json::to_string(&tree).unwrap(),
            "tree reduce diverged from flat at ws={} arity={}", ws, arity
        );
        prop_assert_eq!(stats.leaves, ws);
        if ws > 1 {
            let expected_levels = (ws as f64).log(arity as f64).ceil() as u32;
            prop_assert!(
                stats.levels <= expected_levels + 1,
                "{} levels for ws={} arity={}", stats.levels, ws, arity
            );
        }
    }

    /// Missing ranks surface instead of silently shrinking the world:
    /// drop a subset of sessions, reduce with the true world size, and
    /// the report lists exactly the dropped ranks (identically for flat
    /// and tree).
    #[test]
    fn missing_ranks_are_surfaced_not_absorbed(
        ws in 2usize..17,
        drop_mask in prop::collection::vec(any::<bool>(), 16),
        rec in arb_fleet_record(42),
    ) {
        // Rank 0 always reports so the session set is never empty.
        let sessions: Vec<RankSession> = (0..ws)
            .filter(|r| *r == 0 || !drop_mask[*r])
            .map(|r| session_of(r as u32, vec![rec.clone()], Vec::new()))
            .collect();
        let expected_missing: Vec<u32> = (1..ws as u32)
            .filter(|r| drop_mask[*r as usize])
            .collect();

        let flat = reduce_job_sessions_sized(&sessions, ws as u32);
        let (tree, _) = reduce_job_sessions_tree(
            &sessions,
            ws as u32,
            &TreeReduceConfig::default(),
        );
        prop_assert_eq!(flat.world_size, ws as u32);
        prop_assert_eq!(&flat.missing_ranks, &expected_missing);
        prop_assert_eq!(
            serde_json::to_string(&flat).unwrap(),
            serde_json::to_string(&tree).unwrap()
        );
    }
}
