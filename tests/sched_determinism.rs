//! Determinism contract of the event-driven DES core: refactoring a task
//! from a stack-full carrier thread to a stackless event task must not
//! change the simulation's observable behavior. Same workload, same
//! virtual-time trace — byte-identical probe event streams, identical
//! Darshan counters, identical final clock — whether the auxiliary tasks
//! run as carriers or as event-task state machines.
//!
//! Also pins the FIFO tie-break: tasks becoming runnable at the same
//! virtual instant run in spawn order regardless of flavor.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use tf_darshan::posix::OpenFlags;
use tf_darshan::probe::{CollectingSink, ProbeSink};
use tf_darshan::simrt::sync::Semaphore;
use tf_darshan::simrt::{EventCx, EventPoll, Sim};
use tf_darshan::tfdarshan::{TfDarshanConfig, TfDarshanWrapper};
use tf_darshan::workloads::platform::greendog;

const ROUNDS: usize = 3;

/// Blank out `pid: <n>` occurrences: process ids come from a global
/// counter, so the second run of a pair allocates different ones. The
/// trace contract is about *scheduling*, not id allocation.
fn strip_pids(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find("pid: ") {
        out.push_str(&rest[..i + 5]);
        rest = &rest[i + 5..];
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        out.push('#');
        rest = &rest[end..];
    }
    out.push_str(rest);
    out
}

/// Run the paced-I/O workload at `n` worker/pacer pairs. Workers are
/// always carriers (they do blocking POSIX I/O); pacers are carriers in
/// the baseline and event tasks for even indices when `mixed`. Returns
/// the full probe event stream, the Darshan session snapshots, and the
/// final virtual clock.
fn run_trace(n: usize, mixed: bool) -> (String, String, f64) {
    let m = greendog();
    for i in 0..n {
        m.stack
            .create_synthetic(&format!("/data/hdd/det/f{i}"), 64 << 10, i as u64)
            .unwrap();
    }
    let sink = Arc::new(CollectingSink::new());
    m.process
        .probe()
        .register(sink.clone() as Arc<dyn ProbeSink>);
    let wrapper = TfDarshanWrapper::install(m.process.clone(), TfDarshanConfig::default());

    let w2 = wrapper.clone();
    let process = m.process.clone();
    let sim2 = m.sim.clone();
    m.sim.spawn("main", move || {
        w2.mark_start().expect("tf-darshan attaches");
        let mut workers = Vec::new();
        for i in 0..n {
            let tickets = Arc::new(Semaphore::new(0));
            let d = Duration::from_micros(200 + (i as u64 % 13) * 50);
            {
                let tickets = tickets.clone();
                let process = process.clone();
                workers.push(sim2.spawn(format!("w{i}"), move || {
                    let path = format!("/data/hdd/det/f{i}");
                    for r in 0..ROUNDS {
                        tickets.acquire();
                        let fd = process.open(&path, OpenFlags::rdonly()).unwrap();
                        process
                            .pread(fd, (r as u64) * 4096, 4096 + (i as u64 % 7) * 512, None)
                            .unwrap();
                        process.close(fd).unwrap();
                    }
                }));
            }
            if mixed && i % 2 == 0 {
                let mut fired = 0usize;
                let mut sleeping = true;
                sim2.spawn_event(format!("p{i}"), move |_cx: &mut EventCx| loop {
                    if fired == ROUNDS {
                        return EventPoll::Done;
                    }
                    if sleeping {
                        sleeping = false;
                        return EventPoll::Sleep(d);
                    }
                    tickets.release();
                    fired += 1;
                    sleeping = true;
                });
            } else {
                sim2.spawn(format!("p{i}"), move || {
                    for _ in 0..ROUNDS {
                        tf_darshan::simrt::sleep(d);
                        tickets.release();
                    }
                });
            }
        }
        for w in workers {
            w.join();
        }
        w2.mark_stop();
    });
    m.sim.run();

    let events = strip_pids(&format!("{:?}", sink.snapshot()));
    let (start, stop) = wrapper.session_snapshots().expect("one session ran");
    let counters = strip_pids(&format!("{} -> {}", canon(&start), canon(&stop)));
    (events, counters, m.sim.now().as_secs_f64())
}

/// Render a Darshan snapshot deterministically: the record vectors are
/// sorted by record id already, but `names` and `dxt_watermarks` are
/// `HashMap`s whose Debug iteration order varies run to run — sort them.
fn canon(s: &tf_darshan::darshan::Snapshot) -> String {
    let names: std::collections::BTreeMap<_, _> = s.names.iter().collect();
    let marks: std::collections::BTreeMap<_, _> = s.dxt_watermarks.iter().collect();
    format!(
        "taken_at: {:?}, epoch: {:?}, posix: {:?}, stdio: {:?}, names: {:?}, \
         partial: {:?}/{:?}, dxt_segments: {:?}, dxt_watermarks: {:?}",
        s.taken_at,
        s.epoch,
        s.posix,
        s.stdio,
        names,
        s.posix_partial,
        s.stdio_partial,
        s.dxt_segments,
        marks,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn mixed_flavor_runs_reproduce_the_carrier_trace(n in 1usize..65) {
        let (ev_carrier, ctr_carrier, t_carrier) = run_trace(n, false);
        let (ev_mixed, ctr_mixed, t_mixed) = run_trace(n, true);
        prop_assert_eq!(ev_carrier, ev_mixed, "probe event streams diverged at n={}", n);
        prop_assert_eq!(ctr_carrier, ctr_mixed, "Darshan counters diverged at n={}", n);
        prop_assert_eq!(t_carrier, t_mixed, "final virtual clocks diverged at n={}", n);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn equal_time_wakeups_run_in_spawn_order_across_flavors(
        k in 1usize..49,
        flavors in any::<u64>(),
    ) {
        // All k tasks become runnable at t=0; the run order must be the
        // spawn order whatever mix of carriers and event tasks `flavors`
        // selects.
        let sim = Sim::new();
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for i in 0..k {
            let order = order.clone();
            if flavors >> (i % 64) & 1 == 1 {
                sim.spawn_event(format!("e{i}"), move |_cx: &mut EventCx| {
                    order.lock().push(i);
                    EventPoll::Done
                });
            } else {
                sim.spawn(format!("c{i}"), move || {
                    order.lock().push(i);
                });
            }
        }
        sim.run();
        let got = order.lock().clone();
        prop_assert_eq!(got, (0..k).collect::<Vec<_>>());
    }
}
