//! Property-based tests of the core invariants, across crates.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use tf_darshan::darshan::{
    DarshanConfig, DarshanLog, DarshanRuntime, DxtOp, PosixCounter as P, PosixRecord, StdioRecord,
};
use tf_darshan::storage::cache::PageCache;
use tf_darshan::storage::content;

// ---------------------------------------------------------------------------
// content: split-invariance
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn content_fill_is_split_invariant(
        seed in any::<u64>(),
        offset in 0u64..10_000,
        len in 1usize..2_000,
        cut in 0usize..2_000,
    ) {
        let cut = cut.min(len);
        let mut whole = vec![0u8; len];
        content::fill(seed, offset, &mut whole);
        let mut a = vec![0u8; cut];
        let mut b = vec![0u8; len - cut];
        content::fill(seed, offset, &mut a);
        content::fill(seed, offset + cut as u64, &mut b);
        prop_assert_eq!(&whole[..cut], &a[..]);
        prop_assert_eq!(&whole[cut..], &b[..]);
        prop_assert_eq!(content::checksum(seed, offset, len as u64),
                        content::checksum_bytes(&whole));
    }
}

// ---------------------------------------------------------------------------
// page cache: plan_read matches a naive interval model
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum CacheOp {
    Insert { offset: u64, len: u64 },
    Read { offset: u64, len: u64 },
    Drop,
}

fn cache_op() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        (0u64..5_000, 1u64..800).prop_map(|(offset, len)| CacheOp::Insert { offset, len }),
        (0u64..5_000, 1u64..800).prop_map(|(offset, len)| CacheOp::Read { offset, len }),
        Just(CacheOp::Drop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn cache_plan_matches_reference_model(ops in prop::collection::vec(cache_op(), 1..60)) {
        let cache = PageCache::new(u64::MAX); // no eviction: pure interval logic
        let mut model: BTreeSet<u64> = BTreeSet::new(); // resident bytes
        let key = (1, 1);
        for op in ops {
            match op {
                CacheOp::Insert { offset, len } => {
                    cache.insert(key, offset, len, false);
                    model.extend(offset..offset + len);
                }
                CacheOp::Drop => {
                    cache.drop_caches();
                    model.clear();
                }
                CacheOp::Read { offset, len } => {
                    let runs = cache.plan_read(key, offset, len);
                    // Runs must exactly tile [offset, offset+len).
                    let mut cursor = offset;
                    for r in &runs {
                        prop_assert_eq!(r.offset, cursor);
                        prop_assert!(r.len > 0);
                        for b in r.offset..r.offset + r.len {
                            prop_assert_eq!(model.contains(&b), r.hit,
                                "byte {} hit={} model={}", b, r.hit, model.contains(&b));
                        }
                        cursor += r.len;
                    }
                    prop_assert_eq!(cursor, offset + len);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// darshan: counters ≡ recomputation from the DXT trace, and diff additivity
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct IoOp {
    file: u8,
    write: bool,
    offset: u64,
    len: u64,
}

fn io_op() -> impl Strategy<Value = IoOp> {
    (0u8..4, any::<bool>(), 0u64..100_000, 0u64..50_000).prop_map(|(file, write, offset, len)| {
        IoOp {
            file,
            write,
            offset,
            len,
        }
    })
}

fn apply_ops(rt: &DarshanRuntime, ops: &[IoOp]) {
    let t = simrt::now();
    let mut ids = std::collections::HashMap::new();
    for op in ops {
        let path = format!("/d/f{}", op.file);
        let id = *ids
            .entry(op.file)
            .or_insert_with(|| rt.posix_open(&path, t, t).unwrap());
        simrt::sleep(Duration::from_micros(10));
        let (a, b) = (simrt::now(), simrt::now() + Duration::from_micros(5));
        if op.write {
            rt.posix_write(id, op.offset, op.len, a, b);
        } else {
            rt.posix_read(id, op.offset, op.len, a, b);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn counters_match_dxt_recomputation(ops in prop::collection::vec(io_op(), 1..80)) {
        let sim = simrt::Sim::new();
        let ops2 = ops.clone();
        let h = sim.spawn("t", move || {
            let rt = DarshanRuntime::new(DarshanConfig {
                per_op_overhead: Duration::ZERO,
                new_record_overhead: Duration::ZERO,
                snapshot_cost_per_record: Duration::ZERO,
                ..Default::default()
            });
            apply_ops(&rt, &ops2);
            let snap = rt.snapshot();
            let dxt = rt.dxt_range(0.0, f64::MAX);
            (snap, dxt)
        });
        sim.run();
        let (snap, dxt) = h.join();
        // Recompute per-record read/write totals from the trace.
        for rec in &snap.posix {
            let segs: Vec<_> = dxt.iter().filter(|(id, _)| *id == rec.rec_id).collect();
            let bytes_read: u64 = segs
                .iter()
                .filter(|(_, s)| s.op == DxtOp::Read)
                .map(|(_, s)| s.length)
                .sum();
            let bytes_written: u64 = segs
                .iter()
                .filter(|(_, s)| s.op == DxtOp::Write)
                .map(|(_, s)| s.length)
                .sum();
            let reads = segs.iter().filter(|(_, s)| s.op == DxtOp::Read).count() as i64;
            let writes = segs.iter().filter(|(_, s)| s.op == DxtOp::Write).count() as i64;
            prop_assert_eq!(rec.get(P::POSIX_BYTES_READ), bytes_read as i64);
            prop_assert_eq!(rec.get(P::POSIX_BYTES_WRITTEN), bytes_written as i64);
            prop_assert_eq!(rec.get(P::POSIX_READS), reads);
            prop_assert_eq!(rec.get(P::POSIX_WRITES), writes);
            // Histogram sums equal op counts.
            let rh: i64 = (0..10)
                .map(|b| rec.counters[P::POSIX_SIZE_READ_0_100 as usize + b])
                .sum();
            prop_assert_eq!(rh, reads);
            // Max byte read consistent with trace.
            let max_byte = segs
                .iter()
                .filter(|(_, s)| s.op == DxtOp::Read && s.length > 0)
                .map(|(_, s)| s.offset + s.length - 1)
                .max();
            if let Some(mb) = max_byte {
                prop_assert_eq!(rec.get(P::POSIX_MAX_BYTE_READ), mb as i64);
            }
            // Pattern counters: consec ≤ seq ≤ reads.
            prop_assert!(rec.get(P::POSIX_CONSEC_READS) <= rec.get(P::POSIX_SEQ_READS));
            prop_assert!(rec.get(P::POSIX_SEQ_READS) <= reads);
        }
    }

    #[test]
    fn counters_match_event_stream_replay(ops in prop::collection::vec(io_op(), 1..60)) {
        // The full pipeline — GOT wrappers → probe spine → DarshanSink fold —
        // must be reproducible from the event stream alone: collecting the
        // same IoEvents with a second sink and folding them into a fresh
        // runtime yields byte-identical integer counters (bytes, op counts,
        // access-size histograms, seq/consec pattern flags, common values).
        use tf_darshan::darshan::{DarshanLibrary, DarshanSink};
        use tf_darshan::posix::{OpenFlags, Process};
        use tf_darshan::probe::{CollectingSink, ProbeSink};
        use tf_darshan::storage::{Device, DeviceSpec, FileSystem, LocalFs, LocalFsParams,
                                  PageCache, StorageStack, WritePayload};
        let sim = simrt::Sim::new();
        let fs = LocalFs::new(
            Device::new(DeviceSpec::optane("nvme0")),
            Arc::new(PageCache::new(1 << 30)),
            LocalFsParams::default(),
        );
        let stack = StorageStack::new();
        stack.mount("/d", fs as Arc<dyn FileSystem>);
        let p = Process::new(stack);
        let collector = Arc::new(CollectingSink::new());
        let ops2 = ops.clone();
        let h = {
            let collector = collector.clone();
            sim.spawn("t", move || {
                let lib = DarshanLibrary::new(DarshanConfig::default());
                let tap = p.probe().register(collector);
                lib.attach(&p).unwrap();
                let mut fds = std::collections::HashMap::new();
                for op in &ops2 {
                    let path = format!("/d/f{}", op.file);
                    let fd = *fds.entry(op.file).or_insert_with(|| {
                        p.open(&path, OpenFlags {
                            read: true,
                            write: true,
                            create: true,
                            ..Default::default()
                        })
                        .unwrap()
                    });
                    if op.write {
                        p.pwrite(fd, op.offset, WritePayload::Synthetic(op.len)).unwrap();
                    } else {
                        p.pread(fd, op.offset, op.len, None).unwrap();
                    }
                }
                for fd in fds.values() {
                    p.close(*fd).unwrap();
                }
                lib.detach(&p).unwrap();
                p.probe().unregister(tap);
                lib.runtime().snapshot()
            })
        };
        sim.run();
        let live = h.join();
        let events = collector.take();
        // Replay: fold the captured stream into a fresh runtime.
        let sim2 = simrt::Sim::new();
        let h2 = sim2.spawn("replay", move || {
            let rt = Arc::new(DarshanRuntime::new(DarshanConfig::default()));
            let sink = DarshanSink::new(rt.clone());
            sink.on_events(&events);
            rt.snapshot()
        });
        sim2.run();
        let replay = h2.join();
        prop_assert_eq!(live.posix.len(), replay.posix.len());
        prop_assert_eq!(live.stdio.len(), replay.stdio.len());
        prop_assert_eq!(&live.names, &replay.names);
        for (a, b) in live.posix.iter().zip(&replay.posix) {
            prop_assert_eq!(a.rec_id, b.rec_id);
            prop_assert_eq!(&a.counters[..], &b.counters[..], "rec {:x}", a.rec_id);
        }
    }

    #[test]
    fn snapshot_diff_is_additive(
        ops in prop::collection::vec(io_op(), 2..60),
        cut in 1usize..59,
    ) {
        let cut = cut.min(ops.len() - 1);
        let sim = simrt::Sim::new();
        let ops2 = ops.clone();
        let h = sim.spawn("t", move || {
            let rt = DarshanRuntime::new(DarshanConfig {
                per_op_overhead: Duration::ZERO,
                new_record_overhead: Duration::ZERO,
                snapshot_cost_per_record: Duration::ZERO,
                ..Default::default()
            });
            let s0 = rt.snapshot();
            apply_ops(&rt, &ops2[..cut]);
            let s1 = rt.snapshot();
            apply_ops(&rt, &ops2[cut..]);
            let s2 = rt.snapshot();
            (s0, s1, s2)
        });
        sim.run();
        let (s0, s1, s2) = h.join();
        let d01 = tf_darshan::tfdarshan::diff(&s0, &s1);
        let d12 = tf_darshan::tfdarshan::diff(&s1, &s2);
        let d02 = tf_darshan::tfdarshan::diff(&s0, &s2);
        let sum = |d: &tf_darshan::tfdarshan::SnapshotDiff, c: P| -> i64 {
            d.posix.iter().map(|r| r.get(c)).sum()
        };
        for c in [
            P::POSIX_OPENS,
            P::POSIX_READS,
            P::POSIX_WRITES,
            P::POSIX_BYTES_READ,
            P::POSIX_BYTES_WRITTEN,
            P::POSIX_SEQ_READS,
            P::POSIX_CONSEC_WRITES,
        ] {
            prop_assert_eq!(sum(&d01, c) + sum(&d12, c), sum(&d02, c), "{}", c.name());
        }
    }
}

// ---------------------------------------------------------------------------
// darshan log: roundtrip identity for arbitrary records
// ---------------------------------------------------------------------------

fn arb_posix_record() -> impl Strategy<Value = PosixRecord> {
    (
        any::<u64>(),
        prop::collection::vec(any::<i64>(), P::COUNT),
        prop::collection::vec(-1e6f64..1e6, tf_darshan::darshan::PosixFCounter::COUNT),
    )
        .prop_map(|(id, counters, fcounters)| {
            let mut r = PosixRecord::new(id);
            r.counters.copy_from_slice(&counters);
            r.fcounters.copy_from_slice(&fcounters);
            r
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn log_roundtrip_identity(
        records in prop::collection::vec(arb_posix_record(), 0..20),
        names in prop::collection::vec("[a-z/]{1,30}", 0..10),
        job_end in 0.0f64..1e6,
        posix_partial in any::<bool>(),
    ) {
        let log = DarshanLog {
            job_start: 0.0,
            job_end,
            nprocs: 1,
            names: names
                .iter()
                .map(|n| (tf_darshan::darshan::record_id(n), n.clone()))
                .collect(),
            posix: records,
            posix_partial,
            stdio: vec![StdioRecord::new(7)],
            stdio_partial: false,
            dxt: Default::default(),
        };
        let bytes = log.encode();
        let back = DarshanLog::decode(&bytes).unwrap();
        prop_assert_eq!(back.job_end, log.job_end);
        prop_assert_eq!(back.posix_partial, log.posix_partial);
        prop_assert_eq!(back.names, log.names);
        prop_assert_eq!(back.posix.len(), log.posix.len());
        for (a, b) in back.posix.iter().zip(&log.posix) {
            prop_assert_eq!(a.rec_id, b.rec_id);
            prop_assert_eq!(a.counters, b.counters);
            prop_assert_eq!(a.fcounters, b.fcounters);
        }
    }
}

// ---------------------------------------------------------------------------
// stdio buffering ≡ direct POSIX, for any write pattern
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn stdio_buffered_writes_equal_direct_posix(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..700), 1..20),
    ) {
        use tf_darshan::posix::{OpenFlags, Process};
        use tf_darshan::storage::{Device, DeviceSpec, FileSystem, LocalFs, LocalFsParams,
                                  PageCache, StorageStack, WritePayload};
        let sim = simrt::Sim::new();
        let fs = LocalFs::new(
            Device::new(DeviceSpec::optane("nvme0")),
            Arc::new(PageCache::new(1 << 30)),
            LocalFsParams::default(),
        );
        let stack = StorageStack::new();
        stack.mount("/d", fs.clone() as Arc<dyn FileSystem>);
        let p = Process::new(stack);
        let chunks2 = chunks.clone();
        let h = sim.spawn("t", move || {
            // Write the same bytes through both layers.
            let s = p.fopen("/d/stdio", "w").unwrap();
            let fd = p.open("/d/posix", OpenFlags::wronly_create_trunc()).unwrap();
            for c in &chunks2 {
                p.fwrite(s, WritePayload::Bytes(c)).unwrap();
                p.write(fd, WritePayload::Bytes(c)).unwrap();
            }
            p.fclose(s).unwrap();
            p.close(fd).unwrap();
            // Read both back fully.
            let total: usize = chunks2.iter().map(|c| c.len()).sum();
            let mut via_stdio = vec![0u8; total];
            let r = p.fopen("/d/stdio", "r").unwrap();
            assert_eq!(p.fread(r, total as u64, Some(&mut via_stdio)).unwrap(), total as u64);
            p.fclose(r).unwrap();
            let mut via_posix = vec![0u8; total];
            let fd = p.open("/d/posix", OpenFlags::rdonly()).unwrap();
            assert_eq!(p.pread(fd, 0, total as u64, Some(&mut via_posix)).unwrap(), total as u64);
            p.close(fd).unwrap();
            (via_stdio, via_posix)
        });
        sim.run();
        let (via_stdio, via_posix) = h.join();
        let expect: Vec<u8> = chunks.concat();
        prop_assert_eq!(&via_stdio, &expect);
        prop_assert_eq!(&via_posix, &expect);
    }
}

// ---------------------------------------------------------------------------
// simrt: determinism and ordered parallel map under random delays
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn scheduler_is_deterministic(delays in prop::collection::vec(1u64..2_000, 2..12)) {
        let run_once = |delays: &[u64]| -> (u64, Vec<(usize, u64)>) {
            let sim = simrt::Sim::new();
            let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
            for (i, &d) in delays.iter().enumerate() {
                let log = log.clone();
                sim.spawn(format!("t{i}"), move || {
                    for _ in 0..3 {
                        simrt::sleep(Duration::from_micros(d));
                        log.lock().push((i, simrt::now().as_nanos()));
                    }
                });
            }
            sim.run();
            let v = log.lock().clone();
            (sim.now().as_nanos(), v)
        };
        let a = run_once(&delays);
        let b = run_once(&delays);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn parallel_map_is_order_preserving(
        costs in prop::collection::vec(1u64..500, 1..40),
        workers in 1usize..9,
    ) {
        use tf_darshan::tfsim::{Dataset, Element, Parallelism, TfRuntime};
        let sim = simrt::Sim::new();
        let stack = tf_darshan::storage::StorageStack::new();
        let rt = TfRuntime::new(tf_darshan::posix::Process::new(stack), sim.clone(), 8);
        let costs2 = costs.clone();
        let n = costs.len();
        let h = sim.spawn("consumer", move || {
            let files: Vec<String> = (0..n).map(|i| format!("/f{i}")).collect();
            let map: tf_darshan::tfsim::MapFn = Arc::new(move |_ctx, index, _path| {
                simrt::sleep(Duration::from_micros(costs2[index]));
                Element { index, bytes: 1 }
            });
            let ds = Dataset::from_files(files)
                .map(map, Parallelism::Fixed(workers))
                .batch(1);
            let mut it = ds.iterate(&rt);
            let mut seen = Vec::new();
            while let Some(b) = it.next() {
                seen.push(b.last_index);
            }
            seen
        });
        sim.run();
        let seen = h.join();
        prop_assert_eq!(seen, (0..n).collect::<Vec<_>>());
    }
}
