//! Property tests proving the interned-id probe spine is observably
//! lossless: an event stream built with `PathId` targets, buffered in
//! per-thread rings and delivered in batched flushes is — once resolved
//! through the interner's names table — field-identical to the shadow
//! stream described with plain strings, and every aggregate a sink could
//! fold from it (per-path byte counters, per-kind counts) is unchanged.
//!
//! The generator deliberately crosses [`probe::RING_CAPACITY`] so the
//! ring-full inline-flush path is exercised alongside the explicit
//! flush-at-extraction path, and draws targets from a small pool so the
//! interner's dedup (same string ⇒ same id) is load-bearing.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use tf_darshan::probe::{
    self, CollectingSink, EventKind, IoEvent, Origin, ProbeBus, RING_CAPACITY,
};
use tf_darshan::simrt::{SimTime, SyncOp, TaskId};

// ---------------------------------------------------------------------------
// Shadow model: the pre-refactor event description, targets as strings.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct ShadowEvent {
    task: u64,
    pid: u32,
    t0: u64,
    dt: u64,
    origin: Origin,
    target: String,
    kind: ShadowKind,
}

#[derive(Clone, Debug, PartialEq)]
enum ShadowKind {
    Open { fd: i32 },
    Read { fd: i32, offset: u64, len: u64 },
    Write { fd: i32, offset: u64, len: u64 },
    StdioRead { stream: u64, pos: u64, len: u64 },
    Stat,
    TraceSpan { label: String },
    Sync { op: SyncOp, obj: u64 },
}

fn origin() -> impl Strategy<Value = Origin> {
    prop_oneof![
        Just(Origin::App),
        Just(Origin::StdioInternal),
        Just(Origin::Prefetch),
    ]
}

/// Targets come from a small pool plus occasional fresh strings, so most
/// events share interned ids (the production pattern) while new paths keep
/// forcing interner inserts mid-stream.
fn target() -> impl Strategy<Value = String> {
    // A fixed pool so most events share interned ids (the production
    // pattern), plus a random-path arm that keeps forcing interner inserts
    // mid-stream. The empty string exercises the pre-seeded id 0.
    prop_oneof![
        Just("/d/train/shard-0000".to_string()),
        Just("/d/train/shard-0001".to_string()),
        Just("/mnt/lustre/imagenet/n01440764/img.JPEG".to_string()),
        Just("/tmp/ckpt.tmp".to_string()),
        Just(String::new()),
        "/[a-z]{1,8}/[a-z0-9]{1,10}".prop_map(|s| s),
    ]
}

fn shadow_kind() -> impl Strategy<Value = ShadowKind> {
    prop_oneof![
        (0i32..64).prop_map(|fd| ShadowKind::Open { fd }),
        (0i32..64, any::<u64>(), 0u64..1 << 20).prop_map(|(fd, offset, len)| ShadowKind::Read {
            fd,
            offset,
            len
        }),
        (0i32..64, any::<u64>(), 0u64..1 << 20).prop_map(|(fd, offset, len)| ShadowKind::Write {
            fd,
            offset,
            len
        }),
        (any::<u64>(), any::<u64>(), 0u64..1 << 20)
            .prop_map(|(stream, pos, len)| ShadowKind::StdioRead { stream, pos, len }),
        Just(ShadowKind::Stat),
        "[A-Za-z ]{0,16}\\(t[0-9]{1,3}\\)".prop_map(|label| ShadowKind::TraceSpan { label }),
        (any::<u64>()).prop_map(|obj| ShadowKind::Sync {
            op: SyncOp::Signal,
            obj
        }),
    ]
}

fn shadow_event() -> impl Strategy<Value = ShadowEvent> {
    (
        (0u64..8, 0u32..4, any::<u64>(), 0u64..1_000_000),
        (origin(), target(), shadow_kind()),
    )
        .prop_map(
            |((task, pid, t0, dt), (origin, target, kind))| ShadowEvent {
                task,
                pid,
                t0,
                dt,
                origin,
                target,
                kind,
            },
        )
}

/// Build the real event exactly as the emission layer does: targets and
/// span labels interned to `PathId`s, everything else carried verbatim.
fn realize(s: &ShadowEvent) -> IoEvent {
    IoEvent {
        task: TaskId(s.task),
        pid: s.pid,
        t0: SimTime::from_nanos(s.t0),
        t1: SimTime::from_nanos(s.t0.saturating_add(s.dt)),
        origin: s.origin,
        target: probe::intern(&s.target),
        kind: match &s.kind {
            ShadowKind::Open { fd } => EventKind::Open { fd: *fd },
            ShadowKind::Read { fd, offset, len } => EventKind::Read {
                fd: *fd,
                offset: *offset,
                len: *len,
            },
            ShadowKind::Write { fd, offset, len } => EventKind::Write {
                fd: *fd,
                offset: *offset,
                len: *len,
            },
            ShadowKind::StdioRead { stream, pos, len } => EventKind::StdioRead {
                stream: *stream,
                pos: *pos,
                len: *len,
            },
            ShadowKind::Stat => EventKind::Stat,
            ShadowKind::TraceSpan { label } => EventKind::TraceSpan {
                label: probe::intern(label),
                stats: Vec::new(),
            },
            ShadowKind::Sync { op, obj } => EventKind::Sync { op: *op, obj: *obj },
        },
    }
}

/// Field-by-field comparison of a delivered event against its shadow,
/// resolving interned ids back through the names table.
fn assert_equivalent(shadow: &ShadowEvent, got: &IoEvent) {
    prop_assert_eq!(got.task, TaskId(shadow.task));
    prop_assert_eq!(got.pid, shadow.pid);
    prop_assert_eq!(got.t0, SimTime::from_nanos(shadow.t0));
    prop_assert_eq!(
        got.t1,
        SimTime::from_nanos(shadow.t0.saturating_add(shadow.dt))
    );
    prop_assert_eq!(got.origin, shadow.origin);
    prop_assert_eq!(&*got.target.resolve(), shadow.target.as_str());
    match (&shadow.kind, &got.kind) {
        (ShadowKind::Open { fd }, EventKind::Open { fd: g }) => prop_assert_eq!(g, fd),
        (
            ShadowKind::Read { fd, offset, len },
            EventKind::Read {
                fd: gf,
                offset: go,
                len: gl,
            },
        ) => {
            prop_assert_eq!((gf, go, gl), (fd, offset, len));
        }
        (
            ShadowKind::Write { fd, offset, len },
            EventKind::Write {
                fd: gf,
                offset: go,
                len: gl,
            },
        ) => {
            prop_assert_eq!((gf, go, gl), (fd, offset, len));
        }
        (
            ShadowKind::StdioRead { stream, pos, len },
            EventKind::StdioRead {
                stream: gs,
                pos: gp,
                len: gl,
            },
        ) => {
            prop_assert_eq!((gs, gp, gl), (stream, pos, len));
        }
        (ShadowKind::Stat, EventKind::Stat) => {}
        (ShadowKind::TraceSpan { label }, EventKind::TraceSpan { label: gl, stats }) => {
            prop_assert_eq!(&*gl.resolve(), label.as_str());
            prop_assert!(stats.is_empty());
        }
        (ShadowKind::Sync { op, obj }, EventKind::Sync { op: go, obj: gb }) => {
            prop_assert_eq!((go, gb), (op, obj));
        }
        (s, g) => panic!("kind mismatch: shadow {s:?} vs delivered {g:?}"),
    }
}

// ---------------------------------------------------------------------------
// Interner: resolve is the exact inverse of intern; ids are identity.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn intern_round_trips_and_is_injective(
        strings in prop::collection::vec(target(), 1..40)
    ) {
        let ids: Vec<_> = strings.iter().map(|s| probe::intern(s)).collect();
        for (s, id) in strings.iter().zip(&ids) {
            prop_assert_eq!(&*id.resolve(), s.as_str());
        }
        // Same string ⇒ same id, different string ⇒ different id.
        for (i, (si, idi)) in strings.iter().zip(&ids).enumerate() {
            for (sj, idj) in strings.iter().zip(&ids).skip(i) {
                prop_assert_eq!(si == sj, idi == idj);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Ring + batched flush: the delivered stream is the emitted stream.
// ---------------------------------------------------------------------------

proptest! {
    // Streams up to 2.5 rings long: overflow-flush and tail-flush both run.
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn delivered_stream_is_field_identical(
        shadows in prop::collection::vec(shadow_event(), 1..(RING_CAPACITY * 5 / 2))
    ) {
        let bus = ProbeBus::new();
        let sink = Arc::new(CollectingSink::new());
        bus.register(sink.clone());
        for s in &shadows {
            bus.emit(realize(s));
        }
        probe::flush_current_thread();
        let got = sink.take();
        prop_assert_eq!(got.len(), shadows.len());
        for (shadow, ev) in shadows.iter().zip(&got) {
            assert_equivalent(shadow, ev);
        }
    }
}

// ---------------------------------------------------------------------------
// Aggregates: byte totals per resolved path match the string-keyed model.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn per_path_aggregates_unchanged(
        shadows in prop::collection::vec(shadow_event(), 1..400)
    ) {
        // Reference fold over the string-described stream.
        let mut expect: HashMap<String, (u64, u64)> = HashMap::new(); // (events, bytes)
        for s in &shadows {
            let bytes = match &s.kind {
                ShadowKind::Read { len, .. }
                | ShadowKind::Write { len, .. }
                | ShadowKind::StdioRead { len, .. } => *len,
                _ => 0,
            };
            let e = expect.entry(s.target.clone()).or_default();
            e.0 += 1;
            e.1 += bytes;
        }

        // Fold of the delivered interned stream, resolved at fold time —
        // the pattern every real sink (Darshan, dstat, iosan) follows.
        let bus = ProbeBus::new();
        let sink = Arc::new(CollectingSink::new());
        bus.register(sink.clone());
        for s in &shadows {
            bus.emit(realize(s));
        }
        probe::flush_current_thread();
        let mut got: HashMap<String, (u64, u64)> = HashMap::new();
        for ev in sink.take() {
            let bytes = match ev.kind {
                EventKind::Read { len, .. }
                | EventKind::Write { len, .. }
                | EventKind::StdioRead { len, .. } => len,
                _ => 0,
            };
            let e = got.entry(ev.target.resolve().to_string()).or_default();
            e.0 += 1;
            e.1 += bytes;
        }
        prop_assert_eq!(got, expect);
    }
}

// ---------------------------------------------------------------------------
// Fan-out: every registered sink sees the identical batch sequence.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn all_sinks_see_the_same_stream(
        shadows in prop::collection::vec(shadow_event(), 1..300)
    ) {
        let bus = ProbeBus::new();
        let sinks: Vec<Arc<CollectingSink>> = (0..3)
            .map(|_| {
                let s = Arc::new(CollectingSink::new());
                bus.register(s.clone());
                s
            })
            .collect();
        for s in &shadows {
            bus.emit(realize(s));
        }
        probe::flush_current_thread();
        let streams: Vec<Vec<IoEvent>> = sinks.iter().map(|s| s.take()).collect();
        for stream in &streams {
            prop_assert_eq!(stream.len(), shadows.len());
            for (shadow, ev) in shadows.iter().zip(stream) {
                assert_equivalent(shadow, ev);
            }
        }
    }
}
