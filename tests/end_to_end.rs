//! Cross-crate integration tests: full training runs with profiling,
//! report invariants, and determinism of the whole stack.

use tf_darshan::tfsim::Parallelism;
use tf_darshan::workloads::{run, Profiling, RunConfig, Scale, Workload};

#[test]
fn malware_training_report_is_consistent_with_trainer() {
    let mut cfg = RunConfig::paper(Workload::Malware, Scale::of(0.05));
    cfg.profiling = Profiling::TfDarshan { full_export: true };
    let out = run(Workload::Malware, cfg);
    let rep = out.report.expect("report");

    // Darshan's byte count must equal what the trainer consumed (the
    // pipeline reads whole files; the profiled window covers the fit).
    assert_eq!(rep.io.bytes_read, out.fit.bytes_read);
    // One open per file; reads = data segments + one EOF probe per file.
    assert_eq!(rep.io.files_opened as usize, out.dataset.0);
    assert_eq!(rep.io.zero_reads, rep.io.opens);
    assert!(
        rep.io.reads > rep.io.opens * 2,
        "multi-MB files read in segments"
    );
    // Sequential single-reader pattern.
    assert_eq!(rep.io.seq_fraction(), 1.0);
    // Every byte accounted in the size histogram.
    let hist_reads: u64 = rep.io.read_size_hist.iter().sum();
    assert_eq!(hist_reads, rep.io.reads);
}

#[test]
fn imagenet_small_files_shape() {
    let mut cfg = RunConfig::paper(Workload::ImageNet, Scale::of(0.02));
    cfg.profiling = Profiling::TfDarshan { full_export: true };
    let out = run(Workload::ImageNet, cfg);
    let rep = out.report.expect("report");
    // Small files: exactly 2 reads per file (whole-file + zero probe).
    assert_eq!(rep.io.reads, 2 * rep.io.opens);
    assert_eq!(rep.io.zero_reads * 2, rep.io.reads);
    assert!(out.fit.input_bound_fraction() > 0.9);
    // All data reads are ≤ 1 MB (files below the ReadFile chunk).
    assert_eq!(rep.io.read_size_hist[5..].iter().sum::<u64>(), 0);
}

#[test]
fn whole_stack_is_deterministic() {
    let run_once = || {
        let mut cfg = RunConfig::paper(Workload::Malware, Scale::of(0.03));
        cfg.threads = Parallelism::Fixed(4);
        cfg.profiling = Profiling::TfDarshan { full_export: true };
        let out = run(Workload::Malware, cfg);
        (
            out.wall,
            out.fit.bytes_read,
            out.report.map(|r| (r.io.reads, r.io.bytes_read, r.window)),
        )
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.0, b.0, "identical virtual wall-clock");
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2, "identical Darshan observations");
}

#[test]
fn profiler_modes_cost_ordering() {
    let wall = |profiling: Profiling| {
        let mut cfg = RunConfig::paper(Workload::Malware, Scale::of(0.05));
        cfg.steps = 8;
        cfg.batch = 64;
        cfg.profiling = profiling;
        run(Workload::Malware, cfg).wall
    };
    let none = wall(Profiling::None);
    let tfp = wall(Profiling::TfProfiler);
    let tfd = wall(Profiling::TfDarshan { full_export: true });
    assert!(
        tfp >= none,
        "TF profiler adds overhead: {tfp:?} vs {none:?}"
    );
    assert!(tfd > tfp, "tf-Darshan adds more: {tfd:?} vs {tfp:?}");
    // Within Fig. 5's bands: host profiler is cheap, tf-Darshan moderate.
    let tfp_pct = (tfp.as_secs_f64() - none.as_secs_f64()) / none.as_secs_f64();
    let tfd_pct = (tfd.as_secs_f64() - none.as_secs_f64()) / none.as_secs_f64();
    assert!(tfp_pct < 0.05, "TF profiler {tfp_pct:.3}");
    assert!(tfd_pct < 0.30, "tf-Darshan {tfd_pct:.3}");
}

#[test]
fn trace_contains_all_three_planes_and_is_serializable() {
    let mut cfg = RunConfig::paper(Workload::Malware, Scale::of(0.02));
    cfg.profiling = Profiling::TfDarshan { full_export: true };
    let out = run(Workload::Malware, cfg);
    let space = out.space.expect("trace");
    assert!(space.plane("/host:CPU").is_some());
    assert!(space.plane(tf_darshan::tfdarshan::ANALYSIS_PLANE).is_some());
    assert!(space.plane(tf_darshan::tfdarshan::DXT_PLANE).is_some());
    // Chrome trace export round-trips through JSON.
    let chrome = space.to_chrome_trace();
    let text = serde_json::to_string(&chrome).unwrap();
    let back: serde_json::Value = serde_json::from_str(&text).unwrap();
    assert!(back["traceEvents"].as_array().unwrap().len() > 100);
}

#[test]
fn stream_has_no_compute_and_training_does() {
    let mut cfg = RunConfig::paper(Workload::StreamMalware, Scale::of(0.03));
    cfg.threads = Parallelism::Fixed(8);
    let stream = run(Workload::StreamMalware, cfg);
    assert!(stream.fit.steps.iter().all(|s| s.compute.is_zero()));

    let cfg = RunConfig::paper(Workload::Malware, Scale::of(0.03));
    let train = run(Workload::Malware, cfg);
    assert!(train.fit.steps.iter().all(|s| !s.compute.is_zero()));
}

#[test]
fn trace_derived_input_pipeline_analysis_matches_trainer() {
    use tf_darshan::tfsim::InputPipelineAnalysis;
    let mut cfg = RunConfig::paper(Workload::ImageNet, Scale::of(0.02));
    cfg.profiling = Profiling::TfDarshan { full_export: true };
    let out = run(Workload::ImageNet, cfg);
    let space = out.space.expect("trace");
    let a = InputPipelineAnalysis::from_space(&space);
    assert_eq!(a.sampled_steps(), out.fit.steps_run);
    // TensorBoard's trace-derived number agrees with the trainer's own
    // bookkeeping to within a step of slack.
    let trainer = out.fit.input_bound_fraction();
    let traced = a.input_bound_fraction();
    assert!(
        (trainer - traced).abs() < 0.02,
        "trainer {trainer:.3} vs trace {traced:.3}"
    );
    assert!(traced > 0.9, "Fig 7a: highly input-bound");
    assert!(a.verdict().contains("HIGHLY"));
}

#[test]
fn manual_windows_cover_the_run_and_report_bandwidth() {
    let mut cfg = RunConfig::paper(Workload::StreamMalware, Scale::of(0.05));
    cfg.threads = Parallelism::Fixed(16);
    cfg.profiling = Profiling::ManualWindows { every_steps: 5 };
    let out = run(Workload::StreamMalware, cfg);
    let windows = out.bandwidth_points.len();
    assert_eq!(windows, out.fit.steps_run.div_ceil(5));
    for (t, bw) in &out.bandwidth_points {
        assert!(*t > 0.0);
        assert!(*bw > 0.0, "every window observed I/O");
    }
    // Windows are time-ordered.
    assert!(out.bandwidth_points.windows(2).all(|w| w[0].0 < w[1].0));
}
