//! The scheduler scale workload: many simulated threads, few OS threads.
//!
//! The event-driven DES core's contract is that simulated concurrency
//! costs run-calendar heap entries, not OS threads — 10k simulated
//! threads must not mean 10k stacks. This workload drives that contract
//! end to end: `sim_threads` stackless *event tasks* run a
//! sleep-then-barrier cadence (the shape of a wide rank fleet waiting on
//! collectives) while a small constant pool of *carrier* threads does
//! real POSIX I/O through the probe spine — optionally under the `iosan`
//! sanitizer, which observes both flavors' sync edges on one stream.
//!
//! The outcome pairs the scheduler's own counters ([`simrt::SchedStats`])
//! with the process's OS-thread count read from `/proc/self/status`, so a
//! test (or the `sched_scaling` bench) can assert the flat-overhead
//! claim directly: `event_spawns == sim_threads` while the OS-thread
//! peak stays bounded by the carrier pool.

use std::sync::Arc;
use std::time::Duration;

use iosan::{IoSanitizer, SanitizerReport};
use posix_sim::OpenFlags;
use simrt::sync::Barrier;
use simrt::{EventCx, EventPoll, SchedStats, SimTime};

use crate::platform::greendog;

/// Carrier I/O threads the workload always runs (the "real work" pool).
pub const CARRIER_POOL: usize = 4;

/// Bytes each carrier reads per round.
const CARRIER_READ: u64 = 64 << 10;

/// What the scale workload produced.
pub struct SchedScaleOutcome {
    /// Event tasks that were spawned (the simulated thread count).
    pub sim_threads: usize,
    /// Barrier rounds every participant crossed.
    pub rounds: usize,
    /// Scheduler counters of the run.
    pub stats: SchedStats,
    /// Highest `Threads:` value observed in `/proc/self/status` around the
    /// run (a process-wide proxy: includes harness threads, so compare
    /// against generous bounds, not exact counts). `None` off procfs.
    pub peak_os_threads: Option<usize>,
    /// Virtual time the run took.
    pub virtual_wall: SimTime,
    /// Sanitizer verdict over the probe spine, when sanitized.
    pub sanitizer: Option<SanitizerReport>,
}

/// Current OS-thread count of this process, from `/proc/self/status`.
pub fn os_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Run `sim_threads` event tasks for `rounds` sleep+barrier rounds next
/// to the carrier I/O pool, optionally under the sanitizer.
pub fn run_sched_scale(sim_threads: usize, rounds: usize, sanitize: bool) -> SchedScaleOutcome {
    assert!(sim_threads > 0 && rounds > 0);
    let m = greendog();
    for c in 0..CARRIER_POOL {
        m.stack
            .create_synthetic(&format!("/data/hdd/scale/c{c}"), CARRIER_READ, c as u64)
            .unwrap();
    }
    let san = sanitize.then(|| IoSanitizer::install(&m.sim, m.process.probe()));

    let mut peak = os_threads();
    let barrier = Arc::new(Barrier::new(sim_threads));
    for i in 0..sim_threads {
        let barrier = barrier.clone();
        let mut done = 0usize;
        let mut token: Option<u64> = None;
        let mut sleeping = true;
        // Deterministic per-task jitter so arrivals stagger instead of
        // landing on one calendar instant.
        let jitter = Duration::from_micros(100 + (i % 97) as u64 * 10);
        m.sim
            .spawn_event(format!("et{i}"), move |_cx: &mut EventCx| loop {
                if done == rounds {
                    return EventPoll::Done;
                }
                if sleeping {
                    sleeping = false;
                    return EventPoll::Sleep(jitter);
                }
                match barrier.poll_wait(&mut token) {
                    None => return EventPoll::Block { deadline: None },
                    Some(_) => {
                        done += 1;
                        sleeping = true;
                    }
                }
            });
    }
    for c in 0..CARRIER_POOL {
        let process = m.process.clone();
        m.sim.spawn(format!("io{c}"), move || {
            let path = format!("/data/hdd/scale/c{c}");
            for _ in 0..rounds {
                let fd = process.open(&path, OpenFlags::rdonly()).unwrap();
                process.read(fd, CARRIER_READ, None).unwrap();
                process.close(fd).unwrap();
                simrt::sleep(Duration::from_millis(1));
            }
        });
    }
    // Every carrier OS thread exists (parked or running) once spawned, so
    // this sample sees the pool at full strength.
    peak = peak.max(os_threads());
    m.sim.run();
    peak = peak.max(os_threads());

    SchedScaleOutcome {
        sim_threads,
        rounds,
        stats: m.sim.stats(),
        peak_os_threads: peak,
        virtual_wall: m.sim.now(),
        sanitizer: san.map(|s| s.finalize()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_thousand_sim_threads_stay_on_a_constant_os_pool() {
        let out = run_sched_scale(2_000, 3, true);
        assert_eq!(out.stats.event_spawns, 2_000);
        assert_eq!(out.stats.carrier_spawns as usize, CARRIER_POOL);
        assert!(out.stats.peak_live_tasks >= 2_000);
        let san = out.sanitizer.as_ref().expect("ran sanitized");
        assert!(san.is_clean(), "findings: {}", san.render_ascii());
        if let Some(peak) = out.peak_os_threads {
            // The harness runs tests in parallel, so allow plenty of slack;
            // the claim is orders of magnitude, not an exact count.
            assert!(
                peak < 256,
                "2000 simulated threads should not need {peak} OS threads"
            );
        }
        assert!(out.virtual_wall.as_secs_f64() > 0.0);
    }

    #[test]
    fn per_task_poll_cost_is_flat_across_scale() {
        // Polls per event task should not grow with the fleet size: each
        // task crosses the same number of barriers regardless of N.
        let small = run_sched_scale(100, 3, false);
        let big = run_sched_scale(1_000, 3, false);
        let per_small = small.stats.event_polls as f64 / 100.0;
        let per_big = big.stats.event_polls as f64 / 1_000.0;
        assert!(
            per_big < per_small * 2.0,
            "polls per task grew superlinearly: {per_small:.1} -> {per_big:.1}"
        );
    }
}
