//! # workloads — the paper's evaluation workloads and experiment drivers
//!
//! Simulated platforms ([`platform`]: Greendog workstation, Kebnekaise
//! cluster node), synthetic datasets matched to Table II ([`dataset`]),
//! model/preprocessing cost models ([`models`]), and the experiment
//! drivers that benches, examples, and integration tests share
//! ([`experiments`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod distributed_ablation;
pub mod distributed_gate;
pub mod experiments;
pub mod explore_gate;
pub mod fleet_scale;
pub mod iosan_gate;
pub mod lmdb;
pub mod models;
pub mod platform;
pub mod prefetch_ablation;
pub mod sched_scale;
pub mod serve_gate;

pub use dataset::{GeneratedDataset, Scale};
pub use distributed_ablation::{DistMode, DistributedAblationConfig, DistributedRun};
pub use distributed_gate::{run_distributed_gate, DistributedGateOutcome};
pub use experiments::{profiler_options, run, Profiling, RunConfig, RunOutput, Workload};
pub use fleet_scale::{run_fleet_gate, run_fleet_scale, FleetConfig, FleetOutcome};
pub use platform::{greendog, kebnekaise, mounts, Machine};
pub use prefetch_ablation::{AblationConfig, AblationRun, StagingMode};
pub use sched_scale::{os_threads, run_sched_scale, SchedScaleOutcome};
pub use serve_gate::{run_serve_gate, ServeGateOutcome};
