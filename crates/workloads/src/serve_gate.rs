//! The serve gate: N concurrent training jobs streaming session diffs to
//! one live daemon, with an exactness check.
//!
//! Each job runs on its own host thread with its own simulated Greendog
//! machine and its own [`JobCtx`]; over `epochs` profiling windows it
//! reads a private dataset, extracts the window's [`RankSession`], and
//! publishes it to a shared [`ServeDaemon`] — even-numbered jobs
//! in-process through [`LocalPublisher`], odd-numbered jobs as NDJSON
//! over the daemon's TCP ingest socket through [`TcpPublisher`], so one
//! run stresses the multi-tenant path over both transports at once.
//!
//! The check is *exactness*, not plausibility: session diffs are additive
//! window deltas, so for every job the daemon's `/metrics` rollup must
//! equal the sum of the session reports the job itself published —
//! u64-identical byte and op counters, and a bandwidth gauge that matches
//! the job's own bytes-over-union-window reduction. The gate also
//! round-trips `/jobs` and `/jobs/<id>/report` JSON and checks the live
//! `/jobs/<id>/html` page escapes the job-supplied id (ids here contain
//! `<`/`>` on purpose). CI runs the `serve_gate` example and fails on any
//! mismatch.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use posix_sim::OpenFlags;
use serve::{LocalPublisher, Publisher, ServeConfig, ServeDaemon, ServeSink, TcpPublisher};
use tfdarshan::wire::SessionDiffMsg;
use tfdarshan::{html_escape, JobCtx, TfDarshanConfig, TfDarshanReport};

use crate::platform::greendog;

/// Files in each job's private dataset.
pub const FILES: usize = 3;
/// Bytes per dataset file.
pub const FILE_BYTES: u64 = 256 << 10;
/// Read chunk size.
pub const CHUNK: u64 = 64 << 10;

/// What the gate observed.
pub struct ServeGateOutcome {
    /// Concurrent jobs run.
    pub jobs: usize,
    /// Session diffs published across all jobs.
    pub sessions_published: u64,
    /// Exactness violations (empty on success).
    pub mismatches: Vec<String>,
    /// The final `/metrics` scrape, for display.
    pub metrics: String,
}

impl ServeGateOutcome {
    /// Did every check hold?
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }
}

fn job_id(j: usize) -> String {
    // Angle brackets on purpose: the id must come back escaped from the
    // HTML endpoint.
    format!("train-<{j}>")
}

fn urlencode(s: &str) -> String {
    let mut out = String::new();
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// One job: its own machine, JobCtx, and `epochs` publish cycles.
/// Returns the messages it actually published — the gate's ground truth.
fn run_one_job(
    j: usize,
    epochs: usize,
    publisher: Arc<dyn Publisher>,
) -> (String, Vec<SessionDiffMsg>) {
    let m = greendog();
    let id = job_id(j);
    let paths: Vec<String> = (0..FILES)
        .map(|i| format!("/data/ssd/serve/j{j}/f{i}"))
        .collect();
    for (i, p) in paths.iter().enumerate() {
        m.stack
            .create_synthetic(p, FILE_BYTES, (j * 31 + i) as u64)
            .unwrap();
    }

    let job = Arc::new(JobCtx::new(&m.stack, 1, &TfDarshanConfig::default()));
    let sink = Arc::new(ServeSink::new(id.clone(), publisher));
    // Ride the rank's probe spine too: live gauges advance while epochs
    // run, independent of session publication.
    job.rank(0).probe().register(sink.clone());

    let published: Arc<Mutex<Vec<SessionDiffMsg>>> = Arc::new(Mutex::new(Vec::new()));
    let (j2, sink2, pub2) = (job.clone(), sink.clone(), published.clone());
    m.sim.spawn("trainer", move || {
        let process = j2.rank(0).process().clone();
        for _ in 0..epochs {
            j2.mark_start().expect("tf-darshan attaches");
            for p in &paths {
                let fd = process.open(p, OpenFlags::rdonly()).unwrap();
                let mut off = 0u64;
                loop {
                    let n = process.pread(fd, off, CHUNK, None).unwrap();
                    if n == 0 {
                        break;
                    }
                    off += n;
                }
                process.close(fd).unwrap();
            }
            j2.mark_stop();
            let session = j2.rank(0).session().expect("window closed");
            pub2.lock().push(sink2.publish_session(&session));
        }
    });
    m.sim.run();

    let msgs = std::mem::take(&mut *published.lock());
    assert_eq!(
        sink.live()
            .bytes_read
            .load(std::sync::atomic::Ordering::Relaxed),
        msgs.iter().map(|m| m.report.io.bytes_read).sum::<u64>(),
        "live spine gauge agrees with the published sessions"
    );
    (id, msgs)
}

fn metric_value(body: &str, line_start: &str) -> Option<String> {
    body.lines()
        .find(|l| l.starts_with(line_start))
        .map(|l| l[line_start.len()..].trim().to_string())
}

/// Run the gate: `n_jobs` concurrent jobs, `epochs` sessions each,
/// against one daemon.
pub fn run_serve_gate(n_jobs: usize, epochs: usize) -> ServeGateOutcome {
    assert!(n_jobs > 0 && epochs > 0);
    let daemon = ServeDaemon::start(ServeConfig::default()).expect("daemon binds");
    let service = daemon.service();
    let ingest = daemon.ingest_addr();

    let handles: Vec<_> = (0..n_jobs)
        .map(|j| {
            let publisher: Arc<dyn Publisher> = if j % 2 == 0 {
                Arc::new(LocalPublisher::new(service.clone()))
            } else {
                Arc::new(TcpPublisher::new(ingest))
            };
            std::thread::spawn(move || run_one_job(j, epochs, publisher))
        })
        .collect();
    let jobs: Vec<(String, Vec<SessionDiffMsg>)> = handles
        .into_iter()
        .map(|h| h.join().expect("job runs"))
        .collect();
    let total: u64 = jobs.iter().map(|(_, m)| m.len() as u64).sum();

    let mut mismatches = Vec::new();

    // TCP delivery is asynchronous: wait (bounded) for every published
    // message to land before judging exactness.
    // Host-side wait for a real TCP pipeline to drain. simlint: allow(host-instant)
    let deadline = Instant::now() + Duration::from_secs(10);
    let metrics = loop {
        let (status, body) = daemon.get("/metrics").expect("scrape");
        assert_eq!(status, 200);
        let ingested = metric_value(&body, "tfdarshan_diffs_ingested_total ")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        if ingested == total {
            break body;
        }
        // simlint: allow(host-instant)
        if Instant::now() > deadline {
            mismatches.push(format!(
                "daemon ingested {ingested} of {total} published diffs before timeout"
            ));
            break body;
        }
        // simlint: allow(host-sleep)
        std::thread::sleep(Duration::from_millis(10));
    };

    for (id, msgs) in &jobs {
        // Ground truth: the job's own reduction of what it published.
        let bytes_read: u64 = msgs.iter().map(|m| m.report.io.bytes_read).sum();
        let reads: u64 = msgs.iter().map(|m| m.report.io.reads).sum();
        let opens: u64 = msgs.iter().map(|m| m.report.io.opens).sum();
        // The workload pins the expected volume independently.
        if bytes_read != epochs as u64 * FILES as u64 * FILE_BYTES {
            mismatches.push(format!(
                "{id}: published bytes {bytes_read} != workload volume"
            ));
        }
        let window = (
            msgs.iter()
                .map(|m| m.report.window.0)
                .fold(f64::INFINITY, f64::min),
            msgs.iter()
                .map(|m| m.report.window.1)
                .fold(f64::NEG_INFINITY, f64::max),
        );
        let expect_bw = bytes_read as f64 / (1024.0 * 1024.0) / (window.1 - window.0);

        let label = format!("{{job=\"{id}\"}}");
        let mut check = |metric: &str, want: u64| {
            let key = format!("{metric}{label} ");
            match metric_value(&metrics, &key).and_then(|v| v.parse::<u64>().ok()) {
                Some(got) if got == want => {}
                got => mismatches.push(format!("{id}: {metric} daemon={got:?} job={want}")),
            }
        };
        check("tfdarshan_job_sessions_total", msgs.len() as u64);
        check("tfdarshan_job_bytes_read_total", bytes_read);
        check("tfdarshan_job_bytes_written_total", 0);
        check("tfdarshan_job_reads_total", reads);
        check("tfdarshan_job_opens_total", opens);
        check("tfdarshan_job_dropped_total", 0);
        check("tfdarshan_job_seq_gaps_total", 0);
        let bw_key = format!("tfdarshan_job_read_bandwidth_mibps{label} ");
        match metric_value(&metrics, &bw_key).and_then(|v| v.parse::<f64>().ok()) {
            Some(got) if (got - expect_bw).abs() <= 1e-4 * expect_bw.max(1.0) => {}
            got => mismatches.push(format!("{id}: bandwidth daemon={got:?} job={expect_bw}")),
        }

        // The per-job report endpoint round-trips and matches too.
        let enc = urlencode(id);
        let (status, body) = daemon.get(&format!("/jobs/{enc}/report")).expect("report");
        if status != 200 {
            mismatches.push(format!("{id}: /report returned {status}"));
        } else {
            match TfDarshanReport::from_json(&body) {
                Ok(r) if r.io.bytes_read == bytes_read => {}
                Ok(r) => mismatches.push(format!(
                    "{id}: /report bytes {} != job {bytes_read}",
                    r.io.bytes_read
                )),
                Err(e) => mismatches.push(format!("{id}: /report unparseable: {e:?}")),
            }
        }

        // The live HTML page serves the escaped id, never the raw markup.
        let (status, page) = daemon.get(&format!("/jobs/{enc}/html")).expect("html");
        if status != 200 {
            mismatches.push(format!("{id}: /html returned {status}"));
        } else {
            let escaped = html_escape(id);
            if !page.contains(&escaped) || page.contains(id.as_str()) {
                mismatches.push(format!("{id}: html page not escaped"));
            }
        }
    }

    // The jobs listing agrees on tenant count.
    let (status, body) = daemon.get("/jobs").expect("jobs");
    if status != 200 {
        mismatches.push(format!("/jobs returned {status}"));
    } else {
        match serde_json::from_str::<serve::JobsListing>(&body) {
            Ok(l) if l.jobs.len() == n_jobs => {}
            Ok(l) => mismatches.push(format!("/jobs lists {} of {n_jobs}", l.jobs.len())),
            Err(e) => mismatches.push(format!("/jobs unparseable: {e:?}")),
        }
    }

    daemon.shutdown();
    ServeGateOutcome {
        jobs: n_jobs,
        sessions_published: total,
        mismatches,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_holds_exactness_across_four_concurrent_jobs() {
        let out = run_serve_gate(4, 2);
        assert_eq!(out.sessions_published, 8);
        assert!(out.passed(), "mismatches: {:?}", out.mismatches);
    }
}
