//! The exploration gate: schedule-space model checking in CI.
//!
//! Two small workloads over the real POSIX/storage stack:
//!
//! - **flag-guarded-racer** is seeded with an order-dependent bug: a racer
//!   only issues its *unlocked* overlapping write when it observes a
//!   publish flag still unset, and the FIFO schedule always runs the
//!   publisher first — so a plain sanitized run is silently clean. The
//!   gate FAILS unless bounded exploration surfaces the data race and the
//!   shrunk replay token reproduces it deterministically (two replays,
//!   identical canonical event streams and finding fingerprints).
//! - **locked-writers** is the cured variant (every conflicting write under
//!   one lock). The gate FAILS if *any* explored schedule produces a
//!   finding.
//!
//! Together they pin both directions: exploration finds what single-run
//! sanitizing cannot, and does not hallucinate findings on healthy code.

use std::sync::Arc;

use explore::{canonicalize, check, replay, ExploreConfig, ExploreReport, ReplayToken};
use iosan::Category;
use posix_sim::{OpenFlags, Process};
use probe::ProbeBus;
use simrt::Sim;
use storage_sim::{
    Device, DeviceSpec, FileSystem, LocalFs, LocalFsParams, PageCache, StorageStack, WritePayload,
};

fn process() -> Arc<Process> {
    let fs = LocalFs::new(
        Device::new(DeviceSpec::sata_ssd("ssd0")),
        Arc::new(PageCache::new(1 << 30)),
        LocalFsParams::default(),
    );
    let stack = StorageStack::new();
    stack.mount("/data", fs as Arc<dyn FileSystem>);
    Process::new(stack)
}

fn rdwr_create() -> OpenFlags {
    OpenFlags {
        read: true,
        write: true,
        create: true,
        ..Default::default()
    }
}

/// The seeded bug. FIFO order: the publisher locks, writes, sets the flag;
/// the racer then sees the flag and takes the harmless read path. Only a
/// non-FIFO schedule lets the racer observe `false` and issue the unlocked
/// overlapping write that races with the publisher's locked one.
pub fn racy_workload(sim: &Sim) -> ProbeBus {
    let p = process();
    let bus = p.probe().clone();
    let ready = Arc::new(simrt::sync::Mutex::named(false, Some("published")));
    {
        let (p, ready) = (p.clone(), ready.clone());
        sim.spawn("publisher", move || {
            simrt::sleep(std::time::Duration::from_millis(1));
            let fd = p.open("/data/shared.bin", rdwr_create()).unwrap();
            {
                let mut g = ready.lock();
                p.pwrite(fd, 0, WritePayload::Synthetic(4096)).unwrap();
                *g = true;
            }
            p.close(fd).unwrap();
        });
    }
    sim.spawn("racer", move || {
        simrt::sleep(std::time::Duration::from_millis(1));
        let fd = p.open("/data/shared.bin", rdwr_create()).unwrap();
        let published = *ready.lock();
        if published {
            // Happens-after the publisher's release: a clean read.
            p.pread(fd, 0, 4096, None).unwrap();
        } else {
            // The bug: an unlocked write overlapping the publisher's.
            p.pwrite(fd, 0, WritePayload::Synthetic(4096)).unwrap();
        }
        p.close(fd).unwrap();
    });
    bus
}

/// The cured variant: both branches of the racer hold the lock across
/// their access, so every schedule is clean.
pub fn clean_workload(sim: &Sim) -> ProbeBus {
    let p = process();
    let bus = p.probe().clone();
    let ready = Arc::new(simrt::sync::Mutex::named(false, Some("published")));
    {
        let (p, ready) = (p.clone(), ready.clone());
        sim.spawn("publisher", move || {
            simrt::sleep(std::time::Duration::from_millis(1));
            let fd = p.open("/data/shared.bin", rdwr_create()).unwrap();
            {
                let mut g = ready.lock();
                p.pwrite(fd, 0, WritePayload::Synthetic(4096)).unwrap();
                *g = true;
            }
            p.close(fd).unwrap();
        });
    }
    sim.spawn("racer", move || {
        simrt::sleep(std::time::Duration::from_millis(1));
        let fd = p.open("/data/shared.bin", rdwr_create()).unwrap();
        {
            let _g = ready.lock();
            p.pwrite(fd, 0, WritePayload::Synthetic(4096)).unwrap();
        }
        p.close(fd).unwrap();
    });
    bus
}

/// Outcome of one gate entry.
pub struct ExploreGateResult {
    /// Entry name.
    pub name: &'static str,
    /// The exploration report.
    pub report: ExploreReport,
    /// The single FIFO schedule was clean (precondition for the seeded
    /// entry: the bug must be invisible to a plain sanitized run).
    pub fifo_clean: bool,
    /// For the seeded entry: the shrunk token reproduced the expected
    /// finding on two independent replays with byte-identical canonical
    /// event streams. `true` (vacuously) for clean entries.
    pub replay_deterministic: bool,
    /// Whether this entry met its expectation.
    pub pass: bool,
}

/// CI exploration budget: small enough for the gate, large enough that the
/// seeded bug cannot hide.
pub fn gate_config() -> ExploreConfig {
    ExploreConfig {
        max_schedules: 64,
        ..ExploreConfig::default()
    }
}

/// Run the seeded entry: FIFO must be clean, exploration must find the
/// race, and the shrunk token must reproduce it deterministically.
pub fn run_seeded_entry() -> ExploreGateResult {
    let fifo = replay(racy_workload, &ReplayToken::fifo());
    let fifo_clean = fifo.report.findings.is_empty();
    let report = check(&gate_config(), racy_workload);
    let race = report
        .findings
        .iter()
        .find(|f| f.finding.category == Category::DataRace)
        .cloned();
    let replay_deterministic = race.as_ref().is_some_and(|race| {
        let r1 = replay(racy_workload, &race.token);
        let r2 = replay(racy_workload, &race.token);
        r1.fingerprints.contains(&race.fingerprint)
            && r2.fingerprints.contains(&race.fingerprint)
            && canonicalize(&r1.events) == canonicalize(&r2.events)
    });
    let pass = fifo_clean && race.is_some() && replay_deterministic;
    ExploreGateResult {
        name: "flag-guarded-racer",
        report,
        fifo_clean,
        replay_deterministic,
        pass,
    }
}

/// Run the clean entry: no schedule may produce a finding.
pub fn run_clean_entry() -> ExploreGateResult {
    let report = check(&gate_config(), clean_workload);
    let pass = report.is_clean();
    ExploreGateResult {
        name: "locked-writers",
        report,
        fifo_clean: true,
        replay_deterministic: true,
        pass,
    }
}

/// Run the whole gate.
pub fn run_gate() -> Vec<ExploreGateResult> {
    vec![run_seeded_entry(), run_clean_entry()]
}

/// True when every entry met its expectation.
pub fn gate_passes(results: &[ExploreGateResult]) -> bool {
    results.iter().all(|r| r.pass)
}

/// Render the gate outcome as text (one panel per entry).
pub fn render(results: &[ExploreGateResult]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for r in results {
        let _ = writeln!(
            out,
            "== {}: {} ==",
            r.name,
            if r.pass { "pass" } else { "FAIL" }
        );
        let _ = writeln!(
            out,
            "fifo schedule clean: {} | replay deterministic: {}",
            r.fifo_clean, r.replay_deterministic
        );
        out.push_str(&r.report.render_ascii());
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "gate: {} entr(ies) -> {}",
        results.len(),
        if gate_passes(results) { "PASS" } else { "FAIL" }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_entry_finds_and_replays_the_race() {
        let r = run_seeded_entry();
        assert!(r.fifo_clean, "the seeded bug must hide from FIFO");
        assert!(r.replay_deterministic);
        assert!(r.pass, "{}", render(&[r]));
    }

    #[test]
    fn clean_entry_is_clean_on_every_schedule() {
        let r = run_clean_entry();
        assert!(r.report.schedules_run > 1, "exploration actually branched");
        assert!(r.pass, "{}", render(&[r]));
    }
}
