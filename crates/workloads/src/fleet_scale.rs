//! The fleet-scale workload: the rank dimension at cluster size.
//!
//! The paper's distributed experiments stop at `world_size == 4`; NoPFS
//! (PAPERS.md) is the reference for what distributed ML I/O looks like at
//! real scale — per-node hierarchies, not flat all-to-all. This workload
//! drives every fleet refactor end to end at world sizes up to 4096:
//!
//! * **Node carriers** — ranks are grouped onto nodes
//!   ([`FleetConfig::ranks_per_node`] each); one carrier thread per node
//!   drives its ranks' [`posix_sim::Process`]es through a read epoch
//!   against the node-local SSD, so a 4096-rank job costs 64 OS threads,
//!   not 4096. Every rank reads its node's shared index file — a
//!   64-way shared record, the case parallel Darshan's reduction exists
//!   for — and a **bounded** set of node leaders ([`MANIFEST_READERS`])
//!   read the job manifest off the Lustre scratch. Bounding the
//!   manifest fan-in is itself a fleet refactor: with *every* leader
//!   hitting the shared MDS (13 ms service, 4 threads — the busy
//!   production defaults), metadata queueing grows O(nodes) and eats
//!   the linear scaling this workload exists to prove. Window marks
//!   are collectives too: each carrier start/stop-snapshots its own
//!   rank span (`JobCtx::mark_{start,stop}_span`) so the per-rank
//!   snapshot cost parallelizes over nodes.
//! * **Sharded buses** — the [`JobCtx`] attaches every rank to its
//!   rank-group shard bus; per-shard dstat columns attribute traffic per
//!   node group. The job-wide bus is only materialized when the run is
//!   sanitized ([`FleetConfig::sanitize`]), exercising the lazy
//!   `JobCtx::job_bus` path.
//! * **Tree reduction** — the per-rank sessions are reduced by the
//!   log-depth `spawn_tree_reduce` event task on the same calendar; its
//!   modeled virtual cost (and the flat O(N) cost it replaces) land in
//!   the outcome for the scaling bench and the perf gate.
//!
//! [`run_fleet_scale`] runs one configuration; [`run_fleet_gate`] is the
//! CI shape: 256 ranks, sanitized, expected clean.

use std::sync::Arc;
use std::time::Duration;

use dstat_sim::Dstat;
use iosan::{IoSanitizer, SanitizerReport};
use parking_lot::Mutex;
use posix_sim::OpenFlags;
use simrt::sync::Barrier;
use simrt::{SchedStats, Sim};
use storage_sim::{
    Device, DeviceSpec, FileSystem, LocalFs, LocalFsParams, LustreFs, LustreParams, PageCache,
    StorageStack,
};
use tfdarshan::job_tree::{spawn_tree_reduce, TreeReduceConfig, TreeReduceHandle, TreeReduceStats};
use tfdarshan::{JobCtx, JobReport, TfDarshanConfig};

/// Shared manifest on the Lustre scratch.
pub const MANIFEST: &str = "/scratch/fleet/manifest.bin";
/// Manifest size (index of the whole dataset).
pub const MANIFEST_BYTES: u64 = 64 << 10;
/// Node leaders that read [`MANIFEST`] off Lustre (the first
/// `min(nodes, MANIFEST_READERS)` nodes). Bounded so shared-MDS
/// metadata pressure stays constant as the fleet grows; the rest of a
/// real fleet would receive the manifest over the interconnect
/// (NoPFS-style) rather than re-fetch it.
pub const MANIFEST_READERS: usize = 4;
/// Per-node shared index (`/node{n}/shared/index`) read by every rank
/// of the node: the many-contributor shared record of the reduction.
pub const NODE_INDEX_BYTES: u64 = 64 << 10;

/// Path of node `n`'s shared index file.
pub fn node_index_path(n: usize) -> String {
    format!("/node{n}/shared/index")
}

/// Fleet run shape.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Total ranks.
    pub world_size: usize,
    /// Ranks driven by one node carrier (and served by one node-local
    /// SSD). The fleet's parallelism axis: nodes run concurrently in
    /// virtual time, ranks within a node serialize on its carrier.
    pub ranks_per_node: usize,
    /// Bytes each rank reads from its private file.
    pub rank_file_bytes: u64,
    /// Ranks per `JobCtx` probe-bus shard.
    pub shard_ranks: usize,
    /// Install the sanitizer on the job-wide bus (forces the lazy
    /// `job_bus` attach on every rank).
    pub sanitize: bool,
    /// Sample per-shard dstat columns during the run.
    pub dstat: bool,
}

impl FleetConfig {
    /// Defaults for `world_size` ranks: 64 ranks/node, 256 KiB per rank,
    /// 64-rank shards, unsanitized, with dstat columns.
    pub fn new(world_size: usize) -> Self {
        FleetConfig {
            world_size,
            ranks_per_node: 64,
            rank_file_bytes: 256 << 10,
            shard_ranks: 64,
            sanitize: false,
            dstat: true,
        }
    }
}

/// What a fleet run produced.
pub struct FleetOutcome {
    /// Ranks that ran.
    pub world_size: usize,
    /// Node carriers (OS threads) that drove them.
    pub nodes: usize,
    /// Bytes the job read (from the merged job report).
    pub bytes_read: u64,
    /// Virtual seconds of the profiled I/O window.
    pub io_virtual_secs: f64,
    /// Aggregate read bandwidth over the window, MiB per virtual second.
    pub aggregate_read_mib_s: f64,
    /// The tree reduction's cost model: levels, pairwise merges, modeled
    /// virtual time, and the flat-merge time it replaces.
    pub reduce: TreeReduceStats,
    /// The merged job report.
    pub report: JobReport,
    /// Scheduler counters of the run.
    pub stats: SchedStats,
    /// Peak resident set (`VmHWM`) of this process in KiB, off procfs.
    pub peak_rss_kib: Option<u64>,
    /// Per-shard dstat read-byte totals over the run (shard order), when
    /// [`FleetConfig::dstat`] was set.
    pub shard_read_totals: Vec<u64>,
    /// Sanitizer verdict over the job-wide bus, when sanitized.
    pub sanitizer: Option<SanitizerReport>,
}

/// Peak resident set size (`VmHWM:`) in KiB from `/proc/self/status`.
pub fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
}

/// Build the fleet cluster: one node-local SSD mount per node
/// (`/node{i}`), plus the shared Lustre scratch, on one mount table.
fn fleet_stack(nodes: usize) -> (StorageStack, Vec<Arc<Device>>) {
    let stack = StorageStack::new();
    let cache = Arc::new(PageCache::new(8 << 30));
    let mut devices = Vec::with_capacity(nodes);
    for n in 0..nodes {
        let fs = LocalFs::new(
            Device::new(DeviceSpec::sata_ssd(&format!("nssd{n}"))),
            cache.clone(),
            LocalFsParams::default(),
        );
        devices.push(fs.device().clone());
        stack.mount(format!("/node{n}"), fs as Arc<dyn FileSystem>);
    }
    let lustre = LustreFs::new(LustreParams::default(), cache);
    stack.mount("/scratch", lustre as Arc<dyn FileSystem>);
    (stack, devices)
}

/// Run one fleet configuration to completion (I/O epoch, then the tree
/// reduction, on one calendar).
pub fn run_fleet_scale(cfg: &FleetConfig) -> FleetOutcome {
    assert!(cfg.world_size > 0 && cfg.ranks_per_node > 0);
    let nodes = cfg.world_size.div_ceil(cfg.ranks_per_node);
    let sim = Sim::new();
    let (stack, devices) = fleet_stack(nodes);

    for r in 0..cfg.world_size {
        let node = r / cfg.ranks_per_node;
        stack
            .create_synthetic(
                &format!("/node{node}/r{r}/data"),
                cfg.rank_file_bytes,
                r as u64,
            )
            .unwrap();
    }
    for n in 0..nodes {
        stack
            .create_synthetic(&node_index_path(n), NODE_INDEX_BYTES, 1000 + n as u64)
            .unwrap();
    }
    stack.create_synthetic(MANIFEST, MANIFEST_BYTES, 7).unwrap();

    let job = Arc::new(JobCtx::with_shard_ranks(
        &stack,
        cfg.world_size,
        &TfDarshanConfig::default(),
        cfg.shard_ranks,
    ));
    let san = cfg
        .sanitize
        .then(|| IoSanitizer::install(&sim, job.job_bus()));
    let dstat = cfg.dstat.then(|| {
        let d = Arc::new(Dstat::spawn(&sim, devices, Duration::from_millis(10)));
        for s in 0..job.shard_count() {
            d.attach_shard_spine(s as u32, job.shard_bus(s));
        }
        d
    });

    let barrier = Arc::new(Barrier::new(nodes));
    let reduce_slot: Arc<Mutex<Option<TreeReduceHandle>>> = Arc::new(Mutex::new(None));
    for n in 0..nodes {
        let job = job.clone();
        let barrier = barrier.clone();
        let sim2 = sim.clone();
        let reduce_slot = reduce_slot.clone();
        let dstat = dstat.clone();
        let cfg = cfg.clone();
        sim.spawn(format!("node{n}"), move || {
            let lo = n * cfg.ranks_per_node;
            let hi = ((n + 1) * cfg.ranks_per_node).min(cfg.world_size);
            // Window marks are collectives: every carrier snapshots its
            // own rank span, so the per-rank snapshot cost parallelizes
            // over nodes instead of serializing on one carrier (the
            // flat-job shape, which stretched the measured window by
            // O(world_size)).
            job.mark_start_span(lo, hi)
                .expect("tf-darshan attached on every rank");
            barrier.wait();

            // Bounded manifest fan-in: only the first MANIFEST_READERS
            // node leaders hit the shared Lustre MDS, so the job's
            // metadata pressure on the scratch stays constant with node
            // count — and the manifest still merges as a cross-node,
            // cross-shard shared record at the root of the tree.
            if n < MANIFEST_READERS {
                let p = job.rank(lo).process();
                let fd = p.open(MANIFEST, OpenFlags::rdonly()).unwrap();
                p.read(fd, MANIFEST_BYTES, None).unwrap();
                p.close(fd).unwrap();
            }
            // Every rank reads the node's shared index (a
            // ranks_per_node-way shared record served at memory speed
            // after the first rank faults it in) and then its private
            // file off the node-local SSD. Ranks serialize on their
            // carrier — per-node virtual time is what a real node's I/O
            // subsystem would take — while the nodes run concurrently.
            let index = node_index_path(n);
            for r in lo..hi {
                let p = job.rank(r).process();
                let fd = p.open(&index, OpenFlags::rdonly()).unwrap();
                p.read(fd, NODE_INDEX_BYTES, None).unwrap();
                p.close(fd).unwrap();
                let path = format!("/node{n}/r{r}/data");
                let fd = p.open(&path, OpenFlags::rdonly()).unwrap();
                p.read(fd, cfg.rank_file_bytes, None).unwrap();
                p.close(fd).unwrap();
            }

            barrier.wait();
            job.mark_stop_span(lo, hi);
            barrier.wait();
            if n == 0 {
                if let Some(d) = &dstat {
                    d.stop();
                }
                // Reduce on the same calendar: the log-depth event task
                // starts where the I/O window ended.
                let sessions: Vec<_> = job
                    .ranks()
                    .iter()
                    .map(|r| r.session().expect("window closed on every rank"))
                    .collect();
                *reduce_slot.lock() = Some(spawn_tree_reduce(
                    &sim2,
                    sessions,
                    cfg.world_size as u32,
                    TreeReduceConfig::default(),
                ));
            }
        });
    }
    sim.run();

    let handle = reduce_slot
        .lock()
        .take()
        .expect("node 0 spawned the reduce");
    let (report, reduce) = handle.take().expect("reduce ran to completion");
    let (w0, w1) = report.job.window;
    let io_virtual_secs = (w1 - w0).max(f64::EPSILON);
    let bytes_read = report.job.io.bytes_read;
    let shard_read_totals = dstat
        .map(|d| {
            let samples = d.samples();
            (0..job.shard_count() as u32)
                .map(|s| samples.iter().map(|smp| smp.shard_read(s)).sum())
                .collect()
        })
        .unwrap_or_default();

    FleetOutcome {
        world_size: cfg.world_size,
        nodes,
        bytes_read,
        io_virtual_secs,
        aggregate_read_mib_s: bytes_read as f64 / (1024.0 * 1024.0) / io_virtual_secs,
        reduce,
        report,
        stats: sim.stats(),
        peak_rss_kib: peak_rss_kib(),
        shard_read_totals,
        sanitizer: san.map(|s| s.finalize()),
    }
}

/// The CI gate shape: `world_size` ranks, sanitized job bus, dstat shard
/// columns on. CI runs this at 256 ranks and fails on any finding.
pub fn run_fleet_gate(world_size: usize) -> FleetOutcome {
    let cfg = FleetConfig {
        sanitize: true,
        ..FleetConfig::new(world_size)
    };
    run_fleet_scale(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_gate_is_clean_at_128_ranks() {
        // The full 256-rank gate runs as a CI example; keep the in-tree
        // test a notch smaller so `cargo test` stays quick.
        let out = run_fleet_gate(128);
        let san = out.sanitizer.as_ref().expect("ran sanitized");
        assert!(san.is_clean(), "findings: {}", san.render_ascii());
        assert_eq!(out.report.world_size, 128);
        assert_eq!(out.report.per_rank.len(), 128);
        assert!(out.report.missing_ranks.is_empty());
        assert_eq!(out.nodes, 2);
        // The manifest (read by both node leaders) merged into one
        // shared record, as did each node's 64-contributor index.
        let count = |path: &str| {
            out.report
                .job
                .files
                .iter()
                .filter(|f| f.path == path)
                .count()
        };
        assert_eq!(count(MANIFEST), 1, "shared manifest merged once");
        assert_eq!(count(&node_index_path(0)), 1, "node 0 index merged once");
        assert_eq!(count(&node_index_path(1)), 1, "node 1 index merged once");
        // Private bytes + per-rank index reads + both leaders' manifest.
        assert!(out.bytes_read >= 128 * ((256 << 10) + NODE_INDEX_BYTES) + 2 * MANIFEST_BYTES);
        // Shard columns attributed the traffic (64 ranks/shard -> 2).
        assert_eq!(out.shard_read_totals.len(), 2);
        assert!(out.shard_read_totals.iter().all(|&b| b > 0));
    }

    #[test]
    fn nodes_scale_bandwidth_and_reduce_stays_logarithmic() {
        let run = |ws: usize| {
            let cfg = FleetConfig {
                dstat: false,
                ..FleetConfig::new(ws)
            };
            run_fleet_scale(&cfg)
        };
        let at64 = run(64);
        let at256 = run(256);
        // 4x the nodes: at least 2.8x the aggregate bandwidth (0.7x
        // linear — the shared manifest and barrier cost the difference).
        let linear = at64.aggregate_read_mib_s * 4.0;
        assert!(
            at256.aggregate_read_mib_s >= 0.7 * linear,
            "64 ranks: {:.1} MiB/s, 256 ranks: {:.1} MiB/s (linear would be {:.1})",
            at64.aggregate_read_mib_s,
            at256.aggregate_read_mib_s,
            linear
        );
        // Tree reduce grows by levels, not leaves.
        assert!(at256.reduce.levels <= at64.reduce.levels + 2);
        assert!(at256.reduce.modeled < at256.reduce.modeled_flat);
    }
}
