//! Synthetic datasets matched to the paper's Table II.
//!
//! | Name              | Files   | Total    | Median  | Character          |
//! |-------------------|---------|----------|---------|--------------------|
//! | ImageNet          | 128,000 | ~11.6 GB | ~88 KB  | many small files   |
//! | Kaggle BIG 2015   | 10,868  | ~48 GB   | ~4 MB   | large single files |
//! | STREAM(ImageNet)  | 12,800  | ~1 GB    | ~76 KB  | validation subset  |
//! | STREAM(Malware)   | 6,400   | ~35 GB   | ~7.3 MB | validation subset  |
//!
//! The malware distribution is bimodal, tuned so the paper's §V.B census
//! holds: ≈40% of the files are below 2 MB yet account for only ≈8% of the
//! bytes (≈3.7 GB) — the fact the staging optimization exploits.

use rand::prelude::*;
use rand::rngs::StdRng;
use storage_sim::StorageStack;

/// A generated dataset: paths live under one mount prefix; the file list
/// is pre-shuffled (training reads in shuffled order, so consecutive reads
/// land on unrelated disk extents — seeks on HDD).
#[derive(Clone, Debug)]
pub struct GeneratedDataset {
    /// Dataset label (Table II name).
    pub name: String,
    /// Shuffled file list, as the input pipeline will visit it.
    pub files: Vec<String>,
    /// Per-file sizes, aligned with `files`.
    pub sizes: Vec<u64>,
}

impl GeneratedDataset {
    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True if no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.sizes.iter().sum()
    }

    /// Median file size.
    pub fn median_size(&self) -> u64 {
        if self.sizes.is_empty() {
            return 0;
        }
        let mut s = self.sizes.clone();
        s.sort_unstable();
        s[s.len() / 2]
    }

    /// Count and bytes of files strictly below `threshold`.
    pub fn census_below(&self, threshold: u64) -> (usize, u64) {
        let mut n = 0;
        let mut bytes = 0;
        for &s in &self.sizes {
            if s < threshold {
                n += 1;
                bytes += s;
            }
        }
        (n, bytes)
    }

    /// Apply a staging remap: replace moved paths (returned by
    /// `tfdarshan::apply_staging`) in the file list.
    pub fn remap(&mut self, mapping: &[(String, String)]) {
        use std::collections::HashMap;
        let map: HashMap<&str, &str> = mapping
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect();
        for f in self.files.iter_mut() {
            if let Some(n) = map.get(f.as_str()) {
                *f = n.to_string();
            }
        }
    }
}

/// Draw log-normal sizes with the given median and shape, clipped, then
/// rescaled so the total matches `total` (±rounding).
fn lognormal_sizes(
    rng: &mut StdRng,
    n: usize,
    median: f64,
    sigma: f64,
    min: u64,
    max: u64,
    total: u64,
) -> Vec<u64> {
    let mu = median.ln();
    let mut sizes: Vec<f64> = (0..n)
        .map(|_| {
            // Box-Muller standard normal.
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (mu + sigma * z).exp().clamp(min as f64, max as f64)
        })
        .collect();
    let sum: f64 = sizes.iter().sum();
    let scale = total as f64 / sum;
    for s in sizes.iter_mut() {
        *s = (*s * scale).clamp(min as f64, max as f64);
    }
    sizes.into_iter().map(|s| s.round() as u64).collect()
}

/// Generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Multiplier on file count (1.0 = paper size). Totals scale with it.
    pub files: f64,
}

impl Scale {
    /// Paper-size datasets.
    pub const FULL: Scale = Scale { files: 1.0 };

    /// Scaled-down by `f` (file count × f).
    pub fn of(f: f64) -> Scale {
        assert!(f > 0.0 && f <= 1.0);
        Scale { files: f }
    }

    fn apply(&self, n: usize) -> usize {
        ((n as f64 * self.files).round() as usize).max(8)
    }
}

fn materialize(
    stack: &StorageStack,
    name: &str,
    prefix: &str,
    sizes: Vec<u64>,
    seed: u64,
) -> GeneratedDataset {
    let mut files = Vec::with_capacity(sizes.len());
    for (i, &s) in sizes.iter().enumerate() {
        let path = format!("{prefix}/{name}/{i:07}");
        stack
            .create_synthetic(&path, s, seed ^ (i as u64) << 1)
            .unwrap_or_else(|e| panic!("creating {path}: {e:?}"));
        files.push(path);
    }
    // Shuffle the *visit order* (training order ≠ on-disk layout order).
    let mut order: Vec<usize> = (0..files.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_F11E);
    order.shuffle(&mut rng);
    let files_shuffled: Vec<String> = order.iter().map(|&i| files[i].clone()).collect();
    let sizes_shuffled: Vec<u64> = order.iter().map(|&i| sizes[i]).collect();
    GeneratedDataset {
        name: name.to_string(),
        files: files_shuffled,
        sizes: sizes_shuffled,
    }
}

/// ImageNet (Fall 2011 subset the paper trains on): 128 k small files.
pub fn imagenet(stack: &StorageStack, prefix: &str, scale: Scale) -> GeneratedDataset {
    let n = scale.apply(128_000);
    let total = (11.6e9 * scale.files) as u64;
    let mut rng = StdRng::seed_from_u64(0x1337_0001);
    let sizes = lognormal_sizes(&mut rng, n, 88.0e3, 0.45, 4_096, 1 << 20, total);
    materialize(stack, "imagenet", prefix, sizes, 0xA11CE)
}

/// Kaggle BIG 2015 malware byte-code files: 10 868 large files, bimodal so
/// that ≈40% of files are <2 MB holding ≈8% of bytes.
pub fn malware(stack: &StorageStack, prefix: &str, scale: Scale) -> GeneratedDataset {
    let n = scale.apply(10_868);
    let n_small = (n as f64 * 0.4067) as usize; // → ≈4 420 at full scale
    let n_big = n - n_small;
    let small_total = (3.7e9 * scale.files) as u64;
    let big_total = (44.3e9 * scale.files) as u64;
    let mut rng = StdRng::seed_from_u64(0x1337_0002);
    let mut sizes = lognormal_sizes(
        &mut rng,
        n_small,
        750.0e3,
        0.6,
        64 << 10,
        (2 << 20) - 1,
        small_total,
    );
    sizes.extend(lognormal_sizes(
        &mut rng,
        n_big,
        5.5e6,
        0.5,
        2 << 20,
        60 << 20,
        big_total,
    ));
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.shuffle(&mut rng);
    let sizes: Vec<u64> = order.into_iter().map(|i| sizes[i]).collect();
    materialize(stack, "malware", prefix, sizes, 0xB16B0)
}

/// Pack a generated dataset into TFRecord-style shards *without charging
/// virtual time* (the offline preparation happened before the measured
/// run): shard files are created synthetically with record offsets
/// matching the dataset's sizes in visit order.
pub fn pack_untimed(
    stack: &StorageStack,
    ds: &GeneratedDataset,
    shard_bytes: u64,
    dst_prefix: &str,
) -> Vec<tfsim::TfRecordShard> {
    let mut shards = Vec::new();
    let mut lens: Vec<u64> = Vec::new();
    let mut bytes = 0u64;
    let flush = |lens: &mut Vec<u64>, bytes: &mut u64, shards: &mut Vec<tfsim::TfRecordShard>| {
        if lens.is_empty() {
            return;
        }
        let idx = shards.len();
        let path = format!("{dst_prefix}/{}-{idx:05}.tfrecord", ds.name);
        let total: u64 = lens
            .iter()
            .map(|l| l + tfsim::tfrecord::RECORD_OVERHEAD)
            .sum();
        stack
            .create_synthetic(&path, total, 0xEC0 ^ idx as u64)
            .expect("shard created");
        shards.push(tfsim::TfRecordShard {
            path,
            record_lens: std::mem::take(lens),
        });
        *bytes = 0;
    };
    for &size in &ds.sizes {
        lens.push(size);
        bytes += size + tfsim::tfrecord::RECORD_OVERHEAD;
        if bytes >= shard_bytes {
            flush(&mut lens, &mut bytes, &mut shards);
        }
    }
    flush(&mut lens, &mut bytes, &mut shards);
    shards
}

/// STREAM(ImageNet) validation subset: 12 800 files, ~1 GB, ~76 KB median.
pub fn stream_imagenet(stack: &StorageStack, prefix: &str, scale: Scale) -> GeneratedDataset {
    let n = scale.apply(12_800);
    let total = (1.0e9 * scale.files) as u64;
    let mut rng = StdRng::seed_from_u64(0x1337_0003);
    let sizes = lognormal_sizes(&mut rng, n, 76.0e3, 0.35, 4_096, 512 << 10, total);
    materialize(stack, "stream-imagenet", prefix, sizes, 0xC0FFE)
}

/// STREAM(Malware) validation subset: 6 400 files, ~35 GB, ~7.3 MB median.
pub fn stream_malware(stack: &StorageStack, prefix: &str, scale: Scale) -> GeneratedDataset {
    let n = scale.apply(6_400);
    let total = (35.0e9 * scale.files) as u64;
    let mut rng = StdRng::seed_from_u64(0x1337_0004);
    let sizes = lognormal_sizes(&mut rng, n, 7.3e6, 0.35, 1 << 20, 60 << 20, total);
    materialize(stack, "stream-malware", prefix, sizes, 0xD00D5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform;

    fn within(x: f64, target: f64, tol: f64) -> bool {
        (x - target).abs() <= target * tol
    }

    #[test]
    fn imagenet_matches_table2() {
        let m = platform::greendog();
        let ds = imagenet(&m.stack, platform::mounts::HDD, Scale::of(0.1));
        assert_eq!(ds.len(), 12_800);
        assert!(
            within(ds.total_bytes() as f64, 1.16e9, 0.05),
            "total {}",
            ds.total_bytes()
        );
        let med = ds.median_size() as f64;
        assert!(within(med, 88.0e3, 0.25), "median {med}");
    }

    #[test]
    fn malware_census_matches_section_vb() {
        let m = platform::greendog();
        let ds = malware(&m.stack, platform::mounts::HDD, Scale::FULL);
        assert_eq!(ds.len(), 10_868);
        assert!(
            within(ds.total_bytes() as f64, 48.0e9, 0.05),
            "total {}",
            ds.total_bytes()
        );
        let (n_small, small_bytes) = ds.census_below(2 << 20);
        // Paper: ~4 420 files below 2 MB, ~3.7 GB ≈ 8% of bytes, ~40% of files.
        assert!(
            (4_000..=4_800).contains(&n_small),
            "small file count {n_small}"
        );
        let byte_frac = small_bytes as f64 / ds.total_bytes() as f64;
        assert!(
            (0.05..=0.11).contains(&byte_frac),
            "small byte fraction {byte_frac:.3}"
        );
        let file_frac = n_small as f64 / ds.len() as f64;
        assert!(
            (0.35..=0.45).contains(&file_frac),
            "small file fraction {file_frac:.3}"
        );
        let med = ds.median_size();
        assert!(
            ((2 << 20)..(7 << 20)).contains(&med),
            "median around 4 MB, got {med}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let m1 = platform::greendog();
        let m2 = platform::greendog();
        let a = stream_imagenet(&m1.stack, platform::mounts::HDD, Scale::of(0.05));
        let b = stream_imagenet(&m2.stack, platform::mounts::HDD, Scale::of(0.05));
        assert_eq!(a.files, b.files);
        assert_eq!(a.sizes, b.sizes);
    }

    #[test]
    fn visit_order_is_shuffled_but_stat_consistent() {
        let m = platform::greendog();
        let ds = stream_malware(&m.stack, platform::mounts::HDD, Scale::of(0.02));
        // Shuffled: not sorted by path.
        let mut sorted = ds.files.clone();
        sorted.sort();
        assert_ne!(ds.files, sorted);
        // Sizes align with paths.
        for (f, &s) in ds.files.iter().zip(&ds.sizes).take(20) {
            let meta = m.stack.resolve(f).unwrap().content_info(f).unwrap();
            assert_eq!(meta.0, s);
        }
    }

    #[test]
    fn remap_rewrites_paths() {
        let m = platform::greendog();
        let mut ds = stream_imagenet(&m.stack, platform::mounts::HDD, Scale::of(0.01));
        let victim = ds.files[3].clone();
        let new = victim.replace("/data/hdd", "/data/optane");
        ds.remap(&[(victim.clone(), new.clone())]);
        assert_eq!(ds.files[3], new);
        assert!(!ds.files.contains(&victim));
    }
}
