//! Experiment drivers: everything the benches, examples, and integration
//! tests need to reproduce the paper's evaluation runs. Each driver builds
//! a fresh machine, generates the dataset, drops caches, runs one epoch
//! (or the configured step count), and returns all observables.

use std::sync::Arc;
use std::time::Duration;

use dstat_sim::{Dstat, DstatSample};
use iosan::{IoSanitizer, SanitizerReport};
use parking_lot::Mutex;
use tfdarshan::{
    DarshanTracerFactory, SchedStatsReport, TfDarshanConfig, TfDarshanReport, TfDarshanWrapper,
};
use tfsim::{
    fit, Callback, Dataset, FitResult, ModelCheckpoint, ModelSpec, Parallelism, ProfilerOptions,
    TensorBoardCallback, TfRuntime, XSpace,
};

use crate::dataset::{self, GeneratedDataset, Scale};
use crate::models;
use crate::platform::{self, mounts, Machine};

/// The four Table-II workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// ImageNet/AlexNet on Kebnekaise (Lustre, 2×V100).
    ImageNet,
    /// Malware CNN on Greendog (HDD).
    Malware,
    /// STREAM over the ImageNet-like subset, on Greendog.
    StreamImageNet,
    /// STREAM over the Malware-like subset, on Greendog.
    StreamMalware,
}

impl Workload {
    /// Table II defaults `(batch, steps, prefetch)`.
    pub fn table2(self) -> (usize, usize, usize) {
        match self {
            Workload::ImageNet => (256, 500, 10),
            Workload::Malware => (32, 339, 10),
            Workload::StreamImageNet => (128, 100, 10),
            Workload::StreamMalware => (128, 50, 10),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::ImageNet => "ImageNet",
            Workload::Malware => "Malware",
            Workload::StreamImageNet => "STREAM(ImageNet)",
            Workload::StreamMalware => "STREAM(Malware)",
        }
    }

    /// Where checkpoints go on this workload's platform.
    fn checkpoint_prefix(self) -> &'static str {
        match self {
            Workload::ImageNet => "/scratch/ckpt/model",
            _ => "/data/ssd/ckpt/model",
        }
    }
}

/// Profiling mode of a run.
#[derive(Clone, Debug)]
pub enum Profiling {
    /// No profiler at all (baseline of Fig. 5).
    None,
    /// TF Profiler only (host tracer, no Darshan) over the whole run.
    TfProfiler,
    /// TF Profiler + tf-Darshan over the whole run (TensorBoard callback).
    TfDarshan {
        /// Export DXT timelines and run the full in-situ analysis.
        full_export: bool,
    },
    /// Manual `profiler.start()/stop()` windows restarted every N steps,
    /// in bandwidth-only mode (the §IV.B validation method).
    ManualWindows {
        /// Window length in steps.
        every_steps: usize,
    },
}

/// Run configuration.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// `num_parallel_calls` of the map stage.
    pub threads: Parallelism,
    /// Batch size.
    pub batch: usize,
    /// Steps to run (≤ one epoch).
    pub steps: usize,
    /// Prefetch depth.
    pub prefetch: usize,
    /// Dataset scale (1.0 = paper size).
    pub scale: Scale,
    /// Profiling mode.
    pub profiling: Profiling,
    /// Checkpoint every N steps (§IV.D), if set.
    pub checkpoint_every: Option<usize>,
    /// Run dstat in the background.
    pub dstat: bool,
    /// Stage files smaller than this to the Optane tier before the run
    /// (§V.B optimization). Greendog workloads only.
    pub stage_below: Option<u64>,
    /// Counterfactual for the §V.B argument: stage the *largest* files
    /// first, up to this byte budget, instead of the small ones.
    pub stage_largest_budget: Option<u64>,
    /// Run the run under the `iosan` sanitizer: happens-before race
    /// detection on file ranges, FD-lifecycle checks, lock-order analysis,
    /// symtab balance and origin audits. The report lands in
    /// [`RunOutput::sanitizer`] and its summary in the tf-Darshan report.
    pub sanitize: bool,
}

impl RunConfig {
    /// Table II configuration for `w` at `scale`, one thread, no profiling.
    pub fn paper(w: Workload, scale: Scale) -> RunConfig {
        let (batch, steps, prefetch) = w.table2();
        RunConfig {
            threads: Parallelism::Fixed(1),
            batch,
            steps: ((steps as f64) * scale.files).round().max(2.0) as usize,
            prefetch,
            scale,
            profiling: Profiling::None,
            checkpoint_every: None,
            dstat: false,
            stage_below: None,
            stage_largest_budget: None,
            sanitize: false,
        }
    }
}

/// Everything a run produces.
pub struct RunOutput {
    /// Trainer-side result (steps, waits, bytes).
    pub fit: FitResult,
    /// Virtual wall-clock of the measured phase.
    pub wall: Duration,
    /// tf-Darshan report of the (last) profiling session.
    pub report: Option<TfDarshanReport>,
    /// Collected trace of the (last) session.
    pub space: Option<XSpace>,
    /// Manual-mode bandwidth points: `(t_secs, MiB/s)` per window.
    pub bandwidth_points: Vec<(f64, f64)>,
    /// dstat samples (1-second intervals) with device-name columns.
    pub dstat_samples: Vec<DstatSample>,
    /// dstat device-name columns.
    pub dstat_devices: Vec<String>,
    /// Dataset summary: (files, total bytes, median size).
    pub dataset: (usize, u64, u64),
    /// Staging plan applied, if any.
    pub staged: Option<tfdarshan::StagingPlan>,
    /// Checkpoints written.
    pub checkpoints: usize,
    /// Full iosan report, when the run was sanitized.
    pub sanitizer: Option<SanitizerReport>,
    /// Scheduler statistics of the run's simulation: context switches,
    /// event-task polls, task counts per flavor, run-calendar peaks.
    pub scheduler: SchedStatsReport,
}

impl RunOutput {
    /// Mean read bandwidth over the measured phase, MiB/s.
    pub fn mean_read_mibps(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.fit.bytes_read as f64 / (1024.0 * 1024.0) / self.wall.as_secs_f64()
    }
}

fn build_machine(w: Workload) -> Machine {
    match w {
        Workload::ImageNet => platform::kebnekaise(),
        _ => platform::greendog(),
    }
}

fn generate(w: Workload, m: &Machine, scale: Scale) -> GeneratedDataset {
    match w {
        Workload::ImageNet => dataset::imagenet(&m.stack, mounts::LUSTRE, scale),
        Workload::Malware => dataset::malware(&m.stack, mounts::HDD, scale),
        Workload::StreamImageNet => dataset::stream_imagenet(&m.stack, mounts::HDD, scale),
        Workload::StreamMalware => dataset::stream_malware(&m.stack, mounts::HDD, scale),
    }
}

fn model_for(w: Workload, batch: usize) -> Option<ModelSpec> {
    match w {
        Workload::ImageNet => Some(models::alexnet(batch, 2)),
        Workload::Malware => Some(models::malware_cnn(batch)),
        _ => None, // STREAM has no model
    }
}

fn capture_for(w: Workload) -> tfsim::MapFn {
    match w {
        Workload::ImageNet => models::imagenet_capture(),
        Workload::Malware => models::malware_capture(),
        _ => models::stream_capture(),
    }
}

/// Profiler options used throughout (calibrated; see EXPERIMENTS.md).
pub fn profiler_options() -> ProfilerOptions {
    ProfilerOptions {
        traceme_overhead: Duration::from_micros(25),
        per_graph_op_overhead: Duration::from_micros(10),
    }
}

/// Run one experiment.
pub fn run(w: Workload, cfg: RunConfig) -> RunOutput {
    let m = build_machine(w);
    let mut ds = generate(w, &m, cfg.scale);
    let dataset_summary = (ds.len(), ds.total_bytes(), ds.median_size());
    m.drop_caches();

    // Sanitizer goes on the spine first so it observes every event of the
    // run, including dataset staging and daemon traffic.
    let san = if cfg.sanitize {
        Some(IoSanitizer::install(&m.sim, m.process.probe()))
    } else {
        None
    };

    // Install tf-Darshan when the mode needs it.
    let needs_darshan = matches!(
        cfg.profiling,
        Profiling::TfDarshan { .. } | Profiling::ManualWindows { .. }
    );
    let tfd: Option<Arc<DarshanTracerFactory>> = if needs_darshan {
        let full_export = matches!(cfg.profiling, Profiling::TfDarshan { full_export: true });
        let wrapper = TfDarshanWrapper::install(
            m.process.clone(),
            TfDarshanConfig {
                full_export,
                ..Default::default()
            },
        );
        Some(DarshanTracerFactory::register(&m.rt, wrapper))
    } else {
        None
    };

    // Staging plan (executed inside the main thread, before the measured
    // phase, exactly as the paper stages before the timed epoch).
    let activity = || -> Vec<tfdarshan::FileActivity> {
        ds.files
            .iter()
            .zip(&ds.sizes)
            .map(|(p, &s)| tfdarshan::FileActivity {
                path: p.clone(),
                reads: 0,
                bytes_read: 0,
                apparent_size: s,
                read_time: 0.0,
            })
            .collect()
    };
    let staging_plan = if let Some(threshold) = cfg.stage_below {
        Some(tfdarshan::plan_by_threshold(&activity(), threshold))
    } else {
        cfg.stage_largest_budget.map(|budget| {
            // Naive intuition the paper argues against: put the biggest
            // files on the fast tier until the budget runs out.
            let mut files = activity();
            files.sort_by_key(|f| std::cmp::Reverse(f.apparent_size));
            let total_files = files.len();
            let total_bytes: u64 = files.iter().map(|f| f.apparent_size).sum();
            let mut plan = tfdarshan::StagingPlan {
                threshold: 0,
                files: Vec::new(),
                staged_bytes: 0,
                total_bytes,
                total_files,
            };
            for f in files {
                if plan.staged_bytes + f.apparent_size > budget {
                    break;
                }
                plan.staged_bytes += f.apparent_size;
                plan.files.push((f.path, f.apparent_size));
            }
            plan
        })
    };
    if let Some(plan) = &staging_plan {
        // Remap the file list eagerly (paths after migration are
        // deterministic); the migration itself runs in the main thread.
        let mapping: Vec<(String, String)> = plan
            .files
            .iter()
            .map(|(p, _)| (p.clone(), p.replace(mounts::HDD, mounts::OPTANE)))
            .collect();
        ds.remap(&mapping);
    }

    let dstat = if cfg.dstat {
        let d = Dstat::spawn(&m.sim, m.devices(), Duration::from_secs(1));
        // Sample syscall-level traffic too, off the process's event spine.
        d.attach_spine(m.process.probe());
        Some(d)
    } else {
        None
    };
    let dstat_devices = dstat
        .as_ref()
        .map(|d| d.device_names().to_vec())
        .unwrap_or_default();

    // Shared result slots.
    let out_fit: Arc<Mutex<FitResult>> = Arc::new(Mutex::new(FitResult::default()));
    let out_space: Arc<Mutex<Option<XSpace>>> = Arc::new(Mutex::new(None));
    let out_points: Arc<Mutex<Vec<(f64, f64)>>> = Arc::new(Mutex::new(Vec::new()));
    let out_wall: Arc<Mutex<Duration>> = Arc::new(Mutex::new(Duration::ZERO));
    let out_ckpts: Arc<Mutex<usize>> = Arc::new(Mutex::new(0));
    let dstat_stop = dstat.as_ref().map(|d| d.stop_event());

    {
        let rt = m.rt.clone();
        let stack = m.stack.clone();
        let cfg2 = cfg.clone();
        let files = ds.files.clone();
        let (fit_slot, space_slot, points_slot, wall_slot, ckpt_slot) = (
            out_fit.clone(),
            out_space.clone(),
            out_points.clone(),
            out_wall.clone(),
            out_ckpts.clone(),
        );
        let tfd2 = tfd.clone();
        let model = model_for(w, cfg.batch);
        let plan = staging_plan.clone();
        m.sim.spawn("main", move || {
            // Phase 0 (untimed setup): stage small files to Optane.
            if let Some(plan) = &plan {
                tfdarshan::apply_staging(&stack, plan, mounts::HDD, mounts::OPTANE)
                    .expect("staging succeeds");
            }

            let pipeline = Dataset::from_files(files)
                .map(capture_for(w), cfg2.threads)
                .batch(cfg2.batch)
                .prefetch(cfg2.prefetch);

            let t0 = simrt::now();
            match (&cfg2.profiling, &model) {
                (Profiling::ManualWindows { every_steps }, _) => {
                    // Manual start/stop loop (STREAM validation): restart a
                    // bandwidth-only session every N steps.
                    let every = (*every_steps).max(1);
                    let mut it = pipeline.iterate(&rt);
                    let mut result = FitResult::default();
                    let mut step = 0usize;
                    'outer: while step < cfg2.steps {
                        rt.profiler_start(profiler_options()).unwrap();
                        let mut in_window = 0usize;
                        while in_window < every && step < cfg2.steps {
                            let w0 = simrt::now();
                            let Some(batch) = it.next() else {
                                rt.profiler_stop().ok();
                                break 'outer;
                            };
                            let w1 = simrt::now();
                            result.steps.push(tfsim::StepStat {
                                wait: w1 - w0,
                                compute: Duration::ZERO,
                            });
                            result.bytes_read += batch.bytes;
                            result.steps_run += 1;
                            in_window += 1;
                            step += 1;
                        }
                        let space = rt.profiler_stop().unwrap();
                        if let Some(tfd) = &tfd2 {
                            if let Some(rep) = tfd.last_report() {
                                points_slot
                                    .lock()
                                    .push((rep.window.1, rep.io.read_bandwidth_mibps));
                            }
                        }
                        *space_slot.lock() = Some(space);
                    }
                    drop(it);
                    result.wall = simrt::now() - t0;
                    *fit_slot.lock() = result;
                }
                (profiling, Some(model)) => {
                    // Training with the TensorBoard callback (automatic).
                    let mut cbs: Vec<Box<dyn Callback>> = Vec::new();
                    match profiling {
                        Profiling::TfProfiler | Profiling::TfDarshan { .. } => {
                            let mut tb = TensorBoardCallback::profile_batch(0, cfg2.steps - 1);
                            tb.options = profiler_options();
                            let space = tb.space.clone();
                            let slot = space_slot.clone();
                            cbs.push(Box::new(tb));
                            cbs.push(Box::new(SpaceForward {
                                from: space,
                                to: slot,
                            }));
                        }
                        _ => {}
                    }
                    let mut ckpt = cfg2
                        .checkpoint_every
                        .map(|every| ModelCheckpoint::new(model, every, w.checkpoint_prefix()));
                    // Checkpoint callback runs before the TensorBoard
                    // callback so the final checkpoint lands inside the
                    // profiling window (Keras callback ordering).
                    let mut cb_refs: Vec<&mut dyn Callback> = Vec::new();
                    if let Some(c) = ckpt.as_mut() {
                        cb_refs.push(c);
                    }
                    for c in cbs.iter_mut() {
                        cb_refs.push(c.as_mut());
                    }
                    let r = fit(&rt, model, &pipeline, cfg2.steps, &mut cb_refs);
                    if let Some(c) = ckpt {
                        *ckpt_slot.lock() = c.saved;
                    }
                    *fit_slot.lock() = r;
                }
                (profiling, None) => {
                    // STREAM without manual windows: optionally profile the
                    // whole stream run.
                    let profiled = !matches!(profiling, Profiling::None);
                    if profiled {
                        rt.profiler_start(profiler_options()).unwrap();
                    }
                    let r = tfsim::stream(&rt, &pipeline, cfg2.steps, |_, _, _| {});
                    if profiled {
                        *space_slot.lock() = rt.profiler_stop().ok();
                    }
                    *fit_slot.lock() = r;
                }
            }
            *wall_slot.lock() = simrt::now() - t0;
            if let Some(stop) = dstat_stop {
                // One more sample interval so dstat records the tail, then
                // stop it (the paper's Fig. 12 shows activity past
                // model.fit() return).
                simrt::sleep(Duration::from_millis(1_100));
                stop.set();
            }
        });
    }

    m.sim.run();
    let scheduler = SchedStatsReport::from(m.sim.stats());

    let fit = out_fit.lock().clone();
    let wall = *out_wall.lock();
    let space = out_space.lock().take();
    let bandwidth_points = out_points.lock().clone();
    let checkpoints = *out_ckpts.lock();
    let mut report = tfd.as_ref().and_then(|t| t.last_report());
    if let Some(rep) = report.as_mut() {
        rep.scheduler = Some(scheduler);
    }
    let sanitizer = san.map(|handle| {
        // Symtab balance: detach tf-Darshan (runtime detach, Table I) and
        // audit that every GOT symbol reverted to its default binding.
        if let Some(tfd) = &tfd {
            if tfd.wrapper().is_attached() {
                tfd.wrapper().detach().expect("detach succeeds");
            }
        }
        handle
            .sanitizer()
            .note_patched_symbols(&m.process.got().patched_symbols());
        // Origin audit: the App-only POSIX fold covers a window of the run,
        // so it must never claim more bytes than the spine carried with
        // App origin overall.
        if let Some(rep) = &report {
            handle
                .sanitizer()
                .audit_app_fold(rep.io.bytes_read + rep.io.bytes_written);
        }
        let r = handle.finalize();
        if let Some(rep) = report.as_mut() {
            rep.sanitizer = Some(r.summary());
        }
        r
    });
    RunOutput {
        fit,
        wall,
        report,
        space,
        bandwidth_points,
        dstat_samples: dstat.map(|d| d.samples()).unwrap_or_default(),
        dstat_devices,
        dataset: dataset_summary,
        staged: staging_plan,
        checkpoints,
        sanitizer,
        scheduler,
    }
}

/// Forwards the TensorBoard callback's collected space into the output
/// slot at train end.
struct SpaceForward {
    from: Arc<Mutex<Option<XSpace>>>,
    to: Arc<Mutex<Option<XSpace>>>,
}

impl Callback for SpaceForward {
    fn on_train_end(&mut self, _rt: &Arc<TfRuntime>) {
        if let Some(s) = self.from.lock().take() {
            *self.to.lock() = Some(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_malware_scaled_runs_and_reports_bandwidth() {
        let mut cfg = RunConfig::paper(Workload::StreamMalware, Scale::of(0.05));
        cfg.threads = Parallelism::Fixed(16);
        cfg.profiling = Profiling::ManualWindows { every_steps: 5 };
        let out = run(Workload::StreamMalware, cfg);
        assert!(out.fit.steps_run >= 2);
        assert!(!out.bandwidth_points.is_empty());
        let bw = out.mean_read_mibps();
        assert!(bw > 10.0, "bandwidth {bw:.1} MiB/s");
    }

    #[test]
    fn malware_training_profile_shape() {
        let mut cfg = RunConfig::paper(Workload::Malware, Scale::of(0.05));
        cfg.profiling = Profiling::TfDarshan { full_export: true };
        let out = run(Workload::Malware, cfg);
        let rep = out.report.expect("tf-darshan report");
        assert!(rep.io.reads > rep.io.opens, "segmented reads + EOF probes");
        assert!(rep.io.seq_fraction() > 0.9, "malware reads are sequential");
        assert!(out.fit.input_bound_fraction() > 0.9, "I/O bound");
        assert!(out.space.is_some());
    }

    #[test]
    fn checkpoints_are_written() {
        let mut cfg = RunConfig::paper(Workload::Malware, Scale::of(0.05));
        cfg.steps = 10;
        cfg.checkpoint_every = Some(1);
        let out = run(Workload::Malware, cfg);
        assert_eq!(out.checkpoints, 10);
    }

    #[test]
    fn staging_moves_small_files_and_remaps() {
        let mut cfg = RunConfig::paper(Workload::Malware, Scale::of(0.03));
        cfg.steps = 20;
        cfg.stage_below = Some(2 << 20);
        let out = run(Workload::Malware, cfg);
        let plan = out.staged.expect("plan recorded");
        assert!(plan.files.len() > 10);
        assert!(plan.byte_fraction() < 0.2);
    }
}
