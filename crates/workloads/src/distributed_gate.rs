//! The distributed gate: a 4-rank smoke workload run under the sanitizer.
//!
//! The single-process gate (`iosan_gate`) sweeps the paper's workload
//! shapes; this gate exercises the *distributed* spine instead — N ranks
//! over one Lustre scratch, profiled per rank by [`JobCtx`] and sanitized
//! job-wide on the shared job bus:
//!
//! 1. every rank `pwrite`s its disjoint region of one shared checkpoint
//!    file (parallel Darshan's shared-record case);
//! 2. a barrier — the collective's sync events are the cross-rank
//!    happens-before edge that makes phase 3 race-free;
//! 3. every rank reads the whole checkpoint back plus its private shard,
//!    then joins an allreduce (the gradient exchange).
//!
//! A healthy tree produces **zero findings** and a [`JobReport`] whose
//! shared checkpoint record merged across all ranks. CI runs the
//! `distributed_gate` example and fails on any finding.

use std::sync::Arc;

use iosan::{IoSanitizer, SanitizerReport};
use mpi_sim::{MpiWorld, NetworkModel};
use posix_sim::OpenFlags;
use storage_sim::WritePayload;
use tfdarshan::{JobCtx, JobReport, TfDarshanConfig};

use crate::platform::kebnekaise;

/// Shared checkpoint path on the Lustre scratch.
pub const CKPT: &str = "/scratch/dgate/ckpt.bin";
/// Bytes each rank owns in the shared checkpoint.
pub const CHUNK: u64 = 128 << 10;
/// Private shard files per rank.
pub const SHARD_FILES: usize = 4;
/// Bytes per private shard file.
pub const SHARD_FILE_BYTES: u64 = 256 << 10;

/// What the gate produced: the job-level profile plus the sanitizer's
/// verdict over the job bus.
pub struct DistributedGateOutcome {
    /// Ranks that ran.
    pub world_size: usize,
    /// Per-rank sessions reduced to the job view.
    pub report: JobReport,
    /// Findings over the shared job bus (empty on a healthy tree).
    pub sanitizer: SanitizerReport,
}

/// Run the gate workload at `world_size` ranks on a fresh cluster node.
pub fn run_distributed_gate(world_size: usize) -> DistributedGateOutcome {
    assert!(world_size > 0);
    let m = kebnekaise();
    for r in 0..world_size {
        for i in 0..SHARD_FILES {
            let p = format!("/scratch/dgate/rank{r}/f{i}");
            m.stack
                .create_synthetic(&p, SHARD_FILE_BYTES, (r * 17 + i) as u64)
                .unwrap();
        }
    }
    m.stack
        .create_synthetic(CKPT, CHUNK * world_size as u64, 7)
        .unwrap();

    let world = MpiWorld::new(&m.stack, world_size, NetworkModel::default());
    let job = Arc::new(JobCtx::over_world(&world, &TfDarshanConfig::default()));
    let san = IoSanitizer::install(&m.sim, job.job_bus());

    let j2 = job.clone();
    world.spawn_ranks(&m.sim, move |comm| {
        let process = comm.process();
        if comm.rank() == 0 {
            j2.mark_start().expect("tf-darshan attaches on every rank");
        }
        comm.barrier();

        // Phase 1: disjoint writes into the shared checkpoint.
        let fd = process
            .open(
                CKPT,
                OpenFlags {
                    write: true,
                    ..Default::default()
                },
            )
            .unwrap();
        process
            .pwrite(
                fd,
                comm.rank() as u64 * CHUNK,
                WritePayload::Synthetic(CHUNK),
            )
            .unwrap();
        process.fsync(fd).unwrap();
        process.close(fd).unwrap();

        // The collective orders phase 1's writes before phase 2's reads
        // on every rank — without it the cross-rank read/write pairs on
        // the shared file would be genuine races.
        comm.barrier();

        // Phase 2: read the whole checkpoint back, then the private shard.
        let fd = process.open(CKPT, OpenFlags::rdonly()).unwrap();
        let mut off = 0u64;
        loop {
            let n = process.pread(fd, off, 64 << 10, None).unwrap();
            if n == 0 {
                break;
            }
            off += n;
        }
        process.close(fd).unwrap();
        for i in 0..SHARD_FILES {
            let p = format!("/scratch/dgate/rank{}/f{i}", comm.rank());
            let fd = process.open(&p, OpenFlags::rdonly()).unwrap();
            process.read(fd, SHARD_FILE_BYTES, None).unwrap();
            process.close(fd).unwrap();
        }
        comm.allreduce_bytes(1 << 20); // the gradient exchange

        comm.barrier();
        if comm.rank() == 0 {
            j2.mark_stop();
        }
    });
    m.sim.run();

    let report = job.collect().expect("every rank has a session");
    DistributedGateOutcome {
        world_size,
        report,
        sanitizer: san.finalize(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_is_clean_and_merges_the_shared_checkpoint() {
        let out = run_distributed_gate(4);
        assert!(
            out.sanitizer.is_clean(),
            "findings: {}",
            out.sanitizer.render_ascii()
        );
        assert_eq!(out.report.world_size, 4);
        assert_eq!(out.report.per_rank.len(), 4);
        // Every rank read the whole checkpoint plus its shard.
        let job = &out.report.job;
        assert!(job.io.bytes_read >= 4 * (CHUNK * 4 + SHARD_FILES as u64 * SHARD_FILE_BYTES));
        // The checkpoint is one merged record in the job view, not four.
        let ckpts = job.files.iter().filter(|f| f.path == CKPT).count();
        assert_eq!(ckpts, 1, "shared record merged once");
        // Per-rank views keep their own slice of the shared file.
        for r in &out.report.per_rank {
            assert!(r.files.iter().any(|f| f.path == CKPT));
        }
    }
}
