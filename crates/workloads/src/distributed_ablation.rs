//! Distributed staging ablation: N ranks over one Greendog machine,
//! imbalanced shards, three staging modes.
//!
//! The single-process ablation (`prefetch_ablation`) answers "what does
//! online staging buy one trainer". This driver answers the distributed
//! question the ROADMAP leaves open: what coordination buys N trainers
//! sharing one fast tier and one byte budget.
//!
//! * **none** — every epoch reads straight off the HDD;
//! * **local** — the naive port: one classic [`PrefetchDaemon`] per rank,
//!   each given `budget / N` and no view of its peers. Each daemon bounds
//!   its *local* share against the *global* staged-byte gauge, so the
//!   first daemons to act consume the shared headroom and the job stages
//!   roughly one rank's share in total — the budget race
//!   [`prefetch::DistributedPrefetch`] exists to fix;
//! * **fused** — [`DistributedPrefetch`]: per-rank heat fused by allreduce,
//!   hash ownership, one job budget partitioned by fused heat.
//!
//! The shards are deliberately imbalanced (rank 0 owns far more bytes than
//! rank N-1) so proportional budget partitioning has something to win.
//! Expected ordering, asserted by `bench/benches/
//! ablation_distributed_prefetch.rs` and the module test:
//! `fused ≥ local ≥ none` aggregate read bandwidth.
//!
//! Caches are dropped at every epoch boundary, as in the single-process
//! ablation — otherwise the page cache hides the tier effect entirely.

use std::sync::Arc;
use std::time::Duration;

use mpi_sim::{MpiWorld, NetworkModel};
use parking_lot::Mutex;
use posix_sim::OpenFlags;
use prefetch::{
    DistributedConfig, DistributedPrefetch, Policy, PrefetchConfig, PrefetchDaemon, PrefetchStats,
};

use crate::platform::{greendog, mounts};

/// The coordination modes under comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DistMode {
    /// No staging: every epoch reads the HDD.
    None,
    /// N uncoordinated per-rank daemons, `budget / N` each.
    Local,
    /// One [`DistributedPrefetch`]: fused heat, one job budget.
    Fused,
}

impl DistMode {
    /// Label used in reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            DistMode::None => "none",
            DistMode::Local => "local",
            DistMode::Fused => "fused",
        }
    }

    /// All modes, weakest first.
    pub fn all() -> [DistMode; 3] {
        [DistMode::None, DistMode::Local, DistMode::Fused]
    }
}

/// Ablation parameters.
#[derive(Clone, Debug)]
pub struct DistributedAblationConfig {
    /// Ranks (the paper-style experiment runs 4).
    pub world_size: usize,
    /// Files in each rank's shard, rank order — imbalanced by default so
    /// heat-proportional budget shares differ from the equal split.
    pub shard_files: Vec<usize>,
    /// Bytes per shard file.
    pub file_bytes: u64,
    /// Measured epochs (≥ 2 so staging learned in epoch one pays off).
    pub epochs: usize,
    /// Job-wide fast-tier budget as a fraction of total dataset bytes.
    pub budget_fraction: f64,
    /// Heat-fusion period of the fused daemon (and the tick of the local
    /// daemons, for fairness).
    pub fuse_interval: Duration,
    /// Pause between epochs: the staging window every mode gets.
    pub epoch_pause: Duration,
}

impl Default for DistributedAblationConfig {
    fn default() -> Self {
        DistributedAblationConfig {
            world_size: 4,
            shard_files: vec![16, 8, 4, 2],
            file_bytes: 2 << 20,
            epochs: 4,
            budget_fraction: 0.6,
            fuse_interval: Duration::from_millis(20),
            epoch_pause: Duration::from_millis(200),
        }
    }
}

/// One mode's measured outcome.
#[derive(Clone, Debug)]
pub struct DistributedRun {
    /// Which mode ran.
    pub mode: DistMode,
    /// Aggregate application read bandwidth over all measured epochs.
    pub read_mibps: f64,
    /// Total measured wall time (virtual seconds).
    pub wall_s: f64,
    /// Application bytes read across all ranks and epochs.
    pub bytes_read: u64,
    /// Fast-tier bytes occupied when the run ended.
    pub staged_bytes: u64,
    /// Files promoted across all daemons.
    pub promoted_files: u64,
}

/// Run one mode end to end on a fresh machine.
pub fn run_mode(mode: DistMode, cfg: &DistributedAblationConfig) -> DistributedRun {
    assert_eq!(cfg.shard_files.len(), cfg.world_size);
    let m = greendog();
    let ws = cfg.world_size;

    let mut shards: Vec<Vec<String>> = Vec::new();
    let mut total = 0u64;
    for (r, &count) in cfg.shard_files.iter().enumerate() {
        let mut files = Vec::new();
        for i in 0..count {
            let p = format!("{}/dshard{r}/f{i}", mounts::HDD);
            m.stack
                .create_synthetic(&p, cfg.file_bytes, (r * 1009 + i) as u64)
                .unwrap();
            total += cfg.file_bytes;
            files.push(p);
        }
        shards.push(files);
    }
    let budget = (total as f64 * cfg.budget_fraction) as u64;
    let world = MpiWorld::new(&m.stack, ws, NetworkModel::default());

    let fused = if mode == DistMode::Fused {
        let mut dcfg = DistributedConfig::new(mounts::HDD, mounts::OPTANE, budget);
        dcfg.fuse_interval = cfg.fuse_interval;
        dcfg.base.max_file_bytes = cfg.file_bytes;
        Some(DistributedPrefetch::spawn(&m.sim, &world, dcfg))
    } else {
        None
    };
    let locals: Vec<Arc<PrefetchDaemon>> = if mode == DistMode::Local {
        (0..ws)
            .map(|r| {
                let mut pcfg = PrefetchConfig::new(
                    Policy::Reactive,
                    mounts::HDD,
                    mounts::OPTANE,
                    budget / ws as u64,
                );
                pcfg.max_file_bytes = cfg.file_bytes;
                pcfg.tick = cfg.fuse_interval;
                // A per-rank share is far smaller than a cyclically-read
                // shard, so displacement would degenerate to evicting each
                // file just before its next use. A sane local deployment
                // pins what fits and holds it.
                pcfg.displace = false;
                PrefetchDaemon::spawn(&m.sim, world.process(r), pcfg, None)
            })
            .collect()
    } else {
        Vec::new()
    };

    let wall = Arc::new(Mutex::new(0.0f64));
    let trainer = {
        let wall = wall.clone();
        let cache = m.cache.clone();
        let shards = shards.clone();
        let fused = fused.clone();
        let locals = locals.clone();
        let (epochs, pause) = (cfg.epochs, cfg.epoch_pause);
        move |comm: mpi_sim::Comm| {
            let process = comm.process();
            comm.barrier();
            let t0 = simrt::now();
            for _epoch in 0..epochs {
                if comm.rank() == 0 {
                    cache.drop_caches();
                }
                comm.barrier();
                for f in &shards[comm.rank()] {
                    let fd = process.open(f, OpenFlags::rdonly()).unwrap();
                    let mut off = 0u64;
                    loop {
                        let n = process.pread(fd, off, 1 << 20, None).unwrap();
                        if n == 0 {
                            break;
                        }
                        off += n;
                    }
                    process.close(fd).unwrap();
                }
                comm.barrier();
                // The staging window: daemons promote between epochs in
                // every mode, so the pause is a constant across modes.
                simrt::sleep(pause);
            }
            comm.barrier();
            if comm.rank() == 0 {
                *wall.lock() = (simrt::now() - t0).as_secs_f64();
                if let Some(d) = &fused {
                    d.stop();
                }
                for d in &locals {
                    d.stop();
                }
            }
        }
    };
    world.spawn_ranks(&m.sim, trainer);
    m.sim.run();

    let stats: PrefetchStats = match mode {
        DistMode::Fused => fused.as_ref().unwrap().job_stats(),
        DistMode::Local => {
            let mut t = PrefetchStats::default();
            for d in &locals {
                t.promoted_files += d.stats().promoted_files;
            }
            t
        }
        DistMode::None => PrefetchStats::default(),
    };
    let wall_s = *wall.lock();
    let bytes_read = total * cfg.epochs as u64;
    DistributedRun {
        mode,
        read_mibps: bytes_read as f64 / wall_s / (1 << 20) as f64,
        wall_s,
        bytes_read,
        staged_bytes: m.stack.staged_bytes(),
        promoted_files: stats.promoted_files,
    }
}

/// Run every mode (weakest first) with the same configuration.
pub fn run_all(cfg: &DistributedAblationConfig) -> Vec<DistributedRun> {
    DistMode::all()
        .into_iter()
        .map(|mode| run_mode(mode, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_order_on_a_small_run() {
        let cfg = DistributedAblationConfig {
            shard_files: vec![8, 4, 2, 1],
            file_bytes: 1 << 20,
            epochs: 4,
            epoch_pause: Duration::from_millis(100),
            ..Default::default()
        };
        let runs = run_all(&cfg);
        assert_eq!(runs.len(), 3);
        let bw: Vec<f64> = runs.iter().map(|r| r.read_mibps).collect();
        assert!(
            bw[2] >= bw[1] * 0.99 && bw[1] >= bw[0] * 0.99,
            "expected fused ≥ local ≥ none, got {bw:?}"
        );
        // The budget race: uncoordinated daemons stage well under the
        // job budget; the fused daemon uses most of it.
        assert!(runs[1].promoted_files > 0, "local staged something");
        assert!(
            runs[2].staged_bytes > runs[1].staged_bytes,
            "fused beats the race: {} vs {}",
            runs[2].staged_bytes,
            runs[1].staged_bytes
        );
    }
}
