//! The paper's two evaluation platforms (§IV.A), as simulated machines.
//!
//! * **Greendog** — workstation: i7-7820X (8 cores / 16 threads), 32 GB
//!   RAM, 2 × 2 TB HDD, 1 TB SATA SSD, 480 GB Intel Optane 900p; ext4.
//! * **Kebnekaise** — HPC cluster node: 2 × Xeon Gold 6132 (28 cores),
//!   192 GB RAM, 2 × V100; Lustre parallel filesystem.

use std::sync::Arc;

use posix_sim::Process;
use simrt::Sim;
use storage_sim::{
    Device, DeviceSpec, FileSystem, LocalFs, LocalFsParams, LustreFs, LustreParams, PageCache,
    StorageStack,
};
use tfsim::TfRuntime;

/// A fully wired simulated machine.
pub struct Machine {
    /// The simulation this machine lives in.
    pub sim: Sim,
    /// Mount table.
    pub stack: StorageStack,
    /// The (single) process running TensorFlow.
    pub process: Arc<Process>,
    /// The TensorFlow runtime.
    pub rt: Arc<TfRuntime>,
    /// OS page cache (shared by local mounts).
    pub cache: Arc<PageCache>,
    /// Local filesystems by mount point (for direct device access).
    pub local_mounts: Vec<(String, Arc<LocalFs>)>,
    /// Lustre filesystem, if any.
    pub lustre: Option<Arc<LustreFs>>,
    /// Logical cores.
    pub cores: usize,
}

impl Machine {
    /// `echo 3 > /proc/sys/vm/drop_caches`, as the paper does before every
    /// Greendog experiment.
    pub fn drop_caches(&self) {
        self.cache.drop_caches();
    }

    /// All block devices (for dstat).
    pub fn devices(&self) -> Vec<Arc<Device>> {
        self.stack.devices()
    }

    /// The device backing a mount prefix.
    pub fn device_of(&self, prefix: &str) -> Option<Arc<Device>> {
        self.local_mounts
            .iter()
            .find(|(p, _)| p == prefix)
            .map(|(_, fs)| fs.device().clone())
    }
}

/// Mount points used by the experiments.
pub mod mounts {
    /// Greendog HDD (datasets live here).
    pub const HDD: &str = "/data/hdd";
    /// Greendog second HDD.
    pub const HDD2: &str = "/data/hdd2";
    /// Greendog SATA SSD.
    pub const SSD: &str = "/data/ssd";
    /// Greendog Optane 900p.
    pub const OPTANE: &str = "/data/optane";
    /// Kebnekaise Lustre scratch.
    pub const LUSTRE: &str = "/scratch";
}

/// Build the Greendog workstation.
pub fn greendog() -> Machine {
    let sim = Sim::new();
    let cache = Arc::new(PageCache::new(26 << 30)); // 32 GB minus OS/app
    let stack = StorageStack::new();
    let mut local_mounts = Vec::new();
    for (prefix, spec, capacity) in [
        (mounts::HDD, DeviceSpec::hdd("sda"), 2u64 << 41),
        (mounts::HDD2, DeviceSpec::hdd("sdb"), 2 << 41),
        (mounts::SSD, DeviceSpec::sata_ssd("sdc"), 1 << 40),
        (mounts::OPTANE, DeviceSpec::optane("nvme0n1"), 480 << 30),
    ] {
        let fs = LocalFs::new(
            Device::new(spec),
            cache.clone(),
            LocalFsParams {
                capacity,
                ..Default::default()
            },
        );
        stack.mount(prefix, fs.clone() as Arc<dyn FileSystem>);
        local_mounts.push((prefix.to_string(), fs));
    }
    let process = Process::new(stack.clone());
    let cores = 16; // 8 cores, HT on (the paper's 16-thread runs use HT)
    let rt = TfRuntime::new(process.clone(), sim.clone(), cores);
    Machine {
        sim,
        stack,
        process,
        rt,
        cache,
        local_mounts,
        lustre: None,
        cores,
    }
}

/// Build one Kebnekaise compute node (plus its shared Lustre filesystem).
pub fn kebnekaise() -> Machine {
    let sim = Sim::new();
    let cache = Arc::new(PageCache::new(160 << 30));
    let stack = StorageStack::new();
    let lustre = LustreFs::new(LustreParams::default(), cache.clone());
    stack.mount(mounts::LUSTRE, lustre.clone() as Arc<dyn FileSystem>);
    let process = Process::new(stack.clone());
    let cores = 28;
    let rt = TfRuntime::new(process.clone(), sim.clone(), cores);
    Machine {
        sim,
        stack,
        process,
        rt,
        cache,
        local_mounts: Vec::new(),
        lustre: Some(lustre),
        cores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use posix_sim::OpenFlags;

    #[test]
    fn greendog_has_four_local_tiers() {
        let m = greendog();
        assert_eq!(m.local_mounts.len(), 4);
        assert_eq!(m.devices().len(), 4);
        assert!(m.lustre.is_none());
        assert_eq!(m.cores, 16);
        assert!(m.device_of(mounts::OPTANE).is_some());
        assert!(m.device_of("/nope").is_none());
    }

    #[test]
    fn kebnekaise_routes_scratch_to_lustre() {
        let m = kebnekaise();
        assert!(m.lustre.is_some());
        assert_eq!(m.devices().len(), 4, "four OSTs");
        m.stack.create_synthetic("/scratch/ds/f0", 1000, 1).unwrap();
        let (p, sim) = (m.process.clone(), m.sim.clone());
        sim.spawn("t", move || {
            let fd = p.open("/scratch/ds/f0", OpenFlags::rdonly()).unwrap();
            assert_eq!(p.pread(fd, 0, 4096, None).unwrap(), 1000);
            p.close(fd).unwrap();
        });
        sim.run();
    }

    #[test]
    fn drop_caches_forces_device_reads() {
        let m = greendog();
        m.stack.create_synthetic("/data/ssd/f", 1 << 20, 9).unwrap();
        let (p, sim) = (m.process.clone(), m.sim.clone());
        let cache = m.cache.clone();
        sim.spawn("t", move || {
            for _ in 0..2 {
                let fd = p.open("/data/ssd/f", OpenFlags::rdonly()).unwrap();
                p.pread(fd, 0, 1 << 20, None).unwrap();
                p.close(fd).unwrap();
                cache.drop_caches();
            }
        });
        sim.run();
        let ssd = m.device_of(mounts::SSD).unwrap();
        // Each pass: one cold inode block + one data read.
        assert_eq!(ssd.snapshot().reads, 4, "both passes hit the device");
    }
}
