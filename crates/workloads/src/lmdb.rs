//! An LMDB-like memory-mapped key-value store — the Caffe data path.
//!
//! Paper §VII: "One notable exception is Caffe, which uses LMDB, a
//! memory-mapped database through mmap. Currently, Darshan's POSIX module
//! can capture mmap operations but requires extensions to further capture
//! fine-grained interactions, e.g., msync calls."
//!
//! This module provides that exception as a workload: a single data file
//! whose records are accessed through `mmap` (page faults, **invisible**
//! to symbol-level instrumentation) with transactional writes flushed by
//! `msync` (visible via the tf-Darshan counter extension). The
//! `ablation_caffe_mmap` bench quantifies the blind spot: dstat sees
//! gigabytes; Darshan's POSIX module sees one `open` and one `mmap`.

use std::sync::Arc;

use posix_sim::{Errno, Fd, MapId, OpenFlags, PosixResult, Process, PAGE_SIZE};
use storage_sim::StorageStack;

/// Record placement inside the data file (LMDB's B-tree is summarized to
/// a flat page-aligned layout; lookup cost is the data-page faults, which
/// is what the I/O analysis cares about).
#[derive(Clone, Debug)]
pub struct LmdbIndex {
    /// Data file path.
    pub path: String,
    /// `(offset, len)` per record, page-aligned starts.
    pub records: Vec<(u64, u64)>,
    /// Total file size.
    pub file_bytes: u64,
}

/// Metadata/page-header pages at the front of the file.
const META_PAGES: u64 = 2;

/// Build the database file *untimed* (dataset preparation happens before
/// the measured run): records are laid out page-aligned after the meta
/// pages.
pub fn create_untimed(stack: &StorageStack, path: &str, sizes: &[u64]) -> LmdbIndex {
    let mut records = Vec::with_capacity(sizes.len());
    let mut off = META_PAGES * PAGE_SIZE;
    for &len in sizes {
        records.push((off, len));
        off += len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
    }
    stack
        .create_synthetic(path, off, 0x1bdb)
        .expect("lmdb data file");
    LmdbIndex {
        path: path.to_string(),
        records,
        file_bytes: off,
    }
}

/// An open environment: the whole data file memory-mapped read-write.
pub struct LmdbEnv {
    process: Arc<Process>,
    fd: Fd,
    map: MapId,
    index: LmdbIndex,
}

impl LmdbEnv {
    /// `mdb_env_open`: open the data file and map it.
    pub fn open(process: &Arc<Process>, index: LmdbIndex) -> PosixResult<Self> {
        let fd = process.open(
            &index.path,
            OpenFlags {
                read: true,
                write: true,
                ..Default::default()
            },
        )?;
        let map = process.mmap(fd, 0, index.file_bytes)?;
        // Reading the meta pages is the first fault.
        process.mem_read(map, 0, META_PAGES * PAGE_SIZE)?;
        Ok(LmdbEnv {
            process: process.clone(),
            fd,
            map,
            index,
        })
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.index.records.len()
    }

    /// True when the database is empty.
    pub fn is_empty(&self) -> bool {
        self.index.records.is_empty()
    }

    /// `mdb_get` through a read cursor: page-faults the record's pages.
    /// Returns the record length.
    pub fn get(&self, i: usize) -> PosixResult<u64> {
        let (off, len) = *self.index.records.get(i).ok_or(Errno::EINVAL)?;
        self.process.mem_read(self.map, off, len)?;
        Ok(len)
    }

    /// `mdb_put` + commit: dirties the record's pages and `msync`s them
    /// (LMDB's durable commit on a non-WRITEMAP=false env is a flush).
    pub fn put(&self, i: usize) -> PosixResult<u64> {
        let (off, len) = *self.index.records.get(i).ok_or(Errno::EINVAL)?;
        self.process.mem_write(self.map, off, len)?;
        self.process.msync(self.map)?;
        Ok(len)
    }

    /// `mdb_env_close`: unmap and close.
    pub fn close(self) -> PosixResult<()> {
        self.process.munmap(self.map)?;
        self.process.close(self.fd)
    }
}

/// A Caffe-style data layer: a sequential cursor over the database feeding
/// `steps × batch` samples to a training loop, with per-sample transform
/// cost. Returns total payload bytes consumed.
pub fn caffe_epoch(
    env: &LmdbEnv,
    batch: usize,
    steps: usize,
    transform: impl Fn(u64) -> std::time::Duration,
    step_time: std::time::Duration,
) -> PosixResult<u64> {
    let mut total = 0u64;
    let mut cursor = 0usize;
    for _ in 0..steps {
        for _ in 0..batch {
            if cursor >= env.len() {
                return Ok(total);
            }
            let len = env.get(cursor)?;
            let t = transform(len);
            if !t.is_zero() {
                simrt::sleep(t);
            }
            total += len;
            cursor += 1;
        }
        if !step_time.is_zero() {
            simrt::sleep(step_time);
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform;
    use std::time::Duration;

    #[test]
    fn records_are_page_aligned_and_readable() {
        let m = platform::greendog();
        let idx = create_untimed(&m.stack, "/data/ssd/db.mdb", &[100, 5000, 4096]);
        assert!(idx.records.iter().all(|(o, _)| o % PAGE_SIZE == 0));
        assert_eq!(idx.records[0].0, 2 * PAGE_SIZE);
        assert_eq!(idx.records[1].0, 3 * PAGE_SIZE);
        assert_eq!(idx.records[2].0, 5 * PAGE_SIZE);
        let (p, sim) = (m.process.clone(), m.sim.clone());
        sim.spawn("t", move || {
            let env = LmdbEnv::open(&p, idx).unwrap();
            assert_eq!(env.get(1).unwrap(), 5000);
            assert_eq!(env.get(0).unwrap(), 100);
            assert!(env.get(99).is_err());
            env.close().unwrap();
            assert_eq!(p.open_maps(), 0);
        });
        sim.run();
    }

    #[test]
    fn reads_hit_the_device_but_not_the_got() {
        use posix_sim::{LibcIo, PosixResult as PR};
        use std::sync::atomic::{AtomicU64, Ordering};

        // A counting interposer on read/pread.
        struct Spy {
            orig: Arc<dyn LibcIo>,
            reads: AtomicU64,
            mmaps: AtomicU64,
        }
        impl LibcIo for Spy {
            fn open(&self, p: &Process, path: &str, f: posix_sim::OpenFlags) -> PR<Fd> {
                self.orig.open(p, path, f)
            }
            fn close(&self, p: &Process, fd: Fd) -> PR<()> {
                self.orig.close(p, fd)
            }
            fn read(&self, p: &Process, fd: Fd, len: u64, b: Option<&mut [u8]>) -> PR<u64> {
                self.reads.fetch_add(1, Ordering::Relaxed);
                self.orig.read(p, fd, len, b)
            }
            fn pread(&self, p: &Process, fd: Fd, o: u64, l: u64, b: Option<&mut [u8]>) -> PR<u64> {
                self.reads.fetch_add(1, Ordering::Relaxed);
                self.orig.pread(p, fd, o, l, b)
            }
            fn write(&self, p: &Process, fd: Fd, d: storage_sim::WritePayload<'_>) -> PR<u64> {
                self.orig.write(p, fd, d)
            }
            fn pwrite(
                &self,
                p: &Process,
                fd: Fd,
                o: u64,
                d: storage_sim::WritePayload<'_>,
            ) -> PR<u64> {
                self.orig.pwrite(p, fd, o, d)
            }
            fn lseek(&self, p: &Process, fd: Fd, o: i64, w: posix_sim::Whence) -> PR<u64> {
                self.orig.lseek(p, fd, o, w)
            }
            fn stat(&self, p: &Process, path: &str) -> PR<storage_sim::Metadata> {
                self.orig.stat(p, path)
            }
            fn fstat(&self, p: &Process, fd: Fd) -> PR<storage_sim::Metadata> {
                self.orig.fstat(p, fd)
            }
            fn fsync(&self, p: &Process, fd: Fd) -> PR<()> {
                self.orig.fsync(p, fd)
            }
            fn unlink(&self, p: &Process, path: &str) -> PR<()> {
                self.orig.unlink(p, path)
            }
            fn rename(&self, p: &Process, a: &str, b: &str) -> PR<()> {
                self.orig.rename(p, a, b)
            }
            fn mmap(&self, p: &Process, fd: Fd, o: u64, l: u64) -> PR<MapId> {
                self.mmaps.fetch_add(1, Ordering::Relaxed);
                self.orig.mmap(p, fd, o, l)
            }
            fn munmap(&self, p: &Process, m: MapId) -> PR<()> {
                self.orig.munmap(p, m)
            }
            fn msync(&self, p: &Process, m: MapId) -> PR<()> {
                self.orig.msync(p, m)
            }
        }

        let m = platform::greendog();
        let sizes = vec![100_000u64; 50];
        let idx = create_untimed(&m.stack, "/data/hdd/db.mdb", &sizes);
        m.drop_caches();
        let spy = Arc::new(Spy {
            orig: m.process.got().posix_sym("read"),
            reads: AtomicU64::new(0),
            mmaps: AtomicU64::new(0),
        });
        for sym in ["read", "pread", "mmap"] {
            m.process
                .got()
                .patch_posix(sym, spy.clone() as Arc<dyn LibcIo>)
                .unwrap();
        }
        let (p, sim) = (m.process.clone(), m.sim.clone());
        let spy2 = spy.clone();
        sim.spawn("caffe", move || {
            let env = LmdbEnv::open(&p, idx).unwrap();
            let total = caffe_epoch(&env, 10, 5, |_| Duration::ZERO, Duration::ZERO).unwrap();
            assert_eq!(total, 5_000_000);
            env.close().unwrap();
            let _ = &spy2;
        });
        sim.run();
        // The GOT saw the mmap call but none of the 5 MB of page faults.
        assert_eq!(spy.mmaps.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(spy.reads.load(std::sync::atomic::Ordering::Relaxed), 0);
        // The device, of course, served the data.
        let hdd = m.device_of(platform::mounts::HDD).unwrap();
        assert!(hdd.snapshot().bytes_read >= 5_000_000);
    }

    #[test]
    fn repeated_reads_are_page_cached() {
        let m = platform::greendog();
        let idx = create_untimed(&m.stack, "/data/ssd/db.mdb", &[1 << 20]);
        let (p, sim) = (m.process.clone(), m.sim.clone());
        sim.spawn("t", move || {
            let env = LmdbEnv::open(&p, idx).unwrap();
            env.get(0).unwrap();
            let t0 = simrt::now();
            env.get(0).unwrap(); // resident: memory-speed
            assert!(simrt::now() - t0 < Duration::from_millis(1));
            env.close().unwrap();
        });
        sim.run();
        let ssd = m.device_of(platform::mounts::SSD).unwrap();
        // One fault pass over the record + meta pages; the re-read is free.
        assert!(ssd.snapshot().bytes_read <= (1 << 20) + 4 * PAGE_SIZE);
    }

    #[test]
    fn caffe_epoch_stops_at_database_end() {
        let m = platform::greendog();
        let idx = create_untimed(&m.stack, "/data/ssd/small.mdb", &[10_000; 10]);
        let (p, sim) = (m.process.clone(), m.sim.clone());
        let h = sim.spawn("t", move || {
            let env = LmdbEnv::open(&p, idx).unwrap();
            // Ask for far more steps than records exist.
            let total = caffe_epoch(&env, 4, 100, |_| Duration::ZERO, Duration::ZERO).unwrap();
            env.close().unwrap();
            total
        });
        sim.run();
        assert_eq!(h.join(), 100_000, "exactly one pass over the records");
    }

    #[test]
    fn put_dirties_and_msync_flushes() {
        let m = platform::greendog();
        let idx = create_untimed(&m.stack, "/data/ssd/db.mdb", &[50_000, 50_000]);
        let (p, sim) = (m.process.clone(), m.sim.clone());
        sim.spawn("t", move || {
            let env = LmdbEnv::open(&p, idx).unwrap();
            env.put(1).unwrap();
            env.close().unwrap();
        });
        sim.run();
        let ssd = m.device_of(platform::mounts::SSD).unwrap();
        assert!(ssd.snapshot().bytes_written >= 50_000, "msync reached disk");
    }
}
