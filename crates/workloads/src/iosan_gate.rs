//! The sanitizer gate: every example workload re-run under `iosan`.
//!
//! Each entry is one representative configuration of the paper's
//! evaluation runs — the two trainings, the two STREAM benchmarks, plus
//! the checkpointing and staging variants — executed with
//! [`RunConfig::sanitize`] on. A healthy tree produces **zero findings**
//! on every entry; CI runs the `iosan_gate` example and fails on any.
//!
//! The gate is intentionally scaled down (same shapes, smaller datasets)
//! so the whole suite stays in CI-friendly territory while still
//! exercising the map/prefetch thread pools, the profiler sessions, the
//! checkpoint STDIO path, the staging migration, and the dstat daemon.

use iosan::SanitizerReport;
use tfsim::Parallelism;

use crate::dataset::Scale;
use crate::experiments::{run, Profiling, RunConfig, Workload};

/// One gate entry: a named workload configuration to sanitize.
pub struct GateEntry {
    /// Display name of the configuration.
    pub name: &'static str,
    /// Which Table-II workload to run.
    pub workload: Workload,
    /// Its configuration (sanitize is forced on by [`run_entry`]).
    pub config: RunConfig,
}

/// Result of sanitizing one entry.
pub struct GateResult {
    /// Entry name.
    pub name: &'static str,
    /// The full sanitizer report.
    pub report: SanitizerReport,
}

/// The example-workload configurations the gate covers.
pub fn entries() -> Vec<GateEntry> {
    let mut out = Vec::new();

    // ImageNet/AlexNet training on Kebnekaise under the full profiler.
    let mut imagenet = RunConfig::paper(Workload::ImageNet, Scale::of(0.02));
    imagenet.threads = Parallelism::Fixed(2);
    imagenet.steps = imagenet.steps.min(10);
    imagenet.profiling = Profiling::TfDarshan { full_export: true };
    out.push(GateEntry {
        name: "imagenet-training-profiled",
        workload: Workload::ImageNet,
        config: imagenet,
    });

    // Malware training on Greendog with checkpoints every other step
    // (exercises the STDIO spill path and its stdio-internal origins).
    let mut malware = RunConfig::paper(Workload::Malware, Scale::of(0.05));
    malware.steps = 10;
    malware.checkpoint_every = Some(2);
    malware.profiling = Profiling::TfDarshan { full_export: true };
    out.push(GateEntry {
        name: "malware-training-checkpointed",
        workload: Workload::Malware,
        config: malware,
    });

    // STREAM over the ImageNet subset with manual profiling windows.
    let mut stream_in = RunConfig::paper(Workload::StreamImageNet, Scale::of(0.04));
    stream_in.threads = Parallelism::Fixed(16);
    stream_in.profiling = Profiling::ManualWindows { every_steps: 5 };
    out.push(GateEntry {
        name: "stream-imagenet-manual-windows",
        workload: Workload::StreamImageNet,
        config: stream_in,
    });

    // STREAM over the Malware subset with dstat sampling in the background
    // (exercises the daemon task alongside the pool).
    let mut stream_mw = RunConfig::paper(Workload::StreamMalware, Scale::of(0.05));
    stream_mw.threads = Parallelism::Fixed(16);
    stream_mw.profiling = Profiling::ManualWindows { every_steps: 5 };
    stream_mw.dstat = true;
    out.push(GateEntry {
        name: "stream-malware-dstat",
        workload: Workload::StreamMalware,
        config: stream_mw,
    });

    // §V.B staging: migrate small files to Optane before the measured
    // phase, then train over the remapped dataset.
    let mut staged = RunConfig::paper(Workload::Malware, Scale::of(0.03));
    staged.steps = 10;
    staged.stage_below = Some(2 << 20);
    out.push(GateEntry {
        name: "malware-staged-small-files",
        workload: Workload::Malware,
        config: staged,
    });

    out
}

/// Run one entry under the sanitizer.
pub fn run_entry(entry: GateEntry) -> GateResult {
    let mut cfg = entry.config;
    cfg.sanitize = true;
    let out = run(entry.workload, cfg);
    GateResult {
        name: entry.name,
        report: out.sanitizer.expect("sanitized run yields a report"),
    }
}

/// Run the whole gate.
pub fn run_gate() -> Vec<GateResult> {
    entries().into_iter().map(run_entry).collect()
}

/// Total findings across the gate.
pub fn total_findings(results: &[GateResult]) -> usize {
    results.iter().map(|r| r.report.findings.len()).sum()
}

/// Render the gate outcome as text (one panel per entry).
pub fn render(results: &[GateResult]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for r in results {
        let verdict = if r.report.is_clean() {
            "clean"
        } else {
            "FINDINGS"
        };
        let _ = writeln!(out, "== {}: {} ==", r.name, verdict);
        out.push_str(&r.report.render_ascii());
        out.push('\n');
    }
    let total = total_findings(results);
    let _ = writeln!(
        out,
        "gate: {} workload(s), {} finding(s) total -> {}",
        results.len(),
        total,
        if total == 0 { "PASS" } else { "FAIL" }
    );
    out
}
