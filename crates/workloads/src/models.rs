//! Model and preprocessing cost models for the paper's two use-cases.
//!
//! Both applications are Keras models trained with SGD (lr = 0.01,
//! momentum = 0) and categorical cross-entropy; what matters for I/O
//! characterization is their *time structure*: AlexNet has a noticeable
//! GPU step; the malware CNN's compute is negligible (paper §V.B), so the
//! latter is purely I/O bound.

use std::sync::Arc;
use std::time::Duration;

use simrt::dur;
use tfsim::{Element, MapFn, ModelSpec, PipelineCtx};

/// AlexNet on Kebnekaise's 2 × V100 (data-parallel): per-step compute
/// for `batch` images split across `gpus`, plus gradient allreduce.
pub fn alexnet(batch: usize, gpus: usize) -> ModelSpec {
    assert!(gpus > 0);
    // ~1.05 ms per image per V100 (fwd+bwd, fp32) + 30 ms allreduce of
    // ~244 MB of gradients over PCIe/NCCL.
    let per_image = Duration::from_micros(1_050);
    let compute = per_image * (batch as u32) / (gpus as u32);
    let allreduce = Duration::from_millis(30);
    ModelSpec {
        name: format!("alexnet-b{batch}-g{gpus}"),
        step_time: compute + allreduce,
        graph_ops_per_step: 700,
        variables: alexnet_variables(),
    }
}

/// AlexNet's variables (weights + biases per layer), ≈244 MB of fp32.
pub fn alexnet_variables() -> Vec<u64> {
    // conv1..conv5 weights+biases, fc6, fc7, fc8 — parameter counts from
    // the standard AlexNet, × 4 bytes.
    let params: [u64; 16] = [
        34_848, 96, // conv1
        614_400, 256, // conv2
        884_736, 384, // conv3
        1_327_104, 384, // conv4
        884_736, 256, // conv5
        37_748_736, 4_096, // fc6
        16_777_216, 4_096, // fc7
        4_096_000, 1_000, // fc8
    ];
    params.iter().map(|p| p * 4).collect()
}

/// The malware-detection CNN: a simple two-layer network whose GPU time is
/// negligible next to reading multi-megabyte byte-code files.
pub fn malware_cnn(batch: usize) -> ModelSpec {
    let per_sample = Duration::from_micros(45);
    ModelSpec {
        name: format!("malware-cnn-b{batch}"),
        step_time: per_sample * batch as u32,
        graph_ops_per_step: 120,
        variables: vec![2_359_296, 512, 9_437_184, 1_024, 36_864 * 4, 36], // ≈12 MB
    }
}

/// Preprocessing cost of one ImageNet sample on one CPU core: JPEG
/// decode, resize, normalize. Dominated by decode, roughly linear in the
/// compressed size.
pub fn imagenet_decode_cost(bytes: u64) -> Duration {
    // ~70 ns/byte ⇒ ≈6 ms for the 88 KB median image, plus fixed overhead.
    Duration::from_micros(600) + dur::secs_f64(bytes as f64 * 70e-9)
}

/// Preprocessing cost of one malware sample: reinterpreting byte code as a
/// grayscale image is a cheap reshape + cast.
pub fn malware_decode_cost(bytes: u64) -> Duration {
    Duration::from_micros(200) + dur::secs_f64(bytes as f64 * 2.2e-9)
}

/// Capture function for the image-classification pipeline: `tf.io.read_file`
/// then decode/resize/batch prep (paper §IV.A).
pub fn imagenet_capture() -> MapFn {
    Arc::new(|ctx: &PipelineCtx, index, path: &str| {
        let bytes = tfsim::ops::read_file(&ctx.rt, path).unwrap_or(0);
        tfsim::ops::compute(&ctx.rt, "DecodeJpeg+Resize", imagenet_decode_cost(bytes));
        Element { index, bytes }
    })
}

/// Capture function for the malware pipeline: read byte code, decode as
/// grayscale image.
pub fn malware_capture() -> MapFn {
    Arc::new(|ctx: &PipelineCtx, index, path: &str| {
        let bytes = tfsim::ops::read_file(&ctx.rt, path).unwrap_or(0);
        tfsim::ops::compute(&ctx.rt, "DecodeBytesAsImage", malware_decode_cost(bytes));
        Element { index, bytes }
    })
}

/// STREAM capture: read only, no preprocessing ("performs no computation
/// and preprocessing other than reading files and forming batches").
pub fn stream_capture() -> MapFn {
    Arc::new(|ctx: &PipelineCtx, index, path: &str| {
        let bytes = tfsim::ops::read_file(&ctx.rt, path).unwrap_or(0);
        Element { index, bytes }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_sizes_add_up() {
        let vars = alexnet_variables();
        let total: u64 = vars.iter().sum();
        // ~61 M parameters × 4 B ≈ 244 MB.
        assert!((230_000_000..260_000_000).contains(&total), "{total}");
        assert_eq!(vars.len(), 16);
    }

    #[test]
    fn alexnet_scales_with_gpus() {
        let one = alexnet(256, 1).step_time;
        let two = alexnet(256, 2).step_time;
        assert!(two < one);
        assert!(two > one / 2, "allreduce does not parallelize");
    }

    #[test]
    fn malware_cnn_is_fast() {
        let m = malware_cnn(32);
        assert!(m.step_time < Duration::from_millis(5));
    }

    #[test]
    fn decode_costs_scale_with_bytes() {
        assert!(imagenet_decode_cost(88_000) > imagenet_decode_cost(10_000));
        let d = imagenet_decode_cost(88_000);
        assert!(
            (Duration::from_millis(4)..Duration::from_millis(10)).contains(&d),
            "{d:?}"
        );
        assert!(malware_decode_cost(4 << 20) < Duration::from_millis(15));
    }
}
