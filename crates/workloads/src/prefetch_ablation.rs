//! Online-staging ablation driver: STREAM(ImageNet) on the Greendog HDD
//! with four staging modes, from nothing to a clairvoyant daemon.
//!
//! The paper's §V.B staging result is offline — profile, copy, rerun.
//! This driver measures what the `prefetch` crate adds on top: the same
//! dataset and pipeline, but the fast tier is filled *while training runs*.
//! The expected ordering (asserted by `bench/benches/ablation_prefetch.rs`
//! and the root integration test) is
//! `clairvoyant ≥ reactive ≥ static ≥ none`.
//!
//! Caches are dropped at every epoch boundary, as the paper does between
//! Greendog experiments — otherwise the 26 GB page cache absorbs the whole
//! ~1 GB dataset after epoch one and hides any tier effect.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use prefetch::{Policy, PrefetchConfig, PrefetchDaemon};
use tfsim::{Dataset, EpochOrder, Parallelism};

use crate::dataset::stream_imagenet;
use crate::models::stream_capture;
use crate::platform::{greendog, mounts};
use crate::Scale;
use tfdarshan::{advise_threshold, plan_by_threshold, seed_plan, FileActivity};

/// The staging modes under comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StagingMode {
    /// Everything stays on the HDD.
    None,
    /// The paper's offline flow: one untimed `advise_threshold` +
    /// `apply_staging` pass before the first epoch, nothing online.
    Static,
    /// Online daemon, [`Policy::Reactive`]: heat from observed events only.
    Reactive,
    /// Online daemon, [`Policy::Clairvoyant`]: advisor-seeded plan plus the
    /// pipeline's [`EpochOrder`] hint, staging ahead of the consumer.
    Clairvoyant,
}

impl StagingMode {
    /// Label used in reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            StagingMode::None => "none",
            StagingMode::Static => "static",
            StagingMode::Reactive => "reactive",
            StagingMode::Clairvoyant => "clairvoyant",
        }
    }

    /// All modes, weakest first.
    pub fn all() -> [StagingMode; 4] {
        [
            StagingMode::None,
            StagingMode::Static,
            StagingMode::Reactive,
            StagingMode::Clairvoyant,
        ]
    }
}

/// Ablation parameters.
#[derive(Clone, Copy, Debug)]
pub struct AblationConfig {
    /// Dataset scale (1.0 = the paper's 12 800-file STREAM subset).
    pub scale: Scale,
    /// Measured epochs (≥ 2 so online modes get to exploit what they
    /// learned in epoch one).
    pub epochs: usize,
    /// Fast-tier byte budget as a fraction of the dataset's total bytes.
    pub budget_fraction: f64,
    /// `num_parallel_calls` of the map stage.
    pub threads: usize,
    /// Untimed setup window before the first measured epoch, applied in
    /// **every** mode for fairness; only the clairvoyant daemon can use it
    /// (its preloaded order hint lets it stage before any read happens).
    pub warmup: Duration,
}

impl Default for AblationConfig {
    fn default() -> Self {
        AblationConfig {
            scale: Scale::of(1.0),
            epochs: 3,
            budget_fraction: 0.8,
            threads: 16,
            warmup: Duration::from_secs(2),
        }
    }
}

/// One mode's measured outcome.
#[derive(Clone, Debug)]
pub struct AblationRun {
    /// Which mode ran.
    pub mode: StagingMode,
    /// Aggregate application read bandwidth over all measured epochs.
    pub read_mibps: f64,
    /// Total measured wall time (virtual seconds).
    pub wall_s: f64,
    /// Per-epoch wall time.
    pub epoch_s: Vec<f64>,
    /// Application bytes read across all epochs.
    pub bytes_read: u64,
    /// Fast-tier bytes occupied when the run ended.
    pub staged_bytes: u64,
    /// Files the daemon (or static pass) promoted.
    pub promoted_files: u64,
    /// Files the daemon evicted.
    pub evicted_files: u64,
}

fn activity_of(files: &[String], sizes: &[u64]) -> Vec<FileActivity> {
    files
        .iter()
        .zip(sizes)
        .map(|(path, &size)| FileActivity {
            path: path.clone(),
            reads: 1,
            bytes_read: size,
            apparent_size: size,
            read_time: 0.0,
        })
        .collect()
}

/// Run one mode end to end on a fresh Greendog machine.
pub fn run_mode(mode: StagingMode, cfg: &AblationConfig) -> AblationRun {
    let m = greendog();
    let ds = stream_imagenet(&m.stack, mounts::HDD, cfg.scale);
    let total = ds.total_bytes();
    let budget = (total as f64 * cfg.budget_fraction) as u64;
    let activity = activity_of(&ds.files, &ds.sizes);

    let hint = EpochOrder::new();
    if mode == StagingMode::Clairvoyant {
        hint.preload(Arc::new(ds.files.clone()));
    }
    let daemon = match mode {
        StagingMode::Reactive => Some(PrefetchDaemon::spawn(
            &m.sim,
            m.process.clone(),
            PrefetchConfig::new(Policy::Reactive, mounts::HDD, mounts::OPTANE, budget),
            None,
        )),
        StagingMode::Clairvoyant => Some(PrefetchDaemon::spawn(
            &m.sim,
            m.process.clone(),
            PrefetchConfig::new(Policy::Clairvoyant, mounts::HDD, mounts::OPTANE, budget)
                .with_seed(seed_plan(&activity, budget)),
            Some(hint.clone()),
        )),
        _ => None,
    };

    let epoch_s = Arc::new(Mutex::new(Vec::new()));
    let out_times = epoch_s.clone();
    let trainer = {
        let (stack, cache, rt) = (m.stack.clone(), m.cache.clone(), m.rt.clone());
        let files = ds.files.clone();
        let d2 = daemon.clone();
        let (epochs, threads, warmup) = (cfg.epochs, cfg.threads, cfg.warmup);
        let use_hint = mode == StagingMode::Clairvoyant;
        move || {
            if mode == StagingMode::Static {
                // The paper's offline pass: pick the threshold from the
                // profile, stage untimed before the measured run.
                let thr = advise_threshold(&activity, budget);
                let plan = plan_by_threshold(&activity, thr);
                let _ = tfdarshan::apply_staging(&stack, &plan, mounts::HDD, mounts::OPTANE);
            }
            simrt::sleep(warmup);
            for _epoch in 0..epochs {
                cache.drop_caches();
                let t0 = simrt::now();
                let mut pipe = Dataset::from_files(files.clone())
                    .map(stream_capture(), Parallelism::Fixed(threads))
                    .batch(32)
                    .prefetch(4);
                if use_hint {
                    pipe = pipe.with_order_hint(hint.clone());
                }
                let mut it = pipe.iterate(&rt);
                while it.next().is_some() {}
                out_times.lock().push((simrt::now() - t0).as_secs_f64());
            }
            if let Some(d) = &d2 {
                d.stop();
            }
        }
    };
    m.sim.spawn("trainer", trainer);
    m.sim.run();

    let epoch_s = epoch_s.lock().clone();
    let wall_s: f64 = epoch_s.iter().sum();
    let bytes_read = total * cfg.epochs as u64;
    let stats = daemon.as_ref().map(|d| d.stats()).unwrap_or_default();
    let promoted_files = if mode == StagingMode::Static {
        m.stack.staged_files() as u64
    } else {
        stats.promoted_files
    };
    AblationRun {
        mode,
        read_mibps: bytes_read as f64 / wall_s / (1 << 20) as f64,
        wall_s,
        epoch_s,
        bytes_read,
        staged_bytes: m.stack.staged_bytes(),
        promoted_files,
        evicted_files: stats.evicted_files,
    }
}

/// Run every mode (weakest first) with the same configuration.
pub fn run_all(cfg: &AblationConfig) -> Vec<AblationRun> {
    StagingMode::all()
        .into_iter()
        .map(|mode| run_mode(mode, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_order_on_a_small_run() {
        let cfg = AblationConfig {
            scale: Scale::of(0.02),
            epochs: 2,
            warmup: Duration::from_millis(500),
            ..Default::default()
        };
        let runs = run_all(&cfg);
        assert_eq!(runs.len(), 4);
        let bw: Vec<f64> = runs.iter().map(|r| r.read_mibps).collect();
        // clairvoyant ≥ reactive ≥ static ≥ none (small tolerance: the
        // sim is deterministic but modes share no RNG draws).
        assert!(
            bw[3] >= bw[2] * 0.99 && bw[2] >= bw[1] * 0.99 && bw[1] >= bw[0],
            "expected clairvoyant ≥ reactive ≥ static ≥ none, got {bw:?}"
        );
        assert!(runs[2].promoted_files > 0, "reactive staged something");
        assert!(runs[3].promoted_files > 0, "clairvoyant staged something");
    }
}
