//! Quick calibration probe: prints the headline bandwidths.
use tfsim::Parallelism;
use workloads::{run, Profiling, RunConfig, Scale, Workload};

fn main() {
    // Malware training: 1 thread, 16 threads, staged (scale 0.3 for speed).
    let scale = Scale::of(0.3);
    for (label, threads, stage) in [
        ("malware 1t", 1usize, None),
        ("malware 16t", 16, None),
        ("malware 1t+staged", 1, Some(2u64 << 20)),
    ] {
        let mut cfg = RunConfig::paper(Workload::Malware, scale);
        cfg.threads = Parallelism::Fixed(threads);
        cfg.profiling = Profiling::TfDarshan { full_export: true };
        cfg.stage_below = stage;
        let out = run(Workload::Malware, cfg);
        println!(
            "{label}: {:.1} MiB/s (report {:.1}), wall {:.0}s, input-bound {:.1}%",
            out.mean_read_mibps(),
            out.report
                .as_ref()
                .map(|r| r.io.read_bandwidth_mibps)
                .unwrap_or(0.0),
            out.wall.as_secs_f64(),
            out.fit.input_bound_fraction() * 100.0
        );
    }
    // ImageNet: 1 thread vs 28 threads (scale 0.05 → 6400 files, 25 steps).
    let scale = Scale::of(0.05);
    let mut bw1 = 0.0;
    for threads in [1usize, 28] {
        let mut cfg = RunConfig::paper(Workload::ImageNet, scale);
        cfg.threads = Parallelism::Fixed(threads);
        cfg.profiling = Profiling::TfDarshan { full_export: true };
        let out = run(Workload::ImageNet, cfg);
        let bw = out.mean_read_mibps();
        if threads == 1 {
            bw1 = bw;
        }
        println!(
            "imagenet {threads}t: {:.2} MiB/s, wall {:.0}s, input-bound {:.1}%, speedup {:.1}x",
            bw,
            out.wall.as_secs_f64(),
            out.fit.input_bound_fraction() * 100.0,
            bw / bw1.max(1e-9)
        );
    }
}
