//! Global string interner for event targets and sync-object labels.
//!
//! Emission hot paths must not allocate or touch atomics per event, so an
//! [`IoEvent`](crate::IoEvent) carries a [`PathId`] — a copyable `u32`
//! ticket — instead of an `Arc<str>`. The id is minted once per distinct
//! string by [`intern`] (descriptor tables cache it at `open` time, so the
//! per-operation path never calls the interner at all) and resolved back to
//! the shared `Arc<str>` by [`PathId::resolve`] at sink-fold or snapshot
//! time.
//!
//! ## Structure
//!
//! * **id → string** is an append-only chunked table: a fixed spine of
//!   [`OnceLock`] chunks with doubling capacities. Resolution is wait-free —
//!   two `OnceLock::get`s and an `Arc` clone; no lock is ever taken, so
//!   sink folds running inside the scheduler's switch path can resolve
//!   freely.
//! * **string → id** is a `RwLock<HashMap>` consulted only by [`intern`].
//!   The read path (string already interned) takes the shared lock once; a
//!   miss upgrades to the exclusive lock, installs the table slot, then
//!   publishes the map entry, so an id is only ever observable after its
//!   slot resolves.
//!
//! The table is global and lives for the process: interned strings are
//! file paths, sync-object labels and profiler span names — working sets
//! that are bounded by the simulated workload's file population, not by
//! its operation count.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// An interned string: a copyable ticket for an `Arc<str>` in the global
/// names table. `PathId`s are totally ordered by interning order and hash
/// as a plain `u32`, which makes them cheap keys for per-file maps in
/// spine consumers (`iosan`, the Darshan fold).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathId(u32);

/// Capacity of chunk 0; chunk `k` holds `CHUNK0 << k` entries.
const CHUNK0: usize = 1024;
/// Chunk count. Total capacity `CHUNK0 * (2^CHUNKS - 1)` exceeds
/// `u32::MAX`, so every representable id has a slot.
const CHUNKS: usize = 23;

type Chunk = Box<[OnceLock<Arc<str>>]>;

struct Interner {
    /// string → id, plus the next id to mint (== map.len()).
    map: RwLock<HashMap<Arc<str>, u32>>,
    /// id → string, chunked append-only spine (lock-free readers).
    table: [OnceLock<Chunk>; CHUNKS],
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| {
        let it = Interner {
            map: RwLock::new(HashMap::new()),
            table: [const { OnceLock::new() }; CHUNKS],
        };
        // Seed id 0 = "" so `PathId::EMPTY` always resolves.
        let empty: Arc<str> = Arc::from("");
        install(&it, 0, empty.clone());
        it.map.write().insert(empty, 0);
        it
    })
}

/// (chunk, index-within-chunk) of an id.
#[inline]
fn locate(id: u32) -> (usize, usize) {
    let id = id as usize;
    let k = ((id / CHUNK0) + 1).ilog2() as usize;
    let base = ((1usize << k) - 1) * CHUNK0;
    (k, id - base)
}

fn install(it: &Interner, id: u32, s: Arc<str>) {
    let (k, i) = locate(id);
    let chunk = it.table[k].get_or_init(|| {
        std::iter::repeat_with(OnceLock::new)
            .take(CHUNK0 << k)
            .collect()
    });
    chunk[i].set(s).expect("fresh interner slot set twice");
}

impl PathId {
    /// The id of the empty string (pre-seeded, always resolvable).
    pub const EMPTY: PathId = PathId(0);

    /// The shared string this id was minted for.
    ///
    /// Wait-free: no lock is taken, so this is safe from sink folds and
    /// scheduler hooks. Panics on an id that was never returned by
    /// [`intern`] (there is no way to obtain one without unsafe casts).
    pub fn resolve(self) -> Arc<str> {
        let (k, i) = locate(self.0);
        let it = interner();
        it.table[k]
            .get()
            .and_then(|chunk| chunk[i].get())
            .expect("PathId not minted by intern()")
            .clone()
    }

    /// The raw id (stable for the lifetime of the process).
    #[inline]
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for PathId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.resolve())
    }
}

/// Intern `s`, returning its stable [`PathId`]. Idempotent: the same
/// string always yields the same id. The hit path takes one shared-lock
/// hash lookup; the miss path (once per distinct string) allocates the
/// shared `Arc<str>` and its table slot.
pub fn intern(s: &str) -> PathId {
    let it = interner();
    if let Some(&id) = it.map.read().get(s) {
        return PathId(id);
    }
    intern_slow(it, Arc::from(s))
}

/// Intern an already-shared string without copying it on the miss path.
pub fn intern_arc(s: &Arc<str>) -> PathId {
    let it = interner();
    if let Some(&id) = it.map.read().get(&**s) {
        return PathId(id);
    }
    intern_slow(it, Arc::clone(s))
}

#[cold]
fn intern_slow(it: &Interner, s: Arc<str>) -> PathId {
    let mut w = it.map.write();
    if let Some(&id) = w.get(&*s) {
        return PathId(id);
    }
    let id = u32::try_from(w.len()).expect("interner exhausted u32 id space");
    // Install the table slot before publishing the map entry: an id must
    // never be observable before it resolves.
    install(it, id, Arc::clone(&s));
    w.insert(s, id);
    PathId(id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_resolves() {
        let a = intern("/data/shard-000");
        let b = intern("/data/shard-000");
        let c = intern("/data/shard-001");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(&*a.resolve(), "/data/shard-000");
        assert_eq!(&*c.resolve(), "/data/shard-001");
    }

    #[test]
    fn empty_is_preseeded() {
        assert_eq!(&*PathId::EMPTY.resolve(), "");
        assert_eq!(intern(""), PathId::EMPTY);
    }

    #[test]
    fn intern_arc_shares_the_allocation() {
        let s: Arc<str> = Arc::from("/unique/intern-arc-test");
        let id = intern_arc(&s);
        assert!(Arc::ptr_eq(&id.resolve(), &s) || *id.resolve() == *s);
        assert_eq!(intern("/unique/intern-arc-test"), id);
    }

    #[test]
    fn locate_covers_chunk_boundaries() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(1023), (0, 1023));
        assert_eq!(locate(1024), (1, 0));
        assert_eq!(locate(3071), (1, 2047));
        assert_eq!(locate(3072), (2, 0));
        let (k, i) = locate(u32::MAX);
        assert!(k < CHUNKS);
        assert!(i < CHUNK0 << k);
    }

    #[test]
    fn many_distinct_strings_cross_chunks() {
        let base = "/bulk/intern-chunk-test/";
        let ids: Vec<PathId> = (0..2500).map(|i| intern(&format!("{base}{i}"))).collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(&*id.resolve(), &format!("{base}{i}"));
        }
    }
}
