//! Instrumentation backplane: a single event spine between the simulated
//! syscall layer and every instrumentation consumer.
//!
//! The terminal libc/stdio bindings in `posix-sim` emit exactly one
//! [`IoEvent`] per completed operation into a **per-sim-thread ring
//! buffer** — a masked slot write, no allocation, no lock shared with any
//! consumer. Event targets are interned [`PathId`]s (see [`intern`]), so
//! an event is `Copy`-cheap to construct: no `Arc` refcount traffic on
//! the hot path. Rings are drained in batches at deterministic points
//! only:
//!
//! * whenever the simulated thread actually context-switches (simrt's
//!   switch hook — fast-path virtual-time advances do *not* flush),
//! * when a carrier task finishes,
//! * explicitly via [`flush_current_thread`] at extraction points
//!   (Darshan snapshot/totals, profiler start/stop, detach),
//! * inline, when a ring fills before any of the above (a thread emitting
//!   more than [`RING_CAPACITY`] events between switches) — the full ring
//!   is delivered immediately so emission is lossless and memory-bounded.
//!
//! Because simrt runs exactly one simulated thread at any moment and every
//! descheduling point flushes, events are delivered to sinks in op-completion
//! order — the same order the old inline per-consumer bookkeeping observed —
//! and all *parked* threads always have empty rings.
//!
//! # Sink rules
//!
//! [`ProbeSink::on_events`] runs inside the scheduler's switch path. It must
//! not call [`simrt::sleep`], [`simrt::block`] or [`simrt::yield_now`]
//! (a wake delivered to a Running task is lost, so sleeping here can deadlock
//! a primitive that registered a waiter before blocking). Charge simulated
//! overhead at the emission site instead. Sinks that need the event's path
//! resolve it with [`PathId::resolve`] — wait-free, safe from the switch
//! path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod intern;

pub use intern::{intern, intern_arc, PathId};

use parking_lot::{Mutex, RwLock};
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use simrt::{SimTime, SyncEvent, SyncObserver, SyncOp, TaskId};

/// Who performed the underlying POSIX operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Origin {
    /// The application called the (possibly interposed) symbol itself.
    App,
    /// The simulated stdio layer issued this descriptor operation internally
    /// (buffer refills, spills, stream open/close). POSIX-level consumers
    /// that model `LD_PRELOAD` interposition must ignore these: a real
    /// wrapped `read` never sees libc-internal `fread` traffic.
    StdioInternal,
    /// A background staging/prefetch daemon issued this operation while
    /// warming or draining a faster storage tier. Application-attributed
    /// consumers (the Darshan modules) must ignore these — daemon traffic
    /// would otherwise inflate the application's POSIX counters — while
    /// system-wide consumers (dstat) still see it, as a real block-level
    /// monitor would.
    Prefetch,
}

/// What happened. Descriptor, stream and map handles are raw integers so the
/// spine does not depend on `posix-sim` (which depends on this crate).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// `open()` succeeded, returning `fd`.
    Open {
        /// Descriptor returned by the open.
        fd: i32,
    },
    /// `close(fd)` succeeded.
    Close {
        /// Descriptor closed.
        fd: i32,
    },
    /// `read()`/`pread()` returned `len` bytes from `offset`.
    Read {
        /// Descriptor read from.
        fd: i32,
        /// File offset the transfer started at.
        offset: u64,
        /// Bytes actually transferred (may be short at EOF, may be 0).
        len: u64,
    },
    /// `write()`/`pwrite()` wrote `len` bytes at `offset`.
    Write {
        /// Descriptor written to.
        fd: i32,
        /// File offset the transfer started at.
        offset: u64,
        /// Bytes actually transferred.
        len: u64,
    },
    /// `lseek()` repositioned `fd` to absolute offset `to`.
    Seek {
        /// Descriptor repositioned.
        fd: i32,
        /// Resulting absolute file position.
        to: u64,
    },
    /// `stat()` on the event's `target` path (no descriptor involved).
    Stat,
    /// `fstat(fd)`.
    Fstat {
        /// Descriptor queried.
        fd: i32,
    },
    /// `fsync(fd)`.
    Fsync {
        /// Descriptor synced.
        fd: i32,
    },
    /// `mmap()` established mapping `map` over `fd`.
    Mmap {
        /// Opaque mapping handle.
        map: u64,
        /// Descriptor backing the mapping.
        fd: i32,
        /// File offset of the mapping.
        offset: u64,
        /// Length of the mapping.
        len: u64,
    },
    /// `msync()` on mapping `map`.
    Msync {
        /// Mapping handle.
        map: u64,
    },
    /// `munmap()` tore down mapping `map`.
    Munmap {
        /// Mapping handle.
        map: u64,
    },
    /// A page fault serviced through a memory mapping — I/O that is
    /// invisible to syscall interposition (the Caffe/LMDB blind spot).
    MmapFault {
        /// Mapping handle.
        map: u64,
        /// File offset of the faulting page run.
        offset: u64,
        /// Bytes paged in/out.
        len: u64,
        /// True for a dirty-page write-back path, false for a read fault.
        write: bool,
    },
    /// `fopen()` succeeded, returning `stream`.
    StdioOpen {
        /// Opaque stream handle.
        stream: u64,
    },
    /// `fclose(stream)`.
    StdioClose {
        /// Stream handle closed.
        stream: u64,
    },
    /// `fread()` returned `len` bytes at stream position `pos`.
    StdioRead {
        /// Stream handle.
        stream: u64,
        /// Stream position before the call.
        pos: u64,
        /// Bytes actually transferred.
        len: u64,
    },
    /// `fwrite()` accepted `len` bytes at stream position `pos`.
    StdioWrite {
        /// Stream handle.
        stream: u64,
        /// Stream position before the call.
        pos: u64,
        /// Bytes actually transferred.
        len: u64,
    },
    /// `fseek()` repositioned the stream to absolute offset `to`.
    StdioSeek {
        /// Stream handle.
        stream: u64,
        /// Resulting absolute stream position.
        to: u64,
    },
    /// `fflush(stream)`.
    StdioFlush {
        /// Stream handle.
        stream: u64,
    },
    /// A host-side profiler annotation span (TraceMe). `target` carries the
    /// span name; `label` the "thread (tid)" line it belongs to.
    TraceSpan {
        /// Timeline line label, `"{task_name} ({task_id})"` (interned).
        label: PathId,
        /// Extra key/value annotations attached to the span.
        stats: Vec<(String, String)>,
    },
    /// A synchronization operation (lock acquire/release, signal/wait edge,
    /// spawn/join/finish), bridged from `simrt` by [`SyncBridge`]. `target`
    /// carries the sync object's label. Interleaved with the I/O events in
    /// execution order, these give happens-before analyzers (`iosan`) the
    /// ordering edges of the run.
    Sync {
        /// What the operation did.
        op: SyncOp,
        /// Sync-object id (or peer task id for spawn/join/finish).
        obj: u64,
    },
}

/// One completed instrumented operation: who, when, on what, and what kind.
/// `Eq` compares every field; replay harnesses (the `explore` crate) use it
/// to assert two schedules produced byte-identical event streams.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IoEvent {
    /// Simulated thread that performed the operation.
    pub task: TaskId,
    /// Process the operation belongs to (0 = unattributed, e.g. sync
    /// bridge events). Fd numbers are only unique per process, so
    /// consumers of a shared multi-process bus (a job spine) must key any
    /// per-descriptor state by `(pid, fd)`, never by fd alone.
    pub pid: u32,
    /// Virtual time at operation entry (includes modeled syscall overhead).
    pub t0: SimTime,
    /// Virtual time at operation completion.
    pub t1: SimTime,
    /// Application-issued or stdio-internal.
    pub origin: Origin,
    /// Interned path the operation targets (span name for
    /// [`EventKind::TraceSpan`]). Resolve to the string with
    /// [`PathId::resolve`] at fold/snapshot time; never on the hot path.
    pub target: PathId,
    /// Operation payload.
    pub kind: EventKind,
}

/// A consumer of the event spine.
pub trait ProbeSink: Send + Sync {
    /// Fold a batch of events into this consumer's state.
    ///
    /// Called on the sim thread that *emitted* the batch, at one of the
    /// deterministic flush points. Must not sleep, block or yield (see
    /// crate docs); take only the sink's own locks.
    fn on_events(&self, events: &[IoEvent]);
}

/// Handle returned by [`ProbeBus::register`]; pass to [`ProbeBus::unregister`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SinkId(u64);

/// Immutable sink snapshot; swapped wholesale on (un)register so a flush
/// is one `Arc` clone, never a `Vec` allocation.
type SinkList = Arc<Vec<(SinkId, Arc<dyn ProbeSink>)>>;

struct BusInner {
    sinks: RwLock<SinkList>,
    /// Cached `sinks.len()`, so the emission fast path is one relaxed load.
    active: AtomicUsize,
    next_id: Mutex<u64>,
    /// Live [`ProbeBus`] handles over this spine. Thread-local rings hold
    /// only the `Arc<BusInner>`, not a handle — when this drops to zero the
    /// bus is *defunct*: nobody can register, unregister or extract from it
    /// again, so any events still buffered for it are dead and must be
    /// discarded, not delivered into whatever simulation runs next on the
    /// same host thread.
    handles: AtomicUsize,
}

impl BusInner {
    fn is_defunct(&self) -> bool {
        self.handles.load(Ordering::Acquire) == 0
    }
}

/// Deliver one batch to every sink of `bus`. The sink list is an immutable
/// snapshot behind an `Arc`, so this takes a read lock for the duration of
/// one pointer clone and allocates nothing.
fn deliver(bus: &BusInner, events: &[IoEvent]) {
    if events.is_empty() {
        return;
    }
    let sinks: SinkList = Arc::clone(&bus.sinks.read());
    for (_, sink) in sinks.iter() {
        sink.on_events(events);
    }
}

/// The per-process event spine. Emission appends to a thread-local ring
/// tagged with this bus; no consumer lock is touched until a flush point.
///
/// Each simulated [`Process`](../posix_sim/struct.Process.html) owns its own
/// bus, so concurrently running simulations (e.g. parallel tests) never see
/// each other's events.
pub struct ProbeBus {
    inner: Arc<BusInner>,
}

impl Clone for ProbeBus {
    /// Cloning is cheap and shares the underlying spine: clones see the
    /// same sinks and feed the same rings.
    fn clone(&self) -> Self {
        self.inner.handles.fetch_add(1, Ordering::AcqRel);
        ProbeBus {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Drop for ProbeBus {
    fn drop(&mut self) {
        self.inner.handles.fetch_sub(1, Ordering::AcqRel);
    }
}

impl Default for ProbeBus {
    fn default() -> Self {
        Self::new()
    }
}

impl ProbeBus {
    /// Create an empty bus and make sure the scheduler flush hook is in
    /// place so buffered events drain at every real context switch.
    pub fn new() -> Self {
        simrt::set_context_switch_hook(flush_current_thread);
        ProbeBus {
            inner: Arc::new(BusInner {
                sinks: RwLock::new(Arc::new(Vec::new())),
                active: AtomicUsize::new(0),
                next_id: Mutex::new(0),
                handles: AtomicUsize::new(1),
            }),
        }
    }

    /// True when at least one sink is registered. The emission layer checks
    /// this before capturing timestamps or building an event, so an
    /// uninstrumented run pays only this atomic load per operation.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.inner.active.load(Ordering::Relaxed) != 0
    }

    /// Number of registered sinks.
    pub fn sink_count(&self) -> usize {
        self.inner.active.load(Ordering::Relaxed)
    }

    /// Register a sink. Events already buffered on the current thread are
    /// flushed first so the new sink only sees operations that complete
    /// after registration.
    pub fn register(&self, sink: Arc<dyn ProbeSink>) -> SinkId {
        flush_current_thread();
        let id = {
            let mut n = self.inner.next_id.lock();
            *n += 1;
            SinkId(*n)
        };
        let mut sinks = self.inner.sinks.write();
        let mut next = Vec::with_capacity(sinks.len() + 1);
        next.extend(sinks.iter().cloned());
        next.push((id, sink));
        self.inner.active.store(next.len(), Ordering::Relaxed);
        *sinks = Arc::new(next);
        id
    }

    /// Unregister a sink, first flushing the current thread's ring so the
    /// departing sink receives every event emitted before this call. (All
    /// parked threads flushed when they descheduled, so nothing else is
    /// pending.)
    pub fn unregister(&self, id: SinkId) {
        flush_current_thread();
        let mut sinks = self.inner.sinks.write();
        let next: Vec<_> = sinks
            .iter()
            .filter(|(sid, _)| *sid != id)
            .cloned()
            .collect();
        self.inner.active.store(next.len(), Ordering::Relaxed);
        *sinks = Arc::new(next);
    }

    /// Append one event to the current thread's ring for this bus.
    /// No-op when no sink is registered. If the ring is full (more than
    /// [`RING_CAPACITY`] events since the last flush point) the whole ring
    /// is delivered inline — lossless, bounded memory.
    #[inline]
    pub fn emit(&self, event: IoEvent) {
        if !self.is_active() {
            return;
        }
        let overflow = RINGS.with(|r| {
            let mut reg = r.borrow_mut();
            let ring = reg.ring_for(&self.inner);
            if ring.is_full() {
                Some(event)
            } else {
                ring.push(event);
                None
            }
        });
        if let Some(event) = overflow {
            self.emit_overflow(event);
        }
    }

    /// Ring-full slow path: drain this bus's ring, append the overflowing
    /// event (it is the newest, so op-completion order is preserved) and
    /// deliver the batch inline. The `RefCell` borrow is released before
    /// any sink runs, so sinks may themselves emit — their events land in
    /// the now-empty ring and flush at the next flush point.
    #[cold]
    fn emit_overflow(&self, event: IoEvent) {
        let mut batch = RINGS.with(|r| {
            let mut reg = r.borrow_mut();
            let ring = reg.ring_for(&self.inner);
            let mut out = Vec::with_capacity(ring.len() + 1);
            ring.drain_into(&mut out);
            out
        });
        batch.push(event);
        deliver(&self.inner, &batch);
    }

    /// Deliver a pre-built batch straight to this bus's sinks, bypassing
    /// the per-thread ring. The merge stage for sharded topologies: a
    /// relay draining several shard buses re-emits each drained batch onto
    /// a downstream bus with one call. Events arrive in batch order, but
    /// nothing orders *across* batches from different shards — only
    /// order-insensitive consumers (commutative counters, gauges) should
    /// sit downstream; strict happens-before consumers need a bus the
    /// events were emitted to directly.
    pub fn deliver_batch(&self, events: &[IoEvent]) {
        if events.is_empty() || !self.is_active() {
            return;
        }
        deliver(&self.inner, events);
    }

    /// Whether two handles refer to the same underlying bus (same rings,
    /// same sink snapshot). Cloned handles compare equal; two buses from
    /// separate [`ProbeBus::new`] calls never do.
    pub fn same_bus(&self, other: &ProbeBus) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// Events a sim thread can buffer between flush points before the ring
/// delivers itself inline. Power of two: slot indexing is a mask, not a
/// division.
pub const RING_CAPACITY: usize = 1024;
const RING_MASK: usize = RING_CAPACITY - 1;

/// Fixed-capacity single-threaded ring. `head`/`tail` are free-running
/// counters masked into the slot array; `tail - head` is the live length.
struct Ring {
    slots: Box<[Option<IoEvent>]>,
    head: usize,
    tail: usize,
}

impl Ring {
    fn new() -> Self {
        Ring {
            slots: std::iter::repeat_with(|| None)
                .take(RING_CAPACITY)
                .collect(),
            head: 0,
            tail: 0,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.tail.wrapping_sub(self.head)
    }

    #[inline]
    fn is_full(&self) -> bool {
        self.len() == RING_CAPACITY
    }

    #[inline]
    fn push(&mut self, event: IoEvent) {
        debug_assert!(!self.is_full());
        self.slots[self.tail & RING_MASK] = Some(event);
        self.tail = self.tail.wrapping_add(1);
    }

    fn drain_into(&mut self, out: &mut Vec<IoEvent>) {
        while self.head != self.tail {
            out.push(
                self.slots[self.head & RING_MASK]
                    .take()
                    .expect("occupied ring slot"),
            );
            self.head = self.head.wrapping_add(1);
        }
    }
}

/// Per-OS-thread (bus → ring) registry. Usually one entry (a process's own
/// bus), two when a shared job spine mirrors events. Defunct-bus cleanup
/// happens at flush points only, never per event.
#[derive(Default)]
struct Registry {
    entries: Vec<(Arc<BusInner>, Ring)>,
}

impl Registry {
    /// The ring for `bus`, created on first use. A linear `Arc::ptr_eq`
    /// scan over one or two entries beats any hash.
    #[inline]
    fn ring_for(&mut self, bus: &Arc<BusInner>) -> &mut Ring {
        let idx = self
            .entries
            .iter()
            .position(|(b, _)| Arc::ptr_eq(b, bus))
            .unwrap_or_else(|| {
                self.entries.push((Arc::clone(bus), Ring::new()));
                self.entries.len() - 1
            });
        &mut self.entries[idx].1
    }
}

thread_local! {
    /// (bus, ring) pairs for this OS thread.
    static RINGS: RefCell<Registry> = RefCell::new(Registry::default());
    /// Re-entrancy guard: a sink fold must not trigger a nested flush.
    static FLUSHING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Drain every pending ring on the calling OS thread into the sinks of its
/// bus. Installed as simrt's context-switch hook; also called explicitly at
/// extraction points (snapshot, totals, detach, profiler start/stop) so the
/// stream is complete there even without an intervening switch.
pub fn flush_current_thread() {
    if FLUSHING.with(|f| f.get()) {
        return;
    }
    FLUSHING.with(|f| f.set(true));
    // Loop until the rings stay empty: a sink fold may itself emit (e.g. a
    // sink notifying a daemon produces a Signal sync event on this thread),
    // and those events must be delivered *now*, before the next simulated
    // thread runs, to preserve the global execution-order guarantee. Bounded
    // so a pathological always-emitting sink cannot spin forever.
    for _round in 0..8 {
        // Move the pending batches out first so an emitting sink cannot
        // observe a borrowed RefCell. Rings whose bus is defunct — every
        // `ProbeBus` handle dropped, e.g. a previous `Sim`'s process bus —
        // are discarded wholesale here: delivering them would carry a dead
        // simulation's events into whatever runs next on this host thread.
        let pending: Vec<(Arc<BusInner>, Vec<IoEvent>)> = RINGS.with(|r| {
            let mut reg = r.borrow_mut();
            reg.entries.retain(|(bus, _)| !bus.is_defunct());
            let mut out = Vec::new();
            for (bus, ring) in reg.entries.iter_mut() {
                if ring.len() > 0 {
                    let mut batch = Vec::with_capacity(ring.len());
                    ring.drain_into(&mut batch);
                    out.push((Arc::clone(bus), batch));
                }
            }
            out
        });
        if pending.is_empty() {
            break;
        }
        for (bus, events) in pending {
            deliver(&bus, &events);
        }
    }
    FLUSHING.with(|f| f.set(false));
}

/// Drop every pending ring on the calling OS thread **without delivering**.
/// Schedule-exploration harnesses call this between schedules: a replayed
/// run must start from an empty instrumentation backplane, and events a
/// previous schedule buffered but never flushed (e.g. because it deadlocked
/// and was abandoned mid-run) must not leak into the next schedule's
/// stream. A no-op outside exploration — normal teardown already discards
/// defunct-bus rings at the next flush.
pub fn discard_thread_rings() {
    RINGS.with(|r| {
        let mut reg = r.borrow_mut();
        for (_, ring) in reg.entries.iter_mut() {
            let mut dropped = Vec::new();
            ring.drain_into(&mut dropped);
        }
        reg.entries.clear();
    });
}

/// Bridges `simrt` synchronization events onto a [`ProbeBus`] as
/// [`EventKind::Sync`] events, interleaved with the I/O stream in execution
/// order (the observer runs on the emitting task's carrier thread, and the
/// per-thread rings drain at every context switch).
///
/// Install with [`SyncBridge::install`]; remember to
/// [`simrt::Sim::clear_sync_observer`] when analysis ends.
pub struct SyncBridge {
    bus: ProbeBus,
}

impl SyncBridge {
    /// Create a bridge emitting into `bus`.
    pub fn new(bus: ProbeBus) -> Arc<Self> {
        Arc::new(SyncBridge { bus })
    }

    /// Create and register a bridge as `sim`'s sync observer.
    pub fn install(sim: &simrt::Sim, bus: ProbeBus) -> Arc<Self> {
        let bridge = Self::new(bus);
        sim.set_sync_observer(bridge.clone());
        bridge
    }
}

impl SyncObserver for SyncBridge {
    fn on_sync(&self, ev: &SyncEvent) {
        if !self.bus.is_active() {
            return;
        }
        self.bus.emit(IoEvent {
            task: ev.task,
            pid: 0,
            t0: ev.time,
            t1: ev.time,
            origin: Origin::App,
            target: intern_arc(&ev.label),
            kind: EventKind::Sync {
                op: ev.op,
                obj: ev.obj,
            },
        });
    }
}

/// A sink that records every event it sees; used by replay/property tests
/// to recompute instrumentation state from the raw stream.
#[derive(Default)]
pub struct CollectingSink {
    events: Mutex<Vec<IoEvent>>,
}

impl CollectingSink {
    /// New empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take the collected events, leaving the collector empty.
    pub fn take(&self) -> Vec<IoEvent> {
        std::mem::take(&mut self.events.lock())
    }

    /// Copy of the collected events.
    pub fn snapshot(&self) -> Vec<IoEvent> {
        self.events.lock().clone()
    }

    /// Number of events collected so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl ProbeSink for CollectingSink {
    fn on_events(&self, events: &[IoEvent]) {
        self.events.lock().extend_from_slice(events);
    }
}

/// A sink that only counts events and bytes — cheap enough for hot-path
/// overhead benchmarks.
#[derive(Default)]
pub struct CountingSink {
    /// Total events observed.
    pub events: AtomicUsize,
    /// Total bytes across read/write-like events.
    pub bytes: AtomicUsize,
}

impl CountingSink {
    /// New zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ProbeSink for CountingSink {
    fn on_events(&self, events: &[IoEvent]) {
        self.events.fetch_add(events.len(), Ordering::Relaxed);
        let bytes: u64 = events
            .iter()
            .map(|e| match e.kind {
                EventKind::Read { len, .. }
                | EventKind::Write { len, .. }
                | EventKind::StdioRead { len, .. }
                | EventKind::StdioWrite { len, .. }
                | EventKind::MmapFault { len, .. } => len,
                _ => 0,
            })
            .sum();
        self.bytes.fetch_add(bytes as usize, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn ev(kind: EventKind) -> IoEvent {
        IoEvent {
            task: TaskId(1),
            pid: 0,
            t0: SimTime::ZERO,
            t1: SimTime::ZERO + Duration::from_nanos(10),
            origin: Origin::App,
            target: intern("/f"),
            kind,
        }
    }

    #[test]
    fn emit_without_sinks_is_dropped() {
        let bus = ProbeBus::new();
        bus.emit(ev(EventKind::Stat));
        let sink = Arc::new(CollectingSink::new());
        bus.register(sink.clone());
        flush_current_thread();
        assert!(sink.is_empty(), "pre-registration events must not arrive");
    }

    #[test]
    fn events_buffer_until_flush() {
        let bus = ProbeBus::new();
        let sink = Arc::new(CollectingSink::new());
        bus.register(sink.clone());
        bus.emit(ev(EventKind::Read {
            fd: 3,
            offset: 0,
            len: 8,
        }));
        bus.emit(ev(EventKind::Write {
            fd: 3,
            offset: 8,
            len: 8,
        }));
        assert!(sink.is_empty(), "no delivery before a flush point");
        flush_current_thread();
        assert_eq!(sink.len(), 2);
        flush_current_thread();
        assert_eq!(sink.len(), 2, "flush is idempotent on an empty ring");
    }

    #[test]
    fn unregister_flushes_pending_events_first() {
        let bus = ProbeBus::new();
        let sink = Arc::new(CollectingSink::new());
        let id = bus.register(sink.clone());
        bus.emit(ev(EventKind::Fsync { fd: 4 }));
        bus.unregister(id);
        assert_eq!(sink.len(), 1, "departing sink receives buffered events");
        assert!(!bus.is_active());
        bus.emit(ev(EventKind::Fsync { fd: 4 }));
        flush_current_thread();
        assert_eq!(sink.len(), 1, "no delivery after unregister");
    }

    #[test]
    fn buses_are_isolated() {
        let a = ProbeBus::new();
        let b = ProbeBus::new();
        let sa = Arc::new(CollectingSink::new());
        let sb = Arc::new(CollectingSink::new());
        a.register(sa.clone());
        b.register(sb.clone());
        a.emit(ev(EventKind::Stat));
        flush_current_thread();
        assert_eq!(sa.len(), 1);
        assert!(sb.is_empty());
    }

    #[test]
    fn ring_full_flushes_inline_lossless_in_order() {
        // Regression: emitting more than RING_CAPACITY events between
        // context switches must flush inline — not drop events, not grow
        // without bound.
        let bus = ProbeBus::new();
        let sink = Arc::new(CollectingSink::new());
        bus.register(sink.clone());
        let n = RING_CAPACITY * 3 + 17;
        for i in 0..n {
            bus.emit(ev(EventKind::Read {
                fd: 3,
                offset: i as u64,
                len: 1,
            }));
        }
        assert!(
            sink.len() >= RING_CAPACITY * 3,
            "full rings were delivered inline, not accumulated"
        );
        flush_current_thread();
        let events = sink.snapshot();
        assert_eq!(events.len(), n, "lossless across inline flushes");
        for (i, e) in events.iter().enumerate() {
            match e.kind {
                EventKind::Read { offset, .. } => assert_eq!(offset, i as u64),
                ref k => panic!("unexpected kind {k:?}"),
            }
        }
    }

    #[test]
    fn sink_emitting_during_inline_overflow_flush_is_not_lost() {
        // A sink that emits back onto the bus while an overflow batch is
        // being delivered: its events land in the (now empty) ring and
        // arrive at the next flush point.
        struct Echo {
            bus: ProbeBus,
            echoed: std::sync::atomic::AtomicBool,
            seen: AtomicUsize,
        }
        impl ProbeSink for Echo {
            fn on_events(&self, events: &[IoEvent]) {
                self.seen.fetch_add(events.len(), Ordering::Relaxed);
                if !self.echoed.swap(true, Ordering::Relaxed) {
                    self.bus.emit(IoEvent {
                        task: TaskId(9),
                        pid: 0,
                        t0: SimTime::ZERO,
                        t1: SimTime::ZERO,
                        origin: Origin::App,
                        target: intern("/echo"),
                        kind: EventKind::Stat,
                    });
                }
            }
        }
        let bus = ProbeBus::new();
        let echo = Arc::new(Echo {
            bus: bus.clone(),
            echoed: std::sync::atomic::AtomicBool::new(false),
            seen: AtomicUsize::new(0),
        });
        bus.register(echo.clone());
        for i in 0..=RING_CAPACITY {
            bus.emit(ev(EventKind::Read {
                fd: 3,
                offset: i as u64,
                len: 1,
            }));
        }
        flush_current_thread();
        assert_eq!(
            echo.seen.load(Ordering::Relaxed),
            RING_CAPACITY + 2,
            "all original events plus the echoed one arrive"
        );
    }

    #[test]
    fn sync_bridge_interleaves_sync_events_with_io() {
        let sim = simrt::Sim::new();
        let bus = ProbeBus::new();
        let sink = Arc::new(CollectingSink::new());
        bus.register(sink.clone());
        SyncBridge::install(&sim, bus.clone());
        let (tx, rx) = simrt::sync::channel_named::<u32>(None, "batches");
        {
            let bus = bus.clone();
            sim.spawn("producer", move || {
                bus.emit(IoEvent {
                    task: simrt::current_task(),
                    pid: 0,
                    t0: simrt::now(),
                    t1: simrt::now(),
                    origin: Origin::App,
                    target: intern("/data"),
                    kind: EventKind::Write {
                        fd: 3,
                        offset: 0,
                        len: 8,
                    },
                });
                tx.send(7).unwrap();
            });
        }
        sim.spawn("consumer", move || {
            assert_eq!(rx.recv(), Some(7));
        });
        sim.run();
        sim.clear_sync_observer();
        let events = sink.snapshot();
        let ops: Vec<SyncOp> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Sync { op, .. } => Some(op),
                _ => None,
            })
            .collect();
        assert!(ops.contains(&SyncOp::Signal), "send emits Signal: {ops:?}");
        assert!(ops.contains(&SyncOp::Wait), "recv emits Wait: {ops:?}");
        assert!(ops.contains(&SyncOp::Finish), "task end emits Finish");
        // The producer's write precedes its send's Signal in the stream.
        let w = events
            .iter()
            .position(|e| matches!(e.kind, EventKind::Write { .. }))
            .unwrap();
        let s = events
            .iter()
            .position(|e| {
                matches!(
                    e.kind,
                    EventKind::Sync {
                        op: SyncOp::Signal,
                        ..
                    }
                )
            })
            .unwrap();
        assert!(w < s, "execution order preserved");
    }

    #[test]
    fn defunct_bus_buffers_are_dropped_not_delivered() {
        // A buffered event whose bus has lost every handle must be
        // discarded at the next flush point, not delivered to the dead
        // bus's sinks.
        let stale = Arc::new(CollectingSink::new());
        {
            let bus = ProbeBus::new();
            bus.register(stale.clone());
            bus.emit(ev(EventKind::Stat));
            // `bus` (the only handle) drops here with the event still
            // buffered on this thread.
        }
        let live = ProbeBus::new();
        let sink = Arc::new(CollectingSink::new());
        live.register(sink.clone()); // register flushes this thread
        live.emit(ev(EventKind::Fsync { fd: 3 }));
        flush_current_thread();
        assert!(
            stale.is_empty(),
            "a defunct bus's buffered events must not be delivered"
        );
        assert_eq!(sink.len(), 1, "the live bus still flows");
    }

    #[test]
    fn two_sims_one_thread_do_not_leak_buffers() {
        // Regression: two simulations run back-to-back from one host
        // thread. Sim 1's bus buffers a host-side event that is never
        // flushed before the bus dies; sim 2 must not receive or be
        // perturbed by it — and sim 1's sink must not observe sim 2's
        // activity.
        let sink1 = Arc::new(CollectingSink::new());
        {
            let sim1 = simrt::Sim::new();
            let bus1 = ProbeBus::new();
            bus1.register(sink1.clone());
            let b = bus1.clone();
            sim1.spawn("app1", move || {
                b.emit(ev(EventKind::Open { fd: 3 }));
            });
            sim1.run();
            assert_eq!(sink1.len(), 1, "sim 1's own event arrived");
            // Host-side emission after the run, never flushed: exactly the
            // stale residue that used to leak into the next simulation.
            bus1.emit(ev(EventKind::Close { fd: 3 }));
        } // every handle to bus1 is gone; the ring entry survives
        let sim2 = simrt::Sim::new();
        let bus2 = ProbeBus::new();
        let sink2 = Arc::new(CollectingSink::new());
        bus2.register(sink2.clone());
        let b = bus2.clone();
        sim2.spawn("app2", move || {
            b.emit(ev(EventKind::Read {
                fd: 4,
                offset: 0,
                len: 8,
            }));
        });
        sim2.run();
        flush_current_thread();
        assert_eq!(
            sink1.len(),
            1,
            "the dead bus's stale ring must not drain into sim 2's run"
        );
        assert_eq!(sink2.len(), 1);
        assert!(
            matches!(sink2.snapshot()[0].kind, EventKind::Read { .. }),
            "sim 2 sees exactly its own event"
        );
    }

    #[test]
    fn counting_sink_totals_bytes() {
        let bus = ProbeBus::new();
        let sink = Arc::new(CountingSink::new());
        bus.register(sink.clone());
        bus.emit(ev(EventKind::Read {
            fd: 3,
            offset: 0,
            len: 100,
        }));
        bus.emit(ev(EventKind::StdioWrite {
            stream: 1,
            pos: 0,
            len: 50,
        }));
        flush_current_thread();
        assert_eq!(sink.events.load(Ordering::Relaxed), 2);
        assert_eq!(sink.bytes.load(Ordering::Relaxed), 150);
    }
}
