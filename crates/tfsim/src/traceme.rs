//! The `TraceMe` recorder: host-side op tracing, as in TensorFlow's
//! `tensorflow/core/profiler/lib/traceme.h`.
//!
//! Ops bracket themselves with a [`TraceMe`] guard; while a recording is
//! active the completed spans are appended to per-thread timelines.
//! Recording costs time — the configurable per-event overhead is the
//! "TF Profiler" bar of the paper's Fig. 5.
//!
//! When bound to a process's probe spine ([`TraceMeRecorder::bind_spine`],
//! done by `TfRuntime::new`), the recorder is a fold-over-events consumer:
//! the guard emits a [`probe::EventKind::TraceSpan`] into the per-thread
//! buffer (no shared lock on the hot path) and the recorder folds whole
//! batches into its timelines at context-switch boundaries. Unbound
//! recorders (unit tests, standalone use) append directly as before.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use parking_lot::Mutex;
use probe::{EventKind, IoEvent, Origin, ProbeBus, ProbeSink, SinkId};
use simrt::SimTime;

use crate::trace::{XEvent, XPlane};

/// A completed host event.
#[derive(Clone, Debug)]
pub struct HostEvent {
    /// Op name.
    pub name: String,
    /// Start instant.
    pub start: SimTime,
    /// End instant.
    pub end: SimTime,
    /// Optional (key, value) annotations.
    pub stats: Vec<(String, String)>,
}

/// Binding of a recorder to a process's probe spine.
struct SpineBinding {
    bus: ProbeBus,
    /// Weak self-handle so `start` can register the recorder as a sink.
    this: Weak<TraceMeRecorder>,
    /// Live sink registration while recording.
    sink: Option<SinkId>,
}

/// Collects host events per simulated thread while recording is on.
pub struct TraceMeRecorder {
    active: AtomicBool,
    per_event_overhead: Mutex<Duration>,
    events: Mutex<HashMap<String, Vec<HostEvent>>>,
    spine: Mutex<Option<SpineBinding>>,
}

impl Default for TraceMeRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceMeRecorder {
    /// New, inactive recorder.
    pub fn new() -> Self {
        TraceMeRecorder {
            active: AtomicBool::new(false),
            per_event_overhead: Mutex::new(Duration::ZERO),
            events: Mutex::new(HashMap::new()),
            spine: Mutex::new(None),
        }
    }

    /// Route spans through `bus`: while recording, the recorder registers
    /// itself as a sink and guards emit buffered `TraceSpan` events instead
    /// of taking the timeline lock per event.
    pub fn bind_spine(self: &Arc<Self>, bus: &ProbeBus) {
        *self.spine.lock() = Some(SpineBinding {
            bus: bus.clone(),
            this: Arc::downgrade(self),
            sink: None,
        });
    }

    /// Begin recording; clears previous events.
    pub fn start(&self, per_event_overhead: Duration) {
        self.events.lock().clear();
        *self.per_event_overhead.lock() = per_event_overhead;
        if let Some(b) = self.spine.lock().as_mut() {
            if b.sink.is_none() {
                if let Some(this) = b.this.upgrade() {
                    b.sink = Some(b.bus.register(this));
                }
            }
        }
        self.active.store(true, Ordering::SeqCst);
    }

    /// Stop recording. Unregistering from the spine flushes the calling
    /// thread's buffer, so every span completed before `stop` is folded.
    pub fn stop(&self) {
        self.active.store(false, Ordering::SeqCst);
        if let Some(b) = self.spine.lock().as_mut() {
            if let Some(id) = b.sink.take() {
                b.bus.unregister(id);
            }
        }
    }

    /// Whether a recording is in progress.
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::SeqCst)
    }

    /// Drain the recorded events per thread.
    pub fn consume(&self) -> HashMap<String, Vec<HostEvent>> {
        // Spans may still sit in this thread's spine buffer (other threads
        // flushed when they descheduled or finished).
        probe::flush_current_thread();
        std::mem::take(&mut *self.events.lock())
    }

    /// Record a completed span (called from the [`TraceMe`] guard).
    pub fn record(&self, ev: HostEvent) {
        if !self.is_active() {
            return;
        }
        let overhead = *self.per_event_overhead.lock();
        if !overhead.is_zero() {
            simrt::sleep(overhead);
        }
        let line = format!("{} ({})", simrt::current_task_name(), simrt::current_task());
        let bus = self
            .spine
            .lock()
            .as_ref()
            .filter(|b| b.sink.is_some())
            .map(|b| b.bus.clone());
        if let Some(bus) = bus {
            bus.emit(IoEvent {
                task: simrt::current_task(),
                pid: 0,
                t0: ev.start,
                t1: ev.end,
                origin: Origin::App,
                target: probe::intern(&ev.name),
                kind: EventKind::TraceSpan {
                    label: probe::intern(&line),
                    stats: ev.stats,
                },
            });
        } else {
            self.events.lock().entry(line).or_default().push(ev);
        }
    }

    /// Export recorded events into an `XPlane` (one line per thread).
    pub fn export_into(&self, plane: &mut XPlane) {
        let map = self.consume();
        let mut names: Vec<&String> = map.keys().collect();
        names.sort();
        for name in names {
            let line = plane.line_mut(name);
            for ev in &map[name] {
                let mut x = XEvent::new(
                    ev.name.clone(),
                    ev.start.as_nanos(),
                    (ev.end - ev.start).as_nanos() as u64,
                );
                for (k, v) in &ev.stats {
                    x = x.with_stat(k.clone(), v.clone());
                }
                line.events.push(x);
            }
        }
    }
}

impl ProbeSink for TraceMeRecorder {
    fn on_events(&self, events: &[IoEvent]) {
        // One timeline-lock acquisition per flushed batch, not per span.
        let mut map = self.events.lock();
        for ev in events {
            if let EventKind::TraceSpan { label, stats } = &ev.kind {
                map.entry(label.to_string()).or_default().push(HostEvent {
                    name: ev.target.to_string(),
                    start: ev.t0,
                    end: ev.t1,
                    stats: stats.clone(),
                });
            }
        }
    }
}

/// RAII span: records `[construction, drop]` as one host event.
pub struct TraceMe {
    recorder: Arc<TraceMeRecorder>,
    name: String,
    start: SimTime,
    stats: Vec<(String, String)>,
}

impl TraceMe {
    /// Open a span named `name`.
    pub fn new(recorder: &Arc<TraceMeRecorder>, name: impl Into<String>) -> Self {
        TraceMe {
            recorder: recorder.clone(),
            name: name.into(),
            start: simrt::now(),
            stats: Vec::new(),
        }
    }

    /// Attach an annotation.
    pub fn stat(&mut self, key: impl Into<String>, value: impl ToString) {
        self.stats.push((key.into(), value.to_string()));
    }
}

impl Drop for TraceMe {
    fn drop(&mut self) {
        self.recorder.record(HostEvent {
            name: std::mem::take(&mut self.name),
            start: self.start,
            end: simrt::now(),
            stats: std::mem::take(&mut self.stats),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrt::Sim;

    #[test]
    fn records_only_while_active() {
        let sim = Sim::new();
        let rec = Arc::new(TraceMeRecorder::new());
        let r2 = rec.clone();
        sim.spawn("worker", move || {
            {
                let _t = TraceMe::new(&r2, "before"); // inactive: dropped silently
                simrt::sleep(Duration::from_millis(1));
            }
            r2.start(Duration::ZERO);
            {
                let mut t = TraceMe::new(&r2, "op");
                t.stat("bytes", 42);
                simrt::sleep(Duration::from_millis(2));
            }
            r2.stop();
            {
                let _t = TraceMe::new(&r2, "after");
            }
        });
        sim.run();
        let map = rec.consume();
        assert_eq!(map.len(), 1);
        let evs = map.values().next().unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].name, "op");
        assert_eq!(evs[0].end - evs[0].start, Duration::from_millis(2));
        assert_eq!(evs[0].stats[0], ("bytes".into(), "42".into()));
    }

    #[test]
    fn per_event_overhead_costs_time() {
        let run = |overhead: Duration| {
            let sim = Sim::new();
            let rec = Arc::new(TraceMeRecorder::new());
            sim.spawn("w", move || {
                rec.start(overhead);
                for _ in 0..100 {
                    let _t = TraceMe::new(&rec, "op");
                }
                rec.stop();
            });
            sim.run();
            sim.now()
        };
        let cheap = run(Duration::ZERO);
        let dear = run(Duration::from_micros(3));
        assert_eq!((dear - cheap), Duration::from_micros(300));
    }

    #[test]
    fn export_groups_by_thread() {
        let sim = Sim::new();
        let rec = Arc::new(TraceMeRecorder::new());
        {
            let rec = rec.clone();
            sim.spawn("starter", move || {
                rec.start(Duration::ZERO);
            });
        }
        for i in 0..2 {
            let rec = rec.clone();
            sim.spawn(format!("w{i}"), move || {
                simrt::sleep(Duration::from_micros(10)); // after start
                let _t = TraceMe::new(&rec, "op");
            });
        }
        sim.run();
        let mut plane = XPlane {
            name: "/host:CPU".into(),
            ..Default::default()
        };
        rec.export_into(&mut plane);
        assert_eq!(plane.lines.len(), 2);
    }
}
