//! `tf.data`-style input pipelines.
//!
//! Reproduces the pipeline shape the paper instruments:
//! `from_files → map(capture_fn, num_parallel_calls) → batch → prefetch`.
//! The capture function performs the file I/O and preprocessing on worker
//! threads; `num_parallel_calls` may be fixed or `AUTOTUNE`; `prefetch(k)`
//! keeps up to `k` ready batches so input production overlaps GPU compute.
//!
//! Semantics matched to TensorFlow:
//! * the parallel map delivers elements **in order** with at most
//!   `num_parallel_calls` invocations in flight;
//! * `batch` groups consecutive elements, emitting a final partial batch;
//! * dropping the iterator cancels the pipeline (worker threads unwind).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use simrt::sync::{channel, Receiver, Semaphore};

use crate::runtime::TfRuntime;

/// One pipeline element (a preprocessed sample).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Element {
    /// Source index in the file list.
    pub index: usize,
    /// Bytes of raw input consumed to produce it.
    pub bytes: u64,
}

/// A batch of elements.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Batch {
    /// Number of elements.
    pub len: usize,
    /// Total raw input bytes.
    pub bytes: u64,
    /// Index of the last element (progress tracking).
    pub last_index: usize,
}

/// Parallelism of the map stage (`num_parallel_calls`).
#[derive(Clone, Debug)]
pub enum Parallelism {
    /// A fixed number of concurrent capture-function invocations.
    Fixed(usize),
    /// `tf.data.experimental.AUTOTUNE`: the runtime picks (resolved to the
    /// platform's core count; see DESIGN.md for the simplification note).
    Autotune,
    /// Externally adjustable at runtime — the control knob of the paper's
    /// §VII auto-tuning vision (`tfdarshan::IoAutoTuner` drives it from
    /// in-situ Darshan data).
    Dynamic(Arc<DynamicParallelism>),
}

impl Parallelism {
    fn resolve(&self, rt: &TfRuntime) -> usize {
        match self {
            Parallelism::Fixed(n) => (*n).max(1),
            Parallelism::Autotune => rt.cores,
            Parallelism::Dynamic(ctl) => ctl.max,
        }
    }

    fn dynamic_ctl(&self) -> Option<Arc<DynamicParallelism>> {
        match self {
            Parallelism::Dynamic(ctl) => Some(ctl.clone()),
            _ => None,
        }
    }
}

/// Shared control of a dynamically-sized worker pool: `max` workers exist;
/// workers with index ≥ the current target park until the target rises
/// (or the pipeline is cancelled).
#[derive(Debug)]
pub struct DynamicParallelism {
    /// Hard upper bound on concurrent invocations.
    pub max: usize,
    target: AtomicUsize,
    waiters: parking_lot::Mutex<Vec<simrt::TaskId>>,
}

impl DynamicParallelism {
    /// Create with an initial target and a maximum.
    pub fn new(initial: usize, max: usize) -> Arc<Self> {
        let max = max.max(1);
        Arc::new(DynamicParallelism {
            max,
            target: AtomicUsize::new(initial.clamp(1, max)),
            waiters: parking_lot::Mutex::new(Vec::new()),
        })
    }

    /// Current target.
    pub fn target(&self) -> usize {
        self.target.load(Ordering::SeqCst)
    }

    /// Change the target, waking parked workers.
    pub fn set_target(&self, n: usize) {
        self.target.store(n.clamp(1, self.max), Ordering::SeqCst);
        self.wake_all();
    }

    fn wake_all(&self) {
        for t in self.waiters.lock().drain(..) {
            simrt::wake(t);
        }
    }

    /// Park worker `i` until it is within the target (returns true), or
    /// until the pipeline is cancelled / the source exhausted (false).
    fn wait_active(&self, i: usize, cancelled: &AtomicBool, exhausted: impl Fn() -> bool) -> bool {
        loop {
            if cancelled.load(Ordering::SeqCst) || exhausted() {
                return false;
            }
            if i < self.target() {
                return true;
            }
            self.waiters.lock().push(simrt::current_task());
            simrt::block(None);
        }
    }
}

/// Epoch-order hint published by a pipeline for an online staging daemon
/// (the *clairvoyant* policy of `crates/prefetch`): ML training revisits
/// the same file list every epoch, so once the order is known a prefetcher
/// can stage files **ahead of** the consumer cursor instead of reacting to
/// misses. The pipeline updates the cursor as map workers claim indices;
/// the daemon reads `files()`/`cursor()` and stays ahead.
#[derive(Debug, Default)]
pub struct EpochOrder {
    files: parking_lot::Mutex<Arc<Vec<String>>>,
    cursor: AtomicUsize,
    epoch: AtomicUsize,
}

impl EpochOrder {
    /// New, empty hint (no order known yet).
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Publish the epoch's file order **before** the first `iterate()` —
    /// lets a clairvoyant daemon warm the fast tier during setup, ahead of
    /// any consumer. Does not bump the epoch counter.
    pub fn preload(&self, files: Arc<Vec<String>>) {
        *self.files.lock() = files;
    }

    /// The current epoch's file list, in visit order.
    pub fn files(&self) -> Arc<Vec<String>> {
        self.files.lock().clone()
    }

    /// Highest file index claimed by a map worker this epoch.
    pub fn cursor(&self) -> usize {
        self.cursor.load(Ordering::SeqCst)
    }

    /// Number of epochs started (a `preload` alone does not count).
    pub fn epoch(&self) -> usize {
        self.epoch.load(Ordering::SeqCst)
    }

    fn begin_epoch(&self, files: Arc<Vec<String>>) {
        *self.files.lock() = files;
        self.cursor.store(0, Ordering::SeqCst);
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    fn advance(&self, i: usize) {
        self.cursor.fetch_max(i, Ordering::SeqCst);
    }
}

/// Context handed to capture functions running on pipeline threads.
pub struct PipelineCtx {
    /// The runtime (process, recorder).
    pub rt: Arc<TfRuntime>,
}

/// The capture function of `tf.data.map`: reads + preprocesses one file.
pub type MapFn = Arc<dyn Fn(&PipelineCtx, usize, &str) -> Element + Send + Sync>;

/// A dataset definition (cheap to clone; nothing runs until
/// [`Dataset::iterate`]).
#[derive(Clone)]
pub struct Dataset {
    files: Arc<Vec<String>>,
    map_fn: Option<MapFn>,
    parallelism: Parallelism,
    batch: usize,
    prefetch: usize,
    order_hint: Option<Arc<EpochOrder>>,
}

impl Dataset {
    /// `tf.data.Dataset.from_tensor_slices(file_list)`.
    pub fn from_files(files: Vec<String>) -> Self {
        Dataset {
            files: Arc::new(files),
            map_fn: None,
            parallelism: Parallelism::Fixed(1),
            batch: 1,
            prefetch: 0,
            order_hint: None,
        }
    }

    /// `.map(capture_fn, num_parallel_calls=…)`.
    pub fn map(mut self, f: MapFn, parallelism: Parallelism) -> Self {
        self.map_fn = Some(f);
        self.parallelism = parallelism;
        self
    }

    /// `.batch(n)`.
    pub fn batch(mut self, n: usize) -> Self {
        assert!(n > 0, "batch size must be positive");
        self.batch = n;
        self
    }

    /// `.prefetch(k)`.
    pub fn prefetch(mut self, k: usize) -> Self {
        self.prefetch = k;
        self
    }

    /// Publish epoch order + consumer progress through `hint` so an online
    /// staging daemon can prefetch ahead of the pipeline (see
    /// [`EpochOrder`]). Each `iterate()` begins a new epoch on the hint.
    pub fn with_order_hint(mut self, hint: Arc<EpochOrder>) -> Self {
        self.order_hint = Some(hint);
        self
    }

    /// Number of source files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when the file list is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// The file list.
    pub fn files(&self) -> &Arc<Vec<String>> {
        &self.files
    }

    /// Materialize the pipeline: spawn worker/reorder/batch threads and
    /// return the consuming iterator. One pass over the file list (one
    /// epoch).
    pub fn iterate(&self, rt: &Arc<TfRuntime>) -> BatchIterator {
        let workers = self.parallelism.resolve(rt);
        let dyn_ctl = self.parallelism.dynamic_ctl();
        let map_fn = self.map_fn.clone().unwrap_or_else(|| {
            Arc::new(|_ctx: &PipelineCtx, index, _path: &str| Element { index, bytes: 0 })
        });

        if let Some(hint) = &self.order_hint {
            hint.begin_epoch(self.files.clone());
        }

        // Ordered parallel map: in-flight tickets bound concurrency; the
        // reorder stage emits in index order and returns tickets.
        let tickets = Arc::new(Semaphore::new(workers));
        let cancelled = Arc::new(AtomicBool::new(false));
        let next = Arc::new(AtomicUsize::new(0));
        let (etx, erx) = channel::<(usize, Element)>(None);
        for w in 0..workers {
            let tickets = tickets.clone();
            let cancelled = cancelled.clone();
            let next = next.clone();
            let etx = etx.clone();
            let files = self.files.clone();
            let map_fn = map_fn.clone();
            let ctx = PipelineCtx { rt: rt.clone() };
            let dyn_ctl = dyn_ctl.clone();
            let hint = self.order_hint.clone();
            rt.sim().spawn(format!("tf.data.map[{w}]"), move || {
                loop {
                    if let Some(ctl) = &dyn_ctl {
                        let done = || next.load(Ordering::SeqCst) >= files.len();
                        if !ctl.wait_active(w, &cancelled, done) {
                            break;
                        }
                    }
                    tickets.acquire();
                    if cancelled.load(Ordering::SeqCst) {
                        tickets.release();
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= files.len() {
                        tickets.release();
                        break;
                    }
                    if let Some(h) = &hint {
                        h.advance(i);
                    }
                    let elem = map_fn(&ctx, i, &files[i]);
                    if etx.send((i, elem)).is_err() {
                        break;
                    }
                }
                // Exiting (exhaustion or cancellation): release any peers
                // parked in the dynamic-parallelism lot so they can observe
                // the same condition and unwind.
                if let Some(ctl) = &dyn_ctl {
                    ctl.wake_all();
                }
            });
        }
        drop(etx);

        // Reorder stage.
        let (rtx, rrx) = channel::<Element>(Some(workers.max(1)));
        {
            let tickets = tickets.clone();
            let cancelled = cancelled.clone();
            let total_workers = workers;
            let dyn_ctl2 = dyn_ctl.clone();
            rt.sim().spawn("tf.data.reorder", move || {
                let mut buf = std::collections::BTreeMap::<usize, Element>::new();
                let mut expected = 0usize;
                let cleanup = |cancelled: &AtomicBool, tickets: &Semaphore| {
                    cancelled.store(true, Ordering::SeqCst);
                    // Unblock any worker parked on acquire or in the
                    // dynamic-parallelism lot.
                    tickets.release_many(total_workers);
                    if let Some(ctl) = &dyn_ctl2 {
                        ctl.wake_all();
                    }
                };
                while let Some((i, e)) = rrx_recv_guard(&erx) {
                    buf.insert(i, e);
                    while let Some(e) = buf.remove(&expected) {
                        tickets.release();
                        expected += 1;
                        if rtx.send(e).is_err() {
                            cleanup(&cancelled, &tickets);
                            return;
                        }
                    }
                }
                // Source exhausted: emit any ordered tail (there are no
                // gaps once all workers finished).
                while let Some(e) = buf.remove(&expected) {
                    tickets.release();
                    expected += 1;
                    if rtx.send(e).is_err() {
                        break;
                    }
                }
                cleanup(&cancelled, &tickets);
            });
        }

        // Batch (+ prefetch) stage: the output channel capacity is the
        // prefetch depth (ready batches waiting for the trainer).
        let (btx, brx) = channel::<Batch>(Some(self.prefetch.max(1)));
        {
            let batch_size = self.batch;
            rt.sim().spawn("tf.data.batch", move || {
                let mut cur = Batch::default();
                while let Some(e) = rrx.recv() {
                    cur.len += 1;
                    cur.bytes += e.bytes;
                    cur.last_index = e.index;
                    if cur.len == batch_size {
                        if btx.send(cur).is_err() {
                            return;
                        }
                        cur = Batch::default();
                    }
                }
                if cur.len > 0 {
                    let _ = btx.send(cur);
                }
            });
        }

        BatchIterator { rx: brx }
    }
}

// recv wrapper so the closure above reads naturally.
fn rrx_recv_guard(rx: &Receiver<(usize, Element)>) -> Option<(usize, Element)> {
    rx.recv()
}

/// The consuming end of a pipeline. Dropping it cancels the pipeline.
pub struct BatchIterator {
    rx: Receiver<Batch>,
}

impl BatchIterator {
    /// Wrap a ready batch channel (used by alternative sources such as
    /// [`crate::tfrecord::TfRecordDataset`]).
    pub fn from_receiver(rx: Receiver<Batch>) -> Self {
        BatchIterator { rx }
    }

    /// Next batch (blocks in virtual time), or `None` at end of epoch.
    #[allow(clippy::should_implement_trait)] // mirrors tf.data's GetNext
    pub fn next(&mut self) -> Option<Batch> {
        self.rx.recv()
    }

    /// Number of ready batches currently buffered (prefetch occupancy).
    pub fn buffered(&self) -> usize {
        self.rx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use posix_sim::Process;
    use simrt::Sim;
    use std::time::Duration;
    use storage_sim::StorageStack;

    fn runtime(sim: &Sim, cores: usize) -> Arc<TfRuntime> {
        TfRuntime::new(Process::new(StorageStack::new()), sim.clone(), cores)
    }

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("/d/{i}")).collect()
    }

    /// Capture fn that sleeps `cost_us` and tags the element.
    fn sleepy_map(cost_us: u64) -> MapFn {
        Arc::new(move |_ctx, index, _path| {
            simrt::sleep(Duration::from_micros(cost_us));
            Element { index, bytes: 100 }
        })
    }

    #[test]
    fn elements_are_batched_in_order() {
        let sim = Sim::new();
        let rt = runtime(&sim, 8);
        sim.spawn("consumer", move || {
            let ds = Dataset::from_files(names(10))
                .map(sleepy_map(10), Parallelism::Fixed(4))
                .batch(3)
                .prefetch(2);
            let mut it = ds.iterate(&rt);
            let mut batches = Vec::new();
            while let Some(b) = it.next() {
                batches.push(b);
            }
            assert_eq!(batches.len(), 4, "3+3+3+1");
            assert_eq!(batches[0].len, 3);
            assert_eq!(batches[0].last_index, 2);
            assert_eq!(batches[3].len, 1);
            assert_eq!(batches[3].last_index, 9);
            assert_eq!(batches.iter().map(|b| b.bytes).sum::<u64>(), 1000);
        });
        sim.run();
    }

    #[test]
    fn parallel_map_speeds_up_epoch() {
        let time_for = |workers: usize| {
            let sim = Sim::new();
            let rt = runtime(&sim, 16);
            sim.spawn("consumer", move || {
                let ds = Dataset::from_files(names(64))
                    .map(sleepy_map(1000), Parallelism::Fixed(workers))
                    .batch(8);
                let mut it = ds.iterate(&rt);
                while it.next().is_some() {}
            });
            sim.run();
            sim.now().as_secs_f64()
        };
        let one = time_for(1);
        let eight = time_for(8);
        let ratio = one / eight;
        assert!(
            (6.0..=8.5).contains(&ratio),
            "8 workers ≈ 8× on pure compute, got {ratio:.2}×"
        );
    }

    #[test]
    fn autotune_resolves_to_cores() {
        let sim = Sim::new();
        let rt = runtime(&sim, 4);
        sim.spawn("consumer", move || {
            let t0 = simrt::now();
            let ds = Dataset::from_files(names(16))
                .map(sleepy_map(1000), Parallelism::Autotune)
                .batch(16);
            let mut it = ds.iterate(&rt);
            while it.next().is_some() {}
            let dt = simrt::now() - t0;
            // 16 files / 4 cores × 1 ms = ~4 ms.
            assert!(dt >= Duration::from_millis(4) && dt < Duration::from_millis(6));
        });
        sim.run();
    }

    #[test]
    fn prefetch_depth_bounds_ready_batches() {
        let occupancy_for = |prefetch: usize| {
            let sim = Sim::new();
            let rt = runtime(&sim, 8);
            let seen = Arc::new(AtomicUsize::new(0));
            let s2 = seen.clone();
            sim.spawn("trainer", move || {
                let ds = Dataset::from_files(names(64))
                    .map(sleepy_map(1), Parallelism::Fixed(4))
                    .batch(4)
                    .prefetch(prefetch);
                let mut it = ds.iterate(&rt);
                it.next().unwrap();
                // Long GPU stall: the pipeline runs ahead, but only up to
                // the prefetch depth of ready batches.
                simrt::sleep(Duration::from_millis(100));
                s2.store(it.buffered(), Ordering::SeqCst);
                while it.next().is_some() {}
            });
            sim.run();
            seen.load(Ordering::SeqCst)
        };
        assert_eq!(occupancy_for(1), 1);
        assert_eq!(occupancy_for(4), 4);
        assert_eq!(occupancy_for(10), 10);
    }

    #[test]
    fn in_flight_bounded_by_parallelism() {
        let sim = Sim::new();
        let rt = runtime(&sim, 8);
        let peak = Arc::new(AtomicUsize::new(0));
        let cur = Arc::new(AtomicUsize::new(0));
        let (p2, c2) = (peak.clone(), cur.clone());
        let map: MapFn = Arc::new(move |_ctx, index, _path| {
            let c = c2.fetch_add(1, Ordering::SeqCst) + 1;
            p2.fetch_max(c, Ordering::SeqCst);
            simrt::sleep(Duration::from_micros(100));
            c2.fetch_sub(1, Ordering::SeqCst);
            Element { index, bytes: 0 }
        });
        sim.spawn("consumer", move || {
            let ds = Dataset::from_files(names(40))
                .map(map, Parallelism::Fixed(3))
                .batch(4);
            let mut it = ds.iterate(&rt);
            while it.next().is_some() {}
        });
        sim.run();
        assert!(peak.load(Ordering::SeqCst) <= 3);
        assert!(
            peak.load(Ordering::SeqCst) >= 2,
            "parallelism actually used"
        );
    }

    #[test]
    fn dropping_iterator_cancels_pipeline() {
        let sim = Sim::new();
        let rt = runtime(&sim, 8);
        sim.spawn("consumer", move || {
            let ds = Dataset::from_files(names(1000))
                .map(sleepy_map(100), Parallelism::Fixed(4))
                .batch(10)
                .prefetch(2);
            let mut it = ds.iterate(&rt);
            // Take only 3 batches of the 100 available, then drop.
            for _ in 0..3 {
                it.next().unwrap();
            }
            drop(it);
        });
        // Must terminate (all pipeline threads unwind) — sim.run() would
        // deadlock-panic otherwise.
        sim.run();
    }

    #[test]
    fn empty_dataset_yields_nothing() {
        let sim = Sim::new();
        let rt = runtime(&sim, 2);
        sim.spawn("consumer", move || {
            let ds = Dataset::from_files(vec![])
                .map(sleepy_map(1), Parallelism::Fixed(2))
                .batch(4);
            let mut it = ds.iterate(&rt);
            assert!(it.next().is_none());
        });
        sim.run();
    }

    #[test]
    fn unordered_completion_still_delivers_in_order() {
        // Element i sleeps (10 - i) ms: later elements finish earlier.
        let sim = Sim::new();
        let rt = runtime(&sim, 8);
        let map: MapFn = Arc::new(move |_ctx, index, _path| {
            simrt::sleep(Duration::from_millis(10 - index as u64));
            Element { index, bytes: 1 }
        });
        sim.spawn("consumer", move || {
            let ds = Dataset::from_files(names(10))
                .map(map, Parallelism::Fixed(10))
                .batch(1);
            let mut it = ds.iterate(&rt);
            let mut seen = Vec::new();
            while let Some(b) = it.next() {
                seen.push(b.last_index);
            }
            assert_eq!(seen, (0..10).collect::<Vec<_>>());
        });
        sim.run();
    }
}
