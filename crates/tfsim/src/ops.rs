//! TensorFlow kernel ops used by the workloads.
//!
//! [`read_file`] is the key one: TensorFlow's `tf.io.read_file` /
//! `PosixRandomAccessFile` reads a file with a loop of `pread`s that only
//! terminates when `pread` returns zero — the source of the "every file
//! ends with a zero-length read" signature the paper discovers in Fig. 8
//! ("Upon examining the TensorFlow source code, the read file operation
//! consists of a loop that performs `pread`. The function returns only
//! upon `pread` returning zero.").

use std::sync::Arc;
use std::time::Duration;

use posix_sim::{OpenFlags, PosixResult};
use storage_sim::WritePayload;

use crate::runtime::TfRuntime;
use crate::traceme::TraceMe;

/// Maximum bytes per `pread` issued by `ReadFile` (TF reads large files in
/// segments; the paper observes reads clustering at and below 1 MB).
pub const READ_CHUNK: u64 = 1 << 20;

/// `tf.io.read_file`: open, `pread` until zero, close. Returns total bytes.
pub fn read_file(rt: &Arc<TfRuntime>, path: &str) -> PosixResult<u64> {
    let mut span = TraceMe::new(rt.recorder(), "ReadFile");
    span.stat("path", path);
    let p = rt.process();
    let fd = p.open(path, OpenFlags::rdonly())?;
    let mut off = 0u64;
    loop {
        let n = p.pread(fd, off, READ_CHUNK, None)?;
        if n == 0 {
            break;
        }
        off += n;
    }
    p.close(fd)?;
    span.stat("bytes", off);
    Ok(off)
}

/// A CPU preprocessing op (decode, resize, ...): pure compute, traced.
pub fn compute(rt: &Arc<TfRuntime>, name: &str, cost: Duration) {
    let _span = TraceMe::new(rt.recorder(), name);
    if !cost.is_zero() {
        simrt::sleep(cost);
    }
}

/// `tf.train.Checkpoint.save` through Keras' `ModelCheckpoint`: variables
/// are serialized through STDIO `fwrite` (the paper's §IV.D observes the
/// checkpoint traffic on Darshan's STDIO layer). Writes each variable in
/// `chunk`-byte `fwrite` calls.
pub fn save_checkpoint(
    rt: &Arc<TfRuntime>,
    path: &str,
    variables: &[u64],
    chunk: u64,
) -> PosixResult<u64> {
    assert!(chunk > 0);
    let mut span = TraceMe::new(rt.recorder(), "SaveV2");
    span.stat("path", path);
    let p = rt.process();
    let s = p.fopen(path, "w")?;
    let mut total = 0u64;
    let mut fwrites = 0u64;
    for &var in variables {
        let mut left = var;
        while left > 0 {
            let n = left.min(chunk);
            p.fwrite(s, WritePayload::Synthetic(n))?;
            left -= n;
            total += n;
            fwrites += 1;
        }
    }
    p.fclose(s)?;
    span.stat("bytes", total);
    Ok(fwrites)
}

/// Restore a checkpoint: `fread` the file back in `chunk`-byte calls.
pub fn restore_checkpoint(rt: &Arc<TfRuntime>, path: &str, chunk: u64) -> PosixResult<u64> {
    let _span = TraceMe::new(rt.recorder(), "RestoreV2");
    let p = rt.process();
    let s = p.fopen(path, "r")?;
    let mut total = 0u64;
    loop {
        let n = p.fread(s, chunk, None)?;
        if n == 0 {
            break;
        }
        total += n;
    }
    p.fclose(s)?;
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use posix_sim::Process;
    use simrt::Sim;
    use storage_sim::{
        Device, DeviceSpec, FileSystem, LocalFs, LocalFsParams, PageCache, StorageStack,
    };

    fn fixture(sim: &Sim) -> (Arc<TfRuntime>, Arc<LocalFs>) {
        let fs = LocalFs::new(
            Device::new(DeviceSpec::sata_ssd("ssd0")),
            Arc::new(PageCache::new(1 << 30)),
            LocalFsParams::default(),
        );
        let stack = StorageStack::new();
        stack.mount("/data", fs.clone() as Arc<dyn FileSystem>);
        (TfRuntime::new(Process::new(stack), sim.clone(), 8), fs)
    }

    #[test]
    fn read_file_small_is_one_read_plus_zero_probe() {
        let sim = Sim::new();
        let (rt, fs) = fixture(&sim);
        fs.create_synthetic("/data/img", 88 * 1024, 1).unwrap();
        sim.spawn("t", move || {
            assert_eq!(read_file(&rt, "/data/img").unwrap(), 88 * 1024);
        });
        sim.run();
        // Device sees the cold inode block + one data read; the
        // zero-length probe is syscall-only.
        assert_eq!(fs.device().snapshot().reads, 2);
    }

    #[test]
    fn read_file_large_is_segmented() {
        let sim = Sim::new();
        let (rt, fs) = fixture(&sim);
        fs.create_synthetic("/data/mal", 4 << 20, 1).unwrap();
        sim.spawn("t", move || {
            assert_eq!(read_file(&rt, "/data/mal").unwrap(), 4 << 20);
        });
        sim.run();
        assert_eq!(
            fs.device().snapshot().reads,
            5,
            "cold inode block + 4 MiB in 1 MiB preads"
        );
    }

    #[test]
    fn read_file_missing_errors() {
        let sim = Sim::new();
        let (rt, _fs) = fixture(&sim);
        sim.spawn("t", move || {
            assert!(read_file(&rt, "/data/nope").is_err());
        });
        sim.run();
    }

    #[test]
    fn checkpoint_fwrite_count_matches_chunking() {
        let sim = Sim::new();
        let (rt, _fs) = fixture(&sim);
        sim.spawn("t", move || {
            // 3 variables of 5 MB at 2 MB chunks → 3+3+3 = 9 fwrites.
            let vars = [5 << 20, 5 << 20, 5 << 20];
            let fwrites = save_checkpoint(&rt, "/data/ckpt-1", &vars, 2 << 20).unwrap();
            assert_eq!(fwrites, 9);
            let p = rt.process();
            assert_eq!(p.stat("/data/ckpt-1").unwrap().size, 15 << 20);
            let back = restore_checkpoint(&rt, "/data/ckpt-1", 1 << 20).unwrap();
            assert_eq!(back, 15 << 20);
        });
        sim.run();
    }

    #[test]
    fn compute_charges_and_traces() {
        let sim = Sim::new();
        let (rt, _fs) = fixture(&sim);
        sim.spawn("t", move || {
            rt.recorder().start(Duration::ZERO);
            let t0 = simrt::now();
            compute(&rt, "DecodeJpeg", Duration::from_millis(8));
            assert_eq!(simrt::now() - t0, Duration::from_millis(8));
            rt.recorder().stop();
            let evs = rt.recorder().consume();
            assert_eq!(evs.values().next().unwrap()[0].name, "DecodeJpeg");
        });
        sim.run();
    }
}
