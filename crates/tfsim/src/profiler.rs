//! The profiler plugin interface (TensorFlow 2.2's `ProfilerInterface`).
//!
//! TensorFlow 2.2 made tracers modular: the runtime manages session
//! start/stop and data collection, while tracers (host CPU, CUPTI for
//! GPUs — and, with this paper, Darshan) do the source-specific work.
//! tf-Darshan's `DarshanTracer` implements [`Tracer`] in the `tfdarshan`
//! crate and registers through [`TracerFactory`].
//!
//! All three invocation styles from the paper are supported:
//! * **automatically** via the Keras TensorBoard callback
//!   ([`crate::model::TensorBoardCallback`], `profile_batch` range);
//! * **manually** via `TfRuntime::profiler_start` / `profiler_stop`;
//! * **interactively** via [`ProfilerServer`].

use std::sync::Arc;
use std::time::Duration;

use crate::runtime::TfRuntime;
use crate::trace::XSpace;

/// Options of a profiling session.
#[derive(Clone, Debug)]
pub struct ProfilerOptions {
    /// Cost charged per recorded TraceMe host event.
    pub traceme_overhead: Duration,
    /// Cost charged per traced graph op per training step (host tracing of
    /// executor ops + CUPTI callbacks). This is what makes the "TF
    /// Profiler" bars of Fig. 5 nonzero.
    pub per_graph_op_overhead: Duration,
}

impl Default for ProfilerOptions {
    fn default() -> Self {
        ProfilerOptions {
            traceme_overhead: Duration::from_nanos(400),
            per_graph_op_overhead: Duration::from_micros(3),
        }
    }
}

/// Errors of the session state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProfilerError {
    /// `start` while a session is running.
    AlreadyActive,
    /// `stop` without a session.
    NotActive,
}

impl std::fmt::Display for ProfilerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfilerError::AlreadyActive => write!(f, "profiler already active"),
            ProfilerError::NotActive => write!(f, "no active profiling session"),
        }
    }
}

/// A pluggable tracer: started implicitly at session start (factory
/// `create`), stopped and drained at session stop.
pub trait Tracer: Send + Sync {
    /// Tracer name (diagnostics).
    fn name(&self) -> &str;
    /// Stop collecting.
    fn stop(&self);
    /// Export collected data into the session's `XSpace`.
    fn collect(&self, space: &mut XSpace);
}

/// Creates a tracer per profiling session.
pub trait TracerFactory: Send + Sync {
    /// Create a tracer for a new session (`None` to sit this session out).
    fn create(&self, rt: &Arc<TfRuntime>, options: &ProfilerOptions) -> Option<Arc<dyn Tracer>>;
}

/// The "interactive" mode: TensorBoard connects over a socket and toggles
/// profiling on a running program (`tf.profiler.experimental.server.start`).
/// The socket is elided; the control surface is the same.
pub struct ProfilerServer {
    rt: Arc<TfRuntime>,
    port: u16,
}

impl ProfilerServer {
    /// Start a profiler server for `rt` on `port`.
    pub fn start(rt: Arc<TfRuntime>, port: u16) -> Self {
        ProfilerServer { rt, port }
    }

    /// The port the server listens on.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Remote "capture profile" request: begin a session.
    pub fn remote_start(&self, options: ProfilerOptions) -> Result<(), ProfilerError> {
        self.rt.profiler_start(options)
    }

    /// Remote stop: end the session, returning the trace that would be
    /// shipped back to TensorBoard.
    pub fn remote_stop(&self) -> Result<XSpace, ProfilerError> {
        self.rt.profiler_stop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traceme::TraceMe;
    use parking_lot::Mutex;
    use posix_sim::Process;
    use simrt::Sim;
    use storage_sim::StorageStack;

    fn runtime(sim: &Sim) -> Arc<TfRuntime> {
        let stack = StorageStack::new();
        TfRuntime::new(Process::new(stack), sim.clone(), 8)
    }

    struct DummyTracer {
        stopped: Mutex<bool>,
    }

    impl Tracer for DummyTracer {
        fn name(&self) -> &str {
            "dummy"
        }
        fn stop(&self) {
            *self.stopped.lock() = true;
        }
        fn collect(&self, space: &mut XSpace) {
            assert!(*self.stopped.lock(), "collect after stop");
            space.plane_mut("/dummy");
        }
    }

    struct DummyFactory;
    impl TracerFactory for DummyFactory {
        fn create(&self, _rt: &Arc<TfRuntime>, _o: &ProfilerOptions) -> Option<Arc<dyn Tracer>> {
            Some(Arc::new(DummyTracer {
                stopped: Mutex::new(false),
            }))
        }
    }

    #[test]
    fn session_lifecycle_and_tracer_plumbing() {
        let sim = Sim::new();
        let rt = runtime(&sim);
        sim.spawn("t", move || {
            rt.register_tracer_factory(Arc::new(DummyFactory));
            assert_eq!(rt.profiler_stop().unwrap_err(), ProfilerError::NotActive);
            rt.profiler_start(ProfilerOptions::default()).unwrap();
            assert!(rt.profiling_active());
            assert_eq!(
                rt.profiler_start(ProfilerOptions::default()).unwrap_err(),
                ProfilerError::AlreadyActive
            );
            {
                let _span = TraceMe::new(rt.recorder(), "an_op");
            }
            let space = rt.profiler_stop().unwrap();
            assert!(!rt.profiling_active());
            assert!(space.plane("/dummy").is_some());
            let host = space.plane("/host:CPU").unwrap();
            assert_eq!(host.lines.len(), 1);
            assert_eq!(host.lines[0].events[0].name, "an_op");
            // Sessions are restartable.
            rt.profiler_start(ProfilerOptions::default()).unwrap();
            let space2 = rt.profiler_stop().unwrap();
            assert_eq!(
                space2
                    .plane("/host:CPU")
                    .map(|p| p.lines.len())
                    .unwrap_or(0),
                0,
                "second session starts clean"
            );
        });
        sim.run();
    }

    #[test]
    fn interactive_server_start_stop() {
        let sim = Sim::new();
        let rt = runtime(&sim);
        sim.spawn("t", move || {
            let srv = ProfilerServer::start(rt.clone(), 6009);
            assert_eq!(srv.port(), 6009);
            srv.remote_start(ProfilerOptions::default()).unwrap();
            assert!(rt.profiling_active());
            let space = srv.remote_stop().unwrap();
            assert_eq!(space.event_count(), 0);
        });
        sim.run();
    }
}
