//! Trace containers mirroring TensorFlow's `XSpace` protobuf
//! (`tensorflow/core/profiler/protobuf/xplane.proto`), plus the
//! chrome-trace JSON export that TensorBoard's TraceViewer consumes
//! (`trace.json.gz` in the paper's Fig. 1 — we emit uncompressed JSON).

use serde::{Deserialize, Serialize};

/// A key/value annotation on an event (XStat).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct XStat {
    /// Stat name (e.g. `bytes`, `offset`).
    pub name: String,
    /// Stringified value.
    pub value: String,
}

/// A timed event on a line.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct XEvent {
    /// Event name (op name, POSIX call, ...).
    pub name: String,
    /// Start, nanoseconds on the virtual clock.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Annotations.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub stats: Vec<XStat>,
}

impl XEvent {
    /// Construct with no stats.
    pub fn new(name: impl Into<String>, start_ns: u64, dur_ns: u64) -> Self {
        XEvent {
            name: name.into(),
            start_ns,
            dur_ns,
            stats: Vec::new(),
        }
    }

    /// Add a stat (builder style).
    pub fn with_stat(mut self, name: impl Into<String>, value: impl ToString) -> Self {
        self.stats.push(XStat {
            name: name.into(),
            value: value.to_string(),
        });
        self
    }
}

/// A named timeline (one thread, one file, one GPU stream, ...).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct XLine {
    /// Display name of the timeline.
    pub name: String,
    /// Events, sorted by start time on export.
    pub events: Vec<XEvent>,
}

/// A plane groups the lines of one data source (host tracer, Darshan, ...).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct XPlane {
    /// Plane name, e.g. `/host:CPU` or `/darshan:POSIX`.
    pub name: String,
    /// Timelines.
    pub lines: Vec<XLine>,
}

impl XPlane {
    /// Get (or create) a line by name.
    pub fn line_mut(&mut self, name: &str) -> &mut XLine {
        if let Some(i) = self.lines.iter().position(|l| l.name == name) {
            return &mut self.lines[i];
        }
        self.lines.push(XLine {
            name: name.to_string(),
            events: Vec::new(),
        });
        self.lines.last_mut().expect("just pushed")
    }
}

/// The whole trace of one profiling session.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct XSpace {
    /// All planes.
    pub planes: Vec<XPlane>,
}

impl XSpace {
    /// Get (or create) a plane by name.
    pub fn plane_mut(&mut self, name: &str) -> &mut XPlane {
        if let Some(i) = self.planes.iter().position(|p| p.name == name) {
            return &mut self.planes[i];
        }
        self.planes.push(XPlane {
            name: name.to_string(),
            lines: Vec::new(),
        });
        self.planes.last_mut().expect("just pushed")
    }

    /// Find a plane.
    pub fn plane(&self, name: &str) -> Option<&XPlane> {
        self.planes.iter().find(|p| p.name == name)
    }

    /// Total number of events across all planes.
    pub fn event_count(&self) -> usize {
        self.planes
            .iter()
            .flat_map(|p| &p.lines)
            .map(|l| l.events.len())
            .sum()
    }

    /// Sort all lines' events by start time (stable export order).
    pub fn normalize(&mut self) {
        for p in &mut self.planes {
            p.lines.sort_by(|a, b| a.name.cmp(&b.name));
            for l in &mut p.lines {
                l.events
                    .sort_by_key(|e| (e.start_ns, e.dur_ns, e.name.clone()));
            }
        }
        self.planes.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Export in chrome trace-event format (what TraceViewer loads).
    /// Planes become processes; lines become threads.
    pub fn to_chrome_trace(&self) -> serde_json::Value {
        let mut events = Vec::new();
        for (pid, plane) in self.planes.iter().enumerate() {
            events.push(serde_json::json!({
                "ph": "M", "pid": pid, "name": "process_name",
                "args": {"name": plane.name},
            }));
            for (tid, line) in plane.lines.iter().enumerate() {
                events.push(serde_json::json!({
                    "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
                    "args": {"name": line.name},
                }));
                for e in &line.events {
                    let args: serde_json::Map<String, serde_json::Value> = e
                        .stats
                        .iter()
                        .map(|s| (s.name.clone(), serde_json::Value::from(s.value.clone())))
                        .collect();
                    events.push(serde_json::json!({
                        "ph": "X",
                        "pid": pid,
                        "tid": tid,
                        "name": e.name,
                        "ts": e.start_ns as f64 / 1e3,
                        "dur": e.dur_ns as f64 / 1e3,
                        "args": args,
                    }));
                }
            }
        }
        serde_json::json!({ "traceEvents": events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_and_line_upsert() {
        let mut s = XSpace::default();
        s.plane_mut("/host:CPU")
            .line_mut("t0")
            .events
            .push(XEvent::new("a", 10, 5));
        s.plane_mut("/host:CPU")
            .line_mut("t0")
            .events
            .push(XEvent::new("b", 0, 5));
        s.plane_mut("/host:CPU").line_mut("t1");
        assert_eq!(s.planes.len(), 1);
        assert_eq!(s.planes[0].lines.len(), 2);
        assert_eq!(s.event_count(), 2);
        s.normalize();
        assert_eq!(s.planes[0].lines[0].events[0].name, "b");
    }

    #[test]
    fn chrome_trace_shape() {
        let mut s = XSpace::default();
        s.plane_mut("/darshan:POSIX")
            .line_mut("/data/f1")
            .events
            .push(XEvent::new("pread", 1_000, 2_000).with_stat("bytes", 88_000));
        let j = s.to_chrome_trace();
        let evs = j["traceEvents"].as_array().unwrap();
        // 2 metadata + 1 X event.
        assert_eq!(evs.len(), 3);
        let x = &evs[2];
        assert_eq!(x["ph"], "X");
        assert_eq!(x["ts"], 1.0);
        assert_eq!(x["dur"], 2.0);
        assert_eq!(x["args"]["bytes"], "88000");
    }

    #[test]
    fn serde_roundtrip() {
        let mut s = XSpace::default();
        s.plane_mut("/p")
            .line_mut("l")
            .events
            .push(XEvent::new("e", 5, 6).with_stat("k", "v"));
        let text = serde_json::to_string(&s).unwrap();
        let back: XSpace = serde_json::from_str(&text).unwrap();
        assert_eq!(back, s);
    }
}
