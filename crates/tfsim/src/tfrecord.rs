//! TFRecord-style data containers (paper §VII: "One way to improve
//! bandwidth performance is to use data containers such as TFRecord that
//! contains multiple data samples. However, the preparation of such
//! containers still requires a separate preprocessing step with I/O for
//! each sample.").
//!
//! The on-disk framing follows the real TFRecord format: per record a
//! 12-byte header (length u64 + masked CRC32 of the length) and a 4-byte
//! payload CRC trailer. Reading goes through a 256 KB buffered input
//! stream, so the device sees large sequential `pread`s instead of one
//! open + small read per sample — exactly the access-pattern change the
//! paper's discussion predicts Darshan would reward.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use posix_sim::{OpenFlags, PosixResult};
use storage_sim::WritePayload;

use crate::data::{Batch, BatchIterator, Element};
use crate::runtime::TfRuntime;
use crate::traceme::TraceMe;

/// Per-record framing overhead: u64 length + u32 length-CRC + u32 data-CRC.
pub const RECORD_OVERHEAD: u64 = 8 + 4 + 4;

/// Read-buffer size of the record reader (TF's default input buffer).
pub const READER_BUFFER: u64 = 256 * 1024;

/// One packed shard: its path and the payload length of each record.
#[derive(Clone, Debug)]
pub struct TfRecordShard {
    /// Shard file path.
    pub path: String,
    /// Payload sizes, in record order.
    pub record_lens: Vec<u64>,
}

impl TfRecordShard {
    /// Total bytes of the shard file (payloads + framing).
    pub fn file_bytes(&self) -> u64 {
        self.record_lens.iter().map(|l| l + RECORD_OVERHEAD).sum()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.record_lens.len()
    }

    /// True when the shard holds no records.
    pub fn is_empty(&self) -> bool {
        self.record_lens.is_empty()
    }
}

/// Writes records into a shard file through the POSIX layer (the timed
/// "separate preprocessing step" of the paper's discussion).
pub struct TfRecordWriter {
    rt: Arc<TfRuntime>,
    fd: posix_sim::Fd,
    path: String,
    record_lens: Vec<u64>,
    written: u64,
}

impl TfRecordWriter {
    /// Create (truncate) a shard at `path`.
    pub fn create(rt: &Arc<TfRuntime>, path: &str) -> PosixResult<Self> {
        let fd = rt.process().open(path, OpenFlags::wronly_create_trunc())?;
        Ok(TfRecordWriter {
            rt: rt.clone(),
            fd,
            path: path.to_string(),
            record_lens: Vec::new(),
            written: 0,
        })
    }

    /// Append one record of `payload_len` bytes (header + payload + CRC).
    pub fn append(&mut self, payload_len: u64) -> PosixResult<()> {
        let total = payload_len + RECORD_OVERHEAD;
        self.rt
            .process()
            .write(self.fd, WritePayload::Synthetic(total))?;
        self.record_lens.push(payload_len);
        self.written += total;
        Ok(())
    }

    /// Bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.written
    }

    /// Close the shard and return its descriptor.
    pub fn finish(self) -> PosixResult<TfRecordShard> {
        self.rt.process().close(self.fd)?;
        Ok(TfRecordShard {
            path: self.path,
            record_lens: self.record_lens,
        })
    }
}

/// Pack existing sample files into shards of roughly `shard_bytes` each:
/// reads every input (one `ReadFile` each — the per-sample I/O cost the
/// paper notes) and appends it as one record. Returns the shards.
pub fn pack_files(
    rt: &Arc<TfRuntime>,
    files: &[String],
    shard_bytes: u64,
    dst_prefix: &str,
) -> PosixResult<Vec<TfRecordShard>> {
    let mut shards = Vec::new();
    let mut writer: Option<TfRecordWriter> = None;
    let mut shard_idx = 0usize;
    for path in files {
        let bytes = crate::ops::read_file(rt, path)?;
        let w = match writer.as_mut() {
            Some(w) if w.bytes_written() < shard_bytes => w,
            _ => {
                if let Some(w) = writer.take() {
                    shards.push(w.finish()?);
                }
                let shard_path = format!("{dst_prefix}/shard-{shard_idx:05}.tfrecord");
                shard_idx += 1;
                writer = Some(TfRecordWriter::create(rt, &shard_path)?);
                writer.as_mut().expect("just set")
            }
        };
        w.append(bytes)?;
    }
    if let Some(w) = writer.take() {
        shards.push(w.finish()?);
    }
    Ok(shards)
}

/// A `TFRecordDataset`-like source: shards are read sequentially through
/// a 256 KB buffered stream; up to `parallelism` shards are consumed
/// concurrently (file-level interleave); each record pays `decode`.
/// Record delivery order across shards is interleaved (as with
/// `num_parallel_reads > 1` in TensorFlow).
pub struct TfRecordDataset {
    shards: Arc<Vec<TfRecordShard>>,
    parallelism: usize,
    decode: Arc<dyn Fn(u64) -> Duration + Send + Sync>,
    decode_workers: usize,
    batch: usize,
    prefetch: usize,
}

impl TfRecordDataset {
    /// Build from shards.
    pub fn new(shards: Vec<TfRecordShard>) -> Self {
        TfRecordDataset {
            shards: Arc::new(shards),
            parallelism: 1,
            decode: Arc::new(|_| Duration::ZERO),
            decode_workers: 0,
            batch: 1,
            prefetch: 0,
        }
    }

    /// Number of shards read concurrently (`num_parallel_reads`).
    pub fn parallel_reads(mut self, n: usize) -> Self {
        self.parallelism = n.max(1);
        self
    }

    /// Per-record decode cost as a function of the payload size. With no
    /// [`TfRecordDataset::decode_parallelism`], decode runs inline on the
    /// shard readers.
    pub fn decode_cost(mut self, f: impl Fn(u64) -> Duration + Send + Sync + 'static) -> Self {
        self.decode = Arc::new(f);
        self
    }

    /// Run decode on a separate parallel-map stage of `n` workers (the
    /// `.map(decode, num_parallel_calls=n)` TensorFlow places after a
    /// `TFRecordDataset`), instead of inline on the readers.
    pub fn decode_parallelism(mut self, n: usize) -> Self {
        self.decode_workers = n;
        self
    }

    /// `.batch(n)`.
    pub fn batch(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.batch = n;
        self
    }

    /// `.prefetch(k)`.
    pub fn prefetch(mut self, k: usize) -> Self {
        self.prefetch = k;
        self
    }

    /// Total records across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True when no records exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spawn the reader pipeline and return the batch iterator.
    pub fn iterate(&self, rt: &Arc<TfRuntime>) -> BatchIterator {
        let inline_decode = self.decode_workers == 0;
        let (etx, erx) = simrt::sync::channel::<Element>(Some(self.parallelism * 4));
        let next_shard = Arc::new(AtomicUsize::new(0));
        for w in 0..self.parallelism.min(self.shards.len().max(1)) {
            let shards = self.shards.clone();
            let next = next_shard.clone();
            let etx = etx.clone();
            let rt2 = rt.clone();
            let decode = if inline_decode {
                Some(self.decode.clone())
            } else {
                None
            };
            rt.sim()
                .spawn(format!("tfrecord.reader[{w}]"), move || loop {
                    let s = next.fetch_add(1, Ordering::SeqCst);
                    if s >= shards.len() {
                        break;
                    }
                    if read_shard(&rt2, &shards[s], decode.as_ref(), &etx).is_err() {
                        break;
                    }
                });
        }
        drop(etx);

        // Optional separate decode stage (parallel map over raw records).
        let erx = if inline_decode {
            erx
        } else {
            let (dtx, drx) = simrt::sync::channel::<Element>(Some(self.decode_workers * 2));
            for w in 0..self.decode_workers {
                let erx = erx.clone();
                let dtx = dtx.clone();
                let rt2 = rt.clone();
                let decode = self.decode.clone();
                rt.sim().spawn(format!("tfrecord.decode[{w}]"), move || {
                    while let Some(e) = erx.recv() {
                        let cost = decode(e.bytes);
                        if !cost.is_zero() {
                            crate::ops::compute(&rt2, "DecodeRecord", cost);
                        }
                        if dtx.send(e).is_err() {
                            break;
                        }
                    }
                });
            }
            drx
        };

        let (btx, brx) = simrt::sync::channel::<Batch>(Some(self.prefetch.max(1)));
        let batch_size = self.batch;
        rt.sim().spawn("tfrecord.batch", move || {
            let mut cur = Batch::default();
            while let Some(e) = erx.recv() {
                cur.len += 1;
                cur.bytes += e.bytes;
                cur.last_index = e.index;
                if cur.len == batch_size {
                    if btx.send(cur).is_err() {
                        return;
                    }
                    cur = Batch::default();
                }
            }
            if cur.len > 0 {
                let _ = btx.send(cur);
            }
        });
        BatchIterator::from_receiver(brx)
    }
}

/// Read one shard sequentially through the buffered stream, emitting an
/// element per record. Errors (including a dropped consumer) end the read.
fn read_shard(
    rt: &Arc<TfRuntime>,
    shard: &TfRecordShard,
    decode: Option<&Arc<dyn Fn(u64) -> Duration + Send + Sync>>,
    out: &simrt::sync::Sender<Element>,
) -> Result<(), ()> {
    let mut span = TraceMe::new(rt.recorder(), "TFRecordDataset");
    span.stat("shard", &shard.path);
    let p = rt.process();
    let fd = p.open(&shard.path, OpenFlags::rdonly()).map_err(|_| ())?;
    let total = shard.file_bytes();
    let mut fetched = 0u64; // bytes pulled from the device/buffer
    let mut consumed = 0u64; // bytes attributed to completed records
    let mut emitted = 0usize;
    while emitted < shard.record_lens.len() {
        // Refill the 256 KB stream buffer when the next record crosses it.
        let need = shard.record_lens[emitted] + RECORD_OVERHEAD;
        while fetched < (consumed + need).min(total) {
            let n = p.pread(fd, fetched, READER_BUFFER, None).map_err(|_| ())?;
            if n == 0 {
                break;
            }
            fetched += n;
        }
        // Emit every record now fully resident.
        while emitted < shard.record_lens.len() {
            let len = shard.record_lens[emitted];
            if consumed + len + RECORD_OVERHEAD > fetched {
                break;
            }
            consumed += len + RECORD_OVERHEAD;
            if let Some(decode) = decode {
                let cost = decode(len);
                if !cost.is_zero() {
                    crate::ops::compute(rt, "DecodeRecord", cost);
                }
            }
            if out
                .send(Element {
                    index: emitted,
                    bytes: len,
                })
                .is_err()
            {
                let _ = p.close(fd);
                return Err(());
            }
            emitted += 1;
        }
    }
    p.close(fd).map_err(|_| ())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use posix_sim::Process;
    use simrt::Sim;
    use storage_sim::{
        Device, DeviceSpec, FileSystem, LocalFs, LocalFsParams, PageCache, StorageStack,
    };

    fn fixture_on(sim: &Sim, spec: DeviceSpec) -> (Arc<TfRuntime>, Arc<LocalFs>) {
        let fs = LocalFs::new(
            Device::new(spec),
            Arc::new(PageCache::new(1 << 30)),
            LocalFsParams::default(),
        );
        let stack = StorageStack::new();
        stack.mount("/data", fs.clone() as Arc<dyn FileSystem>);
        (TfRuntime::new(Process::new(stack), sim.clone(), 8), fs)
    }

    fn fixture(sim: &Sim) -> (Arc<TfRuntime>, Arc<LocalFs>) {
        fixture_on(sim, DeviceSpec::hdd("sda"))
    }

    #[test]
    fn pack_then_read_roundtrip_counts() {
        let sim = Sim::new();
        let (rt, fs) = fixture(&sim);
        for i in 0..40u64 {
            fs.create_synthetic(&format!("/data/src/{i}"), 50_000 + i, i)
                .unwrap();
        }
        let h = sim.spawn("t", move || {
            let files: Vec<String> = (0..40).map(|i| format!("/data/src/{i}")).collect();
            let shards = pack_files(&rt, &files, 1 << 20, "/data/packed").unwrap();
            assert!(shards.len() >= 2, "got {} shards", shards.len());
            let total_records: usize = shards.iter().map(|s| s.len()).sum();
            assert_eq!(total_records, 40);

            let ds = TfRecordDataset::new(shards).batch(8).prefetch(2);
            assert_eq!(ds.len(), 40);
            let mut it = ds.iterate(&rt);
            let mut records = 0usize;
            let mut bytes = 0u64;
            while let Some(b) = it.next() {
                records += b.len;
                bytes += b.bytes;
            }
            assert_eq!(records, 40);
            let expect: u64 = (0..40u64).map(|i| 50_000 + i).sum();
            assert_eq!(bytes, expect, "payload bytes roundtrip");
        });
        sim.run();
        h.join();
    }

    #[test]
    fn reader_issues_large_sequential_reads() {
        let sim = Sim::new();
        let (rt, fs) = fixture(&sim);
        // One 4 MB shard of 64 records.
        let lens: Vec<u64> = vec![64_000; 64];
        let total: u64 = lens.iter().map(|l| l + RECORD_OVERHEAD).sum();
        fs.create_synthetic("/data/s.tfrecord", total, 7).unwrap();
        let shard = TfRecordShard {
            path: "/data/s.tfrecord".into(),
            record_lens: lens,
        };
        sim.spawn("t", move || {
            let ds = TfRecordDataset::new(vec![shard]).batch(64);
            let mut it = ds.iterate(&rt);
            while it.next().is_some() {}
        });
        sim.run();
        let snap = fs.device().snapshot();
        // Data reads are 256 KB buffered: ~16 reads + 1 inode, not 64+.
        assert!(
            snap.reads <= 20,
            "buffered reading should batch device reads, got {}",
            snap.reads
        );
    }

    #[test]
    fn parallel_reads_overlap_shards() {
        // On flash: concurrent shard readers overlap decode and I/O. (On
        // an HDD, parallel readers *thrash* — the Fig. 11a phenomenon —
        // which the ablation bench shows; here we assert the flash case.)
        let time_with = |parallel: usize| {
            let sim = Sim::new();
            let (rt, fs) = fixture_on(&sim, DeviceSpec::optane("nvme0"));
            let mut shards = Vec::new();
            for s in 0..4 {
                let lens: Vec<u64> = vec![100_000; 20];
                let total: u64 = lens.iter().map(|l| l + RECORD_OVERHEAD).sum();
                let path = format!("/data/shard{s}");
                fs.create_synthetic(&path, total, s as u64).unwrap();
                shards.push(TfRecordShard {
                    path,
                    record_lens: lens,
                });
            }
            sim.spawn("t", move || {
                let ds = TfRecordDataset::new(shards)
                    .parallel_reads(parallel)
                    .decode_cost(|_| Duration::from_millis(1))
                    .batch(10);
                let mut it = ds.iterate(&rt);
                while it.next().is_some() {}
            });
            sim.run();
            sim.now().as_secs_f64()
        };
        let serial = time_with(1);
        let parallel = time_with(4);
        assert!(
            parallel < serial * 0.5,
            "decode should overlap across shards: {parallel:.3}s vs {serial:.3}s"
        );
    }

    #[test]
    fn dropping_iterator_cancels_readers() {
        let sim = Sim::new();
        let (rt, fs) = fixture(&sim);
        let lens: Vec<u64> = vec![100_000; 200];
        let total: u64 = lens.iter().map(|l| l + RECORD_OVERHEAD).sum();
        fs.create_synthetic("/data/big", total, 1).unwrap();
        sim.spawn("t", move || {
            let ds = TfRecordDataset::new(vec![TfRecordShard {
                path: "/data/big".into(),
                record_lens: lens,
            }])
            .batch(4);
            let mut it = ds.iterate(&rt);
            it.next().unwrap();
            drop(it); // readers must unwind, not deadlock
        });
        sim.run();
    }

    #[test]
    fn empty_dataset() {
        let sim = Sim::new();
        let (rt, _fs) = fixture(&sim);
        sim.spawn("t", move || {
            let ds = TfRecordDataset::new(vec![]).batch(4);
            assert!(ds.is_empty());
            let mut it = ds.iterate(&rt);
            assert!(it.next().is_none());
        });
        sim.run();
    }
}
