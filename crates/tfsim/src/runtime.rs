//! The TensorFlow runtime context: process binding, platform shape,
//! TraceMe recorder, and the profiler-session state machine.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use posix_sim::Process;
use simrt::{Sim, SimTime};

use crate::profiler::{ProfilerError, ProfilerOptions, Tracer, TracerFactory};
use crate::trace::XSpace;
use crate::traceme::TraceMeRecorder;

struct ActiveSession {
    tracers: Vec<Arc<dyn Tracer>>,
    options: ProfilerOptions,
    started: SimTime,
}

/// Shared TensorFlow-like runtime. One per simulated process.
pub struct TfRuntime {
    process: Arc<Process>,
    sim: Sim,
    /// Logical CPU cores of the platform (resolves `AUTOTUNE`).
    pub cores: usize,
    recorder: Arc<TraceMeRecorder>,
    factories: Mutex<Vec<Arc<dyn TracerFactory>>>,
    session: Mutex<Option<ActiveSession>>,
}

impl TfRuntime {
    /// Create a runtime bound to `process`, spawning pipeline threads on
    /// `sim`, with `cores` logical CPUs.
    pub fn new(process: Arc<Process>, sim: Sim, cores: usize) -> Arc<Self> {
        assert!(cores > 0);
        let recorder = Arc::new(TraceMeRecorder::new());
        // Route TraceMe spans through the process's event spine: while a
        // profiling session is active the recorder registers as a sink and
        // spans are folded in batches at context-switch boundaries.
        recorder.bind_spine(process.probe());
        Arc::new(TfRuntime {
            process,
            sim,
            cores,
            recorder,
            factories: Mutex::new(Vec::new()),
            session: Mutex::new(None),
        })
    }

    /// The simulated process (POSIX interface).
    pub fn process(&self) -> &Arc<Process> {
        &self.process
    }

    /// The simulation handle (for spawning pipeline threads).
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// The host-tracing recorder.
    pub fn recorder(&self) -> &Arc<TraceMeRecorder> {
        &self.recorder
    }

    /// Register a tracer factory (how tf-Darshan plugs in, paper §III.A:
    /// "as long as we provide a new interface for starting/stopping the
    /// profiler and collecting the data").
    pub fn register_tracer_factory(&self, f: Arc<dyn TracerFactory>) {
        self.factories.lock().push(f);
    }

    /// `tf.profiler.experimental.start()`: begin a profiling session.
    pub fn profiler_start(self: &Arc<Self>, options: ProfilerOptions) -> Result<(), ProfilerError> {
        let mut s = self.session.lock();
        if s.is_some() {
            return Err(ProfilerError::AlreadyActive);
        }
        self.recorder.start(options.traceme_overhead);
        let mut tracers = Vec::new();
        for f in self.factories.lock().iter() {
            if let Some(t) = f.create(self, &options) {
                tracers.push(t);
            }
        }
        *s = Some(ActiveSession {
            tracers,
            options,
            started: simrt::now(),
        });
        Ok(())
    }

    /// `tf.profiler.experimental.stop()`: stop tracers, collect all data
    /// into an [`XSpace`].
    pub fn profiler_stop(self: &Arc<Self>) -> Result<XSpace, ProfilerError> {
        let sess = self.session.lock().take().ok_or(ProfilerError::NotActive)?;
        self.recorder.stop();
        for t in &sess.tracers {
            t.stop();
        }
        let mut space = XSpace::default();
        // Host plane first, then plugin tracers.
        self.recorder.export_into(space.plane_mut("/host:CPU"));
        for t in &sess.tracers {
            t.collect(&mut space);
        }
        space.normalize();
        let _ = sess.started;
        Ok(space)
    }

    /// True while a profiling session is active.
    pub fn profiling_active(&self) -> bool {
        self.session.lock().is_some()
    }

    /// Per-graph-op tracing overhead of the active session (zero when not
    /// profiling). The trainer charges `graph_ops × this` per step.
    pub fn graph_op_overhead(&self) -> Duration {
        self.session
            .lock()
            .as_ref()
            .map(|s| s.options.per_graph_op_overhead)
            .unwrap_or(Duration::ZERO)
    }
}
