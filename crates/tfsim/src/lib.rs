//! # tfsim — a TensorFlow-like runtime for instrumentation research
//!
//! The substrate tf-Darshan plugs into: `tf.data` input pipelines with
//! ordered parallel map, batching, prefetch, and AUTOTUNE ([`data`]);
//! kernel ops with TensorFlow's exact I/O idioms ([`ops`], including the
//! pread-until-zero `ReadFile` loop behind the paper's Fig. 8); a
//! Keras-style trainer with callbacks ([`model`]); the TensorFlow 2.2
//! profiler with pluggable tracers, TraceMe host tracing, XSpace traces
//! and chrome-trace export ([`profiler`], [`traceme`], [`trace`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod data;
pub mod model;
pub mod ops;
pub mod profiler;
pub mod runtime;
pub mod tfrecord;
pub mod trace;
pub mod traceme;

pub use analysis::{InputPipelineAnalysis, StepBreakdown};
pub use data::{
    Batch, BatchIterator, Dataset, DynamicParallelism, Element, EpochOrder, MapFn, Parallelism,
    PipelineCtx,
};
pub use model::{
    fit, stream, Callback, FitResult, ModelCheckpoint, ModelSpec, StepStat, TensorBoardCallback,
};
pub use profiler::{ProfilerError, ProfilerOptions, ProfilerServer, Tracer, TracerFactory};
pub use runtime::TfRuntime;
pub use tfrecord::{pack_files, TfRecordDataset, TfRecordShard, TfRecordWriter};
pub use trace::{XEvent, XLine, XPlane, XSpace, XStat};
pub use traceme::{HostEvent, TraceMe, TraceMeRecorder};
