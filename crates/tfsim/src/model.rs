//! Keras-style training: `model.fit(dataset, …)` with callbacks.
//!
//! The trainer consumes batches from a [`crate::data::Dataset`] pipeline
//! and "computes" on a GPU cost model. Per-step wait-vs-compute accounting
//! feeds the Input-Pipeline analysis (the paper's "96%/99% of step time
//! waiting for input"). Callbacks reproduce the two the paper uses:
//! [`TensorBoardCallback`] (automatic profiling of a batch range) and
//! [`ModelCheckpoint`] (per-step checkpoints whose `fwrite`s Darshan's
//! STDIO module captures, §IV.D).

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use simrt::SimTime;

use crate::data::Dataset;
use crate::ops;
use crate::profiler::ProfilerOptions;
use crate::runtime::TfRuntime;
use crate::trace::XSpace;
use crate::traceme::TraceMe;

/// GPU/compute cost model of a network (concrete models live in the
/// `workloads` crate).
#[derive(Clone, Debug)]
pub struct ModelSpec {
    /// Model name.
    pub name: String,
    /// GPU compute time per training step (batch already divided across
    /// replicas, allreduce included).
    pub step_time: Duration,
    /// Graph ops executed per step (drives profiler tracing overhead).
    pub graph_ops_per_step: u64,
    /// Variable sizes in bytes (checkpoint payload).
    pub variables: Vec<u64>,
}

impl ModelSpec {
    /// Total checkpoint payload.
    pub fn checkpoint_bytes(&self) -> u64 {
        self.variables.iter().sum()
    }
}

/// Per-step timing.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepStat {
    /// Time blocked waiting for the input pipeline.
    pub wait: Duration,
    /// Time computing (GPU busy).
    pub compute: Duration,
}

/// Result of a `fit` run.
#[derive(Clone, Debug, Default)]
pub struct FitResult {
    /// Per-step stats.
    pub steps: Vec<StepStat>,
    /// Wall-clock (virtual) duration of the fit call.
    pub wall: Duration,
    /// Raw input bytes consumed.
    pub bytes_read: u64,
    /// Steps actually executed (dataset may exhaust early).
    pub steps_run: usize,
}

impl FitResult {
    /// Fraction of sampled step time spent waiting for input — the
    /// headline number of TF Profiler's overview page.
    pub fn input_bound_fraction(&self) -> f64 {
        let wait: f64 = self.steps.iter().map(|s| s.wait.as_secs_f64()).sum();
        let comp: f64 = self.steps.iter().map(|s| s.compute.as_secs_f64()).sum();
        if wait + comp == 0.0 {
            0.0
        } else {
            wait / (wait + comp)
        }
    }
}

/// Keras-style callback hooks.
#[allow(unused_variables)]
pub trait Callback: Send {
    /// Before the first step.
    fn on_train_begin(&mut self, rt: &Arc<TfRuntime>) {}
    /// Before step `step` (0-based) requests its batch.
    fn on_step_begin(&mut self, rt: &Arc<TfRuntime>, step: usize) {}
    /// After step `step` completed.
    fn on_step_end(&mut self, rt: &Arc<TfRuntime>, step: usize) {}
    /// After the last step.
    fn on_train_end(&mut self, rt: &Arc<TfRuntime>) {}
}

/// `tf.keras.callbacks.TensorBoard(profile_batch=(from, to))`: starts the
/// profiler at the beginning of step `from` and stops it at the end of
/// step `to`, storing the collected trace.
pub struct TensorBoardCallback {
    /// First profiled step (0-based, inclusive).
    pub profile_from: usize,
    /// Last profiled step (inclusive).
    pub profile_to: usize,
    /// Session options.
    pub options: ProfilerOptions,
    /// Collected trace after the profiled range completes.
    pub space: Arc<Mutex<Option<XSpace>>>,
}

impl TensorBoardCallback {
    /// Profile steps `[from, to]` with default options.
    pub fn profile_batch(from: usize, to: usize) -> Self {
        TensorBoardCallback {
            profile_from: from,
            profile_to: to,
            options: ProfilerOptions::default(),
            space: Arc::new(Mutex::new(None)),
        }
    }
}

impl Callback for TensorBoardCallback {
    fn on_step_begin(&mut self, rt: &Arc<TfRuntime>, step: usize) {
        if step == self.profile_from {
            let _ = rt.profiler_start(self.options.clone());
        }
    }

    fn on_step_end(&mut self, rt: &Arc<TfRuntime>, step: usize) {
        if step == self.profile_to {
            if let Ok(space) = rt.profiler_stop() {
                *self.space.lock() = Some(space);
            }
        }
    }

    fn on_train_end(&mut self, rt: &Arc<TfRuntime>) {
        // Range extended past the end of training: close the session.
        if rt.profiling_active() {
            if let Ok(space) = rt.profiler_stop() {
                *self.space.lock() = Some(space);
            }
        }
    }
}

/// `tf.keras.callbacks.ModelCheckpoint`: saves the model every
/// `every_steps` steps, keeping all checkpoints (paper §IV.D keeps 10).
pub struct ModelCheckpoint {
    /// Checkpoint period in steps.
    pub every_steps: usize,
    /// Directory/prefix for checkpoint files.
    pub path_prefix: String,
    /// Variable sizes (from the model).
    pub variables: Vec<u64>,
    /// Bytes per `fwrite` call.
    pub fwrite_chunk: u64,
    /// Number of checkpoints written.
    pub saved: usize,
}

impl ModelCheckpoint {
    /// Checkpoint `model` every `every_steps` under `path_prefix`.
    pub fn new(model: &ModelSpec, every_steps: usize, path_prefix: impl Into<String>) -> Self {
        ModelCheckpoint {
            every_steps: every_steps.max(1),
            path_prefix: path_prefix.into(),
            variables: model.variables.clone(),
            fwrite_chunk: 1_900_000,
            saved: 0,
        }
    }
}

impl Callback for ModelCheckpoint {
    fn on_step_end(&mut self, rt: &Arc<TfRuntime>, step: usize) {
        if (step + 1).is_multiple_of(self.every_steps) {
            let path = format!("{}-{:04}.ckpt", self.path_prefix, step + 1);
            if ops::save_checkpoint(rt, &path, &self.variables, self.fwrite_chunk).is_ok() {
                self.saved += 1;
            }
        }
    }
}

/// Train `model` for up to `steps` steps over one epoch of `dataset`.
///
/// Runs on the calling simulated thread; the pipeline runs on its own
/// threads. Mirrors `model.fit(dataset, steps_per_epoch=…, callbacks=…)`.
pub fn fit(
    rt: &Arc<TfRuntime>,
    model: &ModelSpec,
    dataset: &Dataset,
    steps: usize,
    callbacks: &mut [&mut dyn Callback],
) -> FitResult {
    let t_begin = simrt::now();
    for cb in callbacks.iter_mut() {
        cb.on_train_begin(rt);
    }
    let mut it = dataset.iterate(rt);
    let mut result = FitResult::default();
    for step in 0..steps {
        for cb in callbacks.iter_mut() {
            cb.on_step_begin(rt, step);
        }
        let t0 = simrt::now();
        let batch = {
            let mut span = TraceMe::new(rt.recorder(), "wait_for_input");
            span.stat("step", step);
            let Some(batch) = it.next() else {
                break;
            };
            batch
        };
        let t1 = simrt::now();
        {
            let mut span = TraceMe::new(rt.recorder(), "train_step");
            span.stat("step", step);
            span.stat("batch_size", batch.len);
            simrt::sleep(model.step_time);
            // Host-side executor tracing cost while profiled.
            let per_op = rt.graph_op_overhead();
            if !per_op.is_zero() {
                simrt::sleep(per_op * model.graph_ops_per_step as u32);
            }
        }
        let t2 = simrt::now();
        result.steps.push(StepStat {
            wait: t1 - t0,
            compute: t2 - t1,
        });
        result.bytes_read += batch.bytes;
        result.steps_run += 1;
        for cb in callbacks.iter_mut() {
            cb.on_step_end(rt, step);
        }
    }
    drop(it);
    for cb in callbacks.iter_mut() {
        cb.on_train_end(rt);
    }
    result.wall = simrt::now() - t_begin;
    result
}

/// Run the input pipeline with **no model attached** — the paper's STREAM
/// benchmark ("performs no computation and preprocessing other than
/// reading files and forming batches"). Returns the per-batch completion
/// times for bandwidth-over-time plots.
pub fn stream(
    rt: &Arc<TfRuntime>,
    dataset: &Dataset,
    steps: usize,
    mut on_batch: impl FnMut(usize, SimTime, u64),
) -> FitResult {
    let t_begin = simrt::now();
    let mut it = dataset.iterate(rt);
    let mut result = FitResult::default();
    for step in 0..steps {
        let t0 = simrt::now();
        let Some(batch) = it.next() else {
            break;
        };
        let t1 = simrt::now();
        result.steps.push(StepStat {
            wait: t1 - t0,
            compute: Duration::ZERO,
        });
        result.bytes_read += batch.bytes;
        result.steps_run += 1;
        on_batch(step, t1, batch.bytes);
    }
    drop(it);
    result.wall = simrt::now() - t_begin;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Element, MapFn, Parallelism};
    use posix_sim::Process;
    use simrt::Sim;
    use storage_sim::StorageStack;

    fn runtime(sim: &Sim) -> Arc<TfRuntime> {
        TfRuntime::new(Process::new(StorageStack::new()), sim.clone(), 8)
    }

    fn tiny_model() -> ModelSpec {
        ModelSpec {
            name: "tiny".into(),
            step_time: Duration::from_millis(2),
            graph_ops_per_step: 100,
            variables: vec![1 << 20],
        }
    }

    fn slow_input(cost_ms: u64) -> MapFn {
        Arc::new(move |_ctx, index, _path| {
            simrt::sleep(Duration::from_millis(cost_ms));
            Element { index, bytes: 1000 }
        })
    }

    fn files(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("/d/{i}")).collect()
    }

    #[test]
    fn fit_counts_steps_and_waits() {
        let sim = Sim::new();
        let rt = runtime(&sim);
        sim.spawn("trainer", move || {
            let ds = Dataset::from_files(files(32))
                .map(slow_input(10), Parallelism::Fixed(1))
                .batch(4)
                .prefetch(2);
            let r = fit(&rt, &tiny_model(), &ds, 8, &mut []);
            assert_eq!(r.steps_run, 8);
            assert_eq!(r.bytes_read, 32_000);
            // Input: 40 ms per batch on one worker; compute 2 ms → heavily
            // input bound.
            assert!(
                r.input_bound_fraction() > 0.9,
                "{}",
                r.input_bound_fraction()
            );
        });
        sim.run();
    }

    #[test]
    fn compute_bound_when_input_is_fast() {
        let sim = Sim::new();
        let rt = runtime(&sim);
        sim.spawn("trainer", move || {
            let ds = Dataset::from_files(files(64))
                .map(slow_input(0), Parallelism::Fixed(8))
                .batch(8)
                .prefetch(4);
            let r = fit(&rt, &tiny_model(), &ds, 8, &mut []);
            assert!(
                r.input_bound_fraction() < 0.2,
                "{}",
                r.input_bound_fraction()
            );
        });
        sim.run();
    }

    #[test]
    fn fit_stops_at_dataset_end() {
        let sim = Sim::new();
        let rt = runtime(&sim);
        sim.spawn("trainer", move || {
            let ds = Dataset::from_files(files(10))
                .map(slow_input(1), Parallelism::Fixed(2))
                .batch(4);
            let r = fit(&rt, &tiny_model(), &ds, 100, &mut []);
            assert_eq!(r.steps_run, 3, "10 files / batch 4 = 3 batches");
        });
        sim.run();
    }

    #[test]
    fn tensorboard_callback_profiles_requested_range() {
        let sim = Sim::new();
        let rt = runtime(&sim);
        sim.spawn("trainer", move || {
            let ds = Dataset::from_files(files(64))
                .map(slow_input(1), Parallelism::Fixed(2))
                .batch(4)
                .prefetch(2);
            let mut tb = TensorBoardCallback::profile_batch(2, 5);
            let space = tb.space.clone();
            let r = fit(&rt, &tiny_model(), &ds, 10, &mut [&mut tb]);
            assert_eq!(r.steps_run, 10);
            assert!(!rt.profiling_active());
            let space = space.lock().take().expect("profile collected");
            let host = space.plane("/host:CPU").expect("host plane");
            let steps: Vec<&str> = host
                .lines
                .iter()
                .flat_map(|l| &l.events)
                .filter(|e| e.name == "train_step")
                .flat_map(|e| &e.stats)
                .filter(|s| s.name == "step")
                .map(|s| s.value.as_str())
                .collect();
            assert_eq!(steps, vec!["2", "3", "4", "5"]);
        });
        sim.run();
    }

    #[test]
    fn tensorboard_callback_closes_session_at_train_end() {
        // profile_batch range extends past the dataset: the callback must
        // still close the session and deliver the trace.
        let sim = Sim::new();
        let rt = runtime(&sim);
        sim.spawn("trainer", move || {
            let ds = Dataset::from_files(files(8))
                .map(slow_input(1), Parallelism::Fixed(2))
                .batch(4);
            let mut tb = TensorBoardCallback::profile_batch(0, 999);
            let space = tb.space.clone();
            let r = fit(&rt, &tiny_model(), &ds, 100, &mut [&mut tb]);
            assert_eq!(r.steps_run, 2);
            assert!(!rt.profiling_active(), "session closed at train end");
            assert!(space.lock().is_some(), "trace delivered");
        });
        sim.run();
    }

    #[test]
    fn profiling_adds_graph_op_overhead() {
        let run = |profile: bool| {
            let sim = Sim::new();
            let rt = runtime(&sim);
            sim.spawn("trainer", move || {
                let ds = Dataset::from_files(files(40))
                    .map(slow_input(0), Parallelism::Fixed(4))
                    .batch(4)
                    .prefetch(2);
                if profile {
                    rt.profiler_start(ProfilerOptions::default()).unwrap();
                }
                fit(&rt, &tiny_model(), &ds, 10, &mut []);
                if profile {
                    rt.profiler_stop().unwrap();
                }
            });
            sim.run();
            sim.now()
        };
        let base = run(false);
        let profiled = run(true);
        assert!(profiled > base);
    }

    #[test]
    fn stream_reports_batch_completions() {
        let sim = Sim::new();
        let rt = runtime(&sim);
        sim.spawn("t", move || {
            let ds = Dataset::from_files(files(20))
                .map(slow_input(1), Parallelism::Fixed(4))
                .batch(5);
            let mut seen = Vec::new();
            let r = stream(&rt, &ds, 4, |step, at, bytes| {
                seen.push((step, at, bytes));
            });
            assert_eq!(r.steps_run, 4);
            assert_eq!(seen.len(), 4);
            assert!(seen.windows(2).all(|w| w[0].1 <= w[1].1));
        });
        sim.run();
    }
}
