//! The TF Profiler's **Input-pipeline analysis** page, computed from the
//! collected trace itself (as TensorBoard does), not from trainer-side
//! bookkeeping: per-step wait-vs-compute breakdown and the headline
//! "% of step time waiting for input data" of the paper's Fig. 7a ("the
//! training is highly input bounded. Approximately 96% of the sampled
//! step time is to wait for input data").

use std::collections::BTreeMap;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::trace::XSpace;

/// One sampled step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepBreakdown {
    /// Step number.
    pub step: usize,
    /// Time waiting for the input pipeline (ns).
    pub wait_ns: u64,
    /// Device/compute time (ns).
    pub compute_ns: u64,
}

/// The analysis over all sampled steps of a trace.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct InputPipelineAnalysis {
    /// Per-step breakdown, in step order.
    pub steps: Vec<StepBreakdown>,
}

impl InputPipelineAnalysis {
    /// Extract from a collected trace's host plane (`wait_for_input` and
    /// `train_step` spans carry a `step` stat).
    pub fn from_space(space: &XSpace) -> Self {
        let mut by_step: BTreeMap<usize, StepBreakdown> = BTreeMap::new();
        let Some(host) = space.plane("/host:CPU") else {
            return Self::default();
        };
        for line in &host.lines {
            for ev in &line.events {
                let step = ev
                    .stats
                    .iter()
                    .find(|s| s.name == "step")
                    .and_then(|s| s.value.parse::<usize>().ok());
                let Some(step) = step else { continue };
                let e = by_step.entry(step).or_insert(StepBreakdown {
                    step,
                    wait_ns: 0,
                    compute_ns: 0,
                });
                match ev.name.as_str() {
                    "wait_for_input" => e.wait_ns += ev.dur_ns,
                    "train_step" => e.compute_ns += ev.dur_ns,
                    _ => {}
                }
            }
        }
        InputPipelineAnalysis {
            steps: by_step.into_values().collect(),
        }
    }

    /// Steps sampled.
    pub fn sampled_steps(&self) -> usize {
        self.steps.len()
    }

    /// Fraction of the sampled step time spent waiting for input — the
    /// overview-page headline.
    pub fn input_bound_fraction(&self) -> f64 {
        let wait: u64 = self.steps.iter().map(|s| s.wait_ns).sum();
        let comp: u64 = self.steps.iter().map(|s| s.compute_ns).sum();
        if wait + comp == 0 {
            0.0
        } else {
            wait as f64 / (wait + comp) as f64
        }
    }

    /// Average step time.
    pub fn mean_step_time(&self) -> Duration {
        if self.steps.is_empty() {
            return Duration::ZERO;
        }
        let total: u64 = self.steps.iter().map(|s| s.wait_ns + s.compute_ns).sum();
        Duration::from_nanos(total / self.steps.len() as u64)
    }

    /// The overview-page verdict text TensorBoard shows.
    pub fn verdict(&self) -> &'static str {
        let f = self.input_bound_fraction();
        if f > 0.5 {
            "Your program is HIGHLY input-bound: focus on the input pipeline"
        } else if f > 0.2 {
            "Your program is MODERATELY input-bound"
        } else {
            "Your program is NOT input-bound"
        }
    }

    /// Render the page.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== Input-pipeline analysis ==");
        let _ = writeln!(
            out,
            "{} ({:.1}% of {} sampled steps' time is waiting for input data; \
             mean step time {:.1} ms)",
            self.verdict(),
            self.input_bound_fraction() * 100.0,
            self.sampled_steps(),
            self.mean_step_time().as_secs_f64() * 1e3,
        );
        for s in self.steps.iter().take(20) {
            let total = (s.wait_ns + s.compute_ns).max(1);
            let bars = (s.wait_ns * 30 / total) as usize;
            let _ = writeln!(
                out,
                "step {:>4}: [{}{}] wait {:>8.2} ms | compute {:>8.2} ms",
                s.step,
                "#".repeat(bars),
                ".".repeat(30 - bars),
                s.wait_ns as f64 / 1e6,
                s.compute_ns as f64 / 1e6,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::XEvent;

    fn space_with_steps(steps: &[(usize, u64, u64)]) -> XSpace {
        let mut space = XSpace::default();
        let line = space.plane_mut("/host:CPU").line_mut("trainer (t0)");
        let mut t = 0u64;
        for &(step, wait, comp) in steps {
            line.events
                .push(XEvent::new("wait_for_input", t, wait).with_stat("step", step));
            t += wait;
            line.events
                .push(XEvent::new("train_step", t, comp).with_stat("step", step));
            t += comp;
        }
        space
    }

    #[test]
    fn breakdown_from_trace() {
        let space = space_with_steps(&[(0, 90, 10), (1, 80, 20), (2, 70, 30)]);
        let a = InputPipelineAnalysis::from_space(&space);
        assert_eq!(a.sampled_steps(), 3);
        assert_eq!(
            a.steps[1],
            StepBreakdown {
                step: 1,
                wait_ns: 80,
                compute_ns: 20
            }
        );
        assert!((a.input_bound_fraction() - 0.8).abs() < 1e-9);
        assert_eq!(a.mean_step_time(), Duration::from_nanos(100));
        assert!(a.verdict().contains("HIGHLY"));
        assert!(a.render().contains("80.0%"));
    }

    #[test]
    fn compute_bound_verdict() {
        let space = space_with_steps(&[(0, 5, 95), (1, 10, 90)]);
        let a = InputPipelineAnalysis::from_space(&space);
        assert!(a.input_bound_fraction() < 0.1);
        assert!(a.verdict().contains("NOT input-bound"));
    }

    #[test]
    fn empty_trace() {
        let a = InputPipelineAnalysis::from_space(&XSpace::default());
        assert_eq!(a.sampled_steps(), 0);
        assert_eq!(a.input_bound_fraction(), 0.0);
        assert_eq!(a.mean_step_time(), Duration::ZERO);
    }
}
