//! Job-summary analysis of a Darshan log — the `darshan-job-summary`
//! utility (Table I's "Visualization: PDF, log utilities" for classic
//! Darshan): aggregate totals, performance estimates, access-size
//! histograms, and the top files by I/O time and by volume.

use serde::{Deserialize, Serialize};

use crate::counters::{PosixCounter as P, PosixFCounter as PF, StdioCounter as S};
use crate::log::DarshanLog;

/// Aggregated job-level statistics derived from a log.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct JobSummary {
    /// Job runtime, seconds.
    pub runtime: f64,
    /// Files with POSIX records.
    pub posix_files: usize,
    /// Total POSIX opens.
    pub opens: u64,
    /// Total POSIX reads / writes.
    pub reads: u64,
    /// Total POSIX writes.
    pub writes: u64,
    /// Bytes read / written on the POSIX layer.
    pub bytes_read: u64,
    /// Bytes written on the POSIX layer.
    pub bytes_written: u64,
    /// Cumulative time in reads / writes / metadata, seconds.
    pub read_time: f64,
    /// Cumulative time in writes.
    pub write_time: f64,
    /// Cumulative time in metadata operations.
    pub meta_time: f64,
    /// Estimated I/O time as a fraction of runtime (cumulative I/O time of
    /// the busiest layer over runtime; >1 means concurrent I/O threads).
    pub io_time_fraction: f64,
    /// Aggregate read-size histogram (Darshan's ten buckets).
    pub read_size_hist: [u64; 10],
    /// Aggregate write-size histogram.
    pub write_size_hist: [u64; 10],
    /// Sequential / consecutive read fractions.
    pub seq_read_fraction: f64,
    /// Consecutive read fraction.
    pub consec_read_fraction: f64,
    /// Top files by cumulative read time: `(path, seconds, bytes)`.
    pub top_by_read_time: Vec<(String, f64, u64)>,
    /// Top files by bytes read.
    pub top_by_bytes: Vec<(String, u64)>,
    /// STDIO totals: `(opens, reads, writes, bytes_read, bytes_written)`.
    pub stdio: (u64, u64, u64, u64, u64),
}

impl JobSummary {
    /// Analyze a log (top-file lists truncated to `top_n`).
    pub fn from_log(log: &DarshanLog, top_n: usize) -> JobSummary {
        let mut s = JobSummary {
            runtime: (log.job_end - log.job_start).max(0.0),
            posix_files: log.posix.len(),
            ..Default::default()
        };
        let mut by_time: Vec<(String, f64, u64)> = Vec::new();
        let mut by_bytes: Vec<(String, u64)> = Vec::new();
        let mut seq = 0u64;
        let mut consec = 0u64;
        for r in &log.posix {
            let name = log
                .names
                .get(&r.rec_id)
                .cloned()
                .unwrap_or_else(|| format!("<{:#x}>", r.rec_id));
            s.opens += r.get(P::POSIX_OPENS).max(0) as u64;
            s.reads += r.get(P::POSIX_READS).max(0) as u64;
            s.writes += r.get(P::POSIX_WRITES).max(0) as u64;
            let bytes_read = r.get(P::POSIX_BYTES_READ).max(0) as u64;
            s.bytes_read += bytes_read;
            s.bytes_written += r.get(P::POSIX_BYTES_WRITTEN).max(0) as u64;
            s.read_time += r.fget(PF::POSIX_F_READ_TIME).max(0.0);
            s.write_time += r.fget(PF::POSIX_F_WRITE_TIME).max(0.0);
            s.meta_time += r.fget(PF::POSIX_F_META_TIME).max(0.0);
            seq += r.get(P::POSIX_SEQ_READS).max(0) as u64;
            consec += r.get(P::POSIX_CONSEC_READS).max(0) as u64;
            for b in 0..10 {
                s.read_size_hist[b] +=
                    r.counters[P::POSIX_SIZE_READ_0_100 as usize + b].max(0) as u64;
                s.write_size_hist[b] +=
                    r.counters[P::POSIX_SIZE_WRITE_0_100 as usize + b].max(0) as u64;
            }
            by_time.push((name.clone(), r.fget(PF::POSIX_F_READ_TIME), bytes_read));
            by_bytes.push((name, bytes_read));
        }
        if s.reads > 0 {
            s.seq_read_fraction = seq as f64 / s.reads as f64;
            s.consec_read_fraction = consec as f64 / s.reads as f64;
        }
        if s.runtime > 0.0 {
            s.io_time_fraction = (s.read_time + s.write_time + s.meta_time) / s.runtime;
        }
        by_time.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        by_time.truncate(top_n);
        s.top_by_read_time = by_time;
        by_bytes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        by_bytes.truncate(top_n);
        s.top_by_bytes = by_bytes;

        for r in &log.stdio {
            s.stdio.0 += r.get(S::STDIO_OPENS).max(0) as u64;
            s.stdio.1 += r.get(S::STDIO_READS).max(0) as u64;
            s.stdio.2 += r.get(S::STDIO_WRITES).max(0) as u64;
            s.stdio.3 += r.get(S::STDIO_BYTES_READ).max(0) as u64;
            s.stdio.4 += r.get(S::STDIO_BYTES_WRITTEN).max(0) as u64;
        }
        s
    }

    /// Render the summary report (the "PDF" page, in text).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mib = 1024.0 * 1024.0;
        let mut out = String::new();
        let _ = writeln!(out, "================ Darshan job summary ================");
        let _ = writeln!(
            out,
            "runtime {:.3}s | files {} | opens {} | reads {} | writes {}",
            self.runtime, self.posix_files, self.opens, self.reads, self.writes
        );
        let _ = writeln!(
            out,
            "volume: {:.1} MiB read, {:.1} MiB written",
            self.bytes_read as f64 / mib,
            self.bytes_written as f64 / mib
        );
        let _ = writeln!(
            out,
            "cumulative I/O time: read {:.3}s write {:.3}s meta {:.3}s ({:.0}% of runtime)",
            self.read_time,
            self.write_time,
            self.meta_time,
            self.io_time_fraction * 100.0
        );
        let _ = writeln!(
            out,
            "access pattern: {:.0}% sequential, {:.0}% consecutive reads",
            self.seq_read_fraction * 100.0,
            self.consec_read_fraction * 100.0
        );
        if !self.top_by_read_time.is_empty() {
            let _ = writeln!(out, "\ntop files by read time:");
            for (p, t, b) in &self.top_by_read_time {
                let _ = writeln!(out, "  {t:>9.4}s {:>10.2} MiB  {p}", *b as f64 / mib);
            }
        }
        if self.stdio.0 + self.stdio.1 + self.stdio.2 > 0 {
            let _ = writeln!(
                out,
                "\nSTDIO: {} fopens, {} freads, {} fwrites ({:.1} MiB written)",
                self.stdio.0,
                self.stdio.1,
                self.stdio.2,
                self.stdio.4 as f64 / mib
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::{PosixRecord, StdioRecord};
    use std::collections::HashMap;

    fn log() -> DarshanLog {
        let mut names = HashMap::new();
        let mut posix = Vec::new();
        for (i, (reads, bytes, time)) in [
            (2i64, 100_000i64, 0.5f64),
            (4, 900_000, 2.0),
            (1, 50_000, 0.1),
        ]
        .iter()
        .enumerate()
        {
            let path = format!("/d/f{i}");
            let id = crate::record_id(&path);
            names.insert(id, path);
            let mut r = PosixRecord::new(id);
            *r.get_mut(P::POSIX_OPENS) = 1;
            *r.get_mut(P::POSIX_READS) = *reads;
            *r.get_mut(P::POSIX_BYTES_READ) = *bytes;
            *r.get_mut(P::POSIX_SEQ_READS) = *reads;
            *r.fget_mut(PF::POSIX_F_READ_TIME) = *time;
            r.counters[P::POSIX_SIZE_READ_10K_100K as usize] = *reads;
            posix.push(r);
        }
        let mut st = StdioRecord::new(7);
        *st.get_mut(S::STDIO_WRITES) = 140;
        *st.get_mut(S::STDIO_BYTES_WRITTEN) = 14_000_000;
        DarshanLog {
            job_start: 0.0,
            job_end: 10.0,
            nprocs: 1,
            names,
            posix,
            posix_partial: false,
            stdio: vec![st],
            stdio_partial: false,
            dxt: Default::default(),
        }
    }

    #[test]
    fn totals_and_fractions() {
        let s = JobSummary::from_log(&log(), 2);
        assert_eq!(s.posix_files, 3);
        assert_eq!(s.opens, 3);
        assert_eq!(s.reads, 7);
        assert_eq!(s.bytes_read, 1_050_000);
        assert!((s.read_time - 2.6).abs() < 1e-12);
        assert!((s.io_time_fraction - 0.26).abs() < 1e-9);
        assert_eq!(s.seq_read_fraction, 1.0);
        assert_eq!(s.read_size_hist[3], 7);
        assert_eq!(s.stdio.2, 140);
    }

    #[test]
    fn top_lists_are_sorted_and_truncated() {
        let s = JobSummary::from_log(&log(), 2);
        assert_eq!(s.top_by_read_time.len(), 2);
        assert_eq!(s.top_by_read_time[0].0, "/d/f1");
        assert_eq!(s.top_by_bytes[0].0, "/d/f1");
        assert_eq!(s.top_by_bytes[1].0, "/d/f0");
    }

    #[test]
    fn render_contains_key_lines() {
        let s = JobSummary::from_log(&log(), 3);
        let text = s.render();
        assert!(text.contains("opens 3 | reads 7"));
        assert!(text.contains("100% sequential"));
        assert!(text.contains("/d/f1"));
        assert!(text.contains("140 fwrites"));
    }

    #[test]
    fn empty_log() {
        let s = JobSummary::from_log(&DarshanLog::default(), 5);
        assert_eq!(s.posix_files, 0);
        assert_eq!(s.io_time_fraction, 0.0);
        assert!(!s.render().is_empty());
    }
}
