//! The Darshan runtime: module record buffers, DXT tracing, name records,
//! and the runtime-extraction API that tf-Darshan adds (paper §III.C).
//!
//! Mirrors darshan-runtime's shape: a core that owns *name records*
//! (record-id → path) and per-module record buffers with bounded memory;
//! modules update counters inline on every instrumented call; statistics
//! reduction (e.g. folding the common-access-size tracker into the
//! `ACCESS1..4` counters) happens at shutdown — or, new here, whenever a
//! snapshot is taken, because tf-Darshan needs analyzable buffers *during*
//! execution, not only post-mortem.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;
use simrt::{sleep, SimTime, TaskId};

use crate::counters::{
    record_id, size_bucket, PosixCounter as P, PosixFCounter as PF, PosixRecord, StdioCounter as S,
    StdioFCounter as SF, StdioRecord,
};

/// Configuration of the Darshan runtime (environment variables in real
/// Darshan: `DARSHAN_MODMEM`, `DXT_ENABLE_IO_TRACE`, ...).
#[derive(Clone, Debug)]
pub struct DarshanConfig {
    /// Maximum file records per module; further files set the partial flag
    /// and are not tracked (Darshan's module memory limit).
    pub max_records_per_module: usize,
    /// Whether DXT (extended tracing) records per-operation segments.
    pub dxt_enabled: bool,
    /// Maximum DXT segments across all files; beyond this, tracing stops
    /// and the truncated flag is set.
    pub dxt_max_segments: usize,
    /// Instrumentation cost charged per wrapped operation.
    pub per_op_overhead: Duration,
    /// Extra cost the first time a file is seen (record allocation + name
    /// registration).
    pub new_record_overhead: Duration,
    /// Cost per record of a runtime buffer extraction (deep copy). With
    /// the snapshot cost and the per-stop analysis, this is why the
    /// paper's Fig. 5 overhead correlates with the number of files
    /// processed.
    pub snapshot_cost_per_record: Duration,
}

impl Default for DarshanConfig {
    fn default() -> Self {
        DarshanConfig {
            max_records_per_module: 1 << 20,
            dxt_enabled: true,
            dxt_max_segments: 1 << 22,
            per_op_overhead: Duration::from_nanos(120),
            new_record_overhead: Duration::from_micros(2),
            snapshot_cost_per_record: Duration::from_micros(90),
        }
    }
}

/// DXT operation kind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DxtOp {
    /// A read segment.
    Read,
    /// A write segment.
    Write,
}

/// One DXT trace segment (one I/O operation on one file).
#[derive(Clone, Copy, Debug)]
pub struct DxtSegment {
    /// Operation kind.
    pub op: DxtOp,
    /// File offset.
    pub offset: u64,
    /// Transfer length (zero-length reads are recorded — they are the
    /// Fig. 8 signature).
    pub length: u64,
    /// Start time, seconds since Darshan initialization.
    pub start: f64,
    /// End time, seconds since Darshan initialization.
    pub end: f64,
}

struct ModuleBuf<R> {
    records: HashMap<u64, R>,
    partial: bool,
}

impl<R> ModuleBuf<R> {
    fn new() -> Self {
        ModuleBuf {
            records: HashMap::new(),
            partial: false,
        }
    }
}

struct DxtBuf {
    segments: HashMap<u64, Vec<DxtSegment>>,
    total: usize,
    truncated: bool,
}

/// While a snapshot copies the module buffers it holds the module locks;
/// instrumented operations stall until the copy completes. This gate
/// models that: `close` during extraction, `open` after, wrappers wait.
#[derive(Default)]
struct Gate {
    closed: std::sync::atomic::AtomicBool,
    waiters: Mutex<Vec<TaskId>>,
}

impl Gate {
    fn wait_open(&self) {
        loop {
            if !self.closed.load(Ordering::SeqCst) {
                return;
            }
            self.waiters.lock().push(simrt::current_task());
            simrt::block(None);
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
    }

    fn open(&self) {
        self.closed.store(false, Ordering::SeqCst);
        for t in self.waiters.lock().drain(..) {
            simrt::wake(t);
        }
    }
}

/// A consistent copy of Darshan's module buffers, extracted at runtime.
///
/// This is the data structure the paper's augmented Darshan returns to the
/// instrumented application ("we implemented several data extraction
/// functions in the Darshan shared library that returns Darshan module
/// buffers").
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Seconds since Darshan initialization when the snapshot was taken.
    pub taken_at: f64,
    /// POSIX records, sorted by record id, with common-access reduction
    /// applied to the copy.
    pub posix: Vec<PosixRecord>,
    /// STDIO records, sorted by record id.
    pub stdio: Vec<StdioRecord>,
    /// Record-id → path map.
    pub names: HashMap<u64, String>,
    /// True if the POSIX module ran out of record memory.
    pub posix_partial: bool,
    /// True if the STDIO module ran out of record memory.
    pub stdio_partial: bool,
    /// Total DXT segments recorded so far.
    pub dxt_segments: usize,
}

impl Snapshot {
    /// Find a POSIX record by path.
    pub fn posix_by_path(&self, path: &str) -> Option<&PosixRecord> {
        let id = record_id(path);
        self.posix.iter().find(|r| r.rec_id == id)
    }
}

/// Running totals kept by the runtime (cheap aggregate queries without a
/// full snapshot).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Totals {
    /// Total POSIX bytes read.
    pub posix_bytes_read: u64,
    /// Total POSIX bytes written.
    pub posix_bytes_written: u64,
    /// Total POSIX read calls.
    pub posix_reads: u64,
    /// Total POSIX write calls.
    pub posix_writes: u64,
    /// Total POSIX opens.
    pub posix_opens: u64,
}

/// The Darshan runtime ("libdarshan.so" once loaded into the process).
pub struct DarshanRuntime {
    config: DarshanConfig,
    init_time: SimTime,
    names: Mutex<HashMap<u64, String>>,
    posix: Mutex<ModuleBuf<PosixRecord>>,
    stdio: Mutex<ModuleBuf<StdioRecord>>,
    dxt: Mutex<DxtBuf>,
    gate: Gate,
    // Aggregates (atomic so bandwidth probes don't lock modules).
    agg_bytes_read: AtomicU64,
    agg_bytes_written: AtomicU64,
    agg_reads: AtomicU64,
    agg_writes: AtomicU64,
    agg_opens: AtomicU64,
}

impl DarshanRuntime {
    /// Initialize the runtime at the current virtual time.
    pub fn new(config: DarshanConfig) -> Self {
        DarshanRuntime {
            config,
            init_time: simrt::try_now().unwrap_or(SimTime::ZERO),
            names: Mutex::new(HashMap::new()),
            posix: Mutex::new(ModuleBuf::new()),
            stdio: Mutex::new(ModuleBuf::new()),
            dxt: Mutex::new(DxtBuf {
                segments: HashMap::new(),
                total: 0,
                truncated: false,
            }),
            gate: Gate::default(),
            agg_bytes_read: AtomicU64::new(0),
            agg_bytes_written: AtomicU64::new(0),
            agg_reads: AtomicU64::new(0),
            agg_writes: AtomicU64::new(0),
            agg_opens: AtomicU64::new(0),
        }
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &DarshanConfig {
        &self.config
    }

    /// Virtual instant of initialization (the zero of all float counters).
    pub fn init_time(&self) -> SimTime {
        self.init_time
    }

    /// Convert an absolute virtual instant to Darshan-relative seconds.
    pub fn rel(&self, t: SimTime) -> f64 {
        t.duration_since(self.init_time).as_secs_f64()
    }

    /// Charge the per-operation instrumentation cost; stalls while a
    /// snapshot holds the module locks.
    pub fn charge_op(&self) {
        self.gate.wait_open();
        if !self.config.per_op_overhead.is_zero() {
            sleep(self.config.per_op_overhead);
        }
    }

    /// Charge the cost of allocating a new module record. Called by the
    /// wrappers at `open`/`fopen` time (the emission site), *not* by the
    /// event fold: sink folds run inside the scheduler's switch path where
    /// sleeping is forbidden.
    pub fn charge_new_record(&self) {
        if !self.config.new_record_overhead.is_zero() {
            sleep(self.config.new_record_overhead);
        }
    }

    /// Register (or look up) the name record for `path`.
    pub fn register_name(&self, path: &str) -> u64 {
        let id = record_id(path);
        self.names
            .lock()
            .entry(id)
            .or_insert_with(|| path.to_string());
        id
    }

    /// Resolve a record id back to a path (the helper tf-Darshan `dlsym`s).
    pub fn lookup_name(&self, rec_id: u64) -> Option<String> {
        self.names.lock().get(&rec_id).cloned()
    }

    // -- POSIX module -------------------------------------------------------

    /// Instrument an `open`. Returns the record id, or `None` if the module
    /// is out of record memory (the caller still forwards the call).
    pub fn posix_open(&self, path: &str, t0: SimTime, t1: SimTime) -> Option<u64> {
        self.agg_opens.fetch_add(1, Ordering::Relaxed);
        let mut m = self.posix.lock();
        let id = record_id(path);
        let is_new = !m.records.contains_key(&id);
        if is_new && m.records.len() >= self.config.max_records_per_module {
            m.partial = true;
            return None;
        }
        if is_new {
            // Record creation itself is pure bookkeeping here; the
            // new-record *time* cost is charged by the wrapper at the
            // emission site (this method also runs inside event folds,
            // which must not sleep).
            self.register_name(path);
        }
        let r = m.records.entry(id).or_insert_with(|| PosixRecord::new(id));
        *r.get_mut(P::POSIX_OPENS) += 1;
        let (s, e) = (self.rel(t0), self.rel(t1));
        if r.fget(PF::POSIX_F_OPEN_START_TIMESTAMP) == 0.0 {
            *r.fget_mut(PF::POSIX_F_OPEN_START_TIMESTAMP) = s;
        }
        *r.fget_mut(PF::POSIX_F_OPEN_END_TIMESTAMP) = e;
        *r.fget_mut(PF::POSIX_F_META_TIME) += e - s;
        Some(id)
    }

    /// Instrument a read of `len` bytes at `offset`.
    pub fn posix_read(&self, rec_id: u64, offset: u64, len: u64, t0: SimTime, t1: SimTime) {
        self.agg_reads.fetch_add(1, Ordering::Relaxed);
        self.agg_bytes_read.fetch_add(len, Ordering::Relaxed);
        let mut m = self.posix.lock();
        let Some(r) = m.records.get_mut(&rec_id) else {
            return;
        };
        *r.get_mut(P::POSIX_READS) += 1;
        *r.get_mut(P::POSIX_BYTES_READ) += len as i64;
        r.counters[P::POSIX_SIZE_READ_0_100 as usize + size_bucket(len)] += 1;
        r.access_sizes.add(len);
        if offset == r.last_read_end {
            *r.get_mut(P::POSIX_CONSEC_READS) += 1;
        }
        if offset >= r.last_read_end {
            *r.get_mut(P::POSIX_SEQ_READS) += 1;
        }
        r.last_read_end = offset + len;
        if len > 0 {
            let maxb = (offset + len - 1) as i64;
            let cur = r.get_mut(P::POSIX_MAX_BYTE_READ);
            *cur = (*cur).max(maxb);
        }
        if r.last_was_write == Some(true) {
            *r.get_mut(P::POSIX_RW_SWITCHES) += 1;
        }
        r.last_was_write = Some(false);
        let (s, e) = (self.rel(t0), self.rel(t1));
        if r.fget(PF::POSIX_F_READ_START_TIMESTAMP) == 0.0 {
            *r.fget_mut(PF::POSIX_F_READ_START_TIMESTAMP) = s;
        }
        *r.fget_mut(PF::POSIX_F_READ_END_TIMESTAMP) = e;
        *r.fget_mut(PF::POSIX_F_READ_TIME) += e - s;
        let mx = r.fget_mut(PF::POSIX_F_MAX_READ_TIME);
        *mx = mx.max(e - s);
        drop(m);
        self.dxt_push(rec_id, DxtOp::Read, offset, len, t0, t1);
    }

    /// Instrument a write.
    pub fn posix_write(&self, rec_id: u64, offset: u64, len: u64, t0: SimTime, t1: SimTime) {
        self.agg_writes.fetch_add(1, Ordering::Relaxed);
        self.agg_bytes_written.fetch_add(len, Ordering::Relaxed);
        let mut m = self.posix.lock();
        let Some(r) = m.records.get_mut(&rec_id) else {
            return;
        };
        *r.get_mut(P::POSIX_WRITES) += 1;
        *r.get_mut(P::POSIX_BYTES_WRITTEN) += len as i64;
        r.counters[P::POSIX_SIZE_WRITE_0_100 as usize + size_bucket(len)] += 1;
        r.access_sizes.add(len);
        if offset == r.last_write_end {
            *r.get_mut(P::POSIX_CONSEC_WRITES) += 1;
        }
        if offset >= r.last_write_end {
            *r.get_mut(P::POSIX_SEQ_WRITES) += 1;
        }
        r.last_write_end = offset + len;
        if len > 0 {
            let maxb = (offset + len - 1) as i64;
            let cur = r.get_mut(P::POSIX_MAX_BYTE_WRITTEN);
            *cur = (*cur).max(maxb);
        }
        if r.last_was_write == Some(false) {
            *r.get_mut(P::POSIX_RW_SWITCHES) += 1;
        }
        r.last_was_write = Some(true);
        let (s, e) = (self.rel(t0), self.rel(t1));
        if r.fget(PF::POSIX_F_WRITE_START_TIMESTAMP) == 0.0 {
            *r.fget_mut(PF::POSIX_F_WRITE_START_TIMESTAMP) = s;
        }
        *r.fget_mut(PF::POSIX_F_WRITE_END_TIMESTAMP) = e;
        *r.fget_mut(PF::POSIX_F_WRITE_TIME) += e - s;
        let mx = r.fget_mut(PF::POSIX_F_MAX_WRITE_TIME);
        *mx = mx.max(e - s);
        drop(m);
        self.dxt_push(rec_id, DxtOp::Write, offset, len, t0, t1);
    }

    /// Instrument a metadata operation (seek/stat/fsync) against an
    /// existing record.
    pub fn posix_meta(&self, rec_id: u64, counter: P, t0: SimTime, t1: SimTime) {
        let mut m = self.posix.lock();
        let Some(r) = m.records.get_mut(&rec_id) else {
            return;
        };
        *r.get_mut(counter) += 1;
        *r.fget_mut(PF::POSIX_F_META_TIME) += self.rel(t1) - self.rel(t0);
    }

    /// Register a record for a file whose `open` predates attachment
    /// (OPENS stays 0; only subsequently observed operations count).
    pub fn posix_register_existing(&self, path: &str) -> Option<u64> {
        let mut m = self.posix.lock();
        let id = record_id(path);
        if !m.records.contains_key(&id) {
            if m.records.len() >= self.config.max_records_per_module {
                m.partial = true;
                return None;
            }
            self.register_name(path);
            m.records.insert(id, PosixRecord::new(id));
        }
        Some(id)
    }

    /// Instrument a `stat` by path (creates the record if needed, like
    /// Darshan's stat wrapper).
    pub fn posix_stat_path(&self, path: &str, t0: SimTime, t1: SimTime) {
        let mut m = self.posix.lock();
        let id = record_id(path);
        let is_new = !m.records.contains_key(&id);
        if is_new && m.records.len() >= self.config.max_records_per_module {
            m.partial = true;
            return;
        }
        if is_new {
            self.register_name(path);
        }
        let r = m.records.entry(id).or_insert_with(|| PosixRecord::new(id));
        *r.get_mut(P::POSIX_STATS) += 1;
        *r.fget_mut(PF::POSIX_F_META_TIME) += self.rel(t1) - self.rel(t0);
    }

    /// Instrument a `close`.
    pub fn posix_close(&self, rec_id: u64, t0: SimTime, t1: SimTime) {
        let mut m = self.posix.lock();
        let Some(r) = m.records.get_mut(&rec_id) else {
            return;
        };
        let (s, e) = (self.rel(t0), self.rel(t1));
        if r.fget(PF::POSIX_F_CLOSE_START_TIMESTAMP) == 0.0 {
            *r.fget_mut(PF::POSIX_F_CLOSE_START_TIMESTAMP) = s;
        }
        *r.fget_mut(PF::POSIX_F_CLOSE_END_TIMESTAMP) = e;
        *r.fget_mut(PF::POSIX_F_META_TIME) += e - s;
    }

    // -- STDIO module -------------------------------------------------------

    /// Instrument `fopen`.
    pub fn stdio_open(&self, path: &str, t0: SimTime, t1: SimTime) -> Option<u64> {
        let mut m = self.stdio.lock();
        let id = record_id(path);
        let is_new = !m.records.contains_key(&id);
        if is_new && m.records.len() >= self.config.max_records_per_module {
            m.partial = true;
            return None;
        }
        if is_new {
            // See posix_open: the time cost lives in the wrapper.
            self.register_name(path);
        }
        let r = m.records.entry(id).or_insert_with(|| StdioRecord::new(id));
        *r.get_mut(S::STDIO_OPENS) += 1;
        let (s, e) = (self.rel(t0), self.rel(t1));
        if r.fget(SF::STDIO_F_OPEN_START_TIMESTAMP) == 0.0 {
            *r.fget_mut(SF::STDIO_F_OPEN_START_TIMESTAMP) = s;
        }
        *r.fget_mut(SF::STDIO_F_OPEN_END_TIMESTAMP) = e;
        *r.fget_mut(SF::STDIO_F_META_TIME) += e - s;
        Some(id)
    }

    /// Instrument `fread`.
    pub fn stdio_read(&self, rec_id: u64, pos: u64, len: u64, t0: SimTime, t1: SimTime) {
        let mut m = self.stdio.lock();
        let Some(r) = m.records.get_mut(&rec_id) else {
            return;
        };
        *r.get_mut(S::STDIO_READS) += 1;
        *r.get_mut(S::STDIO_BYTES_READ) += len as i64;
        if len > 0 {
            let maxb = (pos + len - 1) as i64;
            let cur = r.get_mut(S::STDIO_MAX_BYTE_READ);
            *cur = (*cur).max(maxb);
        }
        *r.fget_mut(SF::STDIO_F_READ_TIME) += self.rel(t1) - self.rel(t0);
    }

    /// Instrument `fwrite`.
    pub fn stdio_write(&self, rec_id: u64, pos: u64, len: u64, t0: SimTime, t1: SimTime) {
        let mut m = self.stdio.lock();
        let Some(r) = m.records.get_mut(&rec_id) else {
            return;
        };
        *r.get_mut(S::STDIO_WRITES) += 1;
        *r.get_mut(S::STDIO_BYTES_WRITTEN) += len as i64;
        if len > 0 {
            let maxb = (pos + len - 1) as i64;
            let cur = r.get_mut(S::STDIO_MAX_BYTE_WRITTEN);
            *cur = (*cur).max(maxb);
        }
        *r.fget_mut(SF::STDIO_F_WRITE_TIME) += self.rel(t1) - self.rel(t0);
    }

    /// Instrument `fseek` / `fflush`.
    pub fn stdio_meta(&self, rec_id: u64, counter: S, t0: SimTime, t1: SimTime) {
        let mut m = self.stdio.lock();
        let Some(r) = m.records.get_mut(&rec_id) else {
            return;
        };
        *r.get_mut(counter) += 1;
        *r.fget_mut(SF::STDIO_F_META_TIME) += self.rel(t1) - self.rel(t0);
    }

    /// Instrument `fclose`.
    pub fn stdio_close(&self, rec_id: u64, t0: SimTime, t1: SimTime) {
        let mut m = self.stdio.lock();
        let Some(r) = m.records.get_mut(&rec_id) else {
            return;
        };
        let (s, e) = (self.rel(t0), self.rel(t1));
        if r.fget(SF::STDIO_F_CLOSE_START_TIMESTAMP) == 0.0 {
            *r.fget_mut(SF::STDIO_F_CLOSE_START_TIMESTAMP) = s;
        }
        *r.fget_mut(SF::STDIO_F_CLOSE_END_TIMESTAMP) = e;
        *r.fget_mut(SF::STDIO_F_META_TIME) += e - s;
    }

    // -- DXT ----------------------------------------------------------------

    fn dxt_push(&self, rec_id: u64, op: DxtOp, offset: u64, length: u64, t0: SimTime, t1: SimTime) {
        if !self.config.dxt_enabled {
            return;
        }
        let mut d = self.dxt.lock();
        if d.total >= self.config.dxt_max_segments {
            d.truncated = true;
            return;
        }
        d.total += 1;
        let seg = DxtSegment {
            op,
            offset,
            length,
            start: self.rel(t0),
            end: self.rel(t1),
        };
        d.segments.entry(rec_id).or_default().push(seg);
    }

    /// All DXT segments of one file.
    pub fn dxt_of(&self, rec_id: u64) -> Vec<DxtSegment> {
        self.dxt
            .lock()
            .segments
            .get(&rec_id)
            .cloned()
            .unwrap_or_default()
    }

    /// Extract all DXT segments overlapping `[from, to]` (Darshan-relative
    /// seconds), as `(rec_id, segment)` pairs sorted by start time. This is
    /// what tf-Darshan exports to the TraceViewer.
    pub fn dxt_range(&self, from: f64, to: f64) -> Vec<(u64, DxtSegment)> {
        let d = self.dxt.lock();
        let mut out: Vec<(u64, DxtSegment)> = Vec::new();
        for (id, segs) in d.segments.iter() {
            for s in segs {
                if s.end >= from && s.start <= to {
                    out.push((*id, *s));
                }
            }
        }
        out.sort_by(|a, b| {
            a.1.start
                .partial_cmp(&b.1.start)
                .unwrap()
                .then(a.0.cmp(&b.0))
        });
        out
    }

    /// True if DXT hit its memory cap and dropped segments.
    pub fn dxt_truncated(&self) -> bool {
        self.dxt.lock().truncated
    }

    // -- extraction / shutdown ----------------------------------------------

    /// Cheap aggregates (no module lock ordering concerns).
    pub fn totals(&self) -> Totals {
        // Fold any events still buffered on this thread so the aggregates
        // are complete up to now (parked threads flushed when descheduled).
        probe::flush_current_thread();
        Totals {
            posix_bytes_read: self.agg_bytes_read.load(Ordering::Relaxed),
            posix_bytes_written: self.agg_bytes_written.load(Ordering::Relaxed),
            posix_reads: self.agg_reads.load(Ordering::Relaxed),
            posix_writes: self.agg_writes.load(Ordering::Relaxed),
            posix_opens: self.agg_opens.load(Ordering::Relaxed),
        }
    }

    /// Deep-copy the module buffers — the paper's runtime extraction. The
    /// copy has the access-size reduction applied; live buffers are not
    /// disturbed.
    pub fn snapshot(&self) -> Snapshot {
        // Complete the event stream first: any operation this thread
        // finished but has not yet flushed must be folded into the module
        // buffers before they are copied. Other threads' buffers drained
        // when those threads descheduled.
        probe::flush_current_thread();
        // Extraction deep-copies the module buffers under their locks:
        // charge for the copy while instrumented I/O stalls at the gate.
        let n = self.posix_record_count() + self.stdio_record_count();
        if n > 0 && !self.config.snapshot_cost_per_record.is_zero() {
            self.gate.close();
            sleep(self.config.snapshot_cost_per_record * n as u32);
            self.gate.open();
        }
        let taken_at = self.rel(simrt::now());
        let mut posix: Vec<PosixRecord> = {
            let m = self.posix.lock();
            m.records.values().cloned().collect()
        };
        for r in posix.iter_mut() {
            r.reduce_common_accesses();
        }
        posix.sort_by_key(|r| r.rec_id);
        let mut stdio: Vec<StdioRecord> = {
            let m = self.stdio.lock();
            m.records.values().cloned().collect()
        };
        stdio.sort_by_key(|r| r.rec_id);
        Snapshot {
            taken_at,
            posix,
            stdio,
            names: self.names.lock().clone(),
            posix_partial: self.posix.lock().partial,
            stdio_partial: self.stdio.lock().partial,
            dxt_segments: self.dxt.lock().total,
        }
    }

    /// Number of POSIX records currently held.
    pub fn posix_record_count(&self) -> usize {
        self.posix.lock().records.len()
    }

    /// Number of STDIO records currently held.
    pub fn stdio_record_count(&self) -> usize {
        self.stdio.lock().records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrt::Sim;
    use std::sync::Arc;

    fn at(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn open_read_counters_and_pattern() {
        let sim = Sim::new();
        sim.spawn("t", || {
            let rt = DarshanRuntime::new(DarshanConfig::default());
            let id = rt.posix_open("/d/f", at(0), at(1)).unwrap();
            rt.posix_read(id, 0, 1000, at(1), at(2)); // consec+seq
            rt.posix_read(id, 1000, 1000, at(2), at(3)); // consec+seq
            rt.posix_read(id, 5000, 100, at(3), at(4)); // seq only
            rt.posix_read(id, 100, 50, at(4), at(5)); // neither
            rt.posix_read(id, 150, 0, at(5), at(6)); // zero read, consec
            let snap = rt.snapshot();
            let r = snap.posix_by_path("/d/f").unwrap();
            assert_eq!(r.get(P::POSIX_OPENS), 1);
            assert_eq!(r.get(P::POSIX_READS), 5);
            assert_eq!(r.get(P::POSIX_BYTES_READ), 2150);
            assert_eq!(r.get(P::POSIX_CONSEC_READS), 3);
            assert_eq!(r.get(P::POSIX_SEQ_READS), 4);
            assert_eq!(r.get(P::POSIX_MAX_BYTE_READ), 5099);
            // Histogram: 1000,1000 → bucket 100-1K ×2; 100,50,0 → 0-100 ×3.
            assert_eq!(r.get(P::POSIX_SIZE_READ_0_100), 3);
            assert_eq!(r.get(P::POSIX_SIZE_READ_100_1K), 2);
            assert!((r.fget(PF::POSIX_F_READ_TIME) - 0.005).abs() < 1e-9);
        });
        sim.run();
    }

    #[test]
    fn write_and_rw_switches() {
        let sim = Sim::new();
        sim.spawn("t", || {
            let rt = DarshanRuntime::new(DarshanConfig::default());
            let id = rt.posix_open("/d/w", at(0), at(0)).unwrap();
            rt.posix_write(id, 0, 100, at(1), at(2));
            rt.posix_read(id, 0, 100, at(2), at(3));
            rt.posix_write(id, 100, 100, at(3), at(4));
            let snap = rt.snapshot();
            let r = snap.posix_by_path("/d/w").unwrap();
            assert_eq!(r.get(P::POSIX_WRITES), 2);
            assert_eq!(r.get(P::POSIX_RW_SWITCHES), 2);
            assert_eq!(r.get(P::POSIX_CONSEC_WRITES), 2);
            assert_eq!(r.get(P::POSIX_BYTES_WRITTEN), 200);
        });
        sim.run();
    }

    #[test]
    fn record_memory_cap_sets_partial_flag() {
        let sim = Sim::new();
        sim.spawn("t", || {
            let rt = DarshanRuntime::new(DarshanConfig {
                max_records_per_module: 2,
                ..Default::default()
            });
            assert!(rt.posix_open("/a", at(0), at(0)).is_some());
            assert!(rt.posix_open("/b", at(0), at(0)).is_some());
            assert!(rt.posix_open("/c", at(0), at(0)).is_none());
            // Existing records still update.
            assert!(rt.posix_open("/a", at(1), at(1)).is_some());
            let snap = rt.snapshot();
            assert!(snap.posix_partial);
            assert_eq!(snap.posix.len(), 2);
        });
        sim.run();
    }

    #[test]
    fn dxt_records_segments_and_caps() {
        let sim = Sim::new();
        sim.spawn("t", || {
            let rt = DarshanRuntime::new(DarshanConfig {
                dxt_max_segments: 3,
                ..Default::default()
            });
            let id = rt.posix_open("/d/f", at(0), at(0)).unwrap();
            for i in 0..5u64 {
                rt.posix_read(id, i * 10, 10, at(i), at(i + 1));
            }
            let segs = rt.dxt_of(id);
            assert_eq!(segs.len(), 3, "capped");
            assert!(rt.dxt_truncated());
            assert_eq!(segs[0].offset, 0);
            assert_eq!(segs[0].length, 10);
            assert_eq!(segs[0].op, DxtOp::Read);
        });
        sim.run();
    }

    #[test]
    fn dxt_range_query() {
        let sim = Sim::new();
        sim.spawn("t", || {
            let rt = DarshanRuntime::new(DarshanConfig::default());
            let id = rt.posix_open("/d/f", at(0), at(0)).unwrap();
            rt.posix_read(id, 0, 10, at(10), at(20));
            rt.posix_read(id, 10, 10, at(30), at(40));
            rt.posix_read(id, 20, 10, at(50), at(60));
            let mid = rt.dxt_range(0.025, 0.045);
            assert_eq!(mid.len(), 1);
            assert_eq!(mid[0].1.offset, 10);
            assert_eq!(rt.dxt_range(0.0, 1.0).len(), 3);
        });
        sim.run();
    }

    #[test]
    fn snapshot_is_a_stable_copy() {
        let sim = Sim::new();
        sim.spawn("t", || {
            let rt = Arc::new(DarshanRuntime::new(DarshanConfig::default()));
            let id = rt.posix_open("/d/f", at(0), at(1)).unwrap();
            rt.posix_read(id, 0, 100, at(1), at(2));
            let s1 = rt.snapshot();
            rt.posix_read(id, 100, 100, at(2), at(3));
            let s2 = rt.snapshot();
            assert_eq!(s1.posix_by_path("/d/f").unwrap().get(P::POSIX_READS), 1);
            assert_eq!(s2.posix_by_path("/d/f").unwrap().get(P::POSIX_READS), 2);
            assert_eq!(s1.names[&record_id("/d/f")], "/d/f");
        });
        sim.run();
    }

    #[test]
    fn totals_track_aggregates() {
        let sim = Sim::new();
        sim.spawn("t", || {
            let rt = DarshanRuntime::new(DarshanConfig::default());
            let id = rt.posix_open("/d/f", at(0), at(0)).unwrap();
            rt.posix_read(id, 0, 500, at(0), at(1));
            rt.posix_write(id, 0, 200, at(1), at(2));
            let t = rt.totals();
            assert_eq!(t.posix_opens, 1);
            assert_eq!(t.posix_reads, 1);
            assert_eq!(t.posix_bytes_read, 500);
            assert_eq!(t.posix_bytes_written, 200);
        });
        sim.run();
    }

    #[test]
    fn stdio_module_counts() {
        let sim = Sim::new();
        sim.spawn("t", || {
            let rt = DarshanRuntime::new(DarshanConfig::default());
            let id = rt.stdio_open("/ckpt", at(0), at(1)).unwrap();
            for i in 0..140u64 {
                rt.stdio_write(id, i * 100, 100, at(i + 1), at(i + 2));
            }
            rt.stdio_close(id, at(200), at(201));
            let snap = rt.snapshot();
            let r = &snap.stdio[0];
            assert_eq!(r.get(S::STDIO_OPENS), 1);
            assert_eq!(r.get(S::STDIO_WRITES), 140);
            assert_eq!(r.get(S::STDIO_BYTES_WRITTEN), 14_000);
        });
        sim.run();
    }
}
