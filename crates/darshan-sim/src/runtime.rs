//! The Darshan runtime: module record buffers, DXT tracing, name records,
//! and the runtime-extraction API that tf-Darshan adds (paper §III.C).
//!
//! Mirrors darshan-runtime's shape: a core that owns *name records*
//! (record-id → path) and per-module record buffers with bounded memory;
//! modules update counters inline on every instrumented call; statistics
//! reduction (e.g. folding the common-access-size tracker into the
//! `ACCESS1..4` counters) happens at shutdown — or, new here, whenever a
//! snapshot is taken, because tf-Darshan needs analyzable buffers *during*
//! execution, not only post-mortem.
//!
//! # Incremental extraction (dirty-set snapshots)
//!
//! The paper's Fig. 5 shows extraction overhead growing with the number of
//! files processed, because every profile stop deep-copies the full module
//! buffers. This runtime instead stamps each record with a *dirty epoch*
//! on mutation and keeps a persistent reduced **baseline** (`Vec<Arc<_>>`
//! sorted by record id). [`DarshanRuntime::snapshot`] copies + reduces only
//! the records dirtied since the previous extraction, merges them into the
//! baseline, and hands out `Arc` clones of everything else — so both the
//! host cost and the simulated gate-closed stall become
//! `snapshot_cost_per_record × dirty_count` instead of `× total_records`.
//! The same idea covers DXT (per-record append watermarks, see
//! [`DarshanRuntime::dxt_between`]) and the name map (`Arc`'d
//! copy-on-write). The legacy full-copy path survives as
//! [`DarshanRuntime::snapshot_full`] for comparison and as the equivalence
//! oracle.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use simrt::{sleep, SimTime, TaskId};

use crate::counters::{
    record_id, size_bucket, PosixCounter as P, PosixFCounter as PF, PosixRecord, StdioCounter as S,
    StdioFCounter as SF, StdioRecord,
};

/// Configuration of the Darshan runtime (environment variables in real
/// Darshan: `DARSHAN_MODMEM`, `DXT_ENABLE_IO_TRACE`, ...).
#[derive(Clone, Debug)]
pub struct DarshanConfig {
    /// Maximum file records per module; further files set the partial flag
    /// and are not tracked (Darshan's module memory limit).
    pub max_records_per_module: usize,
    /// Whether DXT (extended tracing) records per-operation segments.
    pub dxt_enabled: bool,
    /// Maximum DXT segments across all files; beyond this, tracing stops
    /// and the truncated flag is set.
    pub dxt_max_segments: usize,
    /// Instrumentation cost charged per wrapped operation.
    pub per_op_overhead: Duration,
    /// Extra cost the first time a file is seen (record allocation + name
    /// registration).
    pub new_record_overhead: Duration,
    /// Cost per *copied* record of a runtime buffer extraction. The
    /// incremental path copies only dirty records, so a steady-state
    /// profiling session pays this per changed file — the paper's Fig. 5
    /// correlation of overhead with files processed applies only to the
    /// first (full) extraction and to [`DarshanRuntime::snapshot_full`].
    pub snapshot_cost_per_record: Duration,
    /// MPI rank this runtime instruments (`0` for single-process runs, as
    /// in non-MPI Darshan). Stamped onto every [`DxtSegment`] so job-level
    /// trace merges keep per-rank attribution.
    pub rank: u32,
}

impl Default for DarshanConfig {
    fn default() -> Self {
        DarshanConfig {
            max_records_per_module: 1 << 20,
            dxt_enabled: true,
            dxt_max_segments: 1 << 22,
            per_op_overhead: Duration::from_nanos(120),
            new_record_overhead: Duration::from_micros(2),
            snapshot_cost_per_record: Duration::from_micros(90),
            rank: 0,
        }
    }
}

/// DXT operation kind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DxtOp {
    /// A read segment.
    Read,
    /// A write segment.
    Write,
}

/// One DXT trace segment (one I/O operation on one file).
#[derive(Clone, Copy, Debug)]
pub struct DxtSegment {
    /// Operation kind.
    pub op: DxtOp,
    /// File offset.
    pub offset: u64,
    /// Transfer length (zero-length reads are recorded — they are the
    /// Fig. 8 signature).
    pub length: u64,
    /// Start time, seconds since Darshan initialization.
    pub start: f64,
    /// End time, seconds since Darshan initialization.
    pub end: f64,
    /// Rank of the process that issued the operation (parallel Darshan's
    /// DXT records always carry the rank; single-process runs use 0).
    pub rank: u32,
}

/// Internal: record types that carry a dirty-epoch stamp and know their
/// extraction-time reduction.
trait DirtyRecord: Clone {
    fn id(&self) -> u64;
    fn epoch(&self) -> u64;
    fn set_epoch(&mut self, epoch: u64);
    /// Reduction applied to the extracted copy (POSIX folds the
    /// common-access tracker into ACCESS1..4; STDIO has none).
    fn reduce(&mut self) {}
}

impl DirtyRecord for PosixRecord {
    fn id(&self) -> u64 {
        self.rec_id
    }
    fn epoch(&self) -> u64 {
        self.dirty_epoch
    }
    fn set_epoch(&mut self, epoch: u64) {
        self.dirty_epoch = epoch;
    }
    fn reduce(&mut self) {
        self.reduce_common_accesses();
    }
}

impl DirtyRecord for StdioRecord {
    fn id(&self) -> u64 {
        self.rec_id
    }
    fn epoch(&self) -> u64 {
        self.dirty_epoch
    }
    fn set_epoch(&mut self, epoch: u64) {
        self.dirty_epoch = epoch;
    }
}

struct ModuleBuf<R> {
    records: HashMap<u64, R>,
    partial: bool,
    /// Ids dirtied since the last incremental extraction. Each id appears
    /// at most once: a record is listed iff `dirty_epoch > drained_epoch`.
    dirty: Vec<u64>,
    /// Epoch through which `dirty` has been drained into the baseline.
    drained_epoch: u64,
}

impl<R: DirtyRecord> ModuleBuf<R> {
    fn new() -> Self {
        ModuleBuf {
            records: HashMap::new(),
            partial: false,
            dirty: Vec::new(),
            drained_epoch: 0,
        }
    }

    /// Stamp `rec_id` dirty at `epoch` and return the live record.
    fn touch(&mut self, rec_id: u64, epoch: u64) -> Option<&mut R> {
        let r = self.records.get_mut(&rec_id)?;
        if r.epoch() <= self.drained_epoch {
            self.dirty.push(rec_id);
        }
        r.set_epoch(epoch);
        Some(r)
    }
}

/// Merge a module's dirty records into its baseline: O(dirty) copies and
/// reductions. Known records are replaced in place via binary search; new
/// records are collected first and folded in with a single sort pass (an
/// in-loop insert would corrupt the binary search). Clean records keep
/// their existing `Arc`, so snapshot clones share them.
fn merge_dirty<R: DirtyRecord>(baseline: &mut Vec<Arc<R>>, buf: &mut ModuleBuf<R>, epoch: u64) {
    buf.drained_epoch = epoch;
    if buf.dirty.is_empty() {
        return;
    }
    let mut fresh: Vec<Arc<R>> = Vec::new();
    for id in std::mem::take(&mut buf.dirty) {
        let Some(live) = buf.records.get(&id) else {
            continue;
        };
        let mut copy = live.clone();
        copy.reduce();
        match baseline.binary_search_by_key(&id, |r| r.id()) {
            Ok(i) => baseline[i] = Arc::new(copy),
            Err(_) => fresh.push(Arc::new(copy)),
        }
    }
    if !fresh.is_empty() {
        baseline.extend(fresh);
        baseline.sort_by_key(|r| r.id());
    }
}

/// The persistent reduced baseline: what the previous extraction returned,
/// kept so the next one only has to merge the dirty set.
#[derive(Default)]
struct Baseline {
    posix: Vec<Arc<PosixRecord>>,
    stdio: Vec<Arc<StdioRecord>>,
}

/// Per-file DXT segment list.
struct DxtFile {
    /// Segments ordered by non-decreasing `end`. Folds arrive in
    /// completion order per thread; cross-thread flushes can interleave,
    /// so the (rare) out-of-order insert bisects from the tail. At any
    /// extraction every completed op has been folded (the extracting task
    /// flushes itself; all other tasks flushed when they descheduled), so
    /// segments appended after a watermark capture always land at indices
    /// ≥ the watermark — slices over old watermarks never shift.
    segs: Vec<DxtSegment>,
    /// Extraction epoch of the last append (watermark dirtiness).
    dirty_epoch: u64,
}

struct DxtBuf {
    files: HashMap<u64, DxtFile>,
    total: usize,
    truncated: bool,
    /// Files appended-to since the last watermark capture.
    dirty: Vec<u64>,
    drained_epoch: u64,
    /// Copy-on-write per-file append watermarks as of the last extraction:
    /// rec_id → segment count. Only entries for dirty files are rewritten.
    marks: Arc<HashMap<u64, usize>>,
}

/// While a snapshot copies the module buffers it holds the module locks;
/// instrumented operations stall until the copy completes. This gate
/// models that: `close` during extraction, `open` after, wrappers wait.
#[derive(Default)]
struct Gate {
    closed: std::sync::atomic::AtomicBool,
    waiters: Mutex<Vec<TaskId>>,
}

impl Gate {
    fn wait_open(&self) {
        loop {
            if !self.closed.load(Ordering::SeqCst) {
                return;
            }
            self.waiters.lock().push(simrt::current_task());
            simrt::block(None);
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
    }

    fn open(&self) {
        self.closed.store(false, Ordering::SeqCst);
        for t in self.waiters.lock().drain(..) {
            simrt::wake(t);
        }
    }
}

/// A consistent copy of Darshan's module buffers, extracted at runtime.
///
/// This is the data structure the paper's augmented Darshan returns to the
/// instrumented application ("we implemented several data extraction
/// functions in the Darshan shared library that returns Darshan module
/// buffers"). Records are shared with the runtime's baseline via `Arc`:
/// cloning a snapshot is O(records) pointer bumps, and consecutive
/// snapshots share every record that did not change between them.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Seconds since Darshan initialization when the snapshot was taken.
    pub taken_at: f64,
    /// Extraction epoch: a record whose `dirty_epoch` exceeds this was
    /// mutated *after* this snapshot. `analysis::diff` uses this to skip
    /// unchanged records in O(1).
    pub epoch: u64,
    /// POSIX records, sorted by record id, with common-access reduction
    /// applied to the copy.
    pub posix: Vec<Arc<PosixRecord>>,
    /// STDIO records, sorted by record id.
    pub stdio: Vec<Arc<StdioRecord>>,
    /// Record-id → path map (copy-on-write shared with the runtime).
    pub names: Arc<HashMap<u64, String>>,
    /// True if the POSIX module ran out of record memory.
    pub posix_partial: bool,
    /// True if the STDIO module ran out of record memory.
    pub stdio_partial: bool,
    /// Total DXT segments recorded so far.
    pub dxt_segments: usize,
    /// Per-record DXT append watermarks at extraction time (rec_id →
    /// segments recorded). [`DarshanRuntime::dxt_between`] slices two of
    /// these to extract exactly the segments appended in a session.
    pub dxt_watermarks: Arc<HashMap<u64, usize>>,
}

impl Snapshot {
    /// Find a POSIX record by path (binary search — records are sorted by
    /// record id).
    pub fn posix_by_path(&self, path: &str) -> Option<&PosixRecord> {
        let id = record_id(path);
        self.posix
            .binary_search_by_key(&id, |r| r.rec_id)
            .ok()
            .map(|i| &*self.posix[i])
    }
}

/// Running totals kept by the runtime (cheap aggregate queries without a
/// full snapshot).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Totals {
    /// Total POSIX bytes read.
    pub posix_bytes_read: u64,
    /// Total POSIX bytes written.
    pub posix_bytes_written: u64,
    /// Total POSIX read calls.
    pub posix_reads: u64,
    /// Total POSIX write calls.
    pub posix_writes: u64,
    /// Total POSIX opens.
    pub posix_opens: u64,
}

/// The Darshan runtime ("libdarshan.so" once loaded into the process).
pub struct DarshanRuntime {
    config: DarshanConfig,
    init_time: SimTime,
    /// Current extraction epoch. Starts at 1 (fresh records carry stamp 0,
    /// i.e. "dirty since before any extraction"); each snapshot claims the
    /// current value and advances it.
    epoch: AtomicU64,
    names: Mutex<Arc<HashMap<u64, String>>>,
    posix: Mutex<ModuleBuf<PosixRecord>>,
    stdio: Mutex<ModuleBuf<StdioRecord>>,
    baseline: Mutex<Baseline>,
    dxt: Mutex<DxtBuf>,
    gate: Gate,
    // Aggregates (atomic so bandwidth probes don't lock modules).
    agg_bytes_read: AtomicU64,
    agg_bytes_written: AtomicU64,
    agg_reads: AtomicU64,
    agg_writes: AtomicU64,
    agg_opens: AtomicU64,
}

impl DarshanRuntime {
    /// Initialize the runtime at the current virtual time.
    pub fn new(config: DarshanConfig) -> Self {
        DarshanRuntime {
            config,
            init_time: simrt::try_now().unwrap_or(SimTime::ZERO),
            epoch: AtomicU64::new(1),
            names: Mutex::new(Arc::new(HashMap::new())),
            posix: Mutex::new(ModuleBuf::new()),
            stdio: Mutex::new(ModuleBuf::new()),
            baseline: Mutex::new(Baseline::default()),
            dxt: Mutex::new(DxtBuf {
                files: HashMap::new(),
                total: 0,
                truncated: false,
                dirty: Vec::new(),
                drained_epoch: 0,
                marks: Arc::new(HashMap::new()),
            }),
            gate: Gate::default(),
            agg_bytes_read: AtomicU64::new(0),
            agg_bytes_written: AtomicU64::new(0),
            agg_reads: AtomicU64::new(0),
            agg_writes: AtomicU64::new(0),
            agg_opens: AtomicU64::new(0),
        }
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &DarshanConfig {
        &self.config
    }

    /// Virtual instant of initialization (the zero of all float counters).
    pub fn init_time(&self) -> SimTime {
        self.init_time
    }

    /// Convert an absolute virtual instant to Darshan-relative seconds.
    pub fn rel(&self, t: SimTime) -> f64 {
        t.duration_since(self.init_time).as_secs_f64()
    }

    /// The current extraction epoch (records mutated from here on carry
    /// this stamp).
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Charge the per-operation instrumentation cost; stalls while a
    /// snapshot holds the module locks.
    pub fn charge_op(&self) {
        self.gate.wait_open();
        if !self.config.per_op_overhead.is_zero() {
            sleep(self.config.per_op_overhead);
        }
    }

    /// Charge the cost of allocating a new module record. Called by the
    /// wrappers at `open`/`fopen` time (the emission site), *not* by the
    /// event fold: sink folds run inside the scheduler's switch path where
    /// sleeping is forbidden.
    pub fn charge_new_record(&self) {
        if !self.config.new_record_overhead.is_zero() {
            sleep(self.config.new_record_overhead);
        }
    }

    /// Register (or look up) the name record for `path`. The map is
    /// copy-on-write: snapshots hold `Arc` clones, so the first insert
    /// after an extraction clones the map once and later inserts are
    /// in-place until the next extraction shares it again.
    pub fn register_name(&self, path: &str) -> u64 {
        let id = record_id(path);
        let mut names = self.names.lock();
        if !names.contains_key(&id) {
            Arc::make_mut(&mut names).insert(id, path.to_string());
        }
        id
    }

    /// Resolve a record id back to a path (the helper tf-Darshan `dlsym`s).
    pub fn lookup_name(&self, rec_id: u64) -> Option<String> {
        self.names.lock().get(&rec_id).cloned()
    }

    // -- POSIX module -------------------------------------------------------

    /// Instrument an `open`. Returns the record id, or `None` if the module
    /// is out of record memory (the caller still forwards the call).
    pub fn posix_open(&self, path: &str, t0: SimTime, t1: SimTime) -> Option<u64> {
        self.agg_opens.fetch_add(1, Ordering::Relaxed);
        let epoch = self.current_epoch();
        let mut m = self.posix.lock();
        let id = record_id(path);
        if !m.records.contains_key(&id) {
            if m.records.len() >= self.config.max_records_per_module {
                m.partial = true;
                return None;
            }
            // Record creation itself is pure bookkeeping here; the
            // new-record *time* cost is charged by the wrapper at the
            // emission site (this method also runs inside event folds,
            // which must not sleep).
            self.register_name(path);
            m.records.insert(id, PosixRecord::new(id));
        }
        let r = m.touch(id, epoch).expect("record just ensured");
        *r.get_mut(P::POSIX_OPENS) += 1;
        let (s, e) = (self.rel(t0), self.rel(t1));
        if r.fget(PF::POSIX_F_OPEN_START_TIMESTAMP) == 0.0 {
            *r.fget_mut(PF::POSIX_F_OPEN_START_TIMESTAMP) = s;
        }
        *r.fget_mut(PF::POSIX_F_OPEN_END_TIMESTAMP) = e;
        *r.fget_mut(PF::POSIX_F_META_TIME) += e - s;
        Some(id)
    }

    /// Instrument a read of `len` bytes at `offset`.
    pub fn posix_read(&self, rec_id: u64, offset: u64, len: u64, t0: SimTime, t1: SimTime) {
        self.agg_reads.fetch_add(1, Ordering::Relaxed);
        self.agg_bytes_read.fetch_add(len, Ordering::Relaxed);
        let epoch = self.current_epoch();
        let mut m = self.posix.lock();
        let Some(r) = m.touch(rec_id, epoch) else {
            return;
        };
        *r.get_mut(P::POSIX_READS) += 1;
        *r.get_mut(P::POSIX_BYTES_READ) += len as i64;
        r.counters[P::POSIX_SIZE_READ_0_100 as usize + size_bucket(len)] += 1;
        r.access_sizes.add(len);
        if offset == r.last_read_end {
            *r.get_mut(P::POSIX_CONSEC_READS) += 1;
        }
        if offset >= r.last_read_end {
            *r.get_mut(P::POSIX_SEQ_READS) += 1;
        }
        r.last_read_end = offset + len;
        if len > 0 {
            let maxb = (offset + len - 1) as i64;
            let cur = r.get_mut(P::POSIX_MAX_BYTE_READ);
            *cur = (*cur).max(maxb);
        }
        if r.last_was_write == Some(true) {
            *r.get_mut(P::POSIX_RW_SWITCHES) += 1;
        }
        r.last_was_write = Some(false);
        let (s, e) = (self.rel(t0), self.rel(t1));
        if r.fget(PF::POSIX_F_READ_START_TIMESTAMP) == 0.0 {
            *r.fget_mut(PF::POSIX_F_READ_START_TIMESTAMP) = s;
        }
        *r.fget_mut(PF::POSIX_F_READ_END_TIMESTAMP) = e;
        *r.fget_mut(PF::POSIX_F_READ_TIME) += e - s;
        let mx = r.fget_mut(PF::POSIX_F_MAX_READ_TIME);
        *mx = mx.max(e - s);
        drop(m);
        self.dxt_push(rec_id, DxtOp::Read, offset, len, t0, t1);
    }

    /// Instrument a write.
    pub fn posix_write(&self, rec_id: u64, offset: u64, len: u64, t0: SimTime, t1: SimTime) {
        self.agg_writes.fetch_add(1, Ordering::Relaxed);
        self.agg_bytes_written.fetch_add(len, Ordering::Relaxed);
        let epoch = self.current_epoch();
        let mut m = self.posix.lock();
        let Some(r) = m.touch(rec_id, epoch) else {
            return;
        };
        *r.get_mut(P::POSIX_WRITES) += 1;
        *r.get_mut(P::POSIX_BYTES_WRITTEN) += len as i64;
        r.counters[P::POSIX_SIZE_WRITE_0_100 as usize + size_bucket(len)] += 1;
        r.access_sizes.add(len);
        if offset == r.last_write_end {
            *r.get_mut(P::POSIX_CONSEC_WRITES) += 1;
        }
        if offset >= r.last_write_end {
            *r.get_mut(P::POSIX_SEQ_WRITES) += 1;
        }
        r.last_write_end = offset + len;
        if len > 0 {
            let maxb = (offset + len - 1) as i64;
            let cur = r.get_mut(P::POSIX_MAX_BYTE_WRITTEN);
            *cur = (*cur).max(maxb);
        }
        if r.last_was_write == Some(false) {
            *r.get_mut(P::POSIX_RW_SWITCHES) += 1;
        }
        r.last_was_write = Some(true);
        let (s, e) = (self.rel(t0), self.rel(t1));
        if r.fget(PF::POSIX_F_WRITE_START_TIMESTAMP) == 0.0 {
            *r.fget_mut(PF::POSIX_F_WRITE_START_TIMESTAMP) = s;
        }
        *r.fget_mut(PF::POSIX_F_WRITE_END_TIMESTAMP) = e;
        *r.fget_mut(PF::POSIX_F_WRITE_TIME) += e - s;
        let mx = r.fget_mut(PF::POSIX_F_MAX_WRITE_TIME);
        *mx = mx.max(e - s);
        drop(m);
        self.dxt_push(rec_id, DxtOp::Write, offset, len, t0, t1);
    }

    /// Instrument a metadata operation (seek/stat/fsync) against an
    /// existing record.
    pub fn posix_meta(&self, rec_id: u64, counter: P, t0: SimTime, t1: SimTime) {
        let epoch = self.current_epoch();
        let mut m = self.posix.lock();
        let Some(r) = m.touch(rec_id, epoch) else {
            return;
        };
        *r.get_mut(counter) += 1;
        *r.fget_mut(PF::POSIX_F_META_TIME) += self.rel(t1) - self.rel(t0);
    }

    /// Instrument a re-`open` of a path whose record id is already known
    /// (an interned-id memo hit in the event fold): the same counter and
    /// timestamp mutation as [`DarshanRuntime::posix_open`], with no path
    /// hashing or name registration. No-op if the record has vanished
    /// (it cannot: records are never evicted).
    pub fn posix_reopen(&self, rec_id: u64, t0: SimTime, t1: SimTime) {
        self.agg_opens.fetch_add(1, Ordering::Relaxed);
        let epoch = self.current_epoch();
        let mut m = self.posix.lock();
        let Some(r) = m.touch(rec_id, epoch) else {
            return;
        };
        *r.get_mut(P::POSIX_OPENS) += 1;
        let (s, e) = (self.rel(t0), self.rel(t1));
        if r.fget(PF::POSIX_F_OPEN_START_TIMESTAMP) == 0.0 {
            *r.fget_mut(PF::POSIX_F_OPEN_START_TIMESTAMP) = s;
        }
        *r.fget_mut(PF::POSIX_F_OPEN_END_TIMESTAMP) = e;
        *r.fget_mut(PF::POSIX_F_META_TIME) += e - s;
    }

    /// Register a record for a file whose `open` predates attachment
    /// (OPENS stays 0; only subsequently observed operations count).
    pub fn posix_register_existing(&self, path: &str) -> Option<u64> {
        let epoch = self.current_epoch();
        let mut m = self.posix.lock();
        let id = record_id(path);
        if !m.records.contains_key(&id) {
            if m.records.len() >= self.config.max_records_per_module {
                m.partial = true;
                return None;
            }
            self.register_name(path);
            m.records.insert(id, PosixRecord::new(id));
            m.touch(id, epoch);
        }
        Some(id)
    }

    /// Instrument a `stat` by path (creates the record if needed, like
    /// Darshan's stat wrapper). Returns the record id so event folds can
    /// memoize it; `None` when the module is out of record memory.
    pub fn posix_stat_path(&self, path: &str, t0: SimTime, t1: SimTime) -> Option<u64> {
        let epoch = self.current_epoch();
        let mut m = self.posix.lock();
        let id = record_id(path);
        if !m.records.contains_key(&id) {
            if m.records.len() >= self.config.max_records_per_module {
                m.partial = true;
                return None;
            }
            self.register_name(path);
            m.records.insert(id, PosixRecord::new(id));
        }
        let r = m.touch(id, epoch).expect("record just ensured");
        *r.get_mut(P::POSIX_STATS) += 1;
        *r.fget_mut(PF::POSIX_F_META_TIME) += self.rel(t1) - self.rel(t0);
        Some(id)
    }

    /// Instrument a `close`.
    pub fn posix_close(&self, rec_id: u64, t0: SimTime, t1: SimTime) {
        let epoch = self.current_epoch();
        let mut m = self.posix.lock();
        let Some(r) = m.touch(rec_id, epoch) else {
            return;
        };
        let (s, e) = (self.rel(t0), self.rel(t1));
        if r.fget(PF::POSIX_F_CLOSE_START_TIMESTAMP) == 0.0 {
            *r.fget_mut(PF::POSIX_F_CLOSE_START_TIMESTAMP) = s;
        }
        *r.fget_mut(PF::POSIX_F_CLOSE_END_TIMESTAMP) = e;
        *r.fget_mut(PF::POSIX_F_META_TIME) += e - s;
    }

    // -- STDIO module -------------------------------------------------------

    /// Instrument `fopen`.
    pub fn stdio_open(&self, path: &str, t0: SimTime, t1: SimTime) -> Option<u64> {
        let epoch = self.current_epoch();
        let mut m = self.stdio.lock();
        let id = record_id(path);
        if !m.records.contains_key(&id) {
            if m.records.len() >= self.config.max_records_per_module {
                m.partial = true;
                return None;
            }
            // See posix_open: the time cost lives in the wrapper.
            self.register_name(path);
            m.records.insert(id, StdioRecord::new(id));
        }
        let r = m.touch(id, epoch).expect("record just ensured");
        *r.get_mut(S::STDIO_OPENS) += 1;
        let (s, e) = (self.rel(t0), self.rel(t1));
        if r.fget(SF::STDIO_F_OPEN_START_TIMESTAMP) == 0.0 {
            *r.fget_mut(SF::STDIO_F_OPEN_START_TIMESTAMP) = s;
        }
        *r.fget_mut(SF::STDIO_F_OPEN_END_TIMESTAMP) = e;
        *r.fget_mut(SF::STDIO_F_META_TIME) += e - s;
        Some(id)
    }

    /// Instrument a re-`fopen` of a stream whose record id is already
    /// known (interned-id memo hit); see [`DarshanRuntime::posix_reopen`].
    pub fn stdio_reopen(&self, rec_id: u64, t0: SimTime, t1: SimTime) {
        let epoch = self.current_epoch();
        let mut m = self.stdio.lock();
        let Some(r) = m.touch(rec_id, epoch) else {
            return;
        };
        *r.get_mut(S::STDIO_OPENS) += 1;
        let (s, e) = (self.rel(t0), self.rel(t1));
        if r.fget(SF::STDIO_F_OPEN_START_TIMESTAMP) == 0.0 {
            *r.fget_mut(SF::STDIO_F_OPEN_START_TIMESTAMP) = s;
        }
        *r.fget_mut(SF::STDIO_F_OPEN_END_TIMESTAMP) = e;
        *r.fget_mut(SF::STDIO_F_META_TIME) += e - s;
    }

    /// Instrument `fread`.
    pub fn stdio_read(&self, rec_id: u64, pos: u64, len: u64, t0: SimTime, t1: SimTime) {
        let epoch = self.current_epoch();
        let mut m = self.stdio.lock();
        let Some(r) = m.touch(rec_id, epoch) else {
            return;
        };
        *r.get_mut(S::STDIO_READS) += 1;
        *r.get_mut(S::STDIO_BYTES_READ) += len as i64;
        if len > 0 {
            let maxb = (pos + len - 1) as i64;
            let cur = r.get_mut(S::STDIO_MAX_BYTE_READ);
            *cur = (*cur).max(maxb);
        }
        *r.fget_mut(SF::STDIO_F_READ_TIME) += self.rel(t1) - self.rel(t0);
    }

    /// Instrument `fwrite`.
    pub fn stdio_write(&self, rec_id: u64, pos: u64, len: u64, t0: SimTime, t1: SimTime) {
        let epoch = self.current_epoch();
        let mut m = self.stdio.lock();
        let Some(r) = m.touch(rec_id, epoch) else {
            return;
        };
        *r.get_mut(S::STDIO_WRITES) += 1;
        *r.get_mut(S::STDIO_BYTES_WRITTEN) += len as i64;
        if len > 0 {
            let maxb = (pos + len - 1) as i64;
            let cur = r.get_mut(S::STDIO_MAX_BYTE_WRITTEN);
            *cur = (*cur).max(maxb);
        }
        *r.fget_mut(SF::STDIO_F_WRITE_TIME) += self.rel(t1) - self.rel(t0);
    }

    /// Instrument `fseek` / `fflush`.
    pub fn stdio_meta(&self, rec_id: u64, counter: S, t0: SimTime, t1: SimTime) {
        let epoch = self.current_epoch();
        let mut m = self.stdio.lock();
        let Some(r) = m.touch(rec_id, epoch) else {
            return;
        };
        *r.get_mut(counter) += 1;
        *r.fget_mut(SF::STDIO_F_META_TIME) += self.rel(t1) - self.rel(t0);
    }

    /// Instrument `fclose`.
    pub fn stdio_close(&self, rec_id: u64, t0: SimTime, t1: SimTime) {
        let epoch = self.current_epoch();
        let mut m = self.stdio.lock();
        let Some(r) = m.touch(rec_id, epoch) else {
            return;
        };
        let (s, e) = (self.rel(t0), self.rel(t1));
        if r.fget(SF::STDIO_F_CLOSE_START_TIMESTAMP) == 0.0 {
            *r.fget_mut(SF::STDIO_F_CLOSE_START_TIMESTAMP) = s;
        }
        *r.fget_mut(SF::STDIO_F_CLOSE_END_TIMESTAMP) = e;
        *r.fget_mut(SF::STDIO_F_META_TIME) += e - s;
    }

    // -- DXT ----------------------------------------------------------------

    fn dxt_push(&self, rec_id: u64, op: DxtOp, offset: u64, length: u64, t0: SimTime, t1: SimTime) {
        if !self.config.dxt_enabled {
            return;
        }
        let epoch = self.current_epoch();
        let mut d = self.dxt.lock();
        if d.total >= self.config.dxt_max_segments {
            d.truncated = true;
            return;
        }
        d.total += 1;
        let seg = DxtSegment {
            op,
            offset,
            length,
            start: self.rel(t0),
            end: self.rel(t1),
            rank: self.config.rank,
        };
        let buf = &mut *d;
        let f = buf.files.entry(rec_id).or_insert_with(|| DxtFile {
            segs: Vec::new(),
            dirty_epoch: 0,
        });
        if f.dirty_epoch <= buf.drained_epoch {
            buf.dirty.push(rec_id);
        }
        f.dirty_epoch = epoch;
        // Keep the per-file list end-sorted (the common case appends).
        match f.segs.last() {
            Some(last) if last.end > seg.end => {
                let i = f.segs.partition_point(|s| s.end <= seg.end);
                f.segs.insert(i, seg);
            }
            _ => f.segs.push(seg),
        }
    }

    /// All DXT segments of one file, in non-decreasing end-time order.
    pub fn dxt_of(&self, rec_id: u64) -> Vec<DxtSegment> {
        self.dxt
            .lock()
            .files
            .get(&rec_id)
            .map(|f| f.segs.clone())
            .unwrap_or_default()
    }

    /// Extract all DXT segments overlapping `[from, to]` (Darshan-relative
    /// seconds), as `(rec_id, segment)` pairs sorted by start time. This is
    /// what tf-Darshan exports to the TraceViewer. Per-file lists are
    /// end-sorted, so the lower bound is a binary search instead of a scan
    /// over every segment ever recorded.
    pub fn dxt_range(&self, from: f64, to: f64) -> Vec<(u64, DxtSegment)> {
        let d = self.dxt.lock();
        let mut out: Vec<(u64, DxtSegment)> = Vec::new();
        for (id, f) in d.files.iter() {
            let lo = f.segs.partition_point(|s| s.end < from);
            for s in &f.segs[lo..] {
                if s.start <= to {
                    out.push((*id, *s));
                }
            }
        }
        out.sort_by(|a, b| a.1.start.total_cmp(&b.1.start).then(a.0.cmp(&b.0)));
        out
    }

    /// Extract exactly the DXT segments appended between two snapshots of
    /// this runtime, using the per-record append watermarks captured at
    /// extraction time — O(new segments), no time-range scan and no
    /// boundary double-counting when a segment ends exactly at a snapshot.
    pub fn dxt_between(&self, start: &Snapshot, stop: &Snapshot) -> Vec<(u64, DxtSegment)> {
        let d = self.dxt.lock();
        let mut out: Vec<(u64, DxtSegment)> = Vec::new();
        for (id, &hi) in stop.dxt_watermarks.iter() {
            let lo = start.dxt_watermarks.get(id).copied().unwrap_or(0);
            let hi = hi.min(d.files.get(id).map_or(0, |f| f.segs.len()));
            if hi <= lo {
                continue;
            }
            let f = &d.files[id];
            for s in &f.segs[lo..hi] {
                out.push((*id, *s));
            }
        }
        out.sort_by(|a, b| a.1.start.total_cmp(&b.1.start).then(a.0.cmp(&b.0)));
        out
    }

    /// True if DXT hit its memory cap and dropped segments.
    pub fn dxt_truncated(&self) -> bool {
        self.dxt.lock().truncated
    }

    // -- extraction / shutdown ----------------------------------------------

    /// Cheap aggregates (no module lock ordering concerns).
    pub fn totals(&self) -> Totals {
        // Fold any events still buffered on this thread so the aggregates
        // are complete up to now (parked threads flushed when descheduled).
        probe::flush_current_thread();
        Totals {
            posix_bytes_read: self.agg_bytes_read.load(Ordering::Relaxed),
            posix_bytes_written: self.agg_bytes_written.load(Ordering::Relaxed),
            posix_reads: self.agg_reads.load(Ordering::Relaxed),
            posix_writes: self.agg_writes.load(Ordering::Relaxed),
            posix_opens: self.agg_opens.load(Ordering::Relaxed),
        }
    }

    /// Runtime buffer extraction — the paper's entry point, now O(dirty).
    ///
    /// Copies and reduces only records dirtied since the previous
    /// extraction, merges them into the persistent baseline, and returns
    /// the baseline as `Arc` clones. The simulated gate-closed stall is
    /// `snapshot_cost_per_record × dirty_count`; the first snapshot (all
    /// records dirty) costs exactly what the legacy full copy did.
    pub fn snapshot(&self) -> Snapshot {
        // Complete the event stream first: any operation this thread
        // finished but has not yet flushed must be folded into the module
        // buffers before they are copied. Other threads' buffers drained
        // when those threads descheduled.
        probe::flush_current_thread();
        // Extraction copies the dirty records under the module locks:
        // charge for exactly those copies while instrumented I/O stalls
        // at the gate.
        let dirty = self.posix.lock().dirty.len() + self.stdio.lock().dirty.len();
        if dirty > 0 && !self.config.snapshot_cost_per_record.is_zero() {
            self.gate.close();
            sleep(self.config.snapshot_cost_per_record * dirty as u32);
            self.gate.open();
        }
        let taken_at = self.rel(simrt::now());
        // One acquisition per module lock: the records and the partial
        // flag are read under the same guard (the seed re-locked for the
        // flag, racing a concurrent record-cap overflow).
        let mut bl = self.baseline.lock();
        let mut pm = self.posix.lock();
        let mut sm = self.stdio.lock();
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst);
        merge_dirty(&mut bl.posix, &mut pm, epoch);
        merge_dirty(&mut bl.stdio, &mut sm, epoch);
        let posix_partial = pm.partial;
        let stdio_partial = sm.partial;
        drop(sm);
        drop(pm);
        let (dxt_segments, dxt_watermarks) = self.capture_dxt_marks(epoch);
        Snapshot {
            taken_at,
            epoch,
            posix: bl.posix.clone(),
            stdio: bl.stdio.clone(),
            names: self.names.lock().clone(),
            posix_partial,
            stdio_partial,
            dxt_segments,
            dxt_watermarks,
        }
    }

    /// Refresh the copy-on-write watermark map for files appended-to since
    /// the last capture, and return it with the segment total.
    fn capture_dxt_marks(&self, epoch: u64) -> (usize, Arc<HashMap<u64, usize>>) {
        let mut d = self.dxt.lock();
        let buf = &mut *d;
        buf.drained_epoch = epoch;
        if !buf.dirty.is_empty() {
            let marks = Arc::make_mut(&mut buf.marks);
            for id in std::mem::take(&mut buf.dirty) {
                if let Some(f) = buf.files.get(&id) {
                    marks.insert(id, f.segs.len());
                }
            }
        }
        (buf.total, buf.marks.clone())
    }

    /// Legacy full extraction: deep-copy every record regardless of
    /// dirtiness, charging `snapshot_cost_per_record × total_records`.
    /// Kept as the `ablation_snapshot` comparison arm and the equivalence
    /// oracle for the incremental path. It does not advance the baseline
    /// or drain dirty state, but it *does* open a new extraction epoch so
    /// diffs spanning it stay correct.
    pub fn snapshot_full(&self) -> Snapshot {
        probe::flush_current_thread();
        let n = self.posix_record_count() + self.stdio_record_count();
        if n > 0 && !self.config.snapshot_cost_per_record.is_zero() {
            self.gate.close();
            sleep(self.config.snapshot_cost_per_record * n as u32);
            self.gate.open();
        }
        let taken_at = self.rel(simrt::now());
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst);
        let (posix, posix_partial) = {
            let m = self.posix.lock();
            let mut v: Vec<Arc<PosixRecord>> = m
                .records
                .values()
                .map(|r| {
                    let mut c = r.clone();
                    c.reduce_common_accesses();
                    Arc::new(c)
                })
                .collect();
            v.sort_by_key(|r| r.rec_id);
            (v, m.partial)
        };
        let (stdio, stdio_partial) = {
            let m = self.stdio.lock();
            let mut v: Vec<Arc<StdioRecord>> =
                m.records.values().map(|r| Arc::new(r.clone())).collect();
            v.sort_by_key(|r| r.rec_id);
            (v, m.partial)
        };
        let (dxt_segments, dxt_watermarks) = {
            let d = self.dxt.lock();
            let marks: HashMap<u64, usize> =
                d.files.iter().map(|(id, f)| (*id, f.segs.len())).collect();
            (d.total, Arc::new(marks))
        };
        Snapshot {
            taken_at,
            epoch,
            posix,
            stdio,
            names: self.names.lock().clone(),
            posix_partial,
            stdio_partial,
            dxt_segments,
            dxt_watermarks,
        }
    }

    /// Number of POSIX records currently held.
    pub fn posix_record_count(&self) -> usize {
        self.posix.lock().records.len()
    }

    /// Number of STDIO records currently held.
    pub fn stdio_record_count(&self) -> usize {
        self.stdio.lock().records.len()
    }

    /// Number of records dirtied since the last incremental extraction
    /// (what the next [`DarshanRuntime::snapshot`] will pay for).
    pub fn dirty_record_count(&self) -> usize {
        self.posix.lock().dirty.len() + self.stdio.lock().dirty.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrt::Sim;
    use std::sync::Arc;

    fn at(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn open_read_counters_and_pattern() {
        let sim = Sim::new();
        sim.spawn("t", || {
            let rt = DarshanRuntime::new(DarshanConfig::default());
            let id = rt.posix_open("/d/f", at(0), at(1)).unwrap();
            rt.posix_read(id, 0, 1000, at(1), at(2)); // consec+seq
            rt.posix_read(id, 1000, 1000, at(2), at(3)); // consec+seq
            rt.posix_read(id, 5000, 100, at(3), at(4)); // seq only
            rt.posix_read(id, 100, 50, at(4), at(5)); // neither
            rt.posix_read(id, 150, 0, at(5), at(6)); // zero read, consec
            let snap = rt.snapshot();
            let r = snap.posix_by_path("/d/f").unwrap();
            assert_eq!(r.get(P::POSIX_OPENS), 1);
            assert_eq!(r.get(P::POSIX_READS), 5);
            assert_eq!(r.get(P::POSIX_BYTES_READ), 2150);
            assert_eq!(r.get(P::POSIX_CONSEC_READS), 3);
            assert_eq!(r.get(P::POSIX_SEQ_READS), 4);
            assert_eq!(r.get(P::POSIX_MAX_BYTE_READ), 5099);
            // Histogram: 1000,1000 → bucket 100-1K ×2; 100,50,0 → 0-100 ×3.
            assert_eq!(r.get(P::POSIX_SIZE_READ_0_100), 3);
            assert_eq!(r.get(P::POSIX_SIZE_READ_100_1K), 2);
            assert!((r.fget(PF::POSIX_F_READ_TIME) - 0.005).abs() < 1e-9);
        });
        sim.run();
    }

    #[test]
    fn write_and_rw_switches() {
        let sim = Sim::new();
        sim.spawn("t", || {
            let rt = DarshanRuntime::new(DarshanConfig::default());
            let id = rt.posix_open("/d/w", at(0), at(0)).unwrap();
            rt.posix_write(id, 0, 100, at(1), at(2));
            rt.posix_read(id, 0, 100, at(2), at(3));
            rt.posix_write(id, 100, 100, at(3), at(4));
            let snap = rt.snapshot();
            let r = snap.posix_by_path("/d/w").unwrap();
            assert_eq!(r.get(P::POSIX_WRITES), 2);
            assert_eq!(r.get(P::POSIX_RW_SWITCHES), 2);
            assert_eq!(r.get(P::POSIX_CONSEC_WRITES), 2);
            assert_eq!(r.get(P::POSIX_BYTES_WRITTEN), 200);
        });
        sim.run();
    }

    #[test]
    fn record_memory_cap_sets_partial_flag() {
        let sim = Sim::new();
        sim.spawn("t", || {
            let rt = DarshanRuntime::new(DarshanConfig {
                max_records_per_module: 2,
                ..Default::default()
            });
            assert!(rt.posix_open("/a", at(0), at(0)).is_some());
            assert!(rt.posix_open("/b", at(0), at(0)).is_some());
            assert!(rt.posix_open("/c", at(0), at(0)).is_none());
            // Existing records still update.
            assert!(rt.posix_open("/a", at(1), at(1)).is_some());
            let snap = rt.snapshot();
            assert!(snap.posix_partial);
            assert_eq!(snap.posix.len(), 2);
        });
        sim.run();
    }

    #[test]
    fn dxt_records_segments_and_caps() {
        let sim = Sim::new();
        sim.spawn("t", || {
            let rt = DarshanRuntime::new(DarshanConfig {
                dxt_max_segments: 3,
                ..Default::default()
            });
            let id = rt.posix_open("/d/f", at(0), at(0)).unwrap();
            for i in 0..5u64 {
                rt.posix_read(id, i * 10, 10, at(i), at(i + 1));
            }
            let segs = rt.dxt_of(id);
            assert_eq!(segs.len(), 3, "capped");
            assert!(rt.dxt_truncated());
            assert_eq!(segs[0].offset, 0);
            assert_eq!(segs[0].length, 10);
            assert_eq!(segs[0].op, DxtOp::Read);
        });
        sim.run();
    }

    #[test]
    fn dxt_range_query() {
        let sim = Sim::new();
        sim.spawn("t", || {
            let rt = DarshanRuntime::new(DarshanConfig::default());
            let id = rt.posix_open("/d/f", at(0), at(0)).unwrap();
            rt.posix_read(id, 0, 10, at(10), at(20));
            rt.posix_read(id, 10, 10, at(30), at(40));
            rt.posix_read(id, 20, 10, at(50), at(60));
            let mid = rt.dxt_range(0.025, 0.045);
            assert_eq!(mid.len(), 1);
            assert_eq!(mid[0].1.offset, 10);
            assert_eq!(rt.dxt_range(0.0, 1.0).len(), 3);
        });
        sim.run();
    }

    #[test]
    fn dxt_push_keeps_end_order_under_out_of_order_folds() {
        let sim = Sim::new();
        sim.spawn("t", || {
            let rt = DarshanRuntime::new(DarshanConfig::default());
            let id = rt.posix_open("/d/f", at(0), at(0)).unwrap();
            // Simulate cross-thread flush interleaving: folds arrive with
            // non-monotone end times.
            rt.posix_read(id, 0, 10, at(10), at(40));
            rt.posix_read(id, 10, 10, at(5), at(20));
            rt.posix_read(id, 20, 10, at(50), at(60));
            let segs = rt.dxt_of(id);
            let ends: Vec<f64> = segs.iter().map(|s| s.end).collect();
            assert_eq!(ends, vec![0.020, 0.040, 0.060]);
            // The range query still finds the late-folded early segment.
            let early = rt.dxt_range(0.0, 0.025);
            assert_eq!(early.len(), 2);
        });
        sim.run();
    }

    #[test]
    fn dxt_between_extracts_only_the_session_window() {
        let sim = Sim::new();
        sim.spawn("t", || {
            let rt = DarshanRuntime::new(DarshanConfig::default());
            let id = rt.posix_open("/d/f", at(0), at(0)).unwrap();
            rt.posix_read(id, 0, 10, at(10), at(20));
            let s0 = rt.snapshot();
            rt.posix_read(id, 10, 10, at(30), at(40));
            rt.posix_read(id, 20, 10, at(50), at(60));
            let s1 = rt.snapshot();
            rt.posix_read(id, 30, 10, at(70), at(80));
            let s2 = rt.snapshot();
            let win = rt.dxt_between(&s0, &s1);
            assert_eq!(win.len(), 2);
            assert_eq!(win[0].1.offset, 10);
            assert_eq!(win[1].1.offset, 20);
            assert_eq!(rt.dxt_between(&s1, &s2).len(), 1);
            assert_eq!(rt.dxt_between(&s0, &s2).len(), 3);
            assert!(rt.dxt_between(&s1, &s1).is_empty());
        });
        sim.run();
    }

    #[test]
    fn snapshot_is_a_stable_copy() {
        let sim = Sim::new();
        sim.spawn("t", || {
            let rt = Arc::new(DarshanRuntime::new(DarshanConfig::default()));
            let id = rt.posix_open("/d/f", at(0), at(1)).unwrap();
            rt.posix_read(id, 0, 100, at(1), at(2));
            let s1 = rt.snapshot();
            rt.posix_read(id, 100, 100, at(2), at(3));
            let s2 = rt.snapshot();
            assert_eq!(s1.posix_by_path("/d/f").unwrap().get(P::POSIX_READS), 1);
            assert_eq!(s2.posix_by_path("/d/f").unwrap().get(P::POSIX_READS), 2);
            assert_eq!(s1.names[&record_id("/d/f")], "/d/f");
        });
        sim.run();
    }

    #[test]
    fn snapshot_names_are_cow_stable() {
        let sim = Sim::new();
        sim.spawn("t", || {
            let rt = DarshanRuntime::new(DarshanConfig::default());
            rt.posix_open("/d/a", at(0), at(0)).unwrap();
            let s1 = rt.snapshot();
            rt.posix_open("/d/b", at(1), at(1)).unwrap();
            // The old snapshot's map is untouched by the new registration.
            assert_eq!(s1.names.len(), 1);
            assert_eq!(rt.snapshot().names.len(), 2);
            assert_eq!(rt.lookup_name(record_id("/d/b")).unwrap(), "/d/b");
        });
        sim.run();
    }

    #[test]
    fn incremental_gate_stall_is_proportional_to_dirty_set() {
        let sim = Sim::new();
        sim.spawn("t", || {
            let cost = Duration::from_micros(90);
            let rt = DarshanRuntime::new(DarshanConfig {
                snapshot_cost_per_record: cost,
                ..Default::default()
            });
            let ids: Vec<u64> = (0..10)
                .map(|i| rt.posix_open(&format!("/d/f{i}"), at(0), at(0)).unwrap())
                .collect();
            let t0 = simrt::now();
            rt.snapshot();
            // First extraction: all 10 records are dirty.
            assert_eq!(simrt::now().duration_since(t0), cost * 10);
            // Steady state: dirty two records, pay for two.
            rt.posix_read(ids[3], 0, 10, at(1), at(2));
            rt.posix_read(ids[7], 0, 10, at(2), at(3));
            assert_eq!(rt.dirty_record_count(), 2);
            let t1 = simrt::now();
            rt.snapshot();
            assert_eq!(simrt::now().duration_since(t1), cost * 2);
            // Nothing dirty: a snapshot is free (no gate close at all).
            let t2 = simrt::now();
            rt.snapshot();
            assert_eq!(simrt::now().duration_since(t2), Duration::ZERO);
        });
        sim.run();
    }

    #[test]
    fn incremental_snapshot_matches_full_copy() {
        let sim = Sim::new();
        sim.spawn("t", || {
            let rt = DarshanRuntime::new(DarshanConfig::default());
            let a = rt.posix_open("/d/a", at(0), at(1)).unwrap();
            let b = rt.posix_open("/d/b", at(1), at(2)).unwrap();
            rt.posix_read(a, 0, 4096, at(2), at(3));
            rt.snapshot();
            rt.posix_read(b, 0, 100, at(3), at(4));
            rt.posix_write(a, 0, 200, at(4), at(5));
            rt.stdio_open("/d/s", at(5), at(6)).unwrap();
            rt.snapshot();
            rt.posix_read(a, 4096, 4096, at(6), at(7));
            let inc = rt.snapshot();
            let full = rt.snapshot_full();
            assert_eq!(inc.posix.len(), full.posix.len());
            for (i, f) in inc.posix.iter().zip(full.posix.iter()) {
                assert_eq!(i.rec_id, f.rec_id);
                assert_eq!(i.counters, f.counters, "record {:#x}", i.rec_id);
                assert_eq!(i.fcounters, f.fcounters);
            }
            assert_eq!(inc.stdio.len(), full.stdio.len());
            for (i, f) in inc.stdio.iter().zip(full.stdio.iter()) {
                assert_eq!(i.counters, f.counters);
                assert_eq!(i.fcounters, f.fcounters);
            }
            assert_eq!(inc.names, full.names);
            assert_eq!(inc.dxt_segments, full.dxt_segments);
        });
        sim.run();
    }

    #[test]
    fn clean_records_share_storage_across_snapshots() {
        let sim = Sim::new();
        sim.spawn("t", || {
            let rt = DarshanRuntime::new(DarshanConfig::default());
            let a = rt.posix_open("/d/a", at(0), at(0)).unwrap();
            rt.posix_open("/d/b", at(0), at(0)).unwrap();
            let s1 = rt.snapshot();
            rt.posix_read(a, 0, 10, at(1), at(2));
            let s2 = rt.snapshot();
            for (r1, r2) in s1.posix.iter().zip(s2.posix.iter()) {
                if r1.rec_id == a {
                    assert!(!Arc::ptr_eq(r1, r2), "dirty record was re-copied");
                } else {
                    assert!(Arc::ptr_eq(r1, r2), "clean record must be shared");
                }
            }
        });
        sim.run();
    }

    #[test]
    fn totals_track_aggregates() {
        let sim = Sim::new();
        sim.spawn("t", || {
            let rt = DarshanRuntime::new(DarshanConfig::default());
            let id = rt.posix_open("/d/f", at(0), at(0)).unwrap();
            rt.posix_read(id, 0, 500, at(0), at(1));
            rt.posix_write(id, 0, 200, at(1), at(2));
            let t = rt.totals();
            assert_eq!(t.posix_opens, 1);
            assert_eq!(t.posix_reads, 1);
            assert_eq!(t.posix_bytes_read, 500);
            assert_eq!(t.posix_bytes_written, 200);
        });
        sim.run();
    }

    #[test]
    fn stdio_module_counts() {
        let sim = Sim::new();
        sim.spawn("t", || {
            let rt = DarshanRuntime::new(DarshanConfig::default());
            let id = rt.stdio_open("/ckpt", at(0), at(1)).unwrap();
            for i in 0..140u64 {
                rt.stdio_write(id, i * 100, 100, at(i + 1), at(i + 2));
            }
            rt.stdio_close(id, at(200), at(201));
            let snap = rt.snapshot();
            let r = &snap.stdio[0];
            assert_eq!(r.get(S::STDIO_OPENS), 1);
            assert_eq!(r.get(S::STDIO_WRITES), 140);
            assert_eq!(r.get(S::STDIO_BYTES_WRITTEN), 14_000);
        });
        sim.run();
    }
}
