//! # darshan-sim — a Darshan-style I/O characterization runtime
//!
//! A from-scratch reproduction of the parts of Darshan 3.2.0-pre (the
//! non-MPI experimental version the paper builds on) that tf-Darshan
//! needs:
//!
//! * per-file POSIX and STDIO module records with Darshan's counter set
//!   ([`counters`]) and bounded record memory;
//! * DXT extended tracing (per-operation segments);
//! * instrumented symbol implementations that wrap the previous GOT
//!   bindings ([`wrappers`]);
//! * the classic post-mortem binary log with writer and parser ([`log`]);
//! * **the paper's addition**: runtime extraction of module buffers
//!   ([`runtime::DarshanRuntime::snapshot`]) and name lookup, so an
//!   instrumented application can analyze I/O *while running*.
//!
//! The crate exposes [`DarshanLibrary`], the object a process obtains via
//! `dlopen("libdarshan.so")`, bundling the runtime plus attach helpers —
//! the moral equivalent of the shared library's exported symbols.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod log;
pub mod reduce;
pub mod runtime;
pub mod sink;
pub mod summary;
pub mod wrappers;

use std::sync::Arc;

use parking_lot::Mutex;
use posix_sim::{GotError, Process};

pub use counters::{
    record_id, size_bucket, CommonValues, PosixCounter, PosixFCounter, PosixRecord, StdioCounter,
    StdioFCounter, StdioRecord, SIZE_BUCKET_LABELS,
};
pub use log::{DarshanLog, LogError};
pub use reduce::{merge_posix_records, reduce_job};
pub use runtime::{DarshanConfig, DarshanRuntime, DxtOp, DxtSegment, Snapshot, Totals};
pub use sink::DarshanSink;
pub use summary::JobSummary;
pub use wrappers::{DarshanIo, DarshanStdio};

/// Name under which the library registers itself for `dlopen`.
pub const SONAME: &str = "libdarshan.so";

/// POSIX symbols Darshan instruments.
pub const INSTRUMENTED_POSIX: &[&str] = &[
    "open", "close", "read", "pread", "write", "pwrite", "lseek", "stat", "fstat", "fsync", "mmap",
    "munmap", "msync",
];

/// STDIO symbols Darshan instruments.
pub const INSTRUMENTED_STDIO: &[&str] = &["fopen", "fclose", "fread", "fwrite", "fflush", "fseek"];

/// Saved original bindings, for detaching.
struct AttachState {
    posix_orig: Vec<(String, Arc<dyn posix_sim::LibcIo>)>,
    stdio_orig: Vec<(String, Arc<dyn posix_sim::LibcStdio>)>,
    /// The record-fold consumer registered on the process's event spine.
    sink: probe::SinkId,
}

/// The loaded Darshan shared library: runtime + attachment bookkeeping.
///
/// `attach` scans the process GOT for the instrumented symbols and patches
/// them to Darshan's wrappers (paper Fig. 2); `detach` restores the saved
/// bindings. Both are idempotent.
pub struct DarshanLibrary {
    runtime: Arc<DarshanRuntime>,
    attach: Mutex<Option<AttachState>>,
}

impl DarshanLibrary {
    /// Initialize the library ("load libdarshan.so") with `config`.
    pub fn new(config: DarshanConfig) -> Arc<Self> {
        Arc::new(DarshanLibrary {
            runtime: Arc::new(DarshanRuntime::new(config)),
            attach: Mutex::new(None),
        })
    }

    /// Initialize and register with the process's dynamic loader, so later
    /// `process.dlopen(SONAME)` finds it.
    pub fn load_into(process: &Process, config: DarshanConfig) -> Arc<Self> {
        let lib = Self::new(config);
        process.register_library(SONAME, lib.clone());
        lib
    }

    /// The instrumentation runtime (the extraction API lives here).
    pub fn runtime(&self) -> &Arc<DarshanRuntime> {
        &self.runtime
    }

    /// True if currently attached to a GOT.
    pub fn is_attached(&self) -> bool {
        self.attach.lock().is_some()
    }

    /// Patch the process GOT so the instrumented symbols dispatch through
    /// Darshan. Idempotent: a second attach is a no-op.
    pub fn attach(&self, process: &Process) -> Result<(), GotError> {
        let mut guard = self.attach.lock();
        if guard.is_some() {
            return Ok(());
        }
        let got = process.got();
        // One wrapper instance serves all POSIX symbols so that its
        // fd→record map is shared, exactly like the real library's globals.
        let posix_wrapper = DarshanIo::new(self.runtime.clone(), got.posix_sym("open"));
        let stdio_wrapper = DarshanStdio::new(self.runtime.clone(), got.stdio_sym("fopen"));
        // Record mutation happens in the event fold: register the sink on
        // the process's spine alongside patching the symbols.
        let sink = process
            .probe()
            .register(sink::DarshanSink::new(self.runtime.clone()));
        let mut st = AttachState {
            posix_orig: Vec::new(),
            stdio_orig: Vec::new(),
            sink,
        };
        for &sym in INSTRUMENTED_POSIX {
            let old = got.patch_posix(sym, posix_wrapper.clone())?;
            st.posix_orig.push((sym.to_string(), old));
        }
        for &sym in INSTRUMENTED_STDIO {
            let old = got.patch_stdio(sym, stdio_wrapper.clone())?;
            st.stdio_orig.push((sym.to_string(), old));
        }
        *guard = Some(st);
        Ok(())
    }

    /// Restore the original bindings. Idempotent.
    pub fn detach(&self, process: &Process) -> Result<(), GotError> {
        let mut guard = self.attach.lock();
        let Some(st) = guard.take() else {
            return Ok(());
        };
        let got = process.got();
        for (sym, orig) in st.posix_orig {
            got.restore_posix(&sym, orig)?;
        }
        for (sym, orig) in st.stdio_orig {
            got.restore_stdio(&sym, orig)?;
        }
        // Unregister last; this flushes the calling thread's buffer first,
        // so every operation completed before detach reaches the records —
        // a mid-session detach loses nothing.
        process.probe().unregister(st.sink);
        Ok(())
    }

    /// Classic Darshan shutdown: detach, reduce, and produce the binary
    /// log (returned as a [`DarshanLog`]; callers persist it as they wish).
    pub fn shutdown(&self, process: &Process) -> Result<DarshanLog, GotError> {
        self.detach(process)?;
        let snap = self.runtime.snapshot();
        let mut dxt = std::collections::HashMap::new();
        for r in &snap.posix {
            let segs = self.runtime.dxt_of(r.rec_id);
            if !segs.is_empty() {
                dxt.insert(r.rec_id, segs);
            }
        }
        // The log owns its records: unwrap the snapshot's `Arc` sharing
        // (clone only here, at the classic post-mortem boundary).
        Ok(DarshanLog {
            job_start: 0.0,
            job_end: snap.taken_at,
            nprocs: 1,
            names: (*snap.names).clone(),
            posix: snap.posix.iter().map(|r| (**r).clone()).collect(),
            posix_partial: snap.posix_partial,
            stdio: snap.stdio.iter().map(|r| (**r).clone()).collect(),
            stdio_partial: snap.stdio_partial,
            dxt,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use posix_sim::OpenFlags;
    use simrt::Sim;
    use storage_sim::{
        Device, DeviceSpec, FileSystem, LocalFs, LocalFsParams, PageCache, StorageStack,
        WritePayload,
    };

    fn fixture() -> (Sim, Arc<Process>, Arc<LocalFs>) {
        let sim = Sim::new();
        let fs = LocalFs::new(
            Device::new(DeviceSpec::sata_ssd("ssd0")),
            Arc::new(PageCache::new(1 << 30)),
            LocalFsParams::default(),
        );
        let stack = StorageStack::new();
        stack.mount("/data", fs.clone() as Arc<dyn FileSystem>);
        (sim, Process::new(stack), fs)
    }

    #[test]
    fn attach_records_detach_stops() {
        let (sim, p, fs) = fixture();
        fs.create_synthetic("/data/f", 88 * 1024, 1).unwrap();
        sim.spawn("t", move || {
            let lib = DarshanLibrary::load_into(&p, DarshanConfig::default());
            // dlopen path works and returns the same library.
            let dl = p.dlopen(SONAME).unwrap();
            let dl = dl.downcast::<DarshanLibrary>().unwrap();
            assert!(!dl.is_attached());
            dl.attach(&p).unwrap();
            assert!(dl.is_attached());
            assert!(p.got().any_patched());

            // TensorFlow-style whole-file read loop: pread until 0.
            let fd = p.open("/data/f", OpenFlags::rdonly()).unwrap();
            let mut off = 0;
            loop {
                let n = p.pread(fd, off, 1 << 20, None).unwrap();
                if n == 0 {
                    break;
                }
                off += n;
            }
            p.close(fd).unwrap();

            let snap = lib.runtime().snapshot();
            let r = snap.posix_by_path("/data/f").unwrap();
            assert_eq!(r.get(PosixCounter::POSIX_OPENS), 1);
            assert_eq!(r.get(PosixCounter::POSIX_READS), 2, "data read + EOF probe");
            assert_eq!(r.get(PosixCounter::POSIX_BYTES_READ), 88 * 1024);
            assert_eq!(r.get(PosixCounter::POSIX_SEQ_READS), 2);
            assert_eq!(r.get(PosixCounter::POSIX_CONSEC_READS), 2);
            // Fig. 8 signature: a zero-length read trails every file.
            assert_eq!(r.get(PosixCounter::POSIX_SIZE_READ_0_100), 1);
            let segs = lib.runtime().dxt_of(r.rec_id);
            assert_eq!(segs.len(), 2);
            assert_eq!(segs.last().unwrap().length, 0);

            dl.detach(&p).unwrap();
            assert!(!p.got().any_patched());
            let fd = p.open("/data/f", OpenFlags::rdonly()).unwrap();
            p.pread(fd, 0, 1024, None).unwrap();
            p.close(fd).unwrap();
            let snap2 = lib.runtime().snapshot();
            let r2 = snap2.posix_by_path("/data/f").unwrap();
            assert_eq!(
                r2.get(PosixCounter::POSIX_READS),
                2,
                "no recording after detach"
            );
        });
        sim.run();
    }

    #[test]
    fn attach_is_idempotent() {
        let (sim, p, fs) = fixture();
        fs.create_synthetic("/data/f", 1024, 1).unwrap();
        sim.spawn("t", move || {
            let lib = DarshanLibrary::load_into(&p, DarshanConfig::default());
            lib.attach(&p).unwrap();
            lib.attach(&p).unwrap(); // no double wrap
            let fd = p.open("/data/f", OpenFlags::rdonly()).unwrap();
            p.pread(fd, 0, 1024, None).unwrap();
            p.close(fd).unwrap();
            let snap = lib.runtime().snapshot();
            assert_eq!(
                snap.posix_by_path("/data/f")
                    .unwrap()
                    .get(PosixCounter::POSIX_READS),
                1
            );
            lib.detach(&p).unwrap();
            lib.detach(&p).unwrap();
            assert!(!p.got().any_patched());
        });
        sim.run();
    }

    #[test]
    fn stdio_checkpoint_traffic_on_stdio_module_only() {
        let (sim, p, _fs) = fixture();
        sim.spawn("t", move || {
            let lib = DarshanLibrary::load_into(&p, DarshanConfig::default());
            lib.attach(&p).unwrap();
            let s = p.fopen("/data/ckpt", "w").unwrap();
            for _ in 0..140 {
                p.fwrite(s, WritePayload::Synthetic(100_000)).unwrap();
            }
            p.fclose(s).unwrap();
            let snap = lib.runtime().snapshot();
            let sr = snap
                .stdio
                .iter()
                .find(|r| r.rec_id == record_id("/data/ckpt"))
                .unwrap();
            assert_eq!(sr.get(StdioCounter::STDIO_OPENS), 1);
            assert_eq!(sr.get(StdioCounter::STDIO_WRITES), 140);
            assert_eq!(sr.get(StdioCounter::STDIO_BYTES_WRITTEN), 14_000_000);
            // The descriptor traffic under fwrite is glibc-internal: the
            // POSIX module must NOT have a record for the checkpoint.
            assert!(snap.posix_by_path("/data/ckpt").is_none());
            lib.detach(&p).unwrap();
        });
        sim.run();
    }

    #[test]
    fn pre_attachment_fd_is_tracked_lazily() {
        let (sim, p, fs) = fixture();
        fs.create_synthetic("/data/early", 4096, 1).unwrap();
        sim.spawn("t", move || {
            let fd = p.open("/data/early", OpenFlags::rdonly()).unwrap();
            let lib = DarshanLibrary::load_into(&p, DarshanConfig::default());
            lib.attach(&p).unwrap();
            p.pread(fd, 0, 4096, None).unwrap();
            p.close(fd).unwrap();
            let snap = lib.runtime().snapshot();
            let r = snap.posix_by_path("/data/early").unwrap();
            assert_eq!(r.get(PosixCounter::POSIX_OPENS), 0, "open predates attach");
            assert_eq!(r.get(PosixCounter::POSIX_READS), 1);
            lib.detach(&p).unwrap();
        });
        sim.run();
    }

    #[test]
    fn fd_position_read_lseek_fstat_are_attributed() {
        let (sim, p, fs) = fixture();
        fs.create_synthetic("/data/f", 10_000, 1).unwrap();
        sim.spawn("t", move || {
            let lib = DarshanLibrary::load_into(&p, DarshanConfig::default());
            lib.attach(&p).unwrap();
            let fd = p.open("/data/f", OpenFlags::rdonly()).unwrap();
            // Position-based reads: offsets recorded from the fd position.
            p.read(fd, 4_000, None).unwrap();
            p.read(fd, 4_000, None).unwrap(); // consecutive
            p.lseek(fd, 0, posix_sim::Whence::Set).unwrap();
            p.read(fd, 1_000, None).unwrap(); // rewind: not sequential
            p.fstat(fd).unwrap();
            p.close(fd).unwrap();
            let snap = lib.runtime().snapshot();
            let r = snap.posix_by_path("/data/f").unwrap();
            assert_eq!(r.get(PosixCounter::POSIX_READS), 3);
            assert_eq!(r.get(PosixCounter::POSIX_SEEKS), 1);
            assert_eq!(r.get(PosixCounter::POSIX_STATS), 1);
            assert_eq!(r.get(PosixCounter::POSIX_CONSEC_READS), 2);
            assert_eq!(
                r.get(PosixCounter::POSIX_SEQ_READS),
                2,
                "rewound read is not sequential"
            );
            assert_eq!(r.get(PosixCounter::POSIX_BYTES_READ), 9_000);
            // DXT recorded the rewound offset correctly.
            let segs = lib.runtime().dxt_of(r.rec_id);
            assert_eq!(segs[2].offset, 0);
            lib.detach(&p).unwrap();
        });
        sim.run();
    }

    #[test]
    fn shutdown_produces_parsable_log() {
        let (sim, p, fs) = fixture();
        fs.create_synthetic("/data/f", 10_000, 1).unwrap();
        sim.spawn("t", move || {
            let lib = DarshanLibrary::load_into(&p, DarshanConfig::default());
            lib.attach(&p).unwrap();
            let fd = p.open("/data/f", OpenFlags::rdonly()).unwrap();
            p.pread(fd, 0, 10_000, None).unwrap();
            p.close(fd).unwrap();
            let log = lib.shutdown(&p).unwrap();
            assert!(!p.got().any_patched(), "shutdown detaches");
            let bytes = log.encode();
            let back = DarshanLog::decode(&bytes).unwrap();
            let id = record_id("/data/f");
            assert_eq!(back.names[&id], "/data/f");
            let r = back.posix.iter().find(|r| r.rec_id == id).unwrap();
            assert_eq!(r.get(PosixCounter::POSIX_BYTES_READ), 10_000);
            assert_eq!(back.dxt[&id].len(), 1);
        });
        sim.run();
    }

    #[test]
    fn instrumentation_overhead_is_charged() {
        let (sim, p, fs) = fixture();
        fs.create_synthetic("/data/f", 1 << 20, 1).unwrap();
        let elapsed = {
            let p = p.clone();
            move |attach: bool| {
                // One open+read+close with/without instrumentation.
                let lib = DarshanLibrary::new(DarshanConfig::default());
                if attach {
                    lib.attach(&p).unwrap();
                }
                let t0 = simrt::now();
                let fd = p.open("/data/f", OpenFlags::rdonly()).unwrap();
                p.pread(fd, 0, 1024, None).unwrap();
                p.close(fd).unwrap();
                let dt = simrt::now() - t0;
                lib.detach(&p).unwrap();
                dt
            }
        };
        sim.spawn("t", move || {
            let with = elapsed(true);
            let without = elapsed(false);
            assert!(
                with > without,
                "instrumented path must cost more: {with:?} vs {without:?}"
            );
        });
        sim.run();
    }
}
