//! Instrumented symbol implementations — the `_open`, `_read`, `_pread`,
//! `_fwrite`, … entry points of `libdarshan.so` (paper Fig. 2, right box).
//!
//! Since the probe backplane was introduced, the wrappers no longer touch
//! the module records at all: the terminal libc emits one event per
//! completed operation and [`crate::sink::DarshanSink`] folds the stream
//! into the records at context-switch boundaries. What remains here is the
//! *time* cost of instrumentation, which must be charged synchronously on
//! the calling thread, exactly where the real library would spend it:
//!
//! * every wrapped call pays the per-operation overhead and stalls at the
//!   extraction gate ([`DarshanRuntime::charge_op`]);
//! * the first `open`/`fopen` of a path pays the new-record allocation
//!   cost ([`DarshanRuntime::charge_new_record`]).
//!
//! This split is what removes per-consumer locking from the syscall fast
//! path: the wrapper takes no module lock, and the fold amortizes one lock
//! acquisition over a whole batch of events.

use std::collections::HashSet;
use std::sync::Arc;

use parking_lot::Mutex;
use storage_sim::{Metadata, WritePayload};

use posix_sim::{Fd, LibcIo, LibcStdio, MapId, OpenFlags, PosixResult, Process, StreamId, Whence};

use crate::counters::record_id;
use crate::runtime::DarshanRuntime;

/// The instrumented POSIX symbols.
pub struct DarshanIo {
    rt: Arc<DarshanRuntime>,
    orig: Arc<dyn LibcIo>,
    /// Record ids whose allocation cost was already charged.
    seen: Mutex<HashSet<u64>>,
}

impl DarshanIo {
    /// Wrap the previous GOT binding `orig`.
    pub fn new(rt: Arc<DarshanRuntime>, orig: Arc<dyn LibcIo>) -> Arc<Self> {
        Arc::new(DarshanIo {
            rt,
            orig,
            seen: Mutex::new(HashSet::new()),
        })
    }

    /// The original binding this wrapper forwards to (used on detach).
    pub fn orig(&self) -> Arc<dyn LibcIo> {
        self.orig.clone()
    }

    /// Charge the new-record cost the first time `path` is opened.
    fn charge_open(&self, path: &str) {
        if self.seen.lock().insert(record_id(path)) {
            self.rt.charge_new_record();
        }
        self.rt.charge_op();
    }
}

impl LibcIo for DarshanIo {
    fn open(&self, p: &Process, path: &str, flags: OpenFlags) -> PosixResult<Fd> {
        let r = self.orig.open(p, path, flags);
        self.charge_open(path);
        r
    }

    fn close(&self, p: &Process, fd: Fd) -> PosixResult<()> {
        let r = self.orig.close(p, fd);
        self.rt.charge_op();
        r
    }

    #[inline]
    fn read(&self, p: &Process, fd: Fd, len: u64, buf: Option<&mut [u8]>) -> PosixResult<u64> {
        let r = self.orig.read(p, fd, len, buf);
        self.rt.charge_op();
        r
    }

    #[inline]
    fn pread(
        &self,
        p: &Process,
        fd: Fd,
        offset: u64,
        len: u64,
        buf: Option<&mut [u8]>,
    ) -> PosixResult<u64> {
        let r = self.orig.pread(p, fd, offset, len, buf);
        self.rt.charge_op();
        r
    }

    #[inline]
    fn write(&self, p: &Process, fd: Fd, data: WritePayload<'_>) -> PosixResult<u64> {
        let r = self.orig.write(p, fd, data);
        self.rt.charge_op();
        r
    }

    #[inline]
    fn pwrite(&self, p: &Process, fd: Fd, offset: u64, data: WritePayload<'_>) -> PosixResult<u64> {
        let r = self.orig.pwrite(p, fd, offset, data);
        self.rt.charge_op();
        r
    }

    #[inline]
    fn lseek(&self, p: &Process, fd: Fd, offset: i64, whence: Whence) -> PosixResult<u64> {
        let r = self.orig.lseek(p, fd, offset, whence);
        self.rt.charge_op();
        r
    }

    fn stat(&self, p: &Process, path: &str) -> PosixResult<Metadata> {
        let r = self.orig.stat(p, path);
        self.rt.charge_op();
        r
    }

    fn fstat(&self, p: &Process, fd: Fd) -> PosixResult<Metadata> {
        let r = self.orig.fstat(p, fd);
        self.rt.charge_op();
        r
    }

    fn fsync(&self, p: &Process, fd: Fd) -> PosixResult<()> {
        let r = self.orig.fsync(p, fd);
        self.rt.charge_op();
        r
    }

    fn unlink(&self, p: &Process, path: &str) -> PosixResult<()> {
        self.rt.charge_op();
        self.orig.unlink(p, path)
    }

    fn mmap(&self, p: &Process, fd: Fd, offset: u64, len: u64) -> PosixResult<MapId> {
        let r = self.orig.mmap(p, fd, offset, len);
        self.rt.charge_op();
        r
    }

    fn munmap(&self, p: &Process, map: MapId) -> PosixResult<()> {
        self.rt.charge_op();
        self.orig.munmap(p, map)
    }

    fn msync(&self, p: &Process, map: MapId) -> PosixResult<()> {
        let r = self.orig.msync(p, map);
        self.rt.charge_op();
        r
    }

    fn rename(&self, p: &Process, from: &str, to: &str) -> PosixResult<()> {
        self.rt.charge_op();
        self.orig.rename(p, from, to)
    }
}

/// The instrumented STDIO symbols.
pub struct DarshanStdio {
    rt: Arc<DarshanRuntime>,
    orig: Arc<dyn LibcStdio>,
    /// Record ids whose allocation cost was already charged.
    seen: Mutex<HashSet<u64>>,
}

impl DarshanStdio {
    /// Wrap the previous GOT binding `orig`.
    pub fn new(rt: Arc<DarshanRuntime>, orig: Arc<dyn LibcStdio>) -> Arc<Self> {
        Arc::new(DarshanStdio {
            rt,
            orig,
            seen: Mutex::new(HashSet::new()),
        })
    }

    /// The original binding this wrapper forwards to.
    pub fn orig(&self) -> Arc<dyn LibcStdio> {
        self.orig.clone()
    }
}

impl LibcStdio for DarshanStdio {
    fn fopen(&self, p: &Process, path: &str, mode: &str) -> PosixResult<StreamId> {
        let r = self.orig.fopen(p, path, mode);
        if self.seen.lock().insert(record_id(path)) {
            self.rt.charge_new_record();
        }
        self.rt.charge_op();
        r
    }

    fn fclose(&self, p: &Process, s: StreamId) -> PosixResult<()> {
        let r = self.orig.fclose(p, s);
        self.rt.charge_op();
        r
    }

    #[inline]
    fn fread(
        &self,
        p: &Process,
        s: StreamId,
        len: u64,
        buf: Option<&mut [u8]>,
    ) -> PosixResult<u64> {
        let r = self.orig.fread(p, s, len, buf);
        self.rt.charge_op();
        r
    }

    #[inline]
    fn fwrite(&self, p: &Process, s: StreamId, data: WritePayload<'_>) -> PosixResult<u64> {
        let r = self.orig.fwrite(p, s, data);
        self.rt.charge_op();
        r
    }

    fn fflush(&self, p: &Process, s: StreamId) -> PosixResult<()> {
        let r = self.orig.fflush(p, s);
        self.rt.charge_op();
        r
    }

    fn fseek(&self, p: &Process, s: StreamId, offset: i64, whence: Whence) -> PosixResult<u64> {
        let r = self.orig.fseek(p, s, offset, whence);
        self.rt.charge_op();
        r
    }
}
