//! Instrumented symbol implementations — the `_open`, `_read`, `_pread`,
//! `_fwrite`, … entry points of `libdarshan.so` (paper Fig. 2, right box).
//!
//! Each wrapper times the forwarded call on the virtual clock, updates the
//! Darshan module record, charges the instrumentation overhead, and returns
//! the original result. The wrapper keeps its own descriptor→record map
//! (as real Darshan does): descriptors opened *before* attachment are
//! resolved lazily from the process fd table (the runtime-attachment gap
//! the paper's design has to live with; see DESIGN.md).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use simrt::now;
use storage_sim::{Metadata, WritePayload};

use posix_sim::{Fd, LibcIo, LibcStdio, MapId, OpenFlags, PosixResult, Process, StreamId, Whence};

use crate::counters::{PosixCounter as P, StdioCounter as S};
use crate::runtime::DarshanRuntime;

/// The instrumented POSIX symbols.
pub struct DarshanIo {
    rt: Arc<DarshanRuntime>,
    orig: Arc<dyn LibcIo>,
    /// fd → record id.
    fds: Mutex<HashMap<Fd, u64>>,
    /// mapping → record id (for msync attribution).
    maps: Mutex<HashMap<MapId, u64>>,
}

impl DarshanIo {
    /// Wrap the previous GOT binding `orig`.
    pub fn new(rt: Arc<DarshanRuntime>, orig: Arc<dyn LibcIo>) -> Arc<Self> {
        Arc::new(DarshanIo {
            rt,
            orig,
            fds: Mutex::new(HashMap::new()),
            maps: Mutex::new(HashMap::new()),
        })
    }

    /// The original binding this wrapper forwards to (used on detach).
    pub fn orig(&self) -> Arc<dyn LibcIo> {
        self.orig.clone()
    }

    /// Resolve the record id of `fd`, registering lazily for descriptors
    /// opened before attachment.
    fn rec_of(&self, p: &Process, fd: Fd) -> Option<u64> {
        if let Some(id) = self.fds.lock().get(&fd) {
            return Some(*id);
        }
        // Pre-attachment descriptor: its open() happened before the GOT was
        // patched, so Darshan never saw it. Recover the path (à la
        // /proc/self/fd) and register a record with OPENS = 0; subsequent
        // operations are attributed correctly.
        let path = p.fd_entry(fd).ok()?.path.clone();
        let id = self.rt.posix_register_existing(&path)?;
        self.fds.lock().insert(fd, id);
        Some(id)
    }
}

impl LibcIo for DarshanIo {
    fn open(&self, p: &Process, path: &str, flags: OpenFlags) -> PosixResult<Fd> {
        let t0 = now();
        let r = self.orig.open(p, path, flags);
        let t1 = now();
        self.rt.charge_op();
        if let Ok(fd) = &r {
            if let Some(id) = self.rt.posix_open(path, t0, t1) {
                self.fds.lock().insert(*fd, id);
            }
        }
        r
    }

    fn close(&self, p: &Process, fd: Fd) -> PosixResult<()> {
        let rec = self.fds.lock().remove(&fd);
        let t0 = now();
        let r = self.orig.close(p, fd);
        let t1 = now();
        self.rt.charge_op();
        if let Some(id) = rec {
            self.rt.posix_close(id, t0, t1);
        }
        r
    }

    fn read(&self, p: &Process, fd: Fd, len: u64, buf: Option<&mut [u8]>) -> PosixResult<u64> {
        // Observe the position before the call moves it.
        let pos = p.fd_entry(fd).map(|e| *e.pos.lock()).unwrap_or(0);
        let t0 = now();
        let r = self.orig.read(p, fd, len, buf);
        let t1 = now();
        self.rt.charge_op();
        if let Ok(n) = &r {
            if let Some(id) = self.rec_of(p, fd) {
                self.rt.posix_read(id, pos, *n, t0, t1);
            }
        }
        r
    }

    fn pread(
        &self,
        p: &Process,
        fd: Fd,
        offset: u64,
        len: u64,
        buf: Option<&mut [u8]>,
    ) -> PosixResult<u64> {
        let t0 = now();
        let r = self.orig.pread(p, fd, offset, len, buf);
        let t1 = now();
        self.rt.charge_op();
        if let Ok(n) = &r {
            if let Some(id) = self.rec_of(p, fd) {
                self.rt.posix_read(id, offset, *n, t0, t1);
            }
        }
        r
    }

    fn write(&self, p: &Process, fd: Fd, data: WritePayload<'_>) -> PosixResult<u64> {
        let pos = p.fd_entry(fd).map(|e| *e.pos.lock()).unwrap_or(0);
        let t0 = now();
        let r = self.orig.write(p, fd, data);
        let t1 = now();
        self.rt.charge_op();
        if let Ok(n) = &r {
            if let Some(id) = self.rec_of(p, fd) {
                self.rt.posix_write(id, pos, *n, t0, t1);
            }
        }
        r
    }

    fn pwrite(&self, p: &Process, fd: Fd, offset: u64, data: WritePayload<'_>) -> PosixResult<u64> {
        let t0 = now();
        let r = self.orig.pwrite(p, fd, offset, data);
        let t1 = now();
        self.rt.charge_op();
        if let Ok(n) = &r {
            if let Some(id) = self.rec_of(p, fd) {
                self.rt.posix_write(id, offset, *n, t0, t1);
            }
        }
        r
    }

    fn lseek(&self, p: &Process, fd: Fd, offset: i64, whence: Whence) -> PosixResult<u64> {
        let t0 = now();
        let r = self.orig.lseek(p, fd, offset, whence);
        let t1 = now();
        self.rt.charge_op();
        if r.is_ok() {
            if let Some(id) = self.rec_of(p, fd) {
                self.rt.posix_meta(id, P::POSIX_SEEKS, t0, t1);
            }
        }
        r
    }

    fn stat(&self, p: &Process, path: &str) -> PosixResult<Metadata> {
        let t0 = now();
        let r = self.orig.stat(p, path);
        let t1 = now();
        self.rt.charge_op();
        if r.is_ok() {
            self.rt.posix_stat_path(path, t0, t1);
        }
        r
    }

    fn fstat(&self, p: &Process, fd: Fd) -> PosixResult<Metadata> {
        let t0 = now();
        let r = self.orig.fstat(p, fd);
        let t1 = now();
        self.rt.charge_op();
        if r.is_ok() {
            if let Some(id) = self.rec_of(p, fd) {
                self.rt.posix_meta(id, P::POSIX_STATS, t0, t1);
            }
        }
        r
    }

    fn fsync(&self, p: &Process, fd: Fd) -> PosixResult<()> {
        let t0 = now();
        let r = self.orig.fsync(p, fd);
        let t1 = now();
        self.rt.charge_op();
        if r.is_ok() {
            if let Some(id) = self.rec_of(p, fd) {
                self.rt.posix_meta(id, P::POSIX_FSYNCS, t0, t1);
            }
        }
        r
    }

    fn unlink(&self, p: &Process, path: &str) -> PosixResult<()> {
        self.rt.charge_op();
        self.orig.unlink(p, path)
    }

    fn mmap(&self, p: &Process, fd: Fd, offset: u64, len: u64) -> PosixResult<MapId> {
        let t0 = now();
        let r = self.orig.mmap(p, fd, offset, len);
        let t1 = now();
        self.rt.charge_op();
        if let Ok(map) = &r {
            if let Some(id) = self.rec_of(p, fd) {
                self.rt.posix_meta(id, P::POSIX_MMAPS, t0, t1);
                self.maps.lock().insert(*map, id);
            }
        }
        r
    }

    fn munmap(&self, p: &Process, map: MapId) -> PosixResult<()> {
        self.maps.lock().remove(&map);
        self.rt.charge_op();
        self.orig.munmap(p, map)
    }

    fn msync(&self, p: &Process, map: MapId) -> PosixResult<()> {
        let t0 = now();
        let r = self.orig.msync(p, map);
        let t1 = now();
        self.rt.charge_op();
        if r.is_ok() {
            let rec = self.maps.lock().get(&map).copied();
            if let Some(id) = rec {
                self.rt.posix_meta(id, P::POSIX_MSYNCS, t0, t1);
            }
        }
        r
    }

    fn rename(&self, p: &Process, from: &str, to: &str) -> PosixResult<()> {
        self.rt.charge_op();
        self.orig.rename(p, from, to)
    }
}

/// The instrumented STDIO symbols.
pub struct DarshanStdio {
    rt: Arc<DarshanRuntime>,
    orig: Arc<dyn LibcStdio>,
    streams: Mutex<HashMap<StreamId, StreamState>>,
}

struct StreamState {
    rec: u64,
    pos: u64,
}

impl DarshanStdio {
    /// Wrap the previous GOT binding `orig`.
    pub fn new(rt: Arc<DarshanRuntime>, orig: Arc<dyn LibcStdio>) -> Arc<Self> {
        Arc::new(DarshanStdio {
            rt,
            orig,
            streams: Mutex::new(HashMap::new()),
        })
    }

    /// The original binding this wrapper forwards to.
    pub fn orig(&self) -> Arc<dyn LibcStdio> {
        self.orig.clone()
    }
}

impl LibcStdio for DarshanStdio {
    fn fopen(&self, p: &Process, path: &str, mode: &str) -> PosixResult<StreamId> {
        let t0 = now();
        let r = self.orig.fopen(p, path, mode);
        let t1 = now();
        self.rt.charge_op();
        if let Ok(s) = &r {
            if let Some(id) = self.rt.stdio_open(path, t0, t1) {
                self.streams.lock().insert(*s, StreamState { rec: id, pos: 0 });
            }
        }
        r
    }

    fn fclose(&self, p: &Process, s: StreamId) -> PosixResult<()> {
        let st = self.streams.lock().remove(&s);
        let t0 = now();
        let r = self.orig.fclose(p, s);
        let t1 = now();
        self.rt.charge_op();
        if let Some(st) = st {
            self.rt.stdio_close(st.rec, t0, t1);
        }
        r
    }

    fn fread(
        &self,
        p: &Process,
        s: StreamId,
        len: u64,
        buf: Option<&mut [u8]>,
    ) -> PosixResult<u64> {
        let t0 = now();
        let r = self.orig.fread(p, s, len, buf);
        let t1 = now();
        self.rt.charge_op();
        if let Ok(n) = &r {
            let mut m = self.streams.lock();
            if let Some(st) = m.get_mut(&s) {
                let pos = st.pos;
                st.pos += n;
                let rec = st.rec;
                drop(m);
                self.rt.stdio_read(rec, pos, *n, t0, t1);
            }
        }
        r
    }

    fn fwrite(&self, p: &Process, s: StreamId, data: WritePayload<'_>) -> PosixResult<u64> {
        let t0 = now();
        let r = self.orig.fwrite(p, s, data);
        let t1 = now();
        self.rt.charge_op();
        if let Ok(n) = &r {
            let mut m = self.streams.lock();
            if let Some(st) = m.get_mut(&s) {
                let pos = st.pos;
                st.pos += n;
                let rec = st.rec;
                drop(m);
                self.rt.stdio_write(rec, pos, *n, t0, t1);
            }
        }
        r
    }

    fn fflush(&self, p: &Process, s: StreamId) -> PosixResult<()> {
        let t0 = now();
        let r = self.orig.fflush(p, s);
        let t1 = now();
        self.rt.charge_op();
        if r.is_ok() {
            let rec = self.streams.lock().get(&s).map(|st| st.rec);
            if let Some(rec) = rec {
                self.rt.stdio_meta(rec, S::STDIO_FLUSHES, t0, t1);
            }
        }
        r
    }

    fn fseek(&self, p: &Process, s: StreamId, offset: i64, whence: Whence) -> PosixResult<u64> {
        let t0 = now();
        let r = self.orig.fseek(p, s, offset, whence);
        let t1 = now();
        self.rt.charge_op();
        if let Ok(newpos) = &r {
            let mut m = self.streams.lock();
            if let Some(st) = m.get_mut(&s) {
                st.pos = *newpos;
                let rec = st.rec;
                drop(m);
                self.rt.stdio_meta(rec, S::STDIO_SEEKS, t0, t1);
            }
        }
        r
    }
}
