//! Cross-rank record reduction — what parallel Darshan does at
//! `MPI_Finalize`: records for files shared across ranks are merged into a
//! single job-level record (counters sum, extrema min/max), so the log
//! stays compact regardless of the process count (paper §III: "The
//! parallel version of Darshan uses the PMPI profiling interface…").

use std::collections::HashMap;

use crate::counters::{PosixCounter as P, PosixFCounter as PF, PosixRecord};
use crate::counters::{StdioCounter as S, StdioFCounter as SF, StdioRecord};

/// Counters that reduce with `max` instead of `+`.
const MAX_COUNTERS: &[P] = &[P::POSIX_MAX_BYTE_READ, P::POSIX_MAX_BYTE_WRITTEN];

/// STDIO counters that reduce with `max` instead of `+`.
const STDIO_MAX_COUNTERS: &[S] = &[S::STDIO_MAX_BYTE_READ, S::STDIO_MAX_BYTE_WRITTEN];

/// Merge per-rank records of the **same file** into one shared record.
///
/// Semantics follow darshan-runtime's POSIX reduction operator: additive
/// counters sum; byte extrema take the max; the common-access slots are
/// re-derived from the per-rank slots; first timestamps take the earliest
/// non-zero value, last timestamps the latest; cumulative times sum.
pub fn merge_posix_records(records: &[PosixRecord]) -> Option<PosixRecord> {
    let first = records.first()?;
    debug_assert!(records.iter().all(|r| r.rec_id == first.rec_id));
    let mut out = PosixRecord::new(first.rec_id);

    for r in records {
        for c in P::ALL {
            let i = c as usize;
            if MAX_COUNTERS.contains(&c) {
                out.counters[i] = out.counters[i].max(r.counters[i]);
            } else if !is_access_slot(c) {
                out.counters[i] += r.counters[i];
            }
        }
        // Re-accumulate common access sizes from the per-rank top-4 slots.
        for (a, cnt) in [
            (P::POSIX_ACCESS1_ACCESS, P::POSIX_ACCESS1_COUNT),
            (P::POSIX_ACCESS2_ACCESS, P::POSIX_ACCESS2_COUNT),
            (P::POSIX_ACCESS3_ACCESS, P::POSIX_ACCESS3_COUNT),
            (P::POSIX_ACCESS4_ACCESS, P::POSIX_ACCESS4_COUNT),
        ] {
            let count = r.get(cnt);
            if count > 0 {
                for _ in 0..count {
                    out.access_sizes.add(r.get(a) as u64);
                }
            }
        }
        // Timestamps: first-start = min nonzero, last-end = max; times sum.
        for (start, end) in [
            (
                PF::POSIX_F_OPEN_START_TIMESTAMP,
                PF::POSIX_F_OPEN_END_TIMESTAMP,
            ),
            (
                PF::POSIX_F_READ_START_TIMESTAMP,
                PF::POSIX_F_READ_END_TIMESTAMP,
            ),
            (
                PF::POSIX_F_WRITE_START_TIMESTAMP,
                PF::POSIX_F_WRITE_END_TIMESTAMP,
            ),
            (
                PF::POSIX_F_CLOSE_START_TIMESTAMP,
                PF::POSIX_F_CLOSE_END_TIMESTAMP,
            ),
        ] {
            let s = r.fget(start);
            if s > 0.0 {
                let cur = out.fget(start);
                *out.fget_mut(start) = if cur == 0.0 { s } else { cur.min(s) };
            }
            let e = r.fget(end);
            *out.fget_mut(end) = out.fget(end).max(e);
        }
        for t in [
            PF::POSIX_F_READ_TIME,
            PF::POSIX_F_WRITE_TIME,
            PF::POSIX_F_META_TIME,
        ] {
            *out.fget_mut(t) += r.fget(t);
        }
        for t in [PF::POSIX_F_MAX_READ_TIME, PF::POSIX_F_MAX_WRITE_TIME] {
            *out.fget_mut(t) = out.fget(t).max(r.fget(t));
        }
    }
    out.reduce_common_accesses();
    Some(out)
}

/// Merge per-rank STDIO records of the same file into one shared record.
///
/// Same operator shape as [`merge_posix_records`]: additive counters sum,
/// byte extrema take the max, open/close start timestamps take the earliest
/// non-zero value, end timestamps the latest, cumulative times sum.
pub fn merge_stdio_records(records: &[StdioRecord]) -> Option<StdioRecord> {
    let first = records.first()?;
    debug_assert!(records.iter().all(|r| r.rec_id == first.rec_id));
    let mut out = StdioRecord::new(first.rec_id);

    for r in records {
        for c in S::ALL {
            let i = c as usize;
            if STDIO_MAX_COUNTERS.contains(&c) {
                out.counters[i] = out.counters[i].max(r.counters[i]);
            } else {
                out.counters[i] += r.counters[i];
            }
        }
        for (start, end) in [
            (
                SF::STDIO_F_OPEN_START_TIMESTAMP,
                SF::STDIO_F_OPEN_END_TIMESTAMP,
            ),
            (
                SF::STDIO_F_CLOSE_START_TIMESTAMP,
                SF::STDIO_F_CLOSE_END_TIMESTAMP,
            ),
        ] {
            let s = r.fget(start);
            if s > 0.0 {
                let cur = out.fget(start);
                *out.fget_mut(start) = if cur == 0.0 { s } else { cur.min(s) };
            }
            let e = r.fget(end);
            *out.fget_mut(end) = out.fget(end).max(e);
        }
        for t in [
            SF::STDIO_F_READ_TIME,
            SF::STDIO_F_WRITE_TIME,
            SF::STDIO_F_META_TIME,
        ] {
            *out.fget_mut(t) += r.fget(t);
        }
    }
    Some(out)
}

/// STDIO counterpart of [`reduce_job`].
pub fn reduce_job_stdio<R: std::borrow::Borrow<StdioRecord>>(
    per_rank: &[Vec<R>],
) -> Vec<StdioRecord> {
    let mut by_id: HashMap<u64, Vec<StdioRecord>> = HashMap::new();
    for rank in per_rank {
        for r in rank {
            let r = r.borrow();
            by_id.entry(r.rec_id).or_default().push(r.clone());
        }
    }
    let mut out: Vec<StdioRecord> = by_id
        .into_values()
        .filter_map(|v| merge_stdio_records(&v))
        .collect();
    out.sort_by_key(|r| r.rec_id);
    out
}

fn is_access_slot(c: P) -> bool {
    matches!(
        c,
        P::POSIX_ACCESS1_ACCESS
            | P::POSIX_ACCESS2_ACCESS
            | P::POSIX_ACCESS3_ACCESS
            | P::POSIX_ACCESS4_ACCESS
            | P::POSIX_ACCESS1_COUNT
            | P::POSIX_ACCESS2_COUNT
            | P::POSIX_ACCESS3_COUNT
            | P::POSIX_ACCESS4_COUNT
    )
}

/// Reduce full per-rank record sets into the job view: records of files
/// touched by several ranks merge; rank-private files pass through.
/// Generic over owned records and the `Arc`-shared records that
/// incremental snapshots hand out.
pub fn reduce_job<R: std::borrow::Borrow<PosixRecord>>(per_rank: &[Vec<R>]) -> Vec<PosixRecord> {
    let mut by_id: HashMap<u64, Vec<PosixRecord>> = HashMap::new();
    for rank in per_rank {
        for r in rank {
            let r = r.borrow();
            by_id.entry(r.rec_id).or_default().push(r.clone());
        }
    }
    let mut out: Vec<PosixRecord> = by_id
        .into_values()
        .filter_map(|v| merge_posix_records(&v))
        .collect();
    out.sort_by_key(|r| r.rec_id);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, reads: i64, bytes: i64, max_byte: i64, t0: f64, t1: f64) -> PosixRecord {
        let mut r = PosixRecord::new(id);
        *r.get_mut(P::POSIX_READS) = reads;
        *r.get_mut(P::POSIX_BYTES_READ) = bytes;
        *r.get_mut(P::POSIX_MAX_BYTE_READ) = max_byte;
        *r.fget_mut(PF::POSIX_F_READ_START_TIMESTAMP) = t0;
        *r.fget_mut(PF::POSIX_F_READ_END_TIMESTAMP) = t1;
        *r.fget_mut(PF::POSIX_F_READ_TIME) = t1 - t0;
        *r.get_mut(P::POSIX_ACCESS1_ACCESS) = 4096;
        *r.get_mut(P::POSIX_ACCESS1_COUNT) = reads;
        r
    }

    #[test]
    fn merge_sums_and_extremizes() {
        let merged = merge_posix_records(&[
            rec(9, 10, 1_000, 999, 1.0, 2.0),
            rec(9, 5, 500, 5_000, 0.5, 3.0),
        ])
        .unwrap();
        assert_eq!(merged.get(P::POSIX_READS), 15);
        assert_eq!(merged.get(P::POSIX_BYTES_READ), 1_500);
        assert_eq!(merged.get(P::POSIX_MAX_BYTE_READ), 5_000);
        assert_eq!(merged.fget(PF::POSIX_F_READ_START_TIMESTAMP), 0.5);
        assert_eq!(merged.fget(PF::POSIX_F_READ_END_TIMESTAMP), 3.0);
        assert!((merged.fget(PF::POSIX_F_READ_TIME) - 3.5).abs() < 1e-12);
        // Common access slots re-reduced: 15 × 4096.
        assert_eq!(merged.get(P::POSIX_ACCESS1_ACCESS), 4096);
        assert_eq!(merged.get(P::POSIX_ACCESS1_COUNT), 15);
    }

    #[test]
    fn merge_empty_is_none() {
        assert!(merge_posix_records(&[]).is_none());
    }

    #[test]
    fn merge_stdio_sums_and_extremizes() {
        let mk = |writes: i64, max_byte: i64, open_start: f64, close_end: f64| {
            let mut r = StdioRecord::new(7);
            *r.get_mut(S::STDIO_WRITES) = writes;
            *r.get_mut(S::STDIO_MAX_BYTE_WRITTEN) = max_byte;
            *r.fget_mut(SF::STDIO_F_OPEN_START_TIMESTAMP) = open_start;
            *r.fget_mut(SF::STDIO_F_CLOSE_END_TIMESTAMP) = close_end;
            *r.fget_mut(SF::STDIO_F_WRITE_TIME) = 0.25;
            r
        };
        let merged = merge_stdio_records(&[mk(4, 100, 1.5, 2.0), mk(6, 900, 0.5, 5.0)]).unwrap();
        assert_eq!(merged.get(S::STDIO_WRITES), 10);
        assert_eq!(merged.get(S::STDIO_MAX_BYTE_WRITTEN), 900);
        assert_eq!(merged.fget(SF::STDIO_F_OPEN_START_TIMESTAMP), 0.5);
        assert_eq!(merged.fget(SF::STDIO_F_CLOSE_END_TIMESTAMP), 5.0);
        assert!((merged.fget(SF::STDIO_F_WRITE_TIME) - 0.5).abs() < 1e-12);
        assert!(merge_stdio_records(&[]).is_none());
    }

    #[test]
    fn reduce_job_merges_shared_keeps_private() {
        let rank0 = vec![rec(1, 1, 100, 99, 1.0, 2.0), rec(2, 2, 200, 199, 1.0, 2.0)];
        let rank1 = vec![rec(1, 3, 300, 299, 2.0, 4.0)];
        let job = reduce_job(&[rank0, rank1]);
        assert_eq!(job.len(), 2);
        let shared = job.iter().find(|r| r.rec_id == 1).unwrap();
        assert_eq!(shared.get(P::POSIX_READS), 4);
        assert_eq!(shared.get(P::POSIX_BYTES_READ), 400);
        let private = job.iter().find(|r| r.rec_id == 2).unwrap();
        assert_eq!(private.get(P::POSIX_READS), 2);
    }
}
