//! Cross-rank record reduction — what parallel Darshan does at
//! `MPI_Finalize`: records for files shared across ranks are merged into a
//! single job-level record (counters sum, extrema min/max), so the log
//! stays compact regardless of the process count (paper §III: "The
//! parallel version of Darshan uses the PMPI profiling interface…").

use std::collections::HashMap;

use crate::counters::{PosixCounter as P, PosixFCounter as PF, PosixRecord};
use crate::counters::{StdioCounter as S, StdioFCounter as SF, StdioRecord};

/// Counters that reduce with `max` instead of `+`.
const MAX_COUNTERS: &[P] = &[P::POSIX_MAX_BYTE_READ, P::POSIX_MAX_BYTE_WRITTEN];

/// STDIO counters that reduce with `max` instead of `+`.
const STDIO_MAX_COUNTERS: &[S] = &[S::STDIO_MAX_BYTE_READ, S::STDIO_MAX_BYTE_WRITTEN];

/// Merge per-rank records of the **same file** into one shared record.
///
/// Semantics follow darshan-runtime's POSIX reduction operator: additive
/// counters sum; byte extrema take the max; the common-access slots are
/// re-derived from the per-rank slots; first timestamps take the earliest
/// non-zero value, last timestamps the latest; cumulative times sum.
pub fn merge_posix_records(records: &[PosixRecord]) -> Option<PosixRecord> {
    let first = records.first()?;
    debug_assert!(records.iter().all(|r| r.rec_id == first.rec_id));
    let mut out = PosixRecord::new(first.rec_id);

    for r in records {
        for c in P::ALL {
            let i = c as usize;
            if MAX_COUNTERS.contains(&c) {
                out.counters[i] = out.counters[i].max(r.counters[i]);
            } else if !is_access_slot(c) {
                out.counters[i] += r.counters[i];
            }
        }
        // Re-accumulate common access sizes from the per-rank top-4 slots.
        for (a, cnt) in [
            (P::POSIX_ACCESS1_ACCESS, P::POSIX_ACCESS1_COUNT),
            (P::POSIX_ACCESS2_ACCESS, P::POSIX_ACCESS2_COUNT),
            (P::POSIX_ACCESS3_ACCESS, P::POSIX_ACCESS3_COUNT),
            (P::POSIX_ACCESS4_ACCESS, P::POSIX_ACCESS4_COUNT),
        ] {
            let count = r.get(cnt);
            if count > 0 {
                for _ in 0..count {
                    out.access_sizes.add(r.get(a) as u64);
                }
            }
        }
        // Timestamps: first-start = min nonzero, last-end = max; times sum.
        for (start, end) in [
            (
                PF::POSIX_F_OPEN_START_TIMESTAMP,
                PF::POSIX_F_OPEN_END_TIMESTAMP,
            ),
            (
                PF::POSIX_F_READ_START_TIMESTAMP,
                PF::POSIX_F_READ_END_TIMESTAMP,
            ),
            (
                PF::POSIX_F_WRITE_START_TIMESTAMP,
                PF::POSIX_F_WRITE_END_TIMESTAMP,
            ),
            (
                PF::POSIX_F_CLOSE_START_TIMESTAMP,
                PF::POSIX_F_CLOSE_END_TIMESTAMP,
            ),
        ] {
            let s = r.fget(start);
            if s > 0.0 {
                let cur = out.fget(start);
                *out.fget_mut(start) = if cur == 0.0 { s } else { cur.min(s) };
            }
            let e = r.fget(end);
            *out.fget_mut(end) = out.fget(end).max(e);
        }
        for t in [
            PF::POSIX_F_READ_TIME,
            PF::POSIX_F_WRITE_TIME,
            PF::POSIX_F_META_TIME,
        ] {
            *out.fget_mut(t) += r.fget(t);
        }
        for t in [PF::POSIX_F_MAX_READ_TIME, PF::POSIX_F_MAX_WRITE_TIME] {
            *out.fget_mut(t) = out.fget(t).max(r.fget(t));
        }
    }
    out.reduce_common_accesses();
    Some(out)
}

/// Merge per-rank STDIO records of the same file into one shared record.
///
/// Same operator shape as [`merge_posix_records`]: additive counters sum,
/// byte extrema take the max, open/close start timestamps take the earliest
/// non-zero value, end timestamps the latest, cumulative times sum.
pub fn merge_stdio_records(records: &[StdioRecord]) -> Option<StdioRecord> {
    let first = records.first()?;
    debug_assert!(records.iter().all(|r| r.rec_id == first.rec_id));
    let mut out = StdioRecord::new(first.rec_id);

    for r in records {
        for c in S::ALL {
            let i = c as usize;
            if STDIO_MAX_COUNTERS.contains(&c) {
                out.counters[i] = out.counters[i].max(r.counters[i]);
            } else {
                out.counters[i] += r.counters[i];
            }
        }
        for (start, end) in [
            (
                SF::STDIO_F_OPEN_START_TIMESTAMP,
                SF::STDIO_F_OPEN_END_TIMESTAMP,
            ),
            (
                SF::STDIO_F_CLOSE_START_TIMESTAMP,
                SF::STDIO_F_CLOSE_END_TIMESTAMP,
            ),
        ] {
            let s = r.fget(start);
            if s > 0.0 {
                let cur = out.fget(start);
                *out.fget_mut(start) = if cur == 0.0 { s } else { cur.min(s) };
            }
            let e = r.fget(end);
            *out.fget_mut(end) = out.fget(end).max(e);
        }
        for t in [
            SF::STDIO_F_READ_TIME,
            SF::STDIO_F_WRITE_TIME,
            SF::STDIO_F_META_TIME,
        ] {
            *out.fget_mut(t) += r.fget(t);
        }
    }
    Some(out)
}

/// STDIO counterpart of [`reduce_job`].
pub fn reduce_job_stdio<R: std::borrow::Borrow<StdioRecord>>(
    per_rank: &[Vec<R>],
) -> Vec<StdioRecord> {
    let mut by_id: HashMap<u64, Vec<StdioRecord>> = HashMap::new();
    for rank in per_rank {
        for r in rank {
            let r = r.borrow();
            by_id.entry(r.rec_id).or_default().push(r.clone());
        }
    }
    let mut out: Vec<StdioRecord> = by_id
        .into_values()
        .filter_map(|v| merge_stdio_records(&v))
        .collect();
    out.sort_by_key(|r| r.rec_id);
    out
}

// ---------------------------------------------------------------------------
// Pairwise (tree) reduction operators.
//
// `merge_posix_records` is a *left fold* in rank order, and two of its
// ingredients are order-sensitive: f64 cumulative-time sums are not
// associative, and the common-access tracker has bounded memory with
// order-dependent eviction. A naive pairwise merge up a reduction tree
// would therefore drift from the flat fold bit-by-bit. The fold types
// below split the operator: every *associative* field (integer sums, byte
// extrema, first-min-nonzero/last-max timestamps, max op times) merges
// pairwise up the tree, while the order-sensitive remainder — the three
// cumulative-time floats and the four `(access, count)` slots of each
// contributor — rides along as a rank-ordered deferred list that the root
// replays exactly as the flat fold would have. The result is byte-identical
// to `merge_posix_records` for every tree shape (proptested in
// `tests/proptests_extensions.rs`).
// ---------------------------------------------------------------------------

/// The order-sensitive slice of one POSIX contributor: its common-access
/// slots (replayed into the tracker in rank order at the root) and its
/// cumulative-time floats (left-folded in rank order at the root).
#[derive(Clone, Copy, Debug)]
pub struct PosixDeferred {
    /// The contributor's `(ACCESSi_ACCESS, ACCESSi_COUNT)` slot pairs.
    pub accesses: [(i64, i64); 4],
    /// `[POSIX_F_READ_TIME, POSIX_F_WRITE_TIME, POSIX_F_META_TIME]`.
    pub times: [f64; 3],
}

impl PosixDeferred {
    fn of(r: &PosixRecord) -> Self {
        PosixDeferred {
            accesses: [
                (
                    r.get(P::POSIX_ACCESS1_ACCESS),
                    r.get(P::POSIX_ACCESS1_COUNT),
                ),
                (
                    r.get(P::POSIX_ACCESS2_ACCESS),
                    r.get(P::POSIX_ACCESS2_COUNT),
                ),
                (
                    r.get(P::POSIX_ACCESS3_ACCESS),
                    r.get(P::POSIX_ACCESS3_COUNT),
                ),
                (
                    r.get(P::POSIX_ACCESS4_ACCESS),
                    r.get(P::POSIX_ACCESS4_COUNT),
                ),
            ],
            times: [
                r.fget(PF::POSIX_F_READ_TIME),
                r.fget(PF::POSIX_F_WRITE_TIME),
                r.fget(PF::POSIX_F_META_TIME),
            ],
        }
    }
}

/// A partially reduced POSIX record group, mergeable pairwise up a
/// reduction tree. `One` is a group a single rank contributed to so far —
/// kept verbatim so a rank-private file passes through unchanged, exactly
/// like the flat path's single-record group.
#[derive(Clone, Debug)]
pub enum PosixFold {
    /// Exactly one contributor; passes through unchanged if it stays alone.
    One(PosixRecord),
    /// Two or more contributors: associative fields folded in `out`,
    /// order-sensitive fields deferred in rank order.
    Many {
        /// Associative partial: summed counters (access slots excluded),
        /// byte extrema, timestamp extrema, max op times.
        out: PosixRecord,
        /// Rank-ordered order-sensitive contributions.
        deferred: Vec<PosixDeferred>,
    },
}

/// Fold the associative slice of `r` into `out` — the exact statements of
/// [`merge_posix_records`] minus the access slots and the cumulative-time
/// sums. Also correct for folding one *partial* into another: every field
/// it touches holds the same kind of partial value (a sum, a max, a
/// min-nonzero) in a record and in a partial.
fn fold_posix_assoc(out: &mut PosixRecord, r: &PosixRecord) {
    for c in P::ALL {
        let i = c as usize;
        if MAX_COUNTERS.contains(&c) {
            out.counters[i] = out.counters[i].max(r.counters[i]);
        } else if !is_access_slot(c) {
            out.counters[i] += r.counters[i];
        }
    }
    for (start, end) in [
        (
            PF::POSIX_F_OPEN_START_TIMESTAMP,
            PF::POSIX_F_OPEN_END_TIMESTAMP,
        ),
        (
            PF::POSIX_F_READ_START_TIMESTAMP,
            PF::POSIX_F_READ_END_TIMESTAMP,
        ),
        (
            PF::POSIX_F_WRITE_START_TIMESTAMP,
            PF::POSIX_F_WRITE_END_TIMESTAMP,
        ),
        (
            PF::POSIX_F_CLOSE_START_TIMESTAMP,
            PF::POSIX_F_CLOSE_END_TIMESTAMP,
        ),
    ] {
        let s = r.fget(start);
        if s > 0.0 {
            let cur = out.fget(start);
            *out.fget_mut(start) = if cur == 0.0 { s } else { cur.min(s) };
        }
        let e = r.fget(end);
        *out.fget_mut(end) = out.fget(end).max(e);
    }
    for t in [PF::POSIX_F_MAX_READ_TIME, PF::POSIX_F_MAX_WRITE_TIME] {
        *out.fget_mut(t) = out.fget(t).max(r.fget(t));
    }
}

impl PosixFold {
    /// A leaf: one rank's record, unreduced.
    pub fn leaf(r: PosixRecord) -> Self {
        PosixFold::One(r)
    }

    /// Contributors folded so far.
    pub fn contributors(&self) -> usize {
        match self {
            PosixFold::One(_) => 1,
            PosixFold::Many { deferred, .. } => deferred.len(),
        }
    }

    fn into_parts(self) -> (PosixRecord, Vec<PosixDeferred>) {
        match self {
            PosixFold::One(r) => {
                let mut out = PosixRecord::new(r.rec_id);
                fold_posix_assoc(&mut out, &r);
                (out, vec![PosixDeferred::of(&r)])
            }
            PosixFold::Many { out, deferred } => (out, deferred),
        }
    }

    /// Merge `right` (the higher-rank half) into `self`. Associative; the
    /// rank order of the deferred list is preserved by construction.
    pub fn absorb(self, right: PosixFold) -> Self {
        let (mut out, mut deferred) = self.into_parts();
        let (r_out, r_deferred) = right.into_parts();
        fold_posix_assoc(&mut out, &r_out);
        deferred.extend(r_deferred);
        PosixFold::Many { out, deferred }
    }

    /// Finish the group at the tree root. A lone contributor passes
    /// through unchanged; otherwise the deferred order-sensitive fields
    /// are replayed in rank order, reproducing the flat fold bit-for-bit.
    pub fn finish(self) -> PosixRecord {
        match self {
            PosixFold::One(r) => r,
            PosixFold::Many { mut out, deferred } => {
                for d in &deferred {
                    for (a, cnt) in d.accesses {
                        if cnt > 0 {
                            out.access_sizes.add_n(a as u64, cnt as u64);
                        }
                    }
                    for (t, v) in [
                        PF::POSIX_F_READ_TIME,
                        PF::POSIX_F_WRITE_TIME,
                        PF::POSIX_F_META_TIME,
                    ]
                    .into_iter()
                    .zip(d.times)
                    {
                        *out.fget_mut(t) += v;
                    }
                }
                out.reduce_common_accesses();
                out
            }
        }
    }
}

/// STDIO counterpart of [`PosixDeferred`]: the cumulative-time floats.
#[derive(Clone, Copy, Debug)]
pub struct StdioDeferred {
    /// `[STDIO_F_READ_TIME, STDIO_F_WRITE_TIME, STDIO_F_META_TIME]`.
    pub times: [f64; 3],
}

/// STDIO counterpart of [`PosixFold`] (no access slots, so only the
/// cumulative-time sums are deferred).
#[derive(Clone, Debug)]
pub enum StdioFold {
    /// Exactly one contributor.
    One(StdioRecord),
    /// Two or more contributors.
    Many {
        /// Associative partial.
        out: StdioRecord,
        /// Rank-ordered cumulative-time contributions.
        deferred: Vec<StdioDeferred>,
    },
}

fn fold_stdio_assoc(out: &mut StdioRecord, r: &StdioRecord) {
    for c in S::ALL {
        let i = c as usize;
        if STDIO_MAX_COUNTERS.contains(&c) {
            out.counters[i] = out.counters[i].max(r.counters[i]);
        } else {
            out.counters[i] += r.counters[i];
        }
    }
    for (start, end) in [
        (
            SF::STDIO_F_OPEN_START_TIMESTAMP,
            SF::STDIO_F_OPEN_END_TIMESTAMP,
        ),
        (
            SF::STDIO_F_CLOSE_START_TIMESTAMP,
            SF::STDIO_F_CLOSE_END_TIMESTAMP,
        ),
    ] {
        let s = r.fget(start);
        if s > 0.0 {
            let cur = out.fget(start);
            *out.fget_mut(start) = if cur == 0.0 { s } else { cur.min(s) };
        }
        let e = r.fget(end);
        *out.fget_mut(end) = out.fget(end).max(e);
    }
}

impl StdioFold {
    /// A leaf: one rank's record, unreduced.
    pub fn leaf(r: StdioRecord) -> Self {
        StdioFold::One(r)
    }

    /// Contributors folded so far.
    pub fn contributors(&self) -> usize {
        match self {
            StdioFold::One(_) => 1,
            StdioFold::Many { deferred, .. } => deferred.len(),
        }
    }

    fn into_parts(self) -> (StdioRecord, Vec<StdioDeferred>) {
        match self {
            StdioFold::One(r) => {
                let mut out = StdioRecord::new(r.rec_id);
                fold_stdio_assoc(&mut out, &r);
                let times = [
                    r.fget(SF::STDIO_F_READ_TIME),
                    r.fget(SF::STDIO_F_WRITE_TIME),
                    r.fget(SF::STDIO_F_META_TIME),
                ];
                (out, vec![StdioDeferred { times }])
            }
            StdioFold::Many { out, deferred } => (out, deferred),
        }
    }

    /// Merge `right` (the higher-rank half) into `self`.
    pub fn absorb(self, right: StdioFold) -> Self {
        let (mut out, mut deferred) = self.into_parts();
        let (r_out, r_deferred) = right.into_parts();
        fold_stdio_assoc(&mut out, &r_out);
        deferred.extend(r_deferred);
        StdioFold::Many { out, deferred }
    }

    /// Finish the group at the tree root.
    pub fn finish(self) -> StdioRecord {
        match self {
            StdioFold::One(r) => r,
            StdioFold::Many { mut out, deferred } => {
                for d in &deferred {
                    for (t, v) in [
                        SF::STDIO_F_READ_TIME,
                        SF::STDIO_F_WRITE_TIME,
                        SF::STDIO_F_META_TIME,
                    ]
                    .into_iter()
                    .zip(d.times)
                    {
                        *out.fget_mut(t) += v;
                    }
                }
                out
            }
        }
    }
}

fn is_access_slot(c: P) -> bool {
    matches!(
        c,
        P::POSIX_ACCESS1_ACCESS
            | P::POSIX_ACCESS2_ACCESS
            | P::POSIX_ACCESS3_ACCESS
            | P::POSIX_ACCESS4_ACCESS
            | P::POSIX_ACCESS1_COUNT
            | P::POSIX_ACCESS2_COUNT
            | P::POSIX_ACCESS3_COUNT
            | P::POSIX_ACCESS4_COUNT
    )
}

/// Reduce full per-rank record sets into the job view: records of files
/// touched by several ranks merge; rank-private files pass through.
/// Generic over owned records and the `Arc`-shared records that
/// incremental snapshots hand out.
pub fn reduce_job<R: std::borrow::Borrow<PosixRecord>>(per_rank: &[Vec<R>]) -> Vec<PosixRecord> {
    let mut by_id: HashMap<u64, Vec<PosixRecord>> = HashMap::new();
    for rank in per_rank {
        for r in rank {
            let r = r.borrow();
            by_id.entry(r.rec_id).or_default().push(r.clone());
        }
    }
    let mut out: Vec<PosixRecord> = by_id
        .into_values()
        .filter_map(|v| merge_posix_records(&v))
        .collect();
    out.sort_by_key(|r| r.rec_id);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, reads: i64, bytes: i64, max_byte: i64, t0: f64, t1: f64) -> PosixRecord {
        let mut r = PosixRecord::new(id);
        *r.get_mut(P::POSIX_READS) = reads;
        *r.get_mut(P::POSIX_BYTES_READ) = bytes;
        *r.get_mut(P::POSIX_MAX_BYTE_READ) = max_byte;
        *r.fget_mut(PF::POSIX_F_READ_START_TIMESTAMP) = t0;
        *r.fget_mut(PF::POSIX_F_READ_END_TIMESTAMP) = t1;
        *r.fget_mut(PF::POSIX_F_READ_TIME) = t1 - t0;
        *r.get_mut(P::POSIX_ACCESS1_ACCESS) = 4096;
        *r.get_mut(P::POSIX_ACCESS1_COUNT) = reads;
        r
    }

    #[test]
    fn merge_sums_and_extremizes() {
        let merged = merge_posix_records(&[
            rec(9, 10, 1_000, 999, 1.0, 2.0),
            rec(9, 5, 500, 5_000, 0.5, 3.0),
        ])
        .unwrap();
        assert_eq!(merged.get(P::POSIX_READS), 15);
        assert_eq!(merged.get(P::POSIX_BYTES_READ), 1_500);
        assert_eq!(merged.get(P::POSIX_MAX_BYTE_READ), 5_000);
        assert_eq!(merged.fget(PF::POSIX_F_READ_START_TIMESTAMP), 0.5);
        assert_eq!(merged.fget(PF::POSIX_F_READ_END_TIMESTAMP), 3.0);
        assert!((merged.fget(PF::POSIX_F_READ_TIME) - 3.5).abs() < 1e-12);
        // Common access slots re-reduced: 15 × 4096.
        assert_eq!(merged.get(P::POSIX_ACCESS1_ACCESS), 4096);
        assert_eq!(merged.get(P::POSIX_ACCESS1_COUNT), 15);
    }

    #[test]
    fn merge_empty_is_none() {
        assert!(merge_posix_records(&[]).is_none());
    }

    #[test]
    fn merge_stdio_sums_and_extremizes() {
        let mk = |writes: i64, max_byte: i64, open_start: f64, close_end: f64| {
            let mut r = StdioRecord::new(7);
            *r.get_mut(S::STDIO_WRITES) = writes;
            *r.get_mut(S::STDIO_MAX_BYTE_WRITTEN) = max_byte;
            *r.fget_mut(SF::STDIO_F_OPEN_START_TIMESTAMP) = open_start;
            *r.fget_mut(SF::STDIO_F_CLOSE_END_TIMESTAMP) = close_end;
            *r.fget_mut(SF::STDIO_F_WRITE_TIME) = 0.25;
            r
        };
        let merged = merge_stdio_records(&[mk(4, 100, 1.5, 2.0), mk(6, 900, 0.5, 5.0)]).unwrap();
        assert_eq!(merged.get(S::STDIO_WRITES), 10);
        assert_eq!(merged.get(S::STDIO_MAX_BYTE_WRITTEN), 900);
        assert_eq!(merged.fget(SF::STDIO_F_OPEN_START_TIMESTAMP), 0.5);
        assert_eq!(merged.fget(SF::STDIO_F_CLOSE_END_TIMESTAMP), 5.0);
        assert!((merged.fget(SF::STDIO_F_WRITE_TIME) - 0.5).abs() < 1e-12);
        assert!(merge_stdio_records(&[]).is_none());
    }

    #[test]
    fn reduce_job_merges_shared_keeps_private() {
        let rank0 = vec![rec(1, 1, 100, 99, 1.0, 2.0), rec(2, 2, 200, 199, 1.0, 2.0)];
        let rank1 = vec![rec(1, 3, 300, 299, 2.0, 4.0)];
        let job = reduce_job(&[rank0, rank1]);
        assert_eq!(job.len(), 2);
        let shared = job.iter().find(|r| r.rec_id == 1).unwrap();
        assert_eq!(shared.get(P::POSIX_READS), 4);
        assert_eq!(shared.get(P::POSIX_BYTES_READ), 400);
        let private = job.iter().find(|r| r.rec_id == 2).unwrap();
        assert_eq!(private.get(P::POSIX_READS), 2);
    }
}
