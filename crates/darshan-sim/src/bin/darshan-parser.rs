//! `darshan-parser` — decode a Darshan-sim binary log from disk and print
//! the per-counter rows plus the job summary (the classic offline
//! workflow of Table I's left column).
//!
//! ```text
//! cargo run -p darshan-sim --bin darshan-parser -- results/classic.darshan
//! ```

use darshan_sim::{DarshanLog, JobSummary};

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            eprintln!("usage: darshan-parser <logfile>");
            eprintln!("(produce one with: cargo run --release --example darshan_classic)");
            std::process::exit(2);
        }
    };
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("darshan-parser: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let log = match DarshanLog::decode(&bytes) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("darshan-parser: {path}: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", log.summary());
    println!();
    print!("{}", JobSummary::from_log(&log, 10).render());
}
