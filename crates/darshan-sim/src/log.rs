//! Darshan log file format: writer and parser.
//!
//! Real Darshan defers all statistics post-processing to shutdown, when it
//! reduces records and writes a compressed binary log that `darshan-parser`
//! reads offline. This module implements the analogous artifact so that the
//! "classic Darshan" workflow (Table I: *log analysis: post-execution*,
//! *output: Darshan log*) exists alongside tf-Darshan's in-situ path, and
//! so the ablation benches can compare the two.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "DSIM" | version u32 | job_start f64 | job_end f64 | nprocs u32
//! names:  count u32, then per name: rec_id u64, len u32, utf8 bytes
//! posix:  partial u8, count u32, then per record:
//!         rec_id u64, counters [i64; N], fcounters [f64; M]
//! stdio:  partial u8, count u32, same shape
//! dxt:    count u32, then per file: rec_id u64, nsegs u32, then per seg:
//!         op u8, rank u32, offset u64, length u64, start f64, end f64
//! ```

use std::collections::HashMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::counters::{PosixCounter, PosixRecord, StdioCounter, StdioRecord};
use crate::counters::{PosixFCounter, StdioFCounter};
use crate::runtime::{DxtOp, DxtSegment};

const MAGIC: &[u8; 4] = b"DSIM";
const VERSION: u32 = 2;

/// A fully materialized Darshan log (what shutdown produces and the parser
/// returns).
#[derive(Clone, Debug, Default)]
pub struct DarshanLog {
    /// Job start, seconds (Darshan-relative zero).
    pub job_start: f64,
    /// Job end, seconds.
    pub job_end: f64,
    /// Number of processes (always 1 for non-MPI TensorFlow).
    pub nprocs: u32,
    /// Record-id → path.
    pub names: HashMap<u64, String>,
    /// POSIX records sorted by record id.
    pub posix: Vec<PosixRecord>,
    /// POSIX module ran out of memory.
    pub posix_partial: bool,
    /// STDIO records sorted by record id.
    pub stdio: Vec<StdioRecord>,
    /// STDIO module ran out of memory.
    pub stdio_partial: bool,
    /// DXT segments per record id.
    pub dxt: HashMap<u64, Vec<DxtSegment>>,
}

/// Errors from parsing a log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogError {
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported version.
    BadVersion(u32),
    /// Truncated or corrupt payload.
    Truncated,
    /// Non-UTF-8 name record.
    BadName,
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::BadMagic => write!(f, "not a Darshan-sim log (bad magic)"),
            LogError::BadVersion(v) => write!(f, "unsupported log version {v}"),
            LogError::Truncated => write!(f, "log truncated or corrupt"),
            LogError::BadName => write!(f, "malformed name record"),
        }
    }
}

impl DarshanLog {
    /// Serialize to bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(4096);
        b.put_slice(MAGIC);
        b.put_u32_le(VERSION);
        b.put_f64_le(self.job_start);
        b.put_f64_le(self.job_end);
        b.put_u32_le(self.nprocs);

        let mut names: Vec<(&u64, &String)> = self.names.iter().collect();
        names.sort();
        b.put_u32_le(names.len() as u32);
        for (id, name) in names {
            b.put_u64_le(*id);
            b.put_u32_le(name.len() as u32);
            b.put_slice(name.as_bytes());
        }

        b.put_u8(self.posix_partial as u8);
        b.put_u32_le(self.posix.len() as u32);
        for r in &self.posix {
            b.put_u64_le(r.rec_id);
            for c in &r.counters {
                b.put_i64_le(*c);
            }
            for c in &r.fcounters {
                b.put_f64_le(*c);
            }
        }

        b.put_u8(self.stdio_partial as u8);
        b.put_u32_le(self.stdio.len() as u32);
        for r in &self.stdio {
            b.put_u64_le(r.rec_id);
            for c in &r.counters {
                b.put_i64_le(*c);
            }
            for c in &r.fcounters {
                b.put_f64_le(*c);
            }
        }

        let mut dxt: Vec<(&u64, &Vec<DxtSegment>)> = self.dxt.iter().collect();
        dxt.sort_by_key(|(id, _)| **id);
        b.put_u32_le(dxt.len() as u32);
        for (id, segs) in dxt {
            b.put_u64_le(*id);
            b.put_u32_le(segs.len() as u32);
            for s in segs {
                b.put_u8(match s.op {
                    DxtOp::Read => 0,
                    DxtOp::Write => 1,
                });
                b.put_u32_le(s.rank);
                b.put_u64_le(s.offset);
                b.put_u64_le(s.length);
                b.put_f64_le(s.start);
                b.put_f64_le(s.end);
            }
        }
        b.freeze()
    }

    /// Parse from bytes.
    pub fn decode(mut data: &[u8]) -> Result<DarshanLog, LogError> {
        fn need(data: &[u8], n: usize) -> Result<(), LogError> {
            if data.remaining() < n {
                Err(LogError::Truncated)
            } else {
                Ok(())
            }
        }
        need(data, 8)?;
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(LogError::BadMagic);
        }
        let version = data.get_u32_le();
        if version != VERSION {
            return Err(LogError::BadVersion(version));
        }
        need(data, 20)?;
        let job_start = data.get_f64_le();
        let job_end = data.get_f64_le();
        let nprocs = data.get_u32_le();

        need(data, 4)?;
        let n_names = data.get_u32_le() as usize;
        let mut names = HashMap::with_capacity(n_names);
        for _ in 0..n_names {
            need(data, 12)?;
            let id = data.get_u64_le();
            let len = data.get_u32_le() as usize;
            need(data, len)?;
            let mut raw = vec![0u8; len];
            data.copy_to_slice(&mut raw);
            let name = String::from_utf8(raw).map_err(|_| LogError::BadName)?;
            names.insert(id, name);
        }

        need(data, 5)?;
        let posix_partial = data.get_u8() != 0;
        let n_posix = data.get_u32_le() as usize;
        let mut posix = Vec::with_capacity(n_posix);
        for _ in 0..n_posix {
            need(data, 8 + 8 * (PosixCounter::COUNT + PosixFCounter::COUNT))?;
            let mut r = PosixRecord::new(data.get_u64_le());
            for c in r.counters.iter_mut() {
                *c = data.get_i64_le();
            }
            for c in r.fcounters.iter_mut() {
                *c = data.get_f64_le();
            }
            posix.push(r);
        }

        need(data, 5)?;
        let stdio_partial = data.get_u8() != 0;
        let n_stdio = data.get_u32_le() as usize;
        let mut stdio = Vec::with_capacity(n_stdio);
        for _ in 0..n_stdio {
            need(data, 8 + 8 * (StdioCounter::COUNT + StdioFCounter::COUNT))?;
            let mut r = StdioRecord::new(data.get_u64_le());
            for c in r.counters.iter_mut() {
                *c = data.get_i64_le();
            }
            for c in r.fcounters.iter_mut() {
                *c = data.get_f64_le();
            }
            stdio.push(r);
        }

        need(data, 4)?;
        let n_dxt = data.get_u32_le() as usize;
        let mut dxt = HashMap::with_capacity(n_dxt);
        for _ in 0..n_dxt {
            need(data, 12)?;
            let id = data.get_u64_le();
            let nsegs = data.get_u32_le() as usize;
            let mut segs = Vec::with_capacity(nsegs);
            for _ in 0..nsegs {
                need(data, 1 + 4 + 16 + 16)?;
                let op = match data.get_u8() {
                    0 => DxtOp::Read,
                    _ => DxtOp::Write,
                };
                segs.push(DxtSegment {
                    op,
                    rank: data.get_u32_le(),
                    offset: data.get_u64_le(),
                    length: data.get_u64_le(),
                    start: data.get_f64_le(),
                    end: data.get_f64_le(),
                });
            }
            dxt.insert(id, segs);
        }

        Ok(DarshanLog {
            job_start,
            job_end,
            nprocs,
            names,
            posix,
            posix_partial,
            stdio,
            stdio_partial,
            dxt,
        })
    }

    /// Render a `darshan-parser`-style text summary (for humans/tests).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# darshan-sim log, nprocs={}", self.nprocs);
        let _ = writeln!(
            out,
            "# run time: {:.6}s, files (posix/stdio): {}/{}{}",
            self.job_end - self.job_start,
            self.posix.len(),
            self.stdio.len(),
            if self.posix_partial { " [PARTIAL]" } else { "" },
        );
        for r in &self.posix {
            let name = self
                .names
                .get(&r.rec_id)
                .map(String::as_str)
                .unwrap_or("<unknown>");
            for (i, c) in PosixCounter::ALL.iter().enumerate() {
                if r.counters[i] != 0 {
                    let _ = writeln!(out, "POSIX\t{name}\t{}\t{}", c.name(), r.counters[i]);
                }
            }
        }
        for r in &self.stdio {
            let name = self
                .names
                .get(&r.rec_id)
                .map(String::as_str)
                .unwrap_or("<unknown>");
            for (i, c) in StdioCounter::ALL.iter().enumerate() {
                if r.counters[i] != 0 {
                    let _ = writeln!(out, "STDIO\t{name}\t{}\t{}", c.name(), r.counters[i]);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::record_id;

    fn sample_log() -> DarshanLog {
        let mut r = PosixRecord::new(record_id("/d/a"));
        *r.get_mut(PosixCounter::POSIX_OPENS) = 3;
        *r.get_mut(PosixCounter::POSIX_BYTES_READ) = 12345;
        *r.fget_mut(PosixFCounter::POSIX_F_READ_TIME) = 0.25;
        let mut s = StdioRecord::new(record_id("/d/ckpt"));
        *s.get_mut(StdioCounter::STDIO_WRITES) = 140;
        let mut names = HashMap::new();
        names.insert(record_id("/d/a"), "/d/a".to_string());
        names.insert(record_id("/d/ckpt"), "/d/ckpt".to_string());
        let mut dxt = HashMap::new();
        dxt.insert(
            record_id("/d/a"),
            vec![
                DxtSegment {
                    op: DxtOp::Read,
                    offset: 0,
                    length: 88_000,
                    start: 0.1,
                    end: 0.2,
                    rank: 0,
                },
                DxtSegment {
                    op: DxtOp::Read,
                    offset: 88_000,
                    length: 0,
                    start: 0.2,
                    end: 0.2001,
                    rank: 3,
                },
            ],
        );
        DarshanLog {
            job_start: 0.0,
            job_end: 17.5,
            nprocs: 1,
            names,
            posix: vec![r],
            posix_partial: false,
            stdio: vec![s],
            stdio_partial: true,
            dxt,
        }
    }

    #[test]
    fn roundtrip_identity() {
        let log = sample_log();
        let bytes = log.encode();
        let back = DarshanLog::decode(&bytes).unwrap();
        assert_eq!(back.job_end, 17.5);
        assert_eq!(back.nprocs, 1);
        assert_eq!(back.names, log.names);
        assert_eq!(back.posix.len(), 1);
        assert_eq!(back.posix[0].counters, log.posix[0].counters);
        assert_eq!(back.posix[0].fcounters, log.posix[0].fcounters);
        assert_eq!(back.stdio[0].counters, log.stdio[0].counters);
        assert!(back.stdio_partial);
        assert!(!back.posix_partial);
        let segs = &back.dxt[&record_id("/d/a")];
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].length, 88_000);
        assert_eq!(segs[1].length, 0, "zero-length read survives roundtrip");
        assert_eq!(segs[0].rank, 0);
        assert_eq!(segs[1].rank, 3, "rank tag survives roundtrip");
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            DarshanLog::decode(b"NOPE\x01\x00\x00\x00").unwrap_err(),
            LogError::BadMagic
        );
        assert_eq!(DarshanLog::decode(b"NO").unwrap_err(), LogError::Truncated);
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample_log().encode();
        for cut in [3, 10, 50, bytes.len() - 1] {
            let r = DarshanLog::decode(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn summary_mentions_counters() {
        let text = sample_log().summary();
        assert!(text.contains("POSIX_OPENS\t3"));
        assert!(text.contains("STDIO_WRITES\t140"));
        assert!(text.contains("/d/a"));
    }
}
