//! Darshan counter definitions and per-file records.
//!
//! Mirrors the layout of real Darshan 3.2 module records: each instrumented
//! file gets one record holding a fixed array of integer counters and a
//! fixed array of floating-point (timestamp/duration) counters. Counter
//! names and semantics follow `darshan-posix-log-format.h` /
//! `darshan-stdio-log-format.h` (trimmed to the set the paper's analyses
//! use: operation counts, byte counts, access-size histogram, sequential/
//! consecutive pattern counters, common access sizes, and timing).

use std::collections::HashMap;

/// Generates a counter enum with a stable index and name table.
macro_rules! counters {
    ($(#[$m:meta])* $vis:vis enum $name:ident { $($c:ident),+ $(,)? }) => {
        $(#[$m])*
        #[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
        #[allow(non_camel_case_types, missing_docs)]
        #[repr(usize)]
        $vis enum $name { $($c),+ }

        impl $name {
            /// Number of counters.
            pub const COUNT: usize = [$(Self::$c),+].len();
            /// All counters in index order.
            pub const ALL: [$name; Self::COUNT] = [$(Self::$c),+];

            /// The Darshan counter name.
            pub fn name(self) -> &'static str {
                match self { $(Self::$c => stringify!($c)),+ }
            }
        }
    };
}

counters! {
    /// Integer counters of the POSIX module.
    pub enum PosixCounter {
        POSIX_OPENS,
        POSIX_READS,
        POSIX_WRITES,
        POSIX_SEEKS,
        POSIX_STATS,
        POSIX_FSYNCS,
        POSIX_BYTES_READ,
        POSIX_BYTES_WRITTEN,
        POSIX_CONSEC_READS,
        POSIX_CONSEC_WRITES,
        POSIX_SEQ_READS,
        POSIX_SEQ_WRITES,
        POSIX_RW_SWITCHES,
        POSIX_MAX_BYTE_READ,
        POSIX_MAX_BYTE_WRITTEN,
        POSIX_SIZE_READ_0_100,
        POSIX_SIZE_READ_100_1K,
        POSIX_SIZE_READ_1K_10K,
        POSIX_SIZE_READ_10K_100K,
        POSIX_SIZE_READ_100K_1M,
        POSIX_SIZE_READ_1M_4M,
        POSIX_SIZE_READ_4M_10M,
        POSIX_SIZE_READ_10M_100M,
        POSIX_SIZE_READ_100M_1G,
        POSIX_SIZE_READ_1G_PLUS,
        POSIX_SIZE_WRITE_0_100,
        POSIX_SIZE_WRITE_100_1K,
        POSIX_SIZE_WRITE_1K_10K,
        POSIX_SIZE_WRITE_10K_100K,
        POSIX_SIZE_WRITE_100K_1M,
        POSIX_SIZE_WRITE_1M_4M,
        POSIX_SIZE_WRITE_4M_10M,
        POSIX_SIZE_WRITE_10M_100M,
        POSIX_SIZE_WRITE_100M_1G,
        POSIX_SIZE_WRITE_1G_PLUS,
        POSIX_ACCESS1_ACCESS,
        POSIX_ACCESS2_ACCESS,
        POSIX_ACCESS3_ACCESS,
        POSIX_ACCESS4_ACCESS,
        POSIX_ACCESS1_COUNT,
        POSIX_ACCESS2_COUNT,
        POSIX_ACCESS3_COUNT,
        POSIX_ACCESS4_COUNT,
        POSIX_MMAPS,
        // tf-Darshan extension (paper §VII: Darshan "requires extensions
        // to further capture fine-grained interactions, e.g., msync").
        POSIX_MSYNCS,
    }
}

counters! {
    /// Floating-point counters of the POSIX module (seconds relative to
    /// Darshan initialization, or durations).
    pub enum PosixFCounter {
        POSIX_F_OPEN_START_TIMESTAMP,
        POSIX_F_OPEN_END_TIMESTAMP,
        POSIX_F_READ_START_TIMESTAMP,
        POSIX_F_READ_END_TIMESTAMP,
        POSIX_F_WRITE_START_TIMESTAMP,
        POSIX_F_WRITE_END_TIMESTAMP,
        POSIX_F_CLOSE_START_TIMESTAMP,
        POSIX_F_CLOSE_END_TIMESTAMP,
        POSIX_F_READ_TIME,
        POSIX_F_WRITE_TIME,
        POSIX_F_META_TIME,
        POSIX_F_MAX_READ_TIME,
        POSIX_F_MAX_WRITE_TIME,
    }
}

counters! {
    /// Integer counters of the STDIO module.
    pub enum StdioCounter {
        STDIO_OPENS,
        STDIO_READS,
        STDIO_WRITES,
        STDIO_SEEKS,
        STDIO_FLUSHES,
        STDIO_BYTES_READ,
        STDIO_BYTES_WRITTEN,
        STDIO_MAX_BYTE_READ,
        STDIO_MAX_BYTE_WRITTEN,
    }
}

counters! {
    /// Floating-point counters of the STDIO module.
    pub enum StdioFCounter {
        STDIO_F_OPEN_START_TIMESTAMP,
        STDIO_F_OPEN_END_TIMESTAMP,
        STDIO_F_CLOSE_START_TIMESTAMP,
        STDIO_F_CLOSE_END_TIMESTAMP,
        STDIO_F_READ_TIME,
        STDIO_F_WRITE_TIME,
        STDIO_F_META_TIME,
    }
}

/// Buckets of the Darshan access-size histogram, shared by read and write.
/// Returns the bucket index 0..10 for a transfer of `size` bytes.
pub fn size_bucket(size: u64) -> usize {
    match size {
        0..=100 => 0,
        101..=1024 => 1,
        1025..=10_240 => 2,
        10_241..=102_400 => 3,
        102_401..=1_048_576 => 4,
        1_048_577..=4_194_304 => 5,
        4_194_305..=10_485_760 => 6,
        10_485_761..=104_857_600 => 7,
        104_857_601..=1_073_741_824 => 8,
        _ => 9,
    }
}

/// Human-readable labels of the ten size buckets.
pub const SIZE_BUCKET_LABELS: [&str; 10] = [
    "0-100", "100-1K", "1K-10K", "10K-100K", "100K-1M", "1M-4M", "4M-10M", "10M-100M", "100M-1G",
    "1G+",
];

/// Tracks the most common access sizes of a record (Darshan's
/// `darshan_common_val_counter`, generalized). Bounded memory: at most
/// `MAX_TRACKED` distinct sizes; the rarest entry is evicted on overflow.
#[derive(Clone, Debug, Default)]
pub struct CommonValues {
    counts: HashMap<u64, u64>,
}

impl CommonValues {
    const MAX_TRACKED: usize = 64;

    /// Record one occurrence of `value`.
    pub fn add(&mut self, value: u64) {
        self.add_n(value, 1);
    }

    /// Record `n` occurrences of `value` at once. Equivalent to calling
    /// [`CommonValues::add`] `n` times in a row: a run of same-value adds
    /// triggers at most one eviction (on the insert), and the eviction
    /// decision depends only on the counts tracked *before* the run — so
    /// the reduction paths can fold per-rank `(access, count)` slots
    /// without an O(count) loop and still land on the identical tracker
    /// state.
    pub fn add_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(c) = self.counts.get_mut(&value) {
            *c += n;
            return;
        }
        if self.counts.len() >= Self::MAX_TRACKED {
            // Evict the rarest tracked value (ties: largest value goes).
            if let Some((&evict, _)) = self
                .counts
                .iter()
                .min_by_key(|(v, c)| (**c, std::cmp::Reverse(**v)))
            {
                self.counts.remove(&evict);
            }
        }
        self.counts.insert(value, n);
    }

    /// Top `n` (value, count) pairs, most frequent first (ties: smaller
    /// value first, for determinism).
    pub fn top(&self, n: usize) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.counts.iter().map(|(a, b)| (*a, *b)).collect();
        v.sort_by_key(|(val, cnt)| (std::cmp::Reverse(*cnt), *val));
        v.truncate(n);
        v
    }
}

/// A POSIX-module file record.
#[derive(Clone, Debug)]
pub struct PosixRecord {
    /// Darshan record id (hash of the file path).
    pub rec_id: u64,
    /// Integer counters.
    pub counters: [i64; PosixCounter::COUNT],
    /// Float counters.
    pub fcounters: [f64; PosixFCounter::COUNT],
    /// Access-size tracker (folded into ACCESS1..4 on reduction).
    pub access_sizes: CommonValues,
    /// End offset of the last read (pattern detection).
    pub last_read_end: u64,
    /// End offset of the last write.
    pub last_write_end: u64,
    /// Last operation was a write (for RW_SWITCHES).
    pub last_was_write: Option<bool>,
    /// Runtime bookkeeping: the extraction epoch during which this record
    /// was last mutated. Not part of the Darshan log format (the encoder
    /// serializes explicit fields only); `DarshanRuntime::snapshot` uses it
    /// to copy only records dirtied since the previous extraction.
    pub dirty_epoch: u64,
}

impl PosixRecord {
    /// Fresh record for `rec_id`.
    pub fn new(rec_id: u64) -> Self {
        PosixRecord {
            rec_id,
            counters: [0; PosixCounter::COUNT],
            fcounters: [0.0; PosixFCounter::COUNT],
            access_sizes: CommonValues::default(),
            last_read_end: 0,
            last_write_end: 0,
            last_was_write: None,
            dirty_epoch: 0,
        }
    }

    /// Read an integer counter.
    pub fn get(&self, c: PosixCounter) -> i64 {
        self.counters[c as usize]
    }

    /// Mutate an integer counter.
    pub fn get_mut(&mut self, c: PosixCounter) -> &mut i64 {
        &mut self.counters[c as usize]
    }

    /// Read a float counter.
    pub fn fget(&self, c: PosixFCounter) -> f64 {
        self.fcounters[c as usize]
    }

    /// Mutate a float counter.
    pub fn fget_mut(&mut self, c: PosixFCounter) -> &mut f64 {
        &mut self.fcounters[c as usize]
    }

    /// Fold the access-size tracker into the ACCESS1..4 counters (done at
    /// shutdown/snapshot, as real Darshan does in its reduction step).
    pub fn reduce_common_accesses(&mut self) {
        use PosixCounter::*;
        let top = self.access_sizes.top(4);
        let slots = [
            (POSIX_ACCESS1_ACCESS, POSIX_ACCESS1_COUNT),
            (POSIX_ACCESS2_ACCESS, POSIX_ACCESS2_COUNT),
            (POSIX_ACCESS3_ACCESS, POSIX_ACCESS3_COUNT),
            (POSIX_ACCESS4_ACCESS, POSIX_ACCESS4_COUNT),
        ];
        for (i, (a, c)) in slots.into_iter().enumerate() {
            if let Some((val, cnt)) = top.get(i) {
                *self.get_mut(a) = *val as i64;
                *self.get_mut(c) = *cnt as i64;
            } else {
                *self.get_mut(a) = 0;
                *self.get_mut(c) = 0;
            }
        }
    }
}

/// An STDIO-module file record.
#[derive(Clone, Debug)]
pub struct StdioRecord {
    /// Darshan record id (hash of the file path).
    pub rec_id: u64,
    /// Integer counters.
    pub counters: [i64; StdioCounter::COUNT],
    /// Float counters.
    pub fcounters: [f64; StdioFCounter::COUNT],
    /// Runtime bookkeeping: extraction epoch of the last mutation (see
    /// [`PosixRecord::dirty_epoch`]).
    pub dirty_epoch: u64,
}

impl StdioRecord {
    /// Fresh record for `rec_id`.
    pub fn new(rec_id: u64) -> Self {
        StdioRecord {
            rec_id,
            counters: [0; StdioCounter::COUNT],
            fcounters: [0.0; StdioFCounter::COUNT],
            dirty_epoch: 0,
        }
    }

    /// Read an integer counter.
    pub fn get(&self, c: StdioCounter) -> i64 {
        self.counters[c as usize]
    }

    /// Mutate an integer counter.
    pub fn get_mut(&mut self, c: StdioCounter) -> &mut i64 {
        &mut self.counters[c as usize]
    }

    /// Read a float counter.
    pub fn fget(&self, c: StdioFCounter) -> f64 {
        self.fcounters[c as usize]
    }

    /// Mutate a float counter.
    pub fn fget_mut(&mut self, c: StdioFCounter) -> &mut f64 {
        &mut self.fcounters[c as usize]
    }
}

/// Darshan's record id: a stable 64-bit hash of the path (standing in for
/// darshan-util's jenkins hash).
pub fn record_id(path: &str) -> u64 {
    // FNV-1a, then a strong mix to spread short paths.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in path.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    storage_sim::content::mix64(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_indices_are_stable_and_named() {
        assert_eq!(PosixCounter::POSIX_OPENS as usize, 0);
        assert_eq!(PosixCounter::POSIX_OPENS.name(), "POSIX_OPENS");
        assert_eq!(PosixCounter::ALL.len(), PosixCounter::COUNT);
        // Guard the record layout against accidental counter removal.
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(PosixCounter::COUNT >= 40);
        }
        assert_eq!(StdioCounter::STDIO_OPENS.name(), "STDIO_OPENS");
    }

    #[test]
    fn size_buckets_match_darshan_boundaries() {
        assert_eq!(size_bucket(0), 0);
        assert_eq!(size_bucket(100), 0);
        assert_eq!(size_bucket(101), 1);
        assert_eq!(size_bucket(1024), 1);
        assert_eq!(size_bucket(10 * 1024), 2);
        assert_eq!(size_bucket(100 * 1024), 3);
        assert_eq!(size_bucket(1 << 20), 4);
        assert_eq!(size_bucket((1 << 20) + 1), 5);
        assert_eq!(size_bucket(5 << 20), 6);
        assert_eq!(size_bucket(50 << 20), 7);
        assert_eq!(size_bucket(500 << 20), 8);
        assert_eq!(size_bucket(2 << 30), 9);
    }

    #[test]
    fn common_values_tracks_top_sizes() {
        let mut cv = CommonValues::default();
        for _ in 0..10 {
            cv.add(4096);
        }
        for _ in 0..5 {
            cv.add(100);
        }
        cv.add(77);
        let top = cv.top(4);
        assert_eq!(top[0], (4096, 10));
        assert_eq!(top[1], (100, 5));
        assert_eq!(top[2], (77, 1));
    }

    #[test]
    fn common_values_bounded_memory() {
        let mut cv = CommonValues::default();
        for v in 0..1000u64 {
            cv.add(v);
            cv.add(v); // every value twice
        }
        for _ in 0..50 {
            cv.add(424242);
        }
        assert!(cv.top(100).len() <= 64);
        assert_eq!(cv.top(1)[0].0, 424242);
    }

    #[test]
    fn reduce_common_accesses_fills_slots() {
        let mut r = PosixRecord::new(1);
        for _ in 0..3 {
            r.access_sizes.add(88_000);
        }
        r.access_sizes.add(0);
        r.reduce_common_accesses();
        assert_eq!(r.get(PosixCounter::POSIX_ACCESS1_ACCESS), 88_000);
        assert_eq!(r.get(PosixCounter::POSIX_ACCESS1_COUNT), 3);
        assert_eq!(r.get(PosixCounter::POSIX_ACCESS2_ACCESS), 0);
        assert_eq!(r.get(PosixCounter::POSIX_ACCESS2_COUNT), 1);
        assert_eq!(r.get(PosixCounter::POSIX_ACCESS3_COUNT), 0);
    }

    #[test]
    fn record_ids_differ_and_are_stable() {
        let a = record_id("/data/a");
        let b = record_id("/data/b");
        assert_ne!(a, b);
        assert_eq!(a, record_id("/data/a"));
    }
}
