//! The Darshan event-fold consumer: turns the probe spine's [`IoEvent`]
//! stream into POSIX/STDIO module records and DXT segments.
//!
//! Before the backplane existed, each wrapper updated the module records
//! inline, taking the module locks on every syscall. Now the wrappers only
//! charge instrumentation *time*; all record mutation happens here, folding
//! batches of buffered events at context-switch boundaries. Because simrt
//! runs one simulated thread at a time and every descheduling point flushes,
//! events arrive in op-completion order — the same order the inline updates
//! observed — so order-sensitive counters (SEQ/CONSEC flags, RW_SWITCHES,
//! access-size histograms) are reproduced exactly.
//!
//! The fold keeps the same descriptor bookkeeping the wrappers kept:
//!
//! * `fd → record` is seeded by observed `open`s and recovered lazily for
//!   descriptors opened before attachment (the runtime-attachment gap);
//! * `close` on an unknown descriptor records nothing (as before);
//! * any non-application origin is skipped entirely: stdio-internal POSIX
//!   traffic ([`Origin::StdioInternal`]; interposed `read` never sees
//!   `fread`'s buffer refills) and staging-daemon I/O ([`Origin::Prefetch`];
//!   a background copier does not run through the app's patched GOT);
//! * [`EventKind::MmapFault`]s are skipped: faults are not syscalls, so
//!   symbol-level instrumentation stays blind to them (paper §VII).
//!
//! Every runtime mutator this fold calls stamps the touched record with the
//! current extraction epoch, which is what lets
//! [`DarshanRuntime::snapshot`] copy only the records this fold dirtied
//! since the previous extraction (O(dirty), not O(total)).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use probe::{EventKind, IoEvent, Origin, PathId, ProbeSink};

use crate::counters::{PosixCounter as P, StdioCounter as S};
use crate::runtime::DarshanRuntime;

/// Folds probe events into a [`DarshanRuntime`]'s module buffers.
pub struct DarshanSink {
    rt: Arc<DarshanRuntime>,
    /// fd → record id (lazily recovered for pre-attachment descriptors).
    fds: Mutex<HashMap<i32, u64>>,
    /// mapping → record id (for msync attribution).
    maps: Mutex<HashMap<u64, u64>>,
    /// stream → record id.
    streams: Mutex<HashMap<u64, u64>>,
    /// interned path → POSIX record id. Filled the first time a path is
    /// seen; module records are never evicted, so a hit means the record
    /// exists and the fold can skip resolving the string and re-hashing
    /// it into a record id.
    posix_recs: Mutex<HashMap<PathId, u64>>,
    /// interned path → STDIO record id (separate module, separate map:
    /// a path opened via POSIX may have no STDIO record yet).
    stdio_recs: Mutex<HashMap<PathId, u64>>,
}

impl DarshanSink {
    /// New sink folding into `rt`.
    pub fn new(rt: Arc<DarshanRuntime>) -> Arc<Self> {
        Arc::new(DarshanSink {
            rt,
            fds: Mutex::new(HashMap::new()),
            maps: Mutex::new(HashMap::new()),
            streams: Mutex::new(HashMap::new()),
            posix_recs: Mutex::new(HashMap::new()),
            stdio_recs: Mutex::new(HashMap::new()),
        })
    }

    /// Resolve the record id of `fd`, registering lazily for descriptors
    /// opened before attachment (their `open` predates the sink, so the
    /// path travels on the event instead — à la `/proc/self/fd`).
    fn rec_of(&self, fd: i32, path: PathId) -> Option<u64> {
        if let Some(id) = self.fds.lock().get(&fd) {
            return Some(*id);
        }
        let memo = self.posix_recs.lock().get(&path).copied();
        let id = match memo {
            Some(id) => id,
            None => {
                let id = self.rt.posix_register_existing(&path.resolve())?;
                self.posix_recs.lock().insert(path, id);
                id
            }
        };
        self.fds.lock().insert(fd, id);
        Some(id)
    }

    fn fold(&self, ev: &IoEvent) {
        // Symbol-level instrumentation only sees what the *application*
        // called: libc-internal descriptor traffic, background prefetch
        // daemon I/O, and page faults never reach the wrapped symbols.
        if ev.origin != Origin::App {
            return;
        }
        let rt = &self.rt;
        let (t0, t1) = (ev.t0, ev.t1);
        match ev.kind {
            EventKind::Open { fd } => {
                let memo = self.posix_recs.lock().get(&ev.target).copied();
                let id = match memo {
                    Some(id) => {
                        rt.posix_reopen(id, t0, t1);
                        Some(id)
                    }
                    None => {
                        let id = rt.posix_open(&ev.target.resolve(), t0, t1);
                        if let Some(id) = id {
                            self.posix_recs.lock().insert(ev.target, id);
                        }
                        id
                    }
                };
                if let Some(id) = id {
                    self.fds.lock().insert(fd, id);
                }
            }
            EventKind::Close { fd } => {
                // No lazy registration on close (mirrors the old wrapper):
                // a descriptor first seen at close has nothing to record.
                if let Some(id) = self.fds.lock().remove(&fd) {
                    rt.posix_close(id, t0, t1);
                }
            }
            EventKind::Read { fd, offset, len } => {
                if let Some(id) = self.rec_of(fd, ev.target) {
                    rt.posix_read(id, offset, len, t0, t1);
                }
            }
            EventKind::Write { fd, offset, len } => {
                if let Some(id) = self.rec_of(fd, ev.target) {
                    rt.posix_write(id, offset, len, t0, t1);
                }
            }
            EventKind::Seek { fd, .. } => {
                if let Some(id) = self.rec_of(fd, ev.target) {
                    rt.posix_meta(id, P::POSIX_SEEKS, t0, t1);
                }
            }
            EventKind::Stat => {
                let memo = self.posix_recs.lock().get(&ev.target).copied();
                match memo {
                    Some(id) => rt.posix_meta(id, P::POSIX_STATS, t0, t1),
                    None => {
                        if let Some(id) = rt.posix_stat_path(&ev.target.resolve(), t0, t1) {
                            self.posix_recs.lock().insert(ev.target, id);
                        }
                    }
                }
            }
            EventKind::Fstat { fd } => {
                if let Some(id) = self.rec_of(fd, ev.target) {
                    rt.posix_meta(id, P::POSIX_STATS, t0, t1);
                }
            }
            EventKind::Fsync { fd } => {
                if let Some(id) = self.rec_of(fd, ev.target) {
                    rt.posix_meta(id, P::POSIX_FSYNCS, t0, t1);
                }
            }
            EventKind::Mmap { map, fd, .. } => {
                if let Some(id) = self.rec_of(fd, ev.target) {
                    rt.posix_meta(id, P::POSIX_MMAPS, t0, t1);
                    self.maps.lock().insert(map, id);
                }
            }
            EventKind::Msync { map } => {
                let rec = self.maps.lock().get(&map).copied();
                if let Some(id) = rec {
                    rt.posix_meta(id, P::POSIX_MSYNCS, t0, t1);
                }
            }
            EventKind::Munmap { map } => {
                self.maps.lock().remove(&map);
            }
            EventKind::MmapFault { .. } => {} // not a syscall: blind spot
            EventKind::StdioOpen { stream } => {
                let memo = self.stdio_recs.lock().get(&ev.target).copied();
                let id = match memo {
                    Some(id) => {
                        rt.stdio_reopen(id, t0, t1);
                        Some(id)
                    }
                    None => {
                        let id = rt.stdio_open(&ev.target.resolve(), t0, t1);
                        if let Some(id) = id {
                            self.stdio_recs.lock().insert(ev.target, id);
                        }
                        id
                    }
                };
                if let Some(id) = id {
                    self.streams.lock().insert(stream, id);
                }
            }
            EventKind::StdioClose { stream } => {
                if let Some(id) = self.streams.lock().remove(&stream) {
                    rt.stdio_close(id, t0, t1);
                }
            }
            EventKind::StdioRead { stream, pos, len } => {
                let rec = self.streams.lock().get(&stream).copied();
                if let Some(id) = rec {
                    rt.stdio_read(id, pos, len, t0, t1);
                }
            }
            EventKind::StdioWrite { stream, pos, len } => {
                let rec = self.streams.lock().get(&stream).copied();
                if let Some(id) = rec {
                    rt.stdio_write(id, pos, len, t0, t1);
                }
            }
            EventKind::StdioSeek { stream, .. } => {
                let rec = self.streams.lock().get(&stream).copied();
                if let Some(id) = rec {
                    rt.stdio_meta(id, S::STDIO_SEEKS, t0, t1);
                }
            }
            EventKind::StdioFlush { stream } => {
                let rec = self.streams.lock().get(&stream).copied();
                if let Some(id) = rec {
                    rt.stdio_meta(id, S::STDIO_FLUSHES, t0, t1);
                }
            }
            EventKind::TraceSpan { .. } => {} // profiler-side, not I/O
            EventKind::Sync { .. } => {}      // ordering metadata, not I/O
        }
    }
}

impl ProbeSink for DarshanSink {
    fn on_events(&self, events: &[IoEvent]) {
        for ev in events {
            self.fold(ev);
        }
    }
}
