//! Origin-tag audit: the Darshan fold must attribute **application** I/O
//! only. Both non-App origins on the probe spine — libc-internal stdio
//! descriptor traffic and the staging daemon's tier copies — represent
//! operations the app never called through the patched GOT, so
//! symbol-level instrumentation must not see them. System-wide consumers
//! (dstat) are the ones that do.

use std::sync::Arc;

use darshan_sim::{DarshanConfig, DarshanRuntime, DarshanSink, PosixCounter};
use probe::{EventKind, IoEvent, Origin, ProbeSink};
use simrt::{SimTime, TaskId};

fn ev(origin: Origin, target: &str, kind: EventKind) -> IoEvent {
    IoEvent {
        task: TaskId(1),
        pid: 0,
        t0: SimTime::ZERO,
        t1: SimTime::ZERO,
        origin,
        target: probe::intern(target),
        kind,
    }
}

fn session(rt: &Arc<DarshanRuntime>) -> Arc<DarshanSink> {
    DarshanSink::new(rt.clone())
}

fn events_for(path: &str) -> Vec<IoEvent> {
    vec![
        ev(Origin::App, path, EventKind::Open { fd: 3 }),
        ev(
            Origin::App,
            path,
            EventKind::Read {
                fd: 3,
                offset: 0,
                len: 1000,
            },
        ),
        // The daemon copies the whole file concurrently, on its own fd.
        ev(Origin::Prefetch, path, EventKind::Open { fd: 4 }),
        ev(
            Origin::Prefetch,
            path,
            EventKind::Read {
                fd: 4,
                offset: 0,
                len: 1 << 20,
            },
        ),
        ev(
            Origin::Prefetch,
            path,
            EventKind::Write {
                fd: 5,
                offset: 0,
                len: 1 << 20,
            },
        ),
        ev(Origin::Prefetch, path, EventKind::Close { fd: 4 }),
        ev(Origin::App, path, EventKind::Close { fd: 3 }),
    ]
}

/// One open+read+close triple per origin, all on distinct paths: only the
/// App triple may reach the POSIX module.
#[test]
fn non_app_origins_fold_to_nothing() {
    let rt = Arc::new(DarshanRuntime::new(DarshanConfig::default()));
    let sink = session(&rt);
    let sim = simrt::Sim::new();
    sim.spawn("fold", move || {
        let mut events = Vec::new();
        for (i, origin) in [Origin::App, Origin::StdioInternal, Origin::Prefetch]
            .into_iter()
            .enumerate()
        {
            let fd = 10 + i as i32;
            let path = format!("/data/{i}");
            events.push(ev(origin, &path, EventKind::Open { fd }));
            events.push(ev(
                origin,
                &path,
                EventKind::Read {
                    fd,
                    offset: 0,
                    len: 4096,
                },
            ));
            events.push(ev(origin, &path, EventKind::Close { fd }));
        }
        sink.on_events(&events);

        let totals = rt.totals();
        assert_eq!(totals.posix_bytes_read, 4096, "only the App read counts");
        assert_eq!(rt.posix_record_count(), 1, "one record: the App's file");
        let snap = rt.snapshot();
        assert!(snap.posix_by_path("/data/0").is_some());
        assert!(
            snap.posix_by_path("/data/1").is_none(),
            "stdio-internal descriptor traffic must not create records"
        );
        assert!(
            snap.posix_by_path("/data/2").is_none(),
            "prefetch-daemon traffic must not create records"
        );
    });
    sim.run();
}

/// Daemon traffic on the *same* file the app reads must not inflate the
/// app's counters — the exact leak the origin tag exists to prevent (a
/// background copier re-reading a file would otherwise double its
/// POSIX_BYTES_READ and corrupt the bandwidth panels).
#[test]
fn prefetch_on_same_file_does_not_inflate_app_counters() {
    let rt = Arc::new(DarshanRuntime::new(DarshanConfig::default()));
    let sink = session(&rt);
    let path = "/data/hdd/shared";
    let sim = simrt::Sim::new();
    sim.spawn("fold", move || {
        sink.on_events(&events_for(path));

        let snap = rt.snapshot();
        let rec = snap.posix_by_path(path).expect("app record exists");
        assert_eq!(rec.counters[PosixCounter::POSIX_BYTES_READ as usize], 1000);
        assert_eq!(rec.counters[PosixCounter::POSIX_BYTES_WRITTEN as usize], 0);
        assert_eq!(rec.counters[PosixCounter::POSIX_OPENS as usize], 1);
        let totals = rt.totals();
        assert_eq!(totals.posix_bytes_read, 1000);
    });
    sim.run();
}
