//! Schedule-space model checking for simrt workloads.
//!
//! A single simulated run exercises exactly one interleaving — the FIFO
//! schedule — so order-dependent bugs (a racy write guarded by a flag the
//! FIFO order happens to set first, a lock-ordering deadlock only one
//! acquisition order triggers) pass the sanitizer silently. This crate
//! turns simrt's scheduler into a controllable decision oracle and runs
//! the *same* workload under many schedules, collecting `iosan` verdicts
//! on every one:
//!
//! - [`check`] explores schedules by bounded DFS over decision points
//!   (default) or by seeded random walk, deduplicates findings across
//!   schedules by schedule-independent fingerprint, and reports schedule /
//!   pruning / budget accounting in an [`ExploreReport`].
//! - Every distinct finding carries a [`ReplayToken`] — the decision trace
//!   as a one-line string such as `rt1:0.1` — that [`replay`] turns back
//!   into the exact failing schedule, after greedy shrinking to the fewest
//!   non-FIFO choices that still reproduce the finding.
//! - Happens-before-based partial-order reduction (see [`mod@crate::por`]
//!   internals and DESIGN.md §3.9) skips swaps that provably (at block
//!   granularity) cannot change what the sanitizer observes.
//!
//! The workload is a closure `Fn(&Sim) -> ProbeBus`: set up the simulation
//! (spawn tasks, mount filesystems, create processes) and hand back the
//! probe bus the checker should observe. It is called once per schedule
//! against a fresh `Sim`, so it must be self-contained and deterministic
//! apart from scheduling.

#![warn(missing_docs)]

mod policy;
mod por;
mod token;

pub use token::{ParseTokenError, ReplayToken, TOKEN_VERSION};

use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use iosan::{Category, Finding, HbIndex, IoSanitizer, SanitizerReport, Severity};
use parking_lot::Mutex;
use probe::{EventKind, IoEvent, Origin, ProbeBus, ProbeSink};
use simrt::{Sim, SimTime, SyncOp};
use tfdarshan::report::ExploreSummary;

use policy::{DecisionRec, RecordingPolicy, Tail};

/// A workload under test: set up tasks on the fresh `Sim`, return the
/// probe bus to observe. Invoked once per explored schedule.
pub type Workload<'a> = dyn Fn(&Sim) -> ProbeBus + 'a;

/// How to pick schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Bounded depth-first search over the decision tree: each executed
    /// schedule is a forced prefix completed FIFO; alternatives at every
    /// decision point at or past the prefix become new branches, subject
    /// to the preemption bound and partial-order reduction.
    Dfs,
    /// Seeded pseudo-random walk: every schedule resolves all decisions
    /// with a splitmix64 stream derived from `seed` and the schedule
    /// index. No bound, no pruning — a cheap smoke over deep interleavings
    /// the bounded DFS cannot reach.
    Random {
        /// Base seed; schedule `i` uses a stream derived from `(seed, i)`.
        seed: u64,
    },
}

/// Exploration parameters. `Default` is the CI-budget configuration:
/// DFS, 256 schedules, preemption bound 2, POR on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Schedule selection strategy.
    pub strategy: Strategy,
    /// Hard cap on executed schedules (shrink replays not counted).
    pub max_schedules: usize,
    /// DFS only: maximum non-FIFO choices per schedule.
    pub preemption_bound: u32,
    /// Enable happens-before partial-order reduction (DFS only).
    pub por: bool,
    /// Cap on extra schedule executions spent shrinking each finding's
    /// replay token.
    pub shrink_budget: usize,
    /// Safety cap on recorded decisions per schedule; past it the policy
    /// answers FIFO (guards against schedules that diverge under forced
    /// reordering).
    pub max_decisions: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            strategy: Strategy::Dfs,
            max_schedules: 256,
            preemption_bound: 2,
            por: true,
            shrink_budget: 64,
            max_decisions: 4096,
        }
    }
}

/// One deduplicated finding with its reproducer.
#[derive(Clone, Debug)]
pub struct ExploreFinding {
    /// The sanitizer finding, as produced by the first schedule that hit it.
    pub finding: Finding,
    /// Schedule-independent fingerprint (deduplication key).
    pub fingerprint: u64,
    /// Number of executed schedules on which this fingerprint fired.
    pub schedules_hit: u64,
    /// Shrunk replay token reproducing the finding ([`replay`] accepts it).
    pub token: ReplayToken,
}

/// What [`check`] returns: every distinct finding plus full accounting of
/// the exploration.
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    /// Schedules executed (shrink replays excluded).
    pub schedules_run: u64,
    /// DFS branches skipped by partial-order reduction.
    pub pruned_by_por: u64,
    /// DFS branches skipped by the preemption bound.
    pub pruned_by_bound: u64,
    /// Decision points across all executed schedules.
    pub decision_points: u64,
    /// Maximum non-FIFO picks any executed schedule used.
    pub max_preemptions_used: u64,
    /// Executed schedules on which at least one finding fired.
    pub schedules_with_findings: u64,
    /// Extra schedule executions spent shrinking replay tokens.
    pub shrink_runs: u64,
    /// True when `max_schedules` ran out with unexplored branches left.
    pub budget_exhausted: bool,
    /// Distinct findings, most severe first.
    pub findings: Vec<ExploreFinding>,
}

impl ExploreReport {
    /// Total schedules skipped (POR + preemption bound).
    pub fn schedules_pruned(&self) -> u64 {
        self.pruned_by_por + self.pruned_by_bound
    }

    /// True when no schedule produced any finding.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The summary embedded in [`tfdarshan::report::TfDarshanReport`].
    pub fn summary(&self) -> ExploreSummary {
        let mut categories: Vec<String> = self
            .findings
            .iter()
            .map(|f| f.finding.category.name().to_string())
            .collect();
        categories.sort();
        categories.dedup();
        ExploreSummary {
            schedules_run: self.schedules_run,
            schedules_pruned: self.schedules_pruned(),
            decision_points: self.decision_points,
            max_preemptions_used: self.max_preemptions_used,
            distinct_findings: self.findings.len() as u64,
            schedules_with_findings: self.schedules_with_findings,
            budget_exhausted: self.budget_exhausted,
            categories,
        }
    }

    /// Copy the exploration counters into a scheduler-stats record so the
    /// ascii overview and the JSON report share one source of truth.
    pub fn annotate_stats(&self, stats: &mut simrt::SchedStats) {
        stats.decision_points = self.decision_points;
        stats.schedules_run = self.schedules_run;
        stats.schedules_pruned = self.schedules_pruned();
        stats.max_preemptions_used = self.max_preemptions_used;
    }

    /// Human-readable summary block.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "schedules: {} run | {} pruned ({} por, {} bound) | {} decision point(s) | max preemptions {}{}\n",
            self.schedules_run,
            self.schedules_pruned(),
            self.pruned_by_por,
            self.pruned_by_bound,
            self.decision_points,
            self.max_preemptions_used,
            if self.budget_exhausted {
                " | budget exhausted"
            } else {
                ""
            },
        ));
        if self.findings.is_empty() {
            out.push_str("verdict: clean on every explored schedule\n");
        } else {
            out.push_str(&format!(
                "verdict: {} distinct finding(s) on {} schedule(s)\n",
                self.findings.len(),
                self.schedules_with_findings
            ));
            for f in &self.findings {
                out.push_str(&format!(
                    "  [{}] {}: {} (hit {} schedule(s), replay {})\n",
                    match f.finding.severity {
                        Severity::Error => "error",
                        Severity::Warning => "warn",
                        Severity::Info => "info",
                    },
                    f.finding.category.name(),
                    f.finding.message,
                    f.schedules_hit,
                    f.token,
                ));
            }
        }
        out
    }
}

/// Everything one replayed schedule produced.
pub struct ReplayOutcome {
    /// Raw probe event stream, in delivery order.
    pub events: Vec<IoEvent>,
    /// Canonicalized stream for cross-replay comparison ([`canonicalize`]).
    pub canonical_events: Vec<CanonicalEvent>,
    /// The sanitizer's verdicts for this schedule.
    pub report: SanitizerReport,
    /// Schedule-independent fingerprints of `report.findings`, in order.
    pub fingerprints: Vec<u64>,
    /// Scheduler statistics for this single run.
    pub stats: simrt::SchedStats,
    /// The decision trace actually executed, canonicalized.
    pub token: ReplayToken,
}

/// Explore the workload's schedule space and report every distinct
/// sanitizer finding with a shrunk replay token.
pub fn check<F>(config: &ExploreConfig, workload: F) -> ExploreReport
where
    F: Fn(&Sim) -> ProbeBus,
{
    let mut report = ExploreReport::default();
    let mut findings: BTreeMap<u64, ExploreFinding> = BTreeMap::new();
    match config.strategy {
        Strategy::Dfs => dfs(config, &workload, &mut report, &mut findings),
        Strategy::Random { seed } => {
            random_walk(config, &workload, seed, &mut report, &mut findings)
        }
    }
    for ef in findings.values_mut() {
        let (tok, runs) = shrink(&workload, &ef.token, ef.fingerprint, config);
        ef.token = tok;
        report.shrink_runs += runs;
    }
    report.findings = findings.into_values().collect();
    report.findings.sort_by(|a, b| {
        severity_rank(a.finding.severity)
            .cmp(&severity_rank(b.finding.severity))
            .then_with(|| a.finding.category.name().cmp(b.finding.category.name()))
            .then_with(|| a.fingerprint.cmp(&b.fingerprint))
    });
    report
}

fn severity_rank(s: Severity) -> u8 {
    match s {
        Severity::Error => 0,
        Severity::Warning => 1,
        Severity::Info => 2,
    }
}

/// Re-execute the schedule a token describes and return everything the
/// run produced. Deterministic: the same token yields a byte-identical
/// canonical event stream and identical finding fingerprints every time.
pub fn replay<F>(workload: F, token: &ReplayToken) -> ReplayOutcome
where
    F: Fn(&Sim) -> ProbeBus,
{
    let out = run_one(
        &workload,
        token.decisions.clone(),
        Tail::Fifo,
        ExploreConfig::default().max_decisions,
    );
    ReplayOutcome {
        canonical_events: canonicalize(&out.events),
        fingerprints: out
            .report
            .findings
            .iter()
            .map(canonical_fingerprint)
            .collect(),
        token: ReplayToken::new(out.trace.iter().map(|r| r.chosen).collect()).canonical(),
        events: out.events,
        report: out.report,
        stats: out.stats,
    }
}

// ---------------------------------------------------------------------------
// Canonicalization
// ---------------------------------------------------------------------------

/// An [`IoEvent`] made comparable across runs of the same process.
///
/// Sync object ids come from a process-global counter (every `Sim` keeps
/// allocating), so two executions of the *same schedule* disagree on the
/// raw ids and on the labels that embed them (`Mutex#5 'ckpt'` vs
/// `Mutex#9 'ckpt'`). Canonicalization densely renumbers lock-domain sync
/// objects by first appearance, resolves targets to strings, and scrubs
/// `#<digits>` id suffixes out of sync labels. Everything else — task ids,
/// virtual timestamps, byte ranges — is already deterministic per schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CanonicalEvent {
    /// Raw simulated-thread id (per-`Sim`, deterministic).
    pub task: u64,
    /// Virtual time at operation entry.
    pub t0: SimTime,
    /// Virtual time at operation completion.
    pub t1: SimTime,
    /// Application-issued, stdio-internal, or prefetch.
    pub origin: Origin,
    /// Resolved target path or label, with sync-object ids scrubbed.
    pub target: String,
    /// Operation payload; lock-domain sync objects densely renumbered.
    pub kind: EventKind,
}

/// Canonicalize a stream for cross-run comparison (see [`CanonicalEvent`]).
pub fn canonicalize(events: &[IoEvent]) -> Vec<CanonicalEvent> {
    let mut obj_map: BTreeMap<u64, u64> = BTreeMap::new();
    events
        .iter()
        .map(|ev| {
            let kind = match ev.kind {
                EventKind::Sync {
                    op: op @ (SyncOp::Acquire | SyncOp::Release | SyncOp::Signal | SyncOp::Wait),
                    obj,
                } => {
                    let next = obj_map.len() as u64;
                    let dense = *obj_map.entry(obj).or_insert(next);
                    EventKind::Sync { op, obj: dense }
                }
                ref k => k.clone(),
            };
            let resolved = ev.target.resolve();
            let target = if matches!(ev.kind, EventKind::Sync { .. }) {
                scrub_ids(&resolved)
            } else {
                resolved.to_string()
            };
            CanonicalEvent {
                task: ev.task.0,
                t0: ev.t0,
                t1: ev.t1,
                origin: ev.origin,
                target,
                kind,
            }
        })
        .collect()
}

/// Drop the digits after every `#` (sync labels embed process-global ids).
fn scrub_ids(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        out.push(c);
        if c == '#' {
            while chars.peek().is_some_and(|d| d.is_ascii_digit()) {
                chars.next();
            }
        }
    }
    out
}

/// [`Finding::fingerprint`] with process-global sync ids scrubbed from the
/// message, so the same logical finding hashes identically on every
/// schedule and every replay.
pub fn canonical_fingerprint(f: &Finding) -> u64 {
    let mut c = f.clone();
    c.message = scrub_ids(&f.message);
    c.fingerprint()
}

// ---------------------------------------------------------------------------
// Per-schedule execution
// ---------------------------------------------------------------------------

/// Records every event delivered on the bus and exposes a delivery
/// watermark the recording policy samples at each decision point.
struct StreamSink {
    events: Mutex<Vec<IoEvent>>,
    delivered: Arc<AtomicUsize>,
}

impl ProbeSink for StreamSink {
    fn on_events(&self, events: &[IoEvent]) {
        let mut e = self.events.lock();
        e.extend_from_slice(events);
        self.delivered.store(e.len(), Ordering::SeqCst);
    }
}

struct ScheduleOutcome {
    trace: Vec<DecisionRec>,
    events: Vec<IoEvent>,
    report: SanitizerReport,
    stats: simrt::SchedStats,
}

fn run_one<F>(workload: &F, prefix: Vec<u32>, tail: Tail, max_decisions: usize) -> ScheduleOutcome
where
    F: Fn(&Sim) -> ProbeBus,
{
    // Drop anything a previous schedule left in this thread's rings (an
    // abandoned deadlock schedule never reaches its flush points).
    probe::discard_thread_rings();
    let sim = Sim::new();
    let delivered = Arc::new(AtomicUsize::new(0));
    let policy = RecordingPolicy::new(prefix, tail, delivered.clone(), max_decisions);
    sim.set_schedule_policy(policy.clone());
    let bus = workload(&sim);
    let sink = Arc::new(StreamSink {
        events: Mutex::new(Vec::new()),
        delivered,
    });
    let sink_id = bus.register(sink.clone());
    let handle = IoSanitizer::install(&sim, &bus);
    let panicked = catch_unwind(AssertUnwindSafe(|| sim.run())).err();
    let stats = sim.stats();
    let mut report = handle.finalize();
    bus.unregister(sink_id);
    sim.clear_schedule_policy();
    if let Some(payload) = panicked {
        // `.as_ref()` is load-bearing: `&payload` would coerce the Box
        // itself to `&dyn Any` and every downcast would miss.
        let msg = panic_message(payload.as_ref());
        if msg.contains("virtual-time deadlock") {
            // The scheduler's panic is this schedule's verdict: a reachable
            // deadlock, reported and replayable like any sanitizer finding.
            report.findings.push(Finding {
                severity: Severity::Error,
                category: Category::Deadlock,
                message: msg,
                file: String::new(),
                tasks: vec![],
                segments: vec![],
                witnesses: vec![],
            });
        } else {
            resume_unwind(payload);
        }
    }
    let events = sink.events.lock().clone();
    ScheduleOutcome {
        trace: policy.take_trace(),
        events,
        report,
        stats,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Exploration strategies
// ---------------------------------------------------------------------------

fn record_outcome(
    report: &mut ExploreReport,
    findings: &mut BTreeMap<u64, ExploreFinding>,
    out: &ScheduleOutcome,
) {
    report.schedules_run += 1;
    report.decision_points += out.stats.decision_points;
    let token = ReplayToken::new(out.trace.iter().map(|r| r.chosen).collect()).canonical();
    report.max_preemptions_used = report
        .max_preemptions_used
        .max(u64::from(token.preemptions()));
    if !out.report.findings.is_empty() {
        report.schedules_with_findings += 1;
    }
    for f in &out.report.findings {
        let fp = canonical_fingerprint(f);
        findings
            .entry(fp)
            .and_modify(|e| e.schedules_hit += 1)
            .or_insert_with(|| ExploreFinding {
                finding: f.clone(),
                fingerprint: fp,
                schedules_hit: 1,
                token: token.clone(),
            });
    }
}

fn dfs<F>(
    config: &ExploreConfig,
    workload: &F,
    report: &mut ExploreReport,
    findings: &mut BTreeMap<u64, ExploreFinding>,
) where
    F: Fn(&Sim) -> ProbeBus,
{
    let mut stack: Vec<Vec<u32>> = vec![Vec::new()];
    while let Some(prefix) = stack.pop() {
        if report.schedules_run as usize >= config.max_schedules {
            report.budget_exhausted = true;
            return;
        }
        let depth0 = prefix.len();
        let out = run_one(workload, prefix, Tail::Fifo, config.max_decisions);
        record_outcome(report, findings, &out);
        let hb = HbIndex::from_events(&out.events);
        let base: Vec<u32> = out.trace.iter().map(|r| r.chosen).collect();
        // Expand alternatives only at decision points at or past this
        // node's own prefix: shallower alternatives are the parent's
        // siblings and were queued when the parent expanded.
        for (d, rec) in out.trace.iter().enumerate().skip(depth0) {
            for alt in 0..rec.tasks.len() {
                if alt == rec.chosen as usize {
                    continue;
                }
                let mut child = base[..d].to_vec();
                child.push(alt as u32);
                let preemptions = child.iter().filter(|&&x| x != 0).count() as u32;
                if preemptions > config.preemption_bound {
                    report.pruned_by_bound += 1;
                    continue;
                }
                if config.por && por::can_prune(&out.events, &hb, rec, alt) {
                    report.pruned_by_por += 1;
                    continue;
                }
                stack.push(child);
            }
        }
    }
}

fn random_walk<F>(
    config: &ExploreConfig,
    workload: &F,
    seed: u64,
    report: &mut ExploreReport,
    findings: &mut BTreeMap<u64, ExploreFinding>,
) where
    F: Fn(&Sim) -> ProbeBus,
{
    for i in 0..config.max_schedules {
        // Derive a well-mixed per-schedule seed from (seed, i).
        let mut s = seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        s = (s ^ (s >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        let out = run_one(
            workload,
            Vec::new(),
            Tail::Random(Mutex::new(s)),
            config.max_decisions,
        );
        record_outcome(report, findings, &out);
    }
}

fn shrink<F>(
    workload: &F,
    token: &ReplayToken,
    fingerprint: u64,
    config: &ExploreConfig,
) -> (ReplayToken, u64)
where
    F: Fn(&Sim) -> ProbeBus,
{
    let mut best = token.canonical();
    let mut runs = 0u64;
    let mut budget = config.shrink_budget as u64;
    // Greedily zero non-FIFO choices from the end; each accepted zeroing
    // restarts the scan (earlier choices may become removable).
    let mut progress = true;
    while progress && budget > 0 {
        progress = false;
        for i in (0..best.decisions.len()).rev() {
            if best.decisions[i] == 0 {
                continue;
            }
            if budget == 0 {
                break;
            }
            let mut cand = best.clone();
            cand.decisions[i] = 0;
            let cand = cand.canonical();
            budget -= 1;
            runs += 1;
            let out = run_one(
                workload,
                cand.decisions.clone(),
                Tail::Fifo,
                config.max_decisions,
            );
            if out
                .report
                .findings
                .iter()
                .any(|f| canonical_fingerprint(f) == fingerprint)
            {
                best = cand;
                progress = true;
                break;
            }
        }
    }
    (best, runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use probe::intern;
    use simrt::TaskId;
    use std::sync::Arc;
    use std::time::Duration;

    /// Emit a manual probe event from inside a running simulated task.
    fn emit(bus: &ProbeBus, path: &str, kind: EventKind) {
        let now = simrt::now();
        bus.emit(IoEvent {
            task: simrt::current_task(),
            pid: 0,
            t0: now,
            t1: now,
            origin: Origin::App,
            target: intern(path),
            kind,
        });
    }

    fn write_kind(offset: u64, len: u64) -> EventKind {
        EventKind::Write { fd: 3, offset, len }
    }

    /// Single task, no contention: exactly one schedule, no findings.
    fn solo_workload(sim: &Sim) -> ProbeBus {
        let bus = ProbeBus::new();
        let b = bus.clone();
        sim.spawn("solo", move || {
            simrt::sleep(Duration::from_millis(1));
            emit(&b, "/data/a", write_kind(0, 64));
            simrt::sleep(Duration::from_millis(1));
            emit(&b, "/data/a", write_kind(64, 64));
        });
        bus
    }

    /// The order-dependent bug the FIFO schedule cannot see: task `a`
    /// publishes a flag under a lock after writing; task `b` only issues
    /// its unlocked conflicting write when the flag is still unset, which
    /// FIFO order never observes.
    fn racy_workload(sim: &Sim) -> ProbeBus {
        let bus = ProbeBus::new();
        let ready = Arc::new(simrt::sync::Mutex::named(false, Some("ready")));
        {
            let b = bus.clone();
            let ready = ready.clone();
            sim.spawn("a", move || {
                simrt::sleep(Duration::from_millis(1));
                let mut g = ready.lock();
                emit(&b, "/data/shared", write_kind(0, 100));
                *g = true;
            });
        }
        {
            let b = bus.clone();
            sim.spawn("b", move || {
                simrt::sleep(Duration::from_millis(1));
                let published = *ready.lock();
                if published {
                    emit(
                        &b,
                        "/data/shared",
                        EventKind::Read {
                            fd: 3,
                            offset: 0,
                            len: 100,
                        },
                    );
                } else {
                    emit(&b, "/data/shared", write_kind(0, 100));
                }
            });
        }
        bus
    }

    #[test]
    fn solo_workload_runs_one_schedule_clean() {
        let report = check(&ExploreConfig::default(), solo_workload);
        assert_eq!(report.schedules_run, 1, "{report:?}");
        assert_eq!(report.decision_points, 0);
        assert!(report.is_clean());
        assert!(!report.budget_exhausted);
    }

    #[test]
    fn fifo_misses_the_race_but_dfs_finds_it() {
        // Single schedule (what a plain sanitized run sees): clean.
        let fifo = replay(racy_workload, &ReplayToken::fifo());
        assert!(
            fifo.report.findings.is_empty(),
            "FIFO should be clean: {:?}",
            fifo.report.findings
        );

        let report = check(&ExploreConfig::default(), racy_workload);
        assert!(report.schedules_run > 1);
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.finding.category == Category::DataRace),
            "exploration should surface the data race: {report:?}"
        );
        let race = report
            .findings
            .iter()
            .find(|f| f.finding.category == Category::DataRace)
            .unwrap();
        assert!(race.token.preemptions() >= 1, "token: {}", race.token);

        // The shrunk token reproduces the finding, deterministically.
        let r1 = replay(racy_workload, &race.token);
        let r2 = replay(racy_workload, &race.token);
        assert!(r1.fingerprints.contains(&race.fingerprint));
        assert_eq!(r1.canonical_events, r2.canonical_events);
        assert_eq!(r1.fingerprints, r2.fingerprints);
    }

    #[test]
    fn random_walk_also_finds_the_race() {
        let config = ExploreConfig {
            strategy: Strategy::Random { seed: 7 },
            max_schedules: 16,
            ..ExploreConfig::default()
        };
        let report = check(&config, racy_workload);
        assert_eq!(report.schedules_run, 16);
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.finding.category == Category::DataRace),
            "{report:?}"
        );
    }

    #[test]
    fn deadlock_schedule_becomes_a_finding() {
        // Classic AB/BA lock order: FIFO runs to completion, one
        // interleaving deadlocks. The scheduler panic is converted into a
        // replayable Deadlock finding.
        fn deadlock_workload(sim: &Sim) -> ProbeBus {
            let bus = ProbeBus::new();
            let l1 = Arc::new(simrt::sync::Mutex::named((), Some("l1")));
            let l2 = Arc::new(simrt::sync::Mutex::named((), Some("l2")));
            {
                let (l1, l2) = (l1.clone(), l2.clone());
                sim.spawn("ab", move || {
                    simrt::sleep(Duration::from_millis(1));
                    let _a = l1.lock();
                    simrt::sleep(Duration::from_millis(1));
                    let _b = l2.lock();
                });
            }
            sim.spawn("ba", move || {
                simrt::sleep(Duration::from_millis(1));
                let _b = l2.lock();
                simrt::sleep(Duration::from_millis(1));
                let _a = l1.lock();
            });
            bus
        }
        let report = check(&ExploreConfig::default(), deadlock_workload);
        let dl = report
            .findings
            .iter()
            .find(|f| f.finding.category == Category::Deadlock);
        assert!(dl.is_some(), "{report:?}");
        let dl = dl.unwrap();
        let r = replay(deadlock_workload, &dl.token);
        assert!(r.fingerprints.contains(&dl.fingerprint));
    }

    #[test]
    fn summary_and_ascii_agree_with_report() {
        let report = check(&ExploreConfig::default(), racy_workload);
        let s = report.summary();
        assert_eq!(s.schedules_run, report.schedules_run);
        assert_eq!(s.distinct_findings, report.findings.len() as u64);
        assert!(s.categories.contains(&"data-race".to_string()));
        let text = report.render_ascii();
        assert!(text.contains("schedules:"));
        assert!(text.contains("data-race"));
        let mut stats = simrt::SchedStats::default();
        report.annotate_stats(&mut stats);
        assert_eq!(stats.schedules_run, report.schedules_run);
    }

    #[test]
    fn canonicalize_scrubs_global_sync_ids() {
        let mk = |obj: u64, label: &str| IoEvent {
            task: TaskId(1),
            pid: 0,
            t0: SimTime::ZERO,
            t1: SimTime::ZERO,
            origin: Origin::App,
            target: intern(label),
            kind: EventKind::Sync {
                op: SyncOp::Acquire,
                obj,
            },
        };
        let a = canonicalize(&[mk(41, "Mutex#41 'ready'")]);
        let b = canonicalize(&[mk(97, "Mutex#97 'ready'")]);
        assert_eq!(a, b);
        assert_eq!(a[0].target, "Mutex# 'ready'");
        assert!(matches!(a[0].kind, EventKind::Sync { obj: 0, .. }));
    }
}
