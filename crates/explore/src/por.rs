//! Sleep-set-style partial-order reduction over the probe event stream.
//!
//! When the DFS considers swapping the task chosen at a decision point for
//! an alternative candidate, it asks: could that swap possibly change what
//! the sanitizer sees? The answer is approximated at *block* granularity —
//! each candidate's next maximal run of consecutive events in the FIFO
//! execution stands in for "what it would do next" — and a swap is pruned
//! when the two blocks are independent (no conflicting operation pair) or
//! when every conflicting pair is already happens-before ordered by edges
//! that do not pass through the blocks themselves.
//!
//! Two deliberate conservatisms keep the reduction from hiding bugs:
//!
//! - A sync operation on an object that appears in *both* blocks (a lock
//!   both candidates are about to take, a channel they both touch) always
//!   forces exploration: reversing a lock-handoff is exactly the kind of
//!   coarse interleaving change the checker exists to try, and the HB edges
//!   the handoff itself creates must not be used to justify skipping its
//!   reversal.
//! - Conflicts are detected on operation *targets and byte ranges*, not on
//!   sanitizer verdicts, so a swap is kept whenever the two candidates
//!   touch overlapping state at all.
//!
//! The remaining approximation (a candidate with no further events prunes;
//! blocks only look one run ahead) is documented in DESIGN.md §3.9 — it
//! trades exhaustiveness the preemption bound already gave up for schedule
//! counts that fit a CI budget.

use iosan::HbIndex;
use probe::{EventKind, IoEvent};
use simrt::SyncOp;

use crate::policy::DecisionRec;

/// Byte range of a data access: `(offset, len, write)`. Stdio positions
/// share the namespace of file offsets on the same target, which is the
/// conservative direction (more perceived overlap, fewer prunes).
fn data_range(kind: &EventKind) -> Option<(u64, u64, bool)> {
    match *kind {
        EventKind::Read { offset, len, .. } => Some((offset, len, false)),
        EventKind::Write { offset, len, .. } => Some((offset, len, true)),
        EventKind::MmapFault {
            offset, len, write, ..
        } => Some((offset, len, write)),
        EventKind::StdioRead { pos, len, .. } => Some((pos, len, false)),
        EventKind::StdioWrite { pos, len, .. } => Some((pos, len, true)),
        _ => None,
    }
}

/// The sync object of a lock/channel-domain sync op. Spawn/join/finish
/// edges are thread lifecycle, not contended state — they never conflict.
fn sync_obj(ev: &IoEvent) -> Option<u64> {
    match ev.kind {
        EventKind::Sync {
            op: SyncOp::Acquire | SyncOp::Release | SyncOp::Signal | SyncOp::Wait,
            obj,
        } => Some(obj),
        _ => None,
    }
}

/// Would reordering `a` and `b` be observable? (Same-task pairs are never
/// asked about — callers compare blocks of *different* candidates.)
pub(crate) fn conflicts(a: &IoEvent, b: &IoEvent) -> bool {
    match (sync_obj(a), sync_obj(b)) {
        (Some(x), Some(y)) => return x == y,
        (Some(_), None) | (None, Some(_)) => return false,
        (None, None) => {}
    }
    // Lifecycle sync edges and profiler annotations commute with everything.
    if matches!(a.kind, EventKind::Sync { .. } | EventKind::TraceSpan { .. })
        || matches!(b.kind, EventKind::Sync { .. } | EventKind::TraceSpan { .. })
    {
        return false;
    }
    // File operations on different targets are independent.
    if a.target != b.target {
        return false;
    }
    match (data_range(&a.kind), data_range(&b.kind)) {
        (Some((ao, al, aw)), Some((bo, bl, bw))) => {
            (aw || bw) && ao < bo.saturating_add(bl) && bo < ao.saturating_add(al)
        }
        // A metadata op (open/close/seek/fsync/stat/mmap) against anything
        // on the same file is order-sensitive.
        _ => true,
    }
}

/// First maximal run of consecutive events by `task` at stream index
/// `>= from`, as a half-open index range.
pub(crate) fn next_block(events: &[IoEvent], from: usize, task: u64) -> Option<(usize, usize)> {
    let start = (from..events.len()).find(|&i| events[i].task.0 == task)?;
    let mut end = start + 1;
    while end < events.len() && events[end].task.0 == task {
        end += 1;
    }
    Some((start, end))
}

/// Decide whether the swap "run `rec.tasks[alt]` instead of the chosen
/// candidate at this decision point" can be skipped, given the FIFO
/// execution's event stream and its happens-before index.
pub(crate) fn can_prune(events: &[IoEvent], hb: &HbIndex, rec: &DecisionRec, alt: usize) -> bool {
    let chosen_task = rec.tasks[rec.chosen as usize];
    let alt_task = rec.tasks[alt];
    let (Some((cs, ce)), Some((bs, be))) = (
        next_block(events, rec.watermark, chosen_task),
        next_block(events, rec.watermark, alt_task),
    ) else {
        // A candidate that emits nothing further cannot change the stream.
        return true;
    };
    for i in cs..ce {
        for j in bs..be {
            let (a, b) = (&events[i], &events[j]);
            if let (Some(x), Some(y)) = (sync_obj(a), sync_obj(b)) {
                if x == y {
                    // The blocks hand a sync object between them: the
                    // handoff order is itself the choice under test.
                    return false;
                }
            }
            if conflicts(a, b) && !hb.ordered_either(i, j) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use probe::{intern, IoEvent, Origin};
    use simrt::{SimTime, TaskId};

    fn ev(task: u64, path: &str, kind: EventKind) -> IoEvent {
        IoEvent {
            task: TaskId(task),
            pid: 0,
            t0: SimTime::ZERO,
            t1: SimTime::ZERO,
            origin: Origin::App,
            target: intern(path),
            kind,
        }
    }

    fn write(task: u64, path: &str, offset: u64, len: u64) -> IoEvent {
        ev(task, path, EventKind::Write { fd: 3, offset, len })
    }

    fn sync(task: u64, op: SyncOp, obj: u64) -> IoEvent {
        ev(task, "lock", EventKind::Sync { op, obj })
    }

    fn rec(tasks: &[u64], chosen: u32, watermark: usize) -> DecisionRec {
        DecisionRec {
            tasks: tasks.to_vec(),
            chosen,
            watermark,
        }
    }

    #[test]
    fn disjoint_files_prune() {
        let events = vec![write(1, "/a", 0, 10), write(2, "/b", 0, 10)];
        let hb = HbIndex::from_events(&events);
        assert!(can_prune(&events, &hb, &rec(&[1, 2], 0, 0), 1));
    }

    #[test]
    fn overlapping_unordered_writes_do_not_prune() {
        let events = vec![write(1, "/a", 0, 10), write(2, "/a", 5, 10)];
        let hb = HbIndex::from_events(&events);
        assert!(!can_prune(&events, &hb, &rec(&[1, 2], 0, 0), 1));
    }

    #[test]
    fn disjoint_ranges_on_same_file_prune() {
        let events = vec![write(1, "/a", 0, 10), write(2, "/a", 100, 10)];
        let hb = HbIndex::from_events(&events);
        assert!(can_prune(&events, &hb, &rec(&[1, 2], 0, 0), 1));
    }

    #[test]
    fn shared_lock_handoff_never_prunes() {
        // Both blocks take lock 7; the writes are HB-ordered *through that
        // very handoff*, which must not justify skipping its reversal.
        let events = vec![
            sync(1, SyncOp::Acquire, 7),
            write(1, "/a", 0, 10),
            sync(1, SyncOp::Release, 7),
            sync(2, SyncOp::Acquire, 7),
            write(2, "/a", 0, 10),
            sync(2, SyncOp::Release, 7),
        ];
        let hb = HbIndex::from_events(&events);
        assert!(!can_prune(&events, &hb, &rec(&[1, 2], 0, 0), 1));
    }

    #[test]
    fn join_ordered_conflict_prunes() {
        // Task 2 joined task 1 before its write: the conflicting pair is
        // ordered by a lifecycle edge outside any shared sync object, so
        // the swap cannot actually reverse it.
        let events = vec![
            write(1, "/a", 0, 10),
            sync(1, SyncOp::Finish, 1),
            sync(2, SyncOp::Join, 1),
            write(2, "/a", 0, 10),
        ];
        let hb = HbIndex::from_events(&events);
        assert!(can_prune(&events, &hb, &rec(&[1, 2], 0, 0), 1));
    }

    #[test]
    fn candidate_with_no_events_prunes() {
        let events = vec![write(1, "/a", 0, 10)];
        let hb = HbIndex::from_events(&events);
        assert!(can_prune(&events, &hb, &rec(&[1, 2], 0, 0), 1));
    }

    #[test]
    fn metadata_vs_data_on_same_file_conflicts() {
        let a = ev(1, "/a", EventKind::Close { fd: 3 });
        let b = write(2, "/a", 0, 10);
        assert!(conflicts(&a, &b));
        let c = ev(1, "/b", EventKind::Close { fd: 3 });
        assert!(!conflicts(&c, &b));
    }
}
