//! Replay tokens: a schedule, serialized as its decision trace.
//!
//! A schedule is fully determined by the sequence of choices made at
//! decision points (everything else in the simulation is deterministic), so
//! a `Vec<u32>` of candidate indices is a complete, machine-independent
//! reproducer. Index 0 is always the FIFO choice, which means a token is
//! implicitly padded with zeros: decisions past the end of the trace fall
//! back to FIFO, and trailing zeros can be dropped without changing the
//! schedule — the property trace shrinking exploits.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Current replay token format version.
pub const TOKEN_VERSION: u32 = 1;

/// A serializable decision trace: the one-line reproducer for a schedule.
///
/// Two equivalent wire forms exist: JSON (via serde, for embedding in
/// reports) and the compact display form `rt1:0.2.1` (version, colon,
/// dot-separated candidate indices) that fits in a commit message or CI
/// log line. `FromStr` parses the compact form back.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReplayToken {
    /// Format version ([`TOKEN_VERSION`]).
    pub version: u32,
    /// Candidate index chosen at each decision point, in order. Decisions
    /// beyond the end of the vector are FIFO (index 0).
    pub decisions: Vec<u32>,
}

impl ReplayToken {
    /// Token for the given decision trace.
    pub fn new(decisions: Vec<u32>) -> Self {
        ReplayToken {
            version: TOKEN_VERSION,
            decisions,
        }
    }

    /// The default-FIFO schedule: no forced decisions at all.
    pub fn fifo() -> Self {
        Self::new(Vec::new())
    }

    /// Number of non-FIFO choices in the trace (the "preemption" count the
    /// DFS bound limits).
    pub fn preemptions(&self) -> u32 {
        self.decisions.iter().filter(|&&d| d != 0).count() as u32
    }

    /// Canonical form: trailing zeros dropped (they are implied by the
    /// FIFO fallback past the end of the trace).
    pub fn canonical(&self) -> Self {
        let mut decisions = self.decisions.clone();
        while decisions.last() == Some(&0) {
            decisions.pop();
        }
        ReplayToken {
            version: self.version,
            decisions,
        }
    }
}

impl fmt::Display for ReplayToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rt{}:", self.version)?;
        for (i, d) in self.decisions.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Error parsing the compact `rt1:…` form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseTokenError(pub String);

impl fmt::Display for ParseTokenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid replay token: {}", self.0)
    }
}

impl std::error::Error for ParseTokenError {}

impl FromStr for ReplayToken {
    type Err = ParseTokenError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rest = s
            .strip_prefix("rt")
            .ok_or_else(|| ParseTokenError(format!("missing 'rt' prefix in {s:?}")))?;
        let (ver, body) = rest
            .split_once(':')
            .ok_or_else(|| ParseTokenError(format!("missing ':' in {s:?}")))?;
        let version: u32 = ver
            .parse()
            .map_err(|_| ParseTokenError(format!("bad version in {s:?}")))?;
        if version != TOKEN_VERSION {
            return Err(ParseTokenError(format!(
                "unsupported version {version} (expected {TOKEN_VERSION})"
            )));
        }
        let decisions = if body.is_empty() {
            Vec::new()
        } else {
            body.split('.')
                .map(|p| {
                    p.parse::<u32>()
                        .map_err(|_| ParseTokenError(format!("bad decision {p:?} in {s:?}")))
                })
                .collect::<Result<Vec<u32>, _>>()?
        };
        Ok(ReplayToken { version, decisions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        for t in [
            ReplayToken::fifo(),
            ReplayToken::new(vec![0, 2, 1]),
            ReplayToken::new(vec![7]),
        ] {
            let s = t.to_string();
            assert_eq!(s.parse::<ReplayToken>().unwrap(), t, "{s}");
        }
        assert_eq!(ReplayToken::fifo().to_string(), "rt1:");
        assert_eq!(ReplayToken::new(vec![0, 2, 1]).to_string(), "rt1:0.2.1");
    }

    #[test]
    fn json_roundtrip() {
        let t = ReplayToken::new(vec![1, 0, 3]);
        let json = serde_json::to_string(&t).unwrap();
        let back: ReplayToken = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn canonical_strips_trailing_zeros_only() {
        assert_eq!(
            ReplayToken::new(vec![0, 1, 0, 0]).canonical(),
            ReplayToken::new(vec![0, 1])
        );
        assert_eq!(
            ReplayToken::new(vec![0, 0]).canonical(),
            ReplayToken::fifo()
        );
        assert_eq!(ReplayToken::new(vec![2]).preemptions(), 1);
        assert_eq!(ReplayToken::new(vec![0, 0]).preemptions(), 0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<ReplayToken>().is_err());
        assert!("rt:".parse::<ReplayToken>().is_err());
        assert!("rt2:1".parse::<ReplayToken>().is_err());
        assert!("rt1:x".parse::<ReplayToken>().is_err());
        assert!("1.2.3".parse::<ReplayToken>().is_err());
    }
}
