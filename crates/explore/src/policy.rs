//! The controllable scheduler oracle: forces a decision prefix, fills the
//! tail (FIFO for DFS, seeded pseudo-random for random walk), and records
//! the full trace plus the event-stream watermark at every decision — the
//! raw material for backtracking and partial-order reduction.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use simrt::{DecisionPoint, SchedulePolicy};

/// One recorded decision: what the scheduler could have run, what was run,
/// and how far the global event stream had progressed when the choice was
/// made (used to locate each candidate's *next* operations for pruning).
#[derive(Clone, Debug)]
pub(crate) struct DecisionRec {
    /// Candidate task ids, in FIFO (sequence) order.
    pub tasks: Vec<u64>,
    /// Index chosen (0 = FIFO).
    pub chosen: u32,
    /// Events delivered to the recording sink before this decision.
    pub watermark: usize,
}

/// How to resolve decisions past the forced prefix.
pub(crate) enum Tail {
    /// FIFO (index 0) — used by DFS: a prefix plus FIFO tail is one
    /// canonical schedule per tree node.
    Fifo,
    /// Seeded splitmix64 stream — used by the random walk.
    Random(Mutex<u64>),
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The policy installed for every explored schedule.
pub(crate) struct RecordingPolicy {
    prefix: Vec<u32>,
    tail: Tail,
    /// Shared with the recording sink: events delivered so far.
    delivered: Arc<AtomicUsize>,
    trace: Mutex<Vec<DecisionRec>>,
    /// Hard cap on recorded decisions (runaway-schedule guard); past it
    /// the policy answers FIFO and stops recording.
    max_decisions: usize,
}

impl RecordingPolicy {
    pub(crate) fn new(
        prefix: Vec<u32>,
        tail: Tail,
        delivered: Arc<AtomicUsize>,
        max_decisions: usize,
    ) -> Arc<Self> {
        Arc::new(RecordingPolicy {
            prefix,
            tail,
            delivered,
            trace: Mutex::new(Vec::new()),
            max_decisions,
        })
    }

    /// The recorded trace (call after the run).
    pub(crate) fn take_trace(&self) -> Vec<DecisionRec> {
        std::mem::take(&mut self.trace.lock())
    }
}

impl SchedulePolicy for RecordingPolicy {
    fn choose(&self, point: &DecisionPoint<'_>) -> usize {
        let n = point.candidates.len();
        let mut trace = self.trace.lock();
        let k = trace.len();
        if k >= self.max_decisions {
            return 0;
        }
        let chosen = if k < self.prefix.len() {
            (self.prefix[k] as usize).min(n - 1)
        } else {
            match &self.tail {
                Tail::Fifo => 0,
                Tail::Random(state) => (splitmix64(&mut state.lock()) as usize) % n,
            }
        };
        trace.push(DecisionRec {
            tasks: point.candidates.iter().map(|c| c.task.0).collect(),
            chosen: chosen as u32,
            watermark: self.delivered.load(Ordering::SeqCst),
        });
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_varies() {
        let mut a = 42u64;
        let mut b = 42u64;
        let xs: Vec<u64> = (0..8).map(|_| splitmix64(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| splitmix64(&mut b)).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }
}
