//! Rank-aware staging: one daemon per MPI rank, heat fused by allreduce,
//! one job-wide budget.
//!
//! The single-process [`crate::PrefetchDaemon`] run once per rank over a
//! shared fast tier has two failure modes (the ROADMAP's distributed
//! open item):
//!
//! 1. **Budget races** — N daemons each holding a local `budget/N` check
//!    the *global* staged-byte gauge, so a rank whose files are hot cannot
//!    use the headroom a rank with cold files leaves unused;
//! 2. **Duplicate staging** — ranks reading overlapping shards race to
//!    stage the same file.
//!
//! [`DistributedPrefetch`] fixes both with three invariants:
//!
//! * **Fused heat**: each rank's `HeatSink`-style heat vector is summed
//!   element-wise across ranks by an [`mpi_sim::SumAllreduce`] every
//!   fusion epoch, so every daemon ranks candidates by *job-wide* heat;
//! * **Ownership**: every file is owned by exactly one rank (stable hash
//!   of the path mod world size) — only the owner stages or evicts it;
//! * **One job budget**: a single `budget_bytes` is partitioned each epoch
//!   proportionally to the fused heat of each rank's owned files (equal
//!   split until heat exists), so hot ranks get the headroom cold ranks
//!   don't need, and the per-rank shares always sum to the job budget.
//!
//! Shutdown uses the collective's tolerant membership: a stopping daemon
//! `leave()`s the allreduce, which completes any round its peers are
//! blocked in — stopping ranks at different virtual times cannot deadlock
//! the simulation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mpi_sim::{MpiWorld, SumAllreduce};
use parking_lot::Mutex;
use posix_sim::Process;
use probe::{EventKind, IoEvent, Origin, ProbeSink, SinkId};
use simrt::sync::Notify;
use storage_sim::FsError;

use crate::{fast_path, promote_timed, PrefetchConfig, PrefetchStats};

/// Distributed daemon configuration.
#[derive(Clone, Debug)]
pub struct DistributedConfig {
    /// Tier prefixes, watermarks, file-size cap and the **job-wide**
    /// `budget_bytes` (not per rank). The `policy`/`seed`/`tick` fields of
    /// the base config are ignored — the distributed daemon is reactive
    /// and paced by `fuse_interval`.
    pub base: PrefetchConfig,
    /// Virtual-time period between heat fusions (allreduce rounds).
    pub fuse_interval: Duration,
    /// Ranks per node for the heat-fusion cost shape. `0` (default) keeps
    /// the flat ring allreduce; a positive value switches fusion to the
    /// NoPFS-shaped two-level hierarchy
    /// ([`mpi_sim::FusionTopology::Hierarchical`]): fuse within each node
    /// group, then across node leaders — `O(log n)` rounds instead of
    /// `O(n)`, with identical fused heat and happens-before edges.
    pub ranks_per_node: usize,
}

impl DistributedConfig {
    /// Defaults over the given tiers and job budget.
    pub fn new(src_prefix: &str, fast_prefix: &str, job_budget_bytes: u64) -> Self {
        DistributedConfig {
            base: PrefetchConfig::new(
                crate::Policy::Reactive,
                src_prefix,
                fast_prefix,
                job_budget_bytes,
            ),
            fuse_interval: Duration::from_millis(50),
            ranks_per_node: 0,
        }
    }

    /// Switch heat fusion to the two-level hierarchical topology with
    /// `ranks_per_node` members per node group.
    pub fn hierarchical(mut self, ranks_per_node: usize) -> Self {
        self.ranks_per_node = ranks_per_node;
        self
    }

    /// The fusion topology this config selects.
    pub fn fusion_topology(&self) -> mpi_sim::FusionTopology {
        if self.ranks_per_node > 0 {
            mpi_sim::FusionTopology::Hierarchical {
                ranks_per_node: self.ranks_per_node,
            }
        } else {
            mpi_sim::FusionTopology::Ring
        }
    }
}

/// Stable owner of `path` among `world_size` ranks (FNV-1a 64).
pub fn owner_rank(path: &str, world_size: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % world_size as u64) as usize
}

/// Per-rank daemon state shared between its sink, its thread and the
/// handle.
struct RankShared {
    /// Cumulative open count per file under `src_prefix` (this rank only).
    heat: Mutex<HashMap<String, u64>>,
    /// This rank's staged ledger: files it owns and has promoted, with
    /// their byte sizes. The global `staged_bytes()` gauge cannot bound a
    /// per-rank share — each daemon bounds its own ledger.
    ledger: Mutex<HashMap<String, u64>>,
    notify: Notify,
    promoted_files: AtomicU64,
    promoted_bytes: AtomicU64,
    evicted_files: AtomicU64,
    evicted_bytes: AtomicU64,
    observed_opens: AtomicU64,
    passes: AtomicU64,
    failed_promotions: AtomicU64,
    /// Fusion rounds this daemon completed.
    fusions: AtomicU64,
    /// Byte share of the job budget after the last fusion.
    last_share: AtomicU64,
}

impl RankShared {
    fn new() -> Arc<Self> {
        Arc::new(RankShared {
            heat: Mutex::new(HashMap::new()),
            ledger: Mutex::new(HashMap::new()),
            notify: Notify::new(),
            promoted_files: AtomicU64::new(0),
            promoted_bytes: AtomicU64::new(0),
            evicted_files: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
            observed_opens: AtomicU64::new(0),
            passes: AtomicU64::new(0),
            failed_promotions: AtomicU64::new(0),
            fusions: AtomicU64::new(0),
            last_share: AtomicU64::new(0),
        })
    }

    fn stats(&self) -> PrefetchStats {
        PrefetchStats {
            promoted_files: self.promoted_files.load(Ordering::Relaxed),
            promoted_bytes: self.promoted_bytes.load(Ordering::Relaxed),
            evicted_files: self.evicted_files.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
            observed_opens: self.observed_opens.load(Ordering::Relaxed),
            passes: self.passes.load(Ordering::Relaxed),
            failed_promotions: self.failed_promotions.load(Ordering::Relaxed),
        }
    }
}

/// The rank sink: folds this rank's application opens under the watched
/// prefix into the rank's heat vector. Spine contract: never blocks.
struct RankHeatSink {
    shared: Arc<RankShared>,
    src_prefix: String,
}

impl ProbeSink for RankHeatSink {
    fn on_events(&self, events: &[IoEvent]) {
        let mut poked = false;
        for ev in events {
            if ev.origin != Origin::App {
                continue;
            }
            if !matches!(ev.kind, EventKind::Open { .. }) {
                continue;
            }
            // Opens are rare; resolve the interned target only here.
            let resolved = ev.target.resolve();
            if !resolved.starts_with(self.src_prefix.as_str()) {
                continue;
            }
            self.shared.observed_opens.fetch_add(1, Ordering::Relaxed);
            *self
                .shared
                .heat
                .lock()
                .entry(resolved.to_string())
                .or_insert(0) += 1;
            poked = true;
        }
        if poked {
            self.shared.notify.notify_one();
        }
    }
}

/// Handle to the job's rank daemons.
pub struct DistributedPrefetch {
    stop: Arc<AtomicBool>,
    fused: SumAllreduce,
    ranks: Vec<RankHandle>,
}

struct RankHandle {
    shared: Arc<RankShared>,
    process: Arc<Process>,
    sink_id: SinkId,
    unregistered: AtomicBool,
}

impl DistributedPrefetch {
    /// Spawn one daemon per rank of `world`. Each daemon registers a heat
    /// sink on its rank's own probe bus, and all daemons share one
    /// [`SumAllreduce`] (over the world's network model) plus the single
    /// job-wide budget in `config.base.budget_bytes`.
    pub fn spawn(
        sim: &simrt::Sim,
        world: &MpiWorld,
        config: DistributedConfig,
    ) -> Arc<DistributedPrefetch> {
        let n = world.size();
        let stop = Arc::new(AtomicBool::new(false));
        let fused = SumAllreduce::with_topology(world.net().clone(), n, config.fusion_topology());
        let mut ranks = Vec::with_capacity(n);
        for rank in 0..n {
            let process = world.process(rank);
            let shared = RankShared::new();
            let sink = Arc::new(RankHeatSink {
                shared: shared.clone(),
                src_prefix: config.base.src_prefix.clone(),
            });
            let sink_id = process.probe().register(sink);
            ranks.push(RankHandle {
                shared: shared.clone(),
                process: process.clone(),
                sink_id,
                unregistered: AtomicBool::new(false),
            });
            let cfg = config.clone();
            let stop = stop.clone();
            let all = fused.clone();
            sim.spawn(format!("dprefetchd{rank}"), move || {
                rank_daemon_main(process, cfg, rank, n, all, stop, shared);
            });
        }
        Arc::new(DistributedPrefetch { stop, fused, ranks })
    }

    /// Stop every rank daemon and detach their sinks. Idempotent; safe
    /// from host or sim threads. Daemons blocked in a fusion round finish
    /// it (leavers complete pending rounds), then exit.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for r in &self.ranks {
            r.shared.notify.notify_one();
            if !r.unregistered.swap(true, Ordering::SeqCst) {
                r.process.probe().unregister(r.sink_id);
            }
        }
    }

    /// One rank's counters.
    pub fn rank_stats(&self, rank: usize) -> PrefetchStats {
        self.ranks[rank].shared.stats()
    }

    /// Job-wide counters (sum over ranks).
    pub fn job_stats(&self) -> PrefetchStats {
        let mut total = PrefetchStats::default();
        for r in &self.ranks {
            let s = r.shared.stats();
            total.promoted_files += s.promoted_files;
            total.promoted_bytes += s.promoted_bytes;
            total.evicted_files += s.evicted_files;
            total.evicted_bytes += s.evicted_bytes;
            total.observed_opens += s.observed_opens;
            total.passes += s.passes;
            total.failed_promotions += s.failed_promotions;
        }
        total
    }

    /// One rank's budget share (bytes) after its last fusion round.
    pub fn rank_share(&self, rank: usize) -> u64 {
        self.ranks[rank].shared.last_share.load(Ordering::Relaxed)
    }

    /// Fusion rounds completed by rank 0 (all ranks fuse in lock-step).
    pub fn fusion_rounds(&self) -> u64 {
        self.ranks[0].shared.fusions.load(Ordering::Relaxed)
    }

    /// Daemons that have not left the heat collective yet.
    pub fn live_daemons(&self) -> usize {
        self.fused.live()
    }
}

impl Drop for DistributedPrefetch {
    fn drop(&mut self) {
        self.stop();
    }
}

/// This rank's budget share under fused heat: proportional to the fused
/// heat of the files it owns, equal split while no heat exists. Shares
/// never sum to more than the job budget.
fn budget_share(
    fused: &HashMap<String, u64>,
    rank: usize,
    world_size: usize,
    job_budget: u64,
) -> u64 {
    let mut total: u128 = 0;
    let mut owned: u128 = 0;
    for (path, heat) in fused {
        total += u128::from(*heat);
        if owner_rank(path, world_size) == rank {
            owned += u128::from(*heat);
        }
    }
    (u128::from(job_budget) * owned)
        .checked_div(total)
        .map_or(job_budget / world_size as u64, |v| v as u64)
}

/// One staging pass over this rank's owned files, bounded by its fused
/// budget share — computed here and returned for the stats gauge.
fn rank_step(
    process: &Arc<Process>,
    cfg: &PrefetchConfig,
    rank: usize,
    world_size: usize,
    fused: &HashMap<String, u64>,
    stop: &AtomicBool,
    shared: &RankShared,
) -> u64 {
    let share = budget_share(fused, rank, world_size, cfg.budget_bytes);
    shared.passes.fetch_add(1, Ordering::Relaxed);
    let stack = process.stack().clone();
    let high = (cfg.high_watermark * share as f64) as u64;
    let low = (cfg.low_watermark * share as f64) as u64;

    // Owned candidates, hottest first (ties broken by path for
    // determinism across runs).
    let mut owned: Vec<(&String, u64)> = fused
        .iter()
        .filter(|(p, _)| {
            p.starts_with(cfg.src_prefix.as_str()) && owner_rank(p, world_size) == rank
        })
        .map(|(p, h)| (p, *h))
        .collect();
    owned.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));

    // A shrunk share (heat moved to other ranks) evicts this rank's
    // coldest staged files down to the low watermark.
    let ledger_bytes = |shared: &RankShared| -> u64 { shared.ledger.lock().values().sum() };
    if ledger_bytes(shared) > high {
        let mut staged: Vec<(String, u64, u64)> = shared
            .ledger
            .lock()
            .iter()
            .map(|(p, b)| (p.clone(), *b, fused.get(p).copied().unwrap_or(0)))
            .collect();
        staged.sort_by_key(|(_, _, heat)| *heat); // coldest first
        for (path, _, _) in staged {
            if ledger_bytes(shared) <= low {
                break;
            }
            if let Ok(freed) = stack.evict(&path) {
                shared.ledger.lock().remove(&path);
                shared.evicted_files.fetch_add(1, Ordering::Relaxed);
                shared.evicted_bytes.fetch_add(freed, Ordering::Relaxed);
            } else {
                shared.ledger.lock().remove(&path); // evicted elsewhere
            }
        }
    }

    for (path, _) in owned {
        if stop.load(Ordering::SeqCst) {
            return share;
        }
        if stack.is_staged(path) {
            continue;
        }
        let Some(dst) = fast_path(cfg, path) else {
            continue;
        };
        let Ok(fs) = stack.resolve(path) else {
            continue;
        };
        let Ok((size, _)) = fs.content_info(path) else {
            continue; // raced an unlink
        };
        if size > cfg.max_file_bytes {
            continue;
        }
        if ledger_bytes(shared) + size > high {
            break; // hottest-first order: nothing colder is worth a swap
        }
        match promote_timed(process, path, &dst) {
            Ok(bytes) => {
                shared.ledger.lock().insert(path.clone(), bytes);
                shared.promoted_files.fetch_add(1, Ordering::Relaxed);
                shared.promoted_bytes.fetch_add(bytes, Ordering::Relaxed);
            }
            Err(FsError::Exists) => {}
            Err(_) => {
                shared.failed_promotions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    share
}

fn rank_daemon_main(
    process: Arc<Process>,
    cfg: DistributedConfig,
    rank: usize,
    world_size: usize,
    all: SumAllreduce,
    stop: Arc<AtomicBool>,
    shared: Arc<RankShared>,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        // Fuse: contribute this rank's cumulative heat, get the job's.
        let local = shared.heat.lock().clone();
        let fused = all.allreduce(&local);
        shared.fusions.fetch_add(1, Ordering::Relaxed);
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let share = rank_step(
            &process, &cfg.base, rank, world_size, &fused, &stop, &shared,
        );
        shared.last_share.store(share, Ordering::Relaxed);
        if stop.load(Ordering::SeqCst) {
            break;
        }
        shared.notify.wait_timeout(cfg.fuse_interval);
    }
    all.leave();
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_sim::NetworkModel;
    use posix_sim::OpenFlags;
    use storage_sim::{
        Device, DeviceSpec, FileSystem, LocalFs, LocalFsParams, PageCache, StorageStack,
    };

    fn tiers() -> StorageStack {
        let cache = Arc::new(PageCache::new(1 << 30));
        let hdd = LocalFs::new(
            Device::new(DeviceSpec::hdd("hdd0")),
            cache.clone(),
            LocalFsParams::default(),
        );
        let optane = LocalFs::new(
            Device::new(DeviceSpec::optane("nvme0")),
            cache,
            LocalFsParams::default(),
        );
        let stack = StorageStack::new();
        stack.mount("/hdd", hdd as Arc<dyn FileSystem>);
        stack.mount("/fast", optane as Arc<dyn FileSystem>);
        stack
    }

    #[test]
    fn ownership_partitions_files() {
        let mut per_rank = [0usize; 4];
        for i in 0..1000 {
            per_rank[owner_rank(&format!("/hdd/f{i}"), 4)] += 1;
        }
        assert_eq!(per_rank.iter().sum::<usize>(), 1000);
        for (r, n) in per_rank.iter().enumerate() {
            assert!(*n > 150, "rank {r} owns a fair share, got {n}");
        }
        // Stable: same path, same owner.
        assert_eq!(owner_rank("/hdd/f7", 4), owner_rank("/hdd/f7", 4));
    }

    #[test]
    fn budget_shares_follow_heat_and_sum_to_budget() {
        let mut fused = HashMap::new();
        // All heat on rank-owned subsets.
        for i in 0..100u64 {
            fused.insert(format!("/hdd/f{i}"), 1 + i % 5);
        }
        let budget = 1_000_000u64;
        let shares: Vec<u64> = (0..4).map(|r| budget_share(&fused, r, 4, budget)).collect();
        assert!(shares.iter().sum::<u64>() <= budget);
        assert!(shares.iter().all(|s| *s > 0), "every owner gets heat share");
        // No heat → equal split.
        let empty = HashMap::new();
        assert_eq!(budget_share(&empty, 2, 4, budget), budget / 4);
    }

    #[test]
    fn daemons_stage_owned_hot_files_within_job_budget() {
        let stack = tiers();
        let files: Vec<String> = (0..24)
            .map(|i| {
                let p = format!("/hdd/f{i}");
                stack.create_synthetic(&p, 10_000, i).unwrap();
                p
            })
            .collect();
        let sim = simrt::Sim::new();
        let world = MpiWorld::new(&stack, 4, NetworkModel::default());
        // Budget fits ~12 of 24 files at the 0.9 watermark.
        let cfg = DistributedConfig {
            fuse_interval: Duration::from_millis(5),
            ..DistributedConfig::new("/hdd", "/fast", 135_000)
        };
        let daemon = DistributedPrefetch::spawn(&sim, &world, cfg);
        let d2 = daemon.clone();
        world.spawn_ranks(&sim, move |comm| {
            // Rank r reads its shard (round-robin) twice.
            let process = comm.process();
            for _epoch in 0..2 {
                for (i, f) in files.iter().enumerate() {
                    if i % comm.size() != comm.rank() {
                        continue;
                    }
                    let fd = process.open(f, OpenFlags::rdonly()).unwrap();
                    process.read(fd, 10_000, None).unwrap();
                    process.close(fd).unwrap();
                }
                simrt::sleep(Duration::from_millis(60));
            }
            if comm.rank() == 0 {
                simrt::sleep(Duration::from_millis(100));
                d2.stop();
            }
        });
        sim.run();
        let stats = daemon.job_stats();
        assert!(stats.observed_opens >= 24, "sinks saw all ranks' opens");
        assert!(stats.promoted_files >= 8, "staged: {stats:?}");
        assert!(
            stack.staged_bytes() <= (135_000f64 * 0.9) as u64,
            "job budget respected: {}",
            stack.staged_bytes()
        );
        assert!(daemon.fusion_rounds() >= 1);
        assert_eq!(daemon.live_daemons(), 0, "all daemons left cleanly");
        // No duplicate staging: every promotion lands a distinct staged
        // file, minus what share rebalancing evicted along the way.
        assert_eq!(
            stats.promoted_files - stats.evicted_files,
            stack.staged_files() as u64
        );
    }

    #[test]
    fn hierarchical_fusion_stages_identically_to_ring() {
        // The NoPFS-shaped two-level topology changes only the charged
        // cost of a fusion round — the fused heat, ownership and staging
        // decisions are identical to the flat ring.
        let run = |ranks_per_node: usize| {
            let stack = tiers();
            let files: Vec<String> = (0..16)
                .map(|i| {
                    let p = format!("/hdd/f{i}");
                    stack.create_synthetic(&p, 10_000, i).unwrap();
                    p
                })
                .collect();
            let sim = simrt::Sim::new();
            let world = MpiWorld::new(&stack, 8, NetworkModel::default());
            let mut cfg = DistributedConfig {
                fuse_interval: Duration::from_millis(5),
                ..DistributedConfig::new("/hdd", "/fast", 200_000)
            };
            if ranks_per_node > 0 {
                cfg = cfg.hierarchical(ranks_per_node);
            }
            let daemon = DistributedPrefetch::spawn(&sim, &world, cfg);
            let d2 = daemon.clone();
            world.spawn_ranks(&sim, move |comm| {
                let process = comm.process();
                for (i, f) in files.iter().enumerate() {
                    if i % comm.size() != comm.rank() {
                        continue;
                    }
                    let fd = process.open(f, OpenFlags::rdonly()).unwrap();
                    process.read(fd, 10_000, None).unwrap();
                    process.close(fd).unwrap();
                }
                simrt::sleep(Duration::from_millis(60));
                if comm.rank() == 0 {
                    simrt::sleep(Duration::from_millis(100));
                    d2.stop();
                }
            });
            sim.run();
            let stats = daemon.job_stats();
            let mut staged: Vec<String> =
                stack.staged().into_iter().map(|(path, _)| path).collect();
            staged.sort();
            (stats.promoted_files, staged)
        };
        let (ring_promoted, ring_staged) = run(0);
        let (hier_promoted, hier_staged) = run(4);
        assert!(ring_promoted >= 8, "ring staged: {ring_promoted}");
        assert_eq!(ring_promoted, hier_promoted, "same staging volume");
        assert_eq!(ring_staged, hier_staged, "same staged file set");
    }

    #[test]
    fn stop_with_daemons_mid_round_does_not_deadlock() {
        let stack = tiers();
        stack.create_synthetic("/hdd/x", 1000, 1).unwrap();
        let sim = simrt::Sim::new();
        let world = MpiWorld::new(&stack, 3, NetworkModel::default());
        let cfg = DistributedConfig {
            fuse_interval: Duration::from_millis(5),
            ..DistributedConfig::new("/hdd", "/fast", 1 << 20)
        };
        let daemon = DistributedPrefetch::spawn(&sim, &world, cfg);
        let d2 = daemon.clone();
        sim.spawn("stopper", move || {
            simrt::sleep(Duration::from_millis(17));
            d2.stop();
        });
        sim.run(); // must terminate
        assert_eq!(daemon.live_daemons(), 0);
    }
}
