//! # prefetch — online staging daemon for the tf-Darshan reproduction
//!
//! The paper's §V.B staging optimization is *offline*: profile one epoch,
//! pick a size threshold, copy the small files to Optane before the next
//! run. This crate closes the loop at runtime. A daemon thread on the
//! [`simrt`] scheduler watches the probe event spine, maintains per-file
//! heat and epoch-order statistics, and asynchronously promotes hot small
//! files up the tier stack (HDD → Optane) — evicting cold ones — while
//! respecting a fast-tier byte budget with watermark hysteresis.
//!
//! Two policies:
//! * **Reactive** ([`Policy::Reactive`]): heat comes from observed probe
//!   events only. The first epoch is spent *learning* the access order
//!   (promoting each file right after the application reads it, when its
//!   pages are still cache-hot); from the second epoch on the daemon knows
//!   the order and stages ahead of the consumer.
//! * **Clairvoyant** ([`Policy::Clairvoyant`]): ML training revisits a
//!   known file list every epoch, and the input pipeline publishes it
//!   through [`tfsim::EpochOrder`]. The daemon prefetches ahead of the
//!   pipeline's cursor from the very first read — including during setup,
//!   before the first epoch starts, when the order was `preload`ed.
//!
//! Daemon I/O is tagged [`probe::Origin::Prefetch`] (via
//! [`posix_sim::PrefetchOrigin`]), so application-attributed consumers —
//! the Darshan POSIX/STDIO modules — never see it, exactly as
//! libc-internal stdio descriptor traffic is hidden. System-wide consumers
//! (dstat, the device counters) still do.
//!
//! Promotion uses the [`storage_sim::StorageStack`] staging API: a timed
//! copy runs under `begin_promote` (readers keep hitting the intact
//! original), then `commit_promote` atomically installs the redirect.
//! Eviction drops the redirect and the fast copy; the original was never
//! removed, so no copy-back is needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributed;

pub use distributed::{owner_rank, DistributedConfig, DistributedPrefetch};

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use posix_sim::{OpenFlags, PrefetchOrigin, Process};
use probe::{EventKind, IoEvent, Origin, ProbeSink, SinkId};
use simrt::sync::Notify;
use storage_sim::{FsError, WritePayload};
use tfdarshan::StagingPlan;
use tfsim::EpochOrder;

/// How the daemon decides what is worth staging.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Learn heat and epoch order from observed probe events only.
    Reactive,
    /// Use the pipeline-published [`EpochOrder`] hint to stage ahead of
    /// the consumer cursor (requires [`PrefetchDaemon::spawn`] to be given
    /// the hint).
    Clairvoyant,
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct PrefetchConfig {
    /// Promotion policy.
    pub policy: Policy,
    /// Mount prefix the daemon watches (the slow tier, e.g. `/data/hdd`).
    pub src_prefix: String,
    /// Mount prefix staged copies land under (the fast tier).
    pub fast_prefix: String,
    /// Fast-tier byte budget the staged set must fit in.
    pub budget_bytes: u64,
    /// Promotion stops at `high_watermark × budget_bytes`; crossing it
    /// triggers eviction back down to the low watermark (hysteresis, so
    /// the daemon does not thrash at the boundary).
    pub high_watermark: f64,
    /// Eviction target as a fraction of `budget_bytes`.
    pub low_watermark: f64,
    /// Files larger than this are never staged — the paper's point is
    /// that *small* files dominate seek cost, not bytes.
    pub max_file_bytes: u64,
    /// Idle wakeup period when no probe events arrive.
    pub tick: Duration,
    /// Drive idle wakeups from a stackless event task on the scheduler
    /// calendar instead of a carrier-side `wait_timeout`. The daemon itself
    /// stays a carrier thread either way — its work passes do real blocking
    /// I/O — but with this on, its timer costs a heap entry, not a parked
    /// timeout, which matters when many daemons share one simulation. Off
    /// by default so committed traces keep their exact historical shape.
    pub event_ticks: bool,
    /// When the fast tier is full, allow evicting a strictly colder staged
    /// file to make room for a hotter candidate. Displacement pays when the
    /// budget covers a meaningful fraction of the working set; when the
    /// share is much smaller than a cyclically-read shard it degenerates to
    /// evict-just-before-reuse, so callers may turn it off.
    pub displace: bool,
    /// Optional advisor-seeded plan ([`tfdarshan::seed_plan`]) applied
    /// untimed when the daemon starts, before any online decision.
    pub seed: Option<StagingPlan>,
}

impl PrefetchConfig {
    /// Reasonable defaults for the given tiers and budget.
    pub fn new(policy: Policy, src_prefix: &str, fast_prefix: &str, budget_bytes: u64) -> Self {
        PrefetchConfig {
            policy,
            src_prefix: src_prefix.to_string(),
            fast_prefix: fast_prefix.to_string(),
            budget_bytes,
            high_watermark: 0.9,
            low_watermark: 0.7,
            max_file_bytes: 1 << 20,
            tick: Duration::from_millis(50),
            event_ticks: false,
            displace: true,
            seed: None,
        }
    }

    /// Attach an advisor-seeded initial plan.
    pub fn with_seed(mut self, plan: StagingPlan) -> Self {
        self.seed = Some(plan);
        self
    }
}

/// Counters the daemon exposes (all monotonic).
#[derive(Clone, Copy, Debug, Default)]
pub struct PrefetchStats {
    /// Files promoted to the fast tier (timed copies + seed plan).
    pub promoted_files: u64,
    /// Bytes promoted.
    pub promoted_bytes: u64,
    /// Files evicted from the fast tier.
    pub evicted_files: u64,
    /// Bytes evicted.
    pub evicted_bytes: u64,
    /// Application `open`s the sink observed under `src_prefix`.
    pub observed_opens: u64,
    /// Daemon work passes executed.
    pub passes: u64,
    /// Promotions abandoned (copy error, tier full, raced unlink).
    pub failed_promotions: u64,
}

/// What the sink has learned about the workload's access pattern.
#[derive(Default)]
struct Learn {
    /// Files in first-observed order (one epoch's visit order).
    order: Vec<String>,
    /// Position of each file in `order`.
    pos: HashMap<String, usize>,
    /// Open count per file.
    heat: HashMap<String, u32>,
    /// Recently observed opens not yet considered for promotion.
    queue: VecDeque<String>,
    /// Set once a file repeats: the full epoch order is known.
    epoch_learned: bool,
    /// Position of the most recently observed open (consumer cursor).
    cursor: usize,
}

struct Shared {
    learn: Mutex<Learn>,
    /// Files this daemon promoted and still believes staged. Eviction only
    /// ever touches the daemon's own ledger: bytes staged by somebody else
    /// (a static pass, another rank's daemon) have no heat in this
    /// daemon's model and would otherwise always rank coldest — several
    /// uncoordinated daemons over one fast tier would endlessly evict each
    /// other's files and re-stage their own.
    ledger: Mutex<HashSet<String>>,
    notify: Notify,
    stop: AtomicBool,
    promoted_files: AtomicU64,
    promoted_bytes: AtomicU64,
    evicted_files: AtomicU64,
    evicted_bytes: AtomicU64,
    observed_opens: AtomicU64,
    passes: AtomicU64,
    failed_promotions: AtomicU64,
}

impl Shared {
    fn new() -> Arc<Self> {
        Arc::new(Shared {
            learn: Mutex::new(Learn::default()),
            ledger: Mutex::new(HashSet::new()),
            notify: Notify::new(),
            stop: AtomicBool::new(false),
            promoted_files: AtomicU64::new(0),
            promoted_bytes: AtomicU64::new(0),
            evicted_files: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
            observed_opens: AtomicU64::new(0),
            passes: AtomicU64::new(0),
            failed_promotions: AtomicU64::new(0),
        })
    }
}

/// The daemon's probe sink: folds application `open` events under the
/// watched prefix into the heat/order model and pokes the daemon thread.
/// Per the spine contract it never sleeps or blocks — [`Notify::notify_one`]
/// only stores a permit and calls `wake`.
struct HeatSink {
    shared: Arc<Shared>,
    src_prefix: String,
}

impl ProbeSink for HeatSink {
    fn on_events(&self, events: &[IoEvent]) {
        let mut poked = false;
        for ev in events {
            // Only what the application itself opens counts as heat; the
            // daemon's own copies (Origin::Prefetch) and stdio-internal
            // traffic must not feed back into the model.
            if ev.origin != Origin::App {
                continue;
            }
            if !matches!(ev.kind, EventKind::Open { .. }) {
                continue;
            }
            // Opens are rare relative to reads/writes; resolving the
            // interned target here keeps the per-event path id-only.
            let resolved = ev.target.resolve();
            if !resolved.starts_with(self.src_prefix.as_str()) {
                continue;
            }
            self.shared.observed_opens.fetch_add(1, Ordering::Relaxed);
            let path = resolved.to_string();
            let mut learn = self.shared.learn.lock();
            *learn.heat.entry(path.clone()).or_insert(0) += 1;
            if let Some(&i) = learn.pos.get(&path) {
                // A repeat: the epoch order is now fully known, and this
                // open tells us where the consumer currently is.
                learn.epoch_learned = true;
                learn.cursor = i;
            } else {
                let i = learn.order.len();
                learn.order.push(path.clone());
                learn.pos.insert(path.clone(), i);
                learn.cursor = i;
            }
            if learn.queue.len() < 4096 {
                learn.queue.push_back(path);
            }
            poked = true;
        }
        if poked {
            self.shared.notify.notify_one();
        }
    }
}

/// Handle to a running staging daemon.
pub struct PrefetchDaemon {
    shared: Arc<Shared>,
    process: Arc<Process>,
    sink_id: SinkId,
    unregistered: AtomicBool,
}

impl PrefetchDaemon {
    /// Register the probe sink and spawn the daemon thread on `sim`.
    ///
    /// `hint` is required for [`Policy::Clairvoyant`] and ignored by
    /// [`Policy::Reactive`]. The daemon runs until [`PrefetchDaemon::stop`]
    /// — call it before the last application thread exits, or `sim.run()`
    /// will keep simulating daemon ticks.
    pub fn spawn(
        sim: &simrt::Sim,
        process: Arc<Process>,
        config: PrefetchConfig,
        hint: Option<Arc<EpochOrder>>,
    ) -> Arc<PrefetchDaemon> {
        let shared = Shared::new();
        let sink = Arc::new(HeatSink {
            shared: shared.clone(),
            src_prefix: config.src_prefix.clone(),
        });
        let sink_id = process.probe().register(sink);
        let daemon = Arc::new(PrefetchDaemon {
            shared: shared.clone(),
            process: process.clone(),
            sink_id,
            unregistered: AtomicBool::new(false),
        });
        if config.event_ticks {
            // Stackless ticker: pokes the daemon every `tick` from the
            // calendar. The first poll runs at spawn time, so it skips the
            // notify once to match the carrier's step-then-wait cadence.
            let shared = shared.clone();
            let tick = config.tick;
            let mut first = true;
            sim.spawn_event("prefetchd-tick", move |_cx: &mut simrt::EventCx| {
                if shared.stop.load(Ordering::SeqCst) {
                    return simrt::EventPoll::Done;
                }
                if first {
                    first = false;
                } else {
                    shared.notify.notify_one();
                }
                simrt::EventPoll::Sleep(tick)
            });
        }
        sim.spawn("prefetchd", move || {
            daemon_main(process, config, hint, shared);
        });
        daemon
    }

    /// Ask the daemon to exit and detach its probe sink. Safe to call from
    /// any thread (host or sim) and idempotent; returns immediately — the
    /// daemon thread unwinds at its next wakeup.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.notify.notify_one();
        if !self.unregistered.swap(true, Ordering::SeqCst) {
            self.process.probe().unregister(self.sink_id);
        }
    }

    /// Snapshot of the daemon's counters.
    pub fn stats(&self) -> PrefetchStats {
        PrefetchStats {
            promoted_files: self.shared.promoted_files.load(Ordering::Relaxed),
            promoted_bytes: self.shared.promoted_bytes.load(Ordering::Relaxed),
            evicted_files: self.shared.evicted_files.load(Ordering::Relaxed),
            evicted_bytes: self.shared.evicted_bytes.load(Ordering::Relaxed),
            observed_opens: self.shared.observed_opens.load(Ordering::Relaxed),
            passes: self.shared.passes.load(Ordering::Relaxed),
            failed_promotions: self.shared.failed_promotions.load(Ordering::Relaxed),
        }
    }
}

impl Drop for PrefetchDaemon {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Map an origin path to its staged location under the fast prefix.
pub(crate) fn fast_path(cfg: &PrefetchConfig, origin: &str) -> Option<String> {
    let rel = origin.strip_prefix(cfg.src_prefix.as_str())?;
    Some(format!("{}{rel}", cfg.fast_prefix))
}

/// Apply an advisor plan untimed (the daemon's one-shot mode — what
/// `tfdarshan::staging::apply` exposes to offline callers). Per-file errors
/// are tolerated: a seed plan is advisory, not a contract.
fn stage_once(process: &Arc<Process>, cfg: &PrefetchConfig, plan: &StagingPlan, shared: &Shared) {
    let stack = process.stack();
    for (path, size) in &plan.files {
        let Some(dst) = fast_path(cfg, path) else {
            continue;
        };
        match stack.promote_untimed(path, &dst) {
            Ok(n) => {
                shared.ledger.lock().insert(path.clone());
                shared.promoted_files.fetch_add(1, Ordering::Relaxed);
                shared.promoted_bytes.fetch_add(n, Ordering::Relaxed);
            }
            Err(FsError::Exists) => {} // already staged
            Err(_) => {
                let _ = size;
                shared.failed_promotions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Timed promotion: copy `origin` to the fast tier through the process's
/// POSIX layer (so the copy costs virtual time and shows up in dstat), all
/// of it origin-tagged `Prefetch`. Readers racing the copy keep resolving
/// to the intact original until `commit_promote` flips the redirect.
pub(crate) fn promote_timed(
    process: &Arc<Process>,
    origin: &str,
    dst: &str,
) -> Result<u64, FsError> {
    let stack = process.stack();
    stack.begin_promote(origin, dst)?;
    let copy = || -> Result<u64, FsError> {
        let _tag = PrefetchOrigin::enter();
        let src_fd = process.open(origin, OpenFlags::rdonly()).map_err(io_err)?;
        let res = (|| {
            let dst_fd = process
                .open(dst, OpenFlags::wronly_create_trunc())
                .map_err(io_err)?;
            let size = process.fstat(src_fd).map_err(io_err)?.size;
            let mut off = 0u64;
            let chunk = 1u64 << 20;
            while off < size {
                let n = chunk.min(size - off);
                process.pread(src_fd, off, n, None).map_err(io_err)?;
                process
                    .pwrite(dst_fd, off, WritePayload::Synthetic(n))
                    .map_err(io_err)?;
                off += n;
            }
            process.close(dst_fd).map_err(io_err)?;
            Ok(size)
        })();
        let _ = process.close(src_fd);
        res
    };
    match copy() {
        Ok(_) => stack.commit_promote(origin, dst),
        Err(e) => {
            stack.abort_promote(origin);
            Err(e)
        }
    }
}

fn io_err<E>(_: E) -> FsError {
    FsError::Io
}

/// Cyclic distance of position `i` ahead of `cursor` in an order of `n`
/// files: 0 = the consumer is here now, n-1 = just passed (the coldest
/// future). Unknown positions rank coldest of all.
fn dist_ahead(i: usize, cursor: usize, n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    (i + n - cursor) % n
}

struct Snapshot {
    order: Vec<String>,
    pos: HashMap<String, usize>,
    cursor: usize,
    epoch_learned: bool,
    fresh: Vec<String>,
}

fn snapshot(cfg: &PrefetchConfig, hint: &Option<Arc<EpochOrder>>, shared: &Shared) -> Snapshot {
    if cfg.policy == Policy::Clairvoyant {
        if let Some(h) = hint {
            let order: Vec<String> = h.files().as_ref().clone();
            let pos: HashMap<String, usize> = order
                .iter()
                .enumerate()
                .map(|(i, p)| (p.clone(), i))
                .collect();
            // Drain the observation queue anyway so it cannot grow.
            shared.learn.lock().queue.clear();
            return Snapshot {
                cursor: h.cursor(),
                epoch_learned: !order.is_empty(),
                order,
                pos,
                fresh: Vec::new(),
            };
        }
    }
    let mut learn = shared.learn.lock();
    let fresh: Vec<String> = learn.queue.drain(..).collect();
    Snapshot {
        order: learn.order.clone(),
        pos: learn.pos.clone(),
        cursor: learn.cursor,
        epoch_learned: learn.epoch_learned,
        fresh,
    }
}

/// One daemon work pass: hysteresis eviction, then promotion of fresh
/// observations (reactive) and of files ahead of the consumer cursor.
fn step(
    process: &Arc<Process>,
    cfg: &PrefetchConfig,
    hint: &Option<Arc<EpochOrder>>,
    shared: &Shared,
) {
    shared.passes.fetch_add(1, Ordering::Relaxed);
    let stack = process.stack().clone();
    let snap = snapshot(cfg, hint, shared);
    let n = snap.order.len();
    let high = (cfg.high_watermark * cfg.budget_bytes as f64) as u64;
    let low = (cfg.low_watermark * cfg.budget_bytes as f64) as u64;

    // Hysteresis: above the high watermark, evict the files farthest ahead
    // of being needed (coldest future) until back under the low watermark.
    // Only this daemon's own promotions are eviction candidates.
    if stack.staged_bytes() > high {
        let mut staged: Vec<(String, u64, usize)> = stack
            .staged()
            .into_iter()
            .filter(|(p, e)| !e.pinned && !e.dirty && shared.ledger.lock().contains(p))
            .map(|(path, e)| {
                let d = snap
                    .pos
                    .get(&path)
                    .map_or(n, |&i| dist_ahead(i, snap.cursor, n));
                (path, e.bytes, d)
            })
            .collect();
        staged.sort_by_key(|e| std::cmp::Reverse(e.2));
        for (path, _, _) in staged {
            if stack.staged_bytes() <= low {
                break;
            }
            if let Ok(freed) = stack.evict(&path) {
                shared.evicted_files.fetch_add(1, Ordering::Relaxed);
                shared.evicted_bytes.fetch_add(freed, Ordering::Relaxed);
            }
            shared.ledger.lock().remove(&path);
        }
    }

    // Candidate stream: fresh observations first (reactive promote-on-miss,
    // cheapest while the file's pages are still cache-hot), then the known
    // order scanned ahead of the consumer cursor.
    let mut candidates: Vec<String> = snap.fresh;
    if snap.epoch_learned && n > 0 {
        let start = if snap.cursor + 1 >= n {
            0
        } else {
            snap.cursor + 1
        };
        candidates.extend((0..n).map(|k| snap.order[(start + k) % n].clone()));
    }

    for path in candidates {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        if !path.starts_with(cfg.src_prefix.as_str()) || stack.is_staged(&path) {
            continue;
        }
        let Some(dst) = fast_path(cfg, &path) else {
            continue;
        };
        let Ok(fs) = stack.resolve(&path) else {
            continue;
        };
        let Ok((size, _)) = fs.content_info(&path) else {
            continue; // raced an unlink
        };
        if size > cfg.max_file_bytes {
            continue;
        }
        if stack.staged_bytes() + size > high {
            if !cfg.displace {
                break;
            }
            // Full. Worth displacing something? Only if a staged file is
            // strictly colder (farther ahead) than this candidate.
            let cand_d = snap
                .pos
                .get(&path)
                .map_or(n, |&i| dist_ahead(i, snap.cursor, n));
            let victim = stack
                .staged()
                .into_iter()
                .filter(|(p, e)| !e.pinned && !e.dirty && shared.ledger.lock().contains(p))
                .map(|(p, e)| {
                    let d = snap
                        .pos
                        .get(&p)
                        .map_or(n, |&i| dist_ahead(i, snap.cursor, n));
                    (p, e.bytes, d)
                })
                .max_by_key(|&(_, _, d)| d);
            match victim {
                Some((vp, vb, vd)) if vd > cand_d && vb >= size => {
                    let evicted = stack.evict(&vp);
                    shared.ledger.lock().remove(&vp);
                    if let Ok(freed) = evicted {
                        shared.evicted_files.fetch_add(1, Ordering::Relaxed);
                        shared.evicted_bytes.fetch_add(freed, Ordering::Relaxed);
                    } else {
                        continue;
                    }
                }
                // Nothing colder to displace: everything staged is hotter
                // than anything left in the stream — end the pass.
                _ => break,
            }
        }
        match promote_timed(process, &path, &dst) {
            Ok(bytes) => {
                shared.ledger.lock().insert(path.clone());
                shared.promoted_files.fetch_add(1, Ordering::Relaxed);
                shared.promoted_bytes.fetch_add(bytes, Ordering::Relaxed);
            }
            Err(FsError::Exists) => {}
            Err(_) => {
                shared.failed_promotions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn daemon_main(
    process: Arc<Process>,
    cfg: PrefetchConfig,
    hint: Option<Arc<EpochOrder>>,
    shared: Arc<Shared>,
) {
    if let Some(plan) = &cfg.seed {
        stage_once(&process, &cfg, plan, &shared);
    }
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        step(&process, &cfg, &hint, &shared);
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        if cfg.event_ticks {
            // The event ticker owns the timer; just wait to be poked.
            shared.notify.wait();
        } else {
            shared.notify.wait_timeout(cfg.tick);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage_sim::{
        Device, DeviceSpec, FileSystem, LocalFs, LocalFsParams, PageCache, StorageStack,
    };

    fn tiers() -> (StorageStack, Arc<LocalFs>, Arc<LocalFs>) {
        let cache = Arc::new(PageCache::new(1 << 30));
        let hdd = LocalFs::new(
            Device::new(DeviceSpec::hdd("hdd0")),
            cache.clone(),
            LocalFsParams::default(),
        );
        let optane = LocalFs::new(
            Device::new(DeviceSpec::optane("nvme0")),
            cache,
            LocalFsParams::default(),
        );
        let stack = StorageStack::new();
        stack.mount("/hdd", hdd.clone() as Arc<dyn FileSystem>);
        stack.mount("/fast", optane.clone() as Arc<dyn FileSystem>);
        (stack, hdd, optane)
    }

    fn cfg(policy: Policy, budget: u64) -> PrefetchConfig {
        PrefetchConfig {
            tick: Duration::from_millis(5),
            ..PrefetchConfig::new(policy, "/hdd", "/fast", budget)
        }
    }

    #[test]
    fn clairvoyant_stages_ahead_of_any_read() {
        let (stack, ..) = tiers();
        let files: Vec<String> = (0..16)
            .map(|i| {
                let p = format!("/hdd/f{i}");
                stack.create_synthetic(&p, 10_000, i).unwrap();
                p
            })
            .collect();
        let sim = simrt::Sim::new();
        let process = Process::new(stack.clone());
        let hint = EpochOrder::new();
        hint.preload(Arc::new(files));
        let daemon =
            PrefetchDaemon::spawn(&sim, process, cfg(Policy::Clairvoyant, 1 << 30), Some(hint));
        let d2 = daemon.clone();
        sim.spawn("main", move || {
            // No application I/O at all: the preloaded hint alone drives
            // staging during this warmup sleep.
            simrt::sleep(Duration::from_millis(200));
            d2.stop();
        });
        sim.run();
        assert_eq!(daemon.stats().promoted_files, 16);
        assert_eq!(stack.staged_files(), 16);
        assert!(stack.is_staged("/hdd/f0"));
    }

    #[test]
    fn reactive_learns_order_and_respects_budget() {
        let (stack, ..) = tiers();
        let files: Vec<String> = (0..8)
            .map(|i| {
                let p = format!("/hdd/f{i}");
                stack.create_synthetic(&p, 10_000, i).unwrap();
                p
            })
            .collect();
        let sim = simrt::Sim::new();
        let process = Process::new(stack.clone());
        // Budget fits 4 staged files at the 0.9 high watermark.
        let daemon =
            PrefetchDaemon::spawn(&sim, process.clone(), cfg(Policy::Reactive, 45_000), None);
        let d2 = daemon.clone();
        sim.spawn("app", move || {
            for _epoch in 0..2 {
                for f in &files {
                    let fd = process.open(f, OpenFlags::rdonly()).unwrap();
                    process.read(fd, 10_000, None).unwrap();
                    process.close(fd).unwrap();
                }
                simrt::sleep(Duration::from_millis(50));
            }
            d2.stop();
        });
        sim.run();
        let stats = daemon.stats();
        assert!(stats.observed_opens >= 16, "sink saw the app's opens");
        assert!(stats.promoted_files >= 4, "daemon staged files");
        assert!(
            stack.staged_bytes() <= 40_500,
            "staged set respects the high watermark: {}",
            stack.staged_bytes()
        );
    }

    #[test]
    fn daemon_copy_traffic_is_not_app_heat() {
        // The daemon's own copies emit probe events tagged Prefetch; the
        // sink must not fold them back into the heat model (feedback loop).
        let (stack, ..) = tiers();
        stack.create_synthetic("/hdd/x", 4096, 7).unwrap();
        let sim = simrt::Sim::new();
        let process = Process::new(stack.clone());
        let hint = EpochOrder::new();
        hint.preload(Arc::new(vec!["/hdd/x".to_string()]));
        let daemon =
            PrefetchDaemon::spawn(&sim, process, cfg(Policy::Clairvoyant, 1 << 20), Some(hint));
        let d2 = daemon.clone();
        sim.spawn("main", move || {
            simrt::sleep(Duration::from_millis(100));
            d2.stop();
        });
        sim.run();
        assert_eq!(daemon.stats().promoted_files, 1);
        assert_eq!(
            daemon.stats().observed_opens,
            0,
            "the daemon's own opens are origin-tagged and invisible to heat"
        );
    }

    #[test]
    fn event_ticks_drive_the_daemon_to_the_same_staging() {
        let (stack, ..) = tiers();
        let files: Vec<String> = (0..16)
            .map(|i| {
                let p = format!("/hdd/f{i}");
                stack.create_synthetic(&p, 10_000, i).unwrap();
                p
            })
            .collect();
        let sim = simrt::Sim::new();
        let process = Process::new(stack.clone());
        let hint = EpochOrder::new();
        hint.preload(Arc::new(files));
        let mut c = cfg(Policy::Clairvoyant, 1 << 30);
        c.event_ticks = true;
        let daemon = PrefetchDaemon::spawn(&sim, process, c, Some(hint));
        let d2 = daemon.clone();
        sim.spawn("main", move || {
            simrt::sleep(Duration::from_millis(200));
            d2.stop();
        });
        sim.run();
        assert_eq!(daemon.stats().promoted_files, 16);
        assert_eq!(stack.staged_files(), 16);
        assert_eq!(sim.stats().event_spawns, 1, "the ticker is an event task");
    }

    #[test]
    fn seed_plan_applies_before_online_decisions() {
        let (stack, ..) = tiers();
        stack.create_synthetic("/hdd/seeded", 2048, 1).unwrap();
        let plan = StagingPlan {
            threshold: 4096,
            files: vec![("/hdd/seeded".to_string(), 2048)],
            staged_bytes: 2048,
            total_bytes: 2048,
            total_files: 1,
        };
        let sim = simrt::Sim::new();
        let process = Process::new(stack.clone());
        let daemon = PrefetchDaemon::spawn(
            &sim,
            process,
            cfg(Policy::Reactive, 1 << 20).with_seed(plan),
            None,
        );
        let d2 = daemon.clone();
        sim.spawn("main", move || {
            simrt::sleep(Duration::from_millis(20));
            d2.stop();
        });
        sim.run();
        assert!(stack.is_staged("/hdd/seeded"));
        assert_eq!(daemon.stats().promoted_files, 1);
    }
}
