//! The long-running serve daemon: sockets, threads, and routing around
//! the pure [`Aggregator`].
//!
//! Topology:
//! * one **HTTP** listener (`/metrics`, `/jobs`, `/jobs/<id>/report`,
//!   `/jobs/<id>/html`) — one thread per connection, single request,
//!   `Connection: close`;
//! * one **ingest** listener speaking newline-delimited
//!   [`SessionDiffMsg`] JSON — one thread per publisher connection;
//! * one **pump** thread draining tenant queues into the rollups on a
//!   short period.
//!
//! All aggregation state sits behind one mutex ([`ServeService`]); socket
//! threads hold it only long enough to enqueue a message or render a
//! response. Read endpoints drain pending queues first so a scrape
//! always reflects every message the daemon has *accepted* — drops only
//! ever happen at enqueue time, when a tenant outruns its queue bound.

use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use tfdarshan::html_escape;
use tfdarshan::wire::SessionDiffMsg;
use tfdarshan::TfDarshanReport;

use crate::aggregator::{Aggregator, AggregatorConfig, Enqueue, FleetStats, Footprint};
use crate::http::{http_get, percent_decode, read_request, respond, Request};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Aggregation-core knobs.
    pub aggregator: AggregatorConfig,
    /// Pump-thread period. Short: the pump is O(queued), and queues are
    /// bounded.
    pub pump_interval: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            aggregator: AggregatorConfig::default(),
            pump_interval: Duration::from_millis(1),
        }
    }
}

/// One row of the `/jobs` listing.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobSummary {
    /// Job id.
    pub job: String,
    /// Sessions applied.
    pub sessions: u64,
    /// Distinct ranks seen.
    pub ranks: u64,
    /// Bytes read so far.
    pub bytes_read: u64,
    /// Bytes written so far.
    pub bytes_written: u64,
    /// Diffs dropped for this tenant by backpressure.
    pub dropped: u64,
    /// Sequence gaps observed in the stream.
    pub seq_gaps: u64,
}

/// The `/jobs` response body.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobsListing {
    /// Live tenants, sorted by id.
    pub jobs: Vec<JobSummary>,
}

/// Thread-safe facade over the aggregation core — what publishers and
/// endpoint handlers share.
pub struct ServeService {
    agg: Mutex<Aggregator>,
    parse_errors: AtomicU64,
}

impl ServeService {
    /// A fresh service.
    pub fn new(cfg: AggregatorConfig) -> Self {
        ServeService {
            agg: Mutex::new(Aggregator::new(cfg)),
            parse_errors: AtomicU64::new(0),
        }
    }

    /// Offer one message to the ingest queue (no draining — the pump or
    /// the next read endpoint applies it).
    pub fn offer(&self, msg: SessionDiffMsg) -> Enqueue {
        self.agg.lock().enqueue(msg)
    }

    /// One bounded pump round. Returns messages applied.
    pub fn pump(&self) -> usize {
        self.agg.lock().pump()
    }

    /// NDJSON lines that failed to parse on the ingest socket.
    pub fn parse_errors(&self) -> u64 {
        self.parse_errors.load(Ordering::Relaxed)
    }

    fn note_parse_error(&self) {
        self.parse_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Render the Prometheus exposition (drains pending queues first).
    pub fn metrics(&self) -> String {
        let mut agg = self.agg.lock();
        agg.pump_to_empty();
        let mut out = agg.render_metrics();
        out.push_str(
            "# HELP tfdarshan_ingest_parse_errors_total NDJSON lines that failed to parse.\n",
        );
        out.push_str("# TYPE tfdarshan_ingest_parse_errors_total counter\n");
        out.push_str(&format!(
            "tfdarshan_ingest_parse_errors_total {}\n",
            self.parse_errors()
        ));
        out
    }

    /// The `/jobs` listing.
    pub fn jobs(&self) -> JobsListing {
        let mut agg = self.agg.lock();
        agg.pump_to_empty();
        let jobs = agg
            .job_ids()
            .into_iter()
            .filter_map(|id| {
                agg.job(&id).map(|a| JobSummary {
                    job: id.clone(),
                    sessions: a.sessions,
                    ranks: a.ranks.len() as u64,
                    bytes_read: a.io.bytes_read,
                    bytes_written: a.io.bytes_written,
                    dropped: a.dropped,
                    seq_gaps: a.seq_gaps,
                })
            })
            .collect();
        JobsListing { jobs }
    }

    /// A tenant's rolled-up report, if live.
    pub fn job_report(&self, id: &str) -> Option<TfDarshanReport> {
        let mut agg = self.agg.lock();
        agg.pump_to_empty();
        agg.job(id).map(|a| a.report())
    }

    /// The live HTML page for a tenant: the standard report page with a
    /// job heading. Both the heading and everything job-supplied inside
    /// the report go through [`html_escape`].
    pub fn job_html(&self, id: &str) -> Option<String> {
        let report = self.job_report(id)?;
        let page = report.render_html();
        let heading = format!(
            "<body>\n<p><b>live job:</b> <code>{}</code></p>",
            html_escape(id)
        );
        Some(if page.contains("<body>") {
            page.replacen("<body>", &heading, 1)
        } else {
            format!("{heading}\n{page}")
        })
    }

    /// Fleet-wide counters.
    pub fn fleet(&self) -> FleetStats {
        self.agg.lock().fleet()
    }

    /// Countable memory footprint (flood tests bound this).
    pub fn footprint(&self) -> Footprint {
        self.agg.lock().footprint()
    }
}

/// A running daemon: both listeners plus the pump thread. Shuts down on
/// drop (or explicitly via [`ServeDaemon::shutdown`]).
pub struct ServeDaemon {
    service: Arc<ServeService>,
    http_addr: SocketAddr,
    ingest_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ServeDaemon {
    /// Bind both listeners on ephemeral localhost ports and start the
    /// accept and pump threads.
    pub fn start(cfg: ServeConfig) -> std::io::Result<ServeDaemon> {
        let service = Arc::new(ServeService::new(cfg.aggregator.clone()));
        let stop = Arc::new(AtomicBool::new(false));

        let http = TcpListener::bind("127.0.0.1:0")?;
        let ingest = TcpListener::bind("127.0.0.1:0")?;
        let http_addr = http.local_addr()?;
        let ingest_addr = ingest.local_addr()?;

        let mut threads = Vec::new();
        {
            let (service, stop) = (service.clone(), stop.clone());
            threads.push(std::thread::spawn(move || {
                accept_loop(http, stop, move |stream| {
                    let service = service.clone();
                    std::thread::spawn(move || handle_http(stream, &service));
                })
            }));
        }
        {
            let (service, stop) = (service.clone(), stop.clone());
            threads.push(std::thread::spawn(move || {
                accept_loop(ingest, stop, move |stream| {
                    let service = service.clone();
                    std::thread::spawn(move || handle_ingest(stream, &service));
                })
            }));
        }
        {
            let (service, stop) = (service.clone(), stop.clone());
            let interval = cfg.pump_interval;
            threads.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    service.pump();
                    // Host daemon thread ticking in real time, not sim code.
                    // simlint: allow(host-sleep)
                    std::thread::sleep(interval);
                }
            }));
        }

        Ok(ServeDaemon {
            service,
            http_addr,
            ingest_addr,
            stop,
            threads,
        })
    }

    /// The shared aggregation service (for in-process publishers).
    pub fn service(&self) -> Arc<ServeService> {
        self.service.clone()
    }

    /// Address of the HTTP endpoint.
    pub fn http_addr(&self) -> SocketAddr {
        self.http_addr
    }

    /// Address of the NDJSON ingest socket.
    pub fn ingest_addr(&self) -> SocketAddr {
        self.ingest_addr
    }

    /// Convenience: GET a path off this daemon's HTTP endpoint.
    pub fn get(&self, path: &str) -> std::io::Result<(u32, String)> {
        http_get(self.http_addr, path)
    }

    /// Stop both listeners and the pump thread, then join them.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loops with one throwaway connection each.
        let _ = TcpStream::connect(self.http_addr);
        let _ = TcpStream::connect(self.ingest_addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServeDaemon {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

fn accept_loop(listener: TcpListener, stop: Arc<AtomicBool>, mut spawn: impl FnMut(TcpStream)) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                spawn(stream);
            }
            Err(_) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
            }
        }
    }
}

fn handle_ingest(stream: TcpStream, service: &ServeService) {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match SessionDiffMsg::from_line(trimmed) {
            Ok(msg) => {
                service.offer(msg);
            }
            Err(_) => service.note_parse_error(),
        }
    }
}

fn handle_http(mut stream: TcpStream, service: &ServeService) {
    let Some(Request { method, path }) = read_request(&mut stream) else {
        respond(&mut stream, 400, "text/plain", "bad request\n");
        return;
    };
    if method != "GET" {
        respond(&mut stream, 405, "text/plain", "GET only\n");
        return;
    }
    match route(&path) {
        Route::Index => respond(
            &mut stream,
            200,
            "text/plain; charset=utf-8",
            "tf-darshan serve daemon\nendpoints: /metrics /jobs /jobs/<id>/report /jobs/<id>/html\n",
        ),
        Route::Metrics => {
            let body = service.metrics();
            respond(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
        }
        Route::Jobs => {
            let body = serde_json::to_string_pretty(&service.jobs())
                .unwrap_or_else(|_| "{\"jobs\":[]}".to_string());
            respond(&mut stream, 200, "application/json", &body);
        }
        Route::JobReport(id) => match service.job_report(&id) {
            Some(r) => respond(&mut stream, 200, "application/json", &r.to_json()),
            None => respond(&mut stream, 404, "text/plain", "no such job\n"),
        },
        Route::JobHtml(id) => match service.job_html(&id) {
            Some(page) => respond(&mut stream, 200, "text/html; charset=utf-8", &page),
            None => respond(&mut stream, 404, "text/plain", "no such job\n"),
        },
        Route::NotFound => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

enum Route {
    Index,
    Metrics,
    Jobs,
    JobReport(String),
    JobHtml(String),
    NotFound,
}

fn route(path: &str) -> Route {
    match path {
        "/" => Route::Index,
        "/metrics" => Route::Metrics,
        "/jobs" => Route::Jobs,
        _ => {
            if let Some(rest) = path.strip_prefix("/jobs/") {
                if let Some((id, verb)) = rest.rsplit_once('/') {
                    let id = percent_decode(id);
                    return match verb {
                        "report" => Route::JobReport(id),
                        "html" => Route::JobHtml(id),
                        _ => Route::NotFound,
                    };
                }
            }
            Route::NotFound
        }
    }
}
