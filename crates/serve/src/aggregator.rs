//! The pure aggregation core: rolling multi-tenant rollups over streaming
//! session diffs, with bounded per-tenant memory.
//!
//! Everything in this module is deterministic — no wall clock, no I/O, no
//! threads. Time comes from two places only: the *virtual* window
//! timestamps inside each message (which drive the per-job bandwidth
//! ring), and a logical **ingest tick** that advances once per delivered
//! message (which drives idle-tenant eviction). The transport layer
//! ([`crate::daemon`]) owns the locks and sockets; tests drive this type
//! directly and get byte-identical state for byte-identical input.
//!
//! Memory is bounded per tenant and in tenant count:
//! * the ingest queue holds at most `queue_capacity` undrained messages —
//!   beyond that, *new* messages for the hot tenant are dropped and
//!   counted (never unbounded growth, never impact on other tenants);
//! * the merged file table is pruned back to `top_files` rows (by bytes
//!   read) whenever it doubles;
//! * the bandwidth ring has a fixed `slots` length;
//! * at most `max_jobs` tenants exist — admitting a new job beyond the cap
//!   evicts the longest-idle tenant (and `idle_ticks`, when nonzero,
//!   additionally reaps tenants that stopped publishing).

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use tfdarshan::analysis::{FileActivity, IoStats, StdioStats};
use tfdarshan::wire::{SessionDiffMsg, WIRE_VERSION};
use tfdarshan::{SchedStatsReport, TfDarshanReport};

/// Tuning knobs of the aggregation core.
#[derive(Clone, Debug)]
pub struct AggregatorConfig {
    /// Hard tenant cap. Admitting a job beyond this evicts the
    /// longest-idle existing tenant first.
    pub max_jobs: usize,
    /// Evict tenants whose last update is more than this many ingest
    /// ticks in the past (checked on every delivery). `0` disables
    /// idle reaping (the cap still bounds memory).
    pub idle_ticks: u64,
    /// Width of one bandwidth-ring slot, in virtual seconds.
    pub slot_secs: f64,
    /// Bandwidth-ring length per tenant.
    pub slots: usize,
    /// Per-tenant file-table bound: the merged table is pruned back to
    /// this many rows (largest `bytes_read` first) when it reaches twice
    /// the bound.
    pub top_files: usize,
    /// Per-tenant ingest queue bound (backpressure: excess is dropped and
    /// counted, see [`Enqueue::Dropped`]).
    pub queue_capacity: usize,
    /// Messages applied per tenant per [`Aggregator::pump`] round.
    pub pump_budget: usize,
}

impl Default for AggregatorConfig {
    fn default() -> Self {
        AggregatorConfig {
            max_jobs: 1024,
            idle_ticks: 0,
            slot_secs: 1.0,
            slots: 64,
            top_files: 50,
            queue_capacity: 256,
            pump_budget: 64,
        }
    }
}

/// Outcome of offering one message to the ingest queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Enqueue {
    /// Accepted into the tenant's queue.
    Queued,
    /// The tenant's queue was full; the message was dropped and counted.
    Dropped,
    /// Unknown wire version; rejected and counted.
    Rejected,
}

/// Fixed-length ring of `(slot index, bytes read, bytes written)` keyed by
/// virtual time: slot `i` covers `[i·slot_secs, (i+1)·slot_secs)`. Session
/// windows land in the slot of their *end* timestamp (completion-ordered,
/// like the DXT-derived `bandwidth_series`).
#[derive(Clone, Debug)]
pub struct BandwidthRing {
    slot_secs: f64,
    ring: VecDeque<(u64, u64, u64)>,
    cap: usize,
}

impl BandwidthRing {
    fn new(slot_secs: f64, cap: usize) -> Self {
        BandwidthRing {
            slot_secs,
            ring: VecDeque::with_capacity(cap),
            cap: cap.max(1),
        }
    }

    fn add(&mut self, end: f64, bytes_read: u64, bytes_written: u64) {
        let slot = (end.max(0.0) / self.slot_secs) as u64;
        // Sessions arrive roughly end-time ordered per tenant; merge into
        // an existing slot wherever it still lives in the ring.
        if let Some(e) = self.ring.iter_mut().rev().find(|e| e.0 == slot) {
            e.1 += bytes_read;
            e.2 += bytes_written;
            return;
        }
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back((slot, bytes_read, bytes_written));
    }

    /// The rolled-up timeline: `(slot end time, read MiB/s, write MiB/s)`.
    pub fn series(&self) -> Vec<(f64, f64, f64)> {
        let mib = 1024.0 * 1024.0;
        self.ring
            .iter()
            .map(|&(slot, r, w)| {
                (
                    (slot + 1) as f64 * self.slot_secs,
                    r as f64 / mib / self.slot_secs,
                    w as f64 / mib / self.slot_secs,
                )
            })
            .collect()
    }

    /// Occupied slots.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no slot is occupied yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

/// Rolling per-job rollup of everything the job has streamed so far.
#[derive(Clone, Debug)]
pub struct JobAggregate {
    /// The job id (tenant key), exactly as supplied on the wire.
    pub job: String,
    /// Sessions applied.
    pub sessions: u64,
    /// Distinct ranks seen.
    pub ranks: BTreeSet<u32>,
    /// Union of all session windows `[min start, max stop]`.
    pub window: (f64, f64),
    /// Accumulated POSIX counters (bandwidths recomputed over the union
    /// window on read).
    pub io: IoStats,
    /// Accumulated STDIO counters.
    pub stdio: StdioStats,
    /// Merged per-file table, pruned to the configured bound.
    pub files: HashMap<String, FileActivity>,
    /// Merged read-size tallies (from the sessions' top-4 lists, so a
    /// rolling approximation, exact when sessions have ≤ 4 distinct
    /// sizes).
    pub read_sizes: BTreeMap<u64, u64>,
    /// Time-windowed bandwidth rollup.
    pub ring: BandwidthRing,
    /// Summed sanitizer findings / errors / warnings over all sessions.
    pub sanitizer: (u64, u64, u64),
    /// Sanitizer events analyzed (summed).
    pub sanitizer_events: u64,
    /// Union of sanitizer finding categories.
    pub sanitizer_categories: BTreeSet<String>,
    /// Last scheduler gauge the job reported.
    pub scheduler: Option<SchedStatsReport>,
    /// Diffs dropped for this tenant by queue backpressure.
    pub dropped: u64,
    /// Sequence gaps detected (messages the publisher numbered but the
    /// daemon never saw — lost upstream, not in our queue).
    pub seq_gaps: u64,
    /// Per-rank next expected sequence number.
    next_seq: HashMap<u32, u64>,
    /// Ingest tick of the last applied or queued message.
    pub last_update: u64,
}

impl JobAggregate {
    fn new(job: String, cfg: &AggregatorConfig, tick: u64) -> Self {
        JobAggregate {
            job,
            sessions: 0,
            ranks: BTreeSet::new(),
            window: (f64::INFINITY, f64::NEG_INFINITY),
            io: IoStats::default(),
            stdio: StdioStats::default(),
            files: HashMap::new(),
            read_sizes: BTreeMap::new(),
            ring: BandwidthRing::new(cfg.slot_secs, cfg.slots),
            sanitizer: (0, 0, 0),
            sanitizer_events: 0,
            sanitizer_categories: BTreeSet::new(),
            scheduler: None,
            dropped: 0,
            seq_gaps: 0,
            next_seq: HashMap::new(),
            last_update: tick,
        }
    }

    fn apply(&mut self, msg: &SessionDiffMsg, top_files: usize) {
        let r = &msg.report;
        self.sessions += 1;
        self.ranks.insert(msg.rank);
        self.window.0 = self.window.0.min(r.window.0);
        self.window.1 = self.window.1.max(r.window.1);

        let io = &mut self.io;
        let s = &r.io;
        io.files_opened += s.files_opened;
        io.files_active += s.files_active;
        io.opens += s.opens;
        io.reads += s.reads;
        io.writes += s.writes;
        io.seeks += s.seeks;
        io.stats += s.stats;
        io.bytes_read += s.bytes_read;
        io.bytes_written += s.bytes_written;
        io.seq_reads += s.seq_reads;
        io.consec_reads += s.consec_reads;
        io.zero_reads += s.zero_reads;
        for b in 0..10 {
            io.read_size_hist[b] += s.read_size_hist[b];
            io.write_size_hist[b] += s.write_size_hist[b];
            io.file_size_hist[b] += s.file_size_hist[b];
        }
        io.read_time += s.read_time;
        io.meta_time += s.meta_time;
        io.partial |= s.partial;
        for &(size, count) in &s.common_read_sizes {
            *self.read_sizes.entry(size).or_default() += count;
        }

        let st = &mut self.stdio;
        st.opens += r.stdio.opens;
        st.writes += r.stdio.writes;
        st.reads += r.stdio.reads;
        st.bytes_written += r.stdio.bytes_written;
        st.bytes_read += r.stdio.bytes_read;
        st.flushes += r.stdio.flushes;

        for f in &r.files {
            match self.files.get_mut(&f.path) {
                Some(e) => {
                    e.reads += f.reads;
                    e.bytes_read += f.bytes_read;
                    e.apparent_size = e.apparent_size.max(f.apparent_size);
                    e.read_time += f.read_time;
                }
                None => {
                    self.files.insert(f.path.clone(), f.clone());
                }
            }
        }
        if self.files.len() >= top_files.max(1) * 2 {
            self.prune_files(top_files.max(1));
        }

        self.ring.add(r.window.1, s.bytes_read, s.bytes_written);

        if let Some(sz) = &r.sanitizer {
            self.sanitizer.0 += sz.findings;
            self.sanitizer.1 += sz.errors;
            self.sanitizer.2 += sz.warnings;
            self.sanitizer_events += sz.events_analyzed;
            self.sanitizer_categories
                .extend(sz.categories.iter().cloned());
        }
        if r.scheduler.is_some() {
            self.scheduler = r.scheduler;
        }

        let expected = self.next_seq.entry(msg.rank).or_insert(0);
        if msg.seq > *expected {
            self.seq_gaps += msg.seq - *expected;
        }
        *expected = (*expected).max(msg.seq + 1);
    }

    fn prune_files(&mut self, keep: usize) {
        if self.files.len() <= keep {
            return;
        }
        let mut rows: Vec<(&String, u64)> =
            self.files.iter().map(|(p, f)| (p, f.bytes_read)).collect();
        // Largest first; path as tie-break so pruning is deterministic.
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let cut: Vec<String> = rows[keep..].iter().map(|(p, _)| (*p).clone()).collect();
        for p in cut {
            self.files.remove(&p);
        }
    }

    /// The job's rolled-up report — what `/jobs/<id>/report` and the live
    /// HTML page render. Counters are the exact sums of every applied
    /// session diff; bandwidths are recomputed over the union window.
    pub fn report(&self) -> TfDarshanReport {
        let mut io = self.io.clone();
        let window = if self.sessions == 0 {
            (0.0, 0.0)
        } else {
            self.window
        };
        io.window_secs = (window.1 - window.0).max(0.0);
        io.read_bandwidth_mibps = 0.0;
        io.write_bandwidth_mibps = 0.0;
        if io.window_secs > 0.0 {
            let mib = 1024.0 * 1024.0;
            io.read_bandwidth_mibps = io.bytes_read as f64 / mib / io.window_secs;
            io.write_bandwidth_mibps = io.bytes_written as f64 / mib / io.window_secs;
        }
        let mut sizes: Vec<(u64, u64)> = self.read_sizes.iter().map(|(&s, &c)| (s, c)).collect();
        sizes.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        sizes.truncate(4);
        io.common_read_sizes = sizes;

        let mut files: Vec<FileActivity> = self.files.values().cloned().collect();
        files.sort_by(|a, b| a.path.cmp(&b.path));

        let sanitizer =
            (self.sanitizer.0 + self.sanitizer_events > 0).then(|| iosan::SanitizerSummary {
                findings: self.sanitizer.0,
                errors: self.sanitizer.1,
                warnings: self.sanitizer.2,
                events_analyzed: self.sanitizer_events,
                categories: self.sanitizer_categories.iter().cloned().collect(),
            });
        TfDarshanReport {
            window,
            io,
            stdio: self.stdio.clone(),
            files,
            sanitizer,
            scheduler: self.scheduler,
            // Exploration runs offline, never over the live diff stream.
            explore: None,
        }
    }
}

/// Fleet-wide counters (survive tenant eviction).
#[derive(Clone, Copy, Debug, Default)]
pub struct FleetStats {
    /// Messages applied into some tenant's rollup.
    pub ingested: u64,
    /// Messages dropped by per-tenant queue backpressure.
    pub dropped: u64,
    /// Messages rejected for an unknown wire version.
    pub wire_rejects: u64,
    /// Tenants evicted (cap overflow or idle reaping).
    pub evicted: u64,
    /// Bytes read across every applied session of every job ever seen.
    pub bytes_read: u64,
    /// Bytes written, fleet-wide.
    pub bytes_written: u64,
}

/// Deterministic memory footprint of the aggregator, in countable units —
/// what the flood test bounds instead of allocator bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Footprint {
    /// Live tenants.
    pub tenants: usize,
    /// Undrained queued messages across all tenants.
    pub queued_msgs: usize,
    /// Merged file-table rows across all tenants.
    pub file_rows: usize,
    /// Occupied bandwidth-ring slots across all tenants.
    pub ring_slots: usize,
}

/// The multi-tenant aggregation core. See the module docs for the
/// determinism and boundedness contract.
pub struct Aggregator {
    cfg: AggregatorConfig,
    tick: u64,
    tenants: HashMap<String, Tenant>,
    fleet: FleetStats,
}

struct Tenant {
    queue: VecDeque<SessionDiffMsg>,
    agg: JobAggregate,
}

impl Aggregator {
    /// Fresh aggregator.
    pub fn new(cfg: AggregatorConfig) -> Self {
        assert!(cfg.slot_secs > 0.0 && cfg.slots > 0 && cfg.max_jobs > 0);
        Aggregator {
            cfg,
            tick: 0,
            tenants: HashMap::new(),
            fleet: FleetStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AggregatorConfig {
        &self.cfg
    }

    /// Offer one message: version-check, admit (evicting if at the tenant
    /// cap), and queue under the tenant's backpressure bound.
    pub fn enqueue(&mut self, msg: SessionDiffMsg) -> Enqueue {
        self.tick += 1;
        if msg.v != WIRE_VERSION {
            self.fleet.wire_rejects += 1;
            return Enqueue::Rejected;
        }
        self.reap_idle();
        if !self.tenants.contains_key(&msg.job) && self.tenants.len() >= self.cfg.max_jobs {
            self.evict_most_idle();
        }
        let tick = self.tick;
        let tenant = self
            .tenants
            .entry(msg.job.clone())
            .or_insert_with(|| Tenant {
                queue: VecDeque::new(),
                agg: JobAggregate::new(msg.job.clone(), &self.cfg, tick),
            });
        tenant.agg.last_update = tick;
        if tenant.queue.len() >= self.cfg.queue_capacity {
            tenant.agg.dropped += 1;
            self.fleet.dropped += 1;
            return Enqueue::Dropped;
        }
        tenant.queue.push_back(msg);
        Enqueue::Queued
    }

    /// Drain up to `pump_budget` queued messages per tenant into the
    /// rollups (tenants visited in sorted-id order: deterministic).
    /// Returns the number applied.
    pub fn pump(&mut self) -> usize {
        let ids: Vec<String> = {
            let mut v: Vec<&String> = self.tenants.keys().collect();
            v.sort();
            v.into_iter().cloned().collect()
        };
        let mut applied = 0;
        for id in ids {
            applied += self.pump_tenant(&id, self.cfg.pump_budget);
        }
        applied
    }

    /// Drain every queue to empty. Returns the number applied.
    pub fn pump_to_empty(&mut self) -> usize {
        let mut total = 0;
        loop {
            let n = self.pump();
            total += n;
            if n == 0 {
                return total;
            }
        }
    }

    fn pump_tenant(&mut self, id: &str, budget: usize) -> usize {
        let Some(t) = self.tenants.get_mut(id) else {
            return 0;
        };
        let mut applied = 0;
        while applied < budget {
            let Some(msg) = t.queue.pop_front() else {
                break;
            };
            t.agg.apply(&msg, self.cfg.top_files);
            self.fleet.ingested += 1;
            self.fleet.bytes_read += msg.report.io.bytes_read;
            self.fleet.bytes_written += msg.report.io.bytes_written;
            applied += 1;
        }
        applied
    }

    /// Enqueue and immediately drain this tenant — the synchronous
    /// in-process path (tests, benches, the local publisher fast path).
    pub fn ingest(&mut self, msg: SessionDiffMsg) -> Enqueue {
        let job = msg.job.clone();
        let r = self.enqueue(msg);
        if r == Enqueue::Queued {
            self.pump_tenant(&job, usize::MAX);
        }
        r
    }

    fn reap_idle(&mut self) {
        if self.cfg.idle_ticks == 0 {
            return;
        }
        let horizon = self.tick.saturating_sub(self.cfg.idle_ticks);
        let stale: Vec<String> = self
            .tenants
            .iter()
            .filter(|(_, t)| t.agg.last_update < horizon)
            .map(|(id, _)| id.clone())
            .collect();
        for id in stale {
            self.tenants.remove(&id);
            self.fleet.evicted += 1;
        }
    }

    fn evict_most_idle(&mut self) {
        // Oldest last_update first; id as tie-break for determinism.
        let victim = self
            .tenants
            .iter()
            .min_by(|a, b| {
                a.1.agg
                    .last_update
                    .cmp(&b.1.agg.last_update)
                    .then_with(|| a.0.cmp(b.0))
            })
            .map(|(id, _)| id.clone());
        if let Some(id) = victim {
            self.tenants.remove(&id);
            self.fleet.evicted += 1;
        }
    }

    /// Live tenant ids, sorted.
    pub fn job_ids(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tenants.keys().cloned().collect();
        v.sort();
        v
    }

    /// A tenant's rollup.
    pub fn job(&self, id: &str) -> Option<&JobAggregate> {
        self.tenants.get(id).map(|t| &t.agg)
    }

    /// Fleet-wide counters.
    pub fn fleet(&self) -> FleetStats {
        self.fleet
    }

    /// Current logical ingest tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Countable memory footprint (see [`Footprint`]).
    pub fn footprint(&self) -> Footprint {
        Footprint {
            tenants: self.tenants.len(),
            queued_msgs: self.tenants.values().map(|t| t.queue.len()).sum(),
            file_rows: self.tenants.values().map(|t| t.agg.files.len()).sum(),
            ring_slots: self.tenants.values().map(|t| t.agg.ring.len()).sum(),
        }
    }

    /// Render the Prometheus text exposition of the whole aggregator
    /// (fleet counters first, then per-job families, jobs sorted).
    pub fn render_metrics(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let f = &self.fleet;
        let _ = writeln!(out, "# HELP tfdarshan_jobs_live Live tenants.");
        let _ = writeln!(out, "# TYPE tfdarshan_jobs_live gauge");
        let _ = writeln!(out, "tfdarshan_jobs_live {}", self.tenants.len());
        for (name, help, v) in [
            (
                "tfdarshan_diffs_ingested_total",
                "Session diffs applied into rollups.",
                f.ingested,
            ),
            (
                "tfdarshan_diffs_dropped_total",
                "Session diffs dropped by per-tenant backpressure.",
                f.dropped,
            ),
            (
                "tfdarshan_wire_rejects_total",
                "Messages rejected for an unknown wire version.",
                f.wire_rejects,
            ),
            (
                "tfdarshan_jobs_evicted_total",
                "Tenants evicted (cap overflow or idle).",
                f.evicted,
            ),
            (
                "tfdarshan_bytes_read_total",
                "Fleet-wide bytes read across all applied sessions.",
                f.bytes_read,
            ),
            (
                "tfdarshan_bytes_written_total",
                "Fleet-wide bytes written.",
                f.bytes_written,
            ),
        ] {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }

        let ids = self.job_ids();
        let emit_family = |out: &mut String, name: &str, help: &str, kind: &str| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
        };
        macro_rules! per_job {
            ($name:literal, $help:literal, $kind:literal, $get:expr) => {
                emit_family(&mut out, $name, $help, $kind);
                for id in &ids {
                    let a = &self.tenants[id].agg;
                    #[allow(clippy::redundant_closure_call)]
                    let v = ($get)(a);
                    let _ = writeln!(
                        out,
                        concat!($name, "{{job=\"{}\"}} {}"),
                        label_escape(id),
                        v
                    );
                }
            };
        }
        per_job!(
            "tfdarshan_job_sessions_total",
            "Sessions applied for this job.",
            "counter",
            |a: &JobAggregate| a.sessions
        );
        per_job!(
            "tfdarshan_job_ranks",
            "Distinct ranks seen for this job.",
            "gauge",
            |a: &JobAggregate| a.ranks.len()
        );
        per_job!(
            "tfdarshan_job_bytes_read_total",
            "Bytes read by this job across its sessions.",
            "counter",
            |a: &JobAggregate| a.io.bytes_read
        );
        per_job!(
            "tfdarshan_job_bytes_written_total",
            "Bytes written by this job.",
            "counter",
            |a: &JobAggregate| a.io.bytes_written
        );
        per_job!(
            "tfdarshan_job_reads_total",
            "POSIX reads by this job.",
            "counter",
            |a: &JobAggregate| a.io.reads
        );
        per_job!(
            "tfdarshan_job_writes_total",
            "POSIX writes by this job.",
            "counter",
            |a: &JobAggregate| a.io.writes
        );
        per_job!(
            "tfdarshan_job_opens_total",
            "POSIX opens by this job.",
            "counter",
            |a: &JobAggregate| a.io.opens
        );
        per_job!(
            "tfdarshan_job_dropped_total",
            "Diffs dropped for this tenant by backpressure.",
            "counter",
            |a: &JobAggregate| a.dropped
        );
        per_job!(
            "tfdarshan_job_seq_gaps_total",
            "Sequence gaps detected in this job's stream.",
            "counter",
            |a: &JobAggregate| a.seq_gaps
        );
        per_job!(
            "tfdarshan_job_read_bandwidth_mibps",
            "Read bandwidth over the job's union window, MiB/s.",
            "gauge",
            |a: &JobAggregate| format!("{:.6}", a.report().io.read_bandwidth_mibps)
        );
        per_job!(
            "tfdarshan_job_sanitizer_findings_total",
            "iosan findings reported by this job.",
            "counter",
            |a: &JobAggregate| a.sanitizer.0
        );
        per_job!(
            "tfdarshan_job_sched_peak_live_tasks",
            "Last reported scheduler peak of concurrently live tasks.",
            "gauge",
            |a: &JobAggregate| a.scheduler.map(|s| s.peak_live_tasks).unwrap_or(0)
        );
        out
    }
}

/// Escape a Prometheus label value (backslash, double quote, newline).
pub fn label_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfdarshan::wire::WIRE_VERSION;

    fn msg(job: &str, rank: u32, seq: u64, bytes: u64, end: f64) -> SessionDiffMsg {
        let mut report = TfDarshanReport {
            window: (end - 1.0, end),
            ..Default::default()
        };
        report.io.reads = 2;
        report.io.bytes_read = bytes;
        report.io.read_size_hist[3] = 2;
        report.files = vec![FileActivity {
            path: format!("/data/{job}/f{seq}"),
            reads: 2,
            bytes_read: bytes,
            apparent_size: bytes,
            read_time: 0.01,
        }];
        SessionDiffMsg {
            v: WIRE_VERSION,
            job: job.into(),
            rank,
            seq,
            report,
        }
    }

    #[test]
    fn counters_sum_exactly_across_sessions_and_ranks() {
        let mut agg = Aggregator::new(AggregatorConfig::default());
        for seq in 0..5 {
            assert_eq!(
                agg.ingest(msg("a", 0, seq, 1000, seq as f64 + 1.0)),
                Enqueue::Queued
            );
            assert_eq!(
                agg.ingest(msg("a", 1, seq, 500, seq as f64 + 1.5)),
                Enqueue::Queued
            );
        }
        let a = agg.job("a").unwrap();
        assert_eq!(a.sessions, 10);
        assert_eq!(a.ranks.len(), 2);
        assert_eq!(a.io.bytes_read, 5 * 1500);
        assert_eq!(a.io.reads, 20);
        assert_eq!(a.seq_gaps, 0);
        let r = a.report();
        assert_eq!(r.io.bytes_read, 7500);
        assert_eq!(r.io.read_size_hist[3], 20);
        assert!((r.window.0 - 0.0).abs() < 1e-9 && (r.window.1 - 5.5).abs() < 1e-9);
        assert!(r.io.read_bandwidth_mibps > 0.0);
        let fleet = agg.fleet();
        assert_eq!(fleet.ingested, 10);
        assert_eq!(fleet.bytes_read, 7500);
    }

    #[test]
    fn backpressure_drops_only_the_hot_tenant() {
        let mut agg = Aggregator::new(AggregatorConfig {
            queue_capacity: 8,
            ..Default::default()
        });
        // Flood tenant "hot" without pumping; interleave tenant "cold".
        let mut cold_sent = 0u64;
        for i in 0..1000u64 {
            agg.enqueue(msg("hot", 0, i, 10, i as f64));
            if i % 200 == 0 {
                agg.enqueue(msg("cold", 0, cold_sent, 7, i as f64));
                cold_sent += 1;
            }
        }
        let fp = agg.footprint();
        assert!(fp.queued_msgs <= 2 * 8, "queues stay bounded: {fp:?}");
        assert_eq!(agg.fleet().dropped, 1000 - 8);
        agg.pump_to_empty();
        let cold = agg.job("cold").unwrap();
        assert_eq!(cold.sessions, cold_sent, "cold tenant lost nothing");
        assert_eq!(cold.io.bytes_read, cold_sent * 7);
        assert_eq!(cold.dropped, 0);
        let hot = agg.job("hot").unwrap();
        assert_eq!(hot.sessions, 8, "hot tenant kept only its queue bound");
        assert_eq!(hot.dropped, 1000 - 8);
        // The queued prefix is consecutive (seqs 0..8): daemon-side drops
        // are counted in `dropped`; `seq_gaps` is for *upstream* loss.
        assert_eq!(hot.seq_gaps, 0);
    }

    #[test]
    fn sequence_gaps_surface_upstream_loss() {
        let mut agg = Aggregator::new(AggregatorConfig::default());
        for seq in [0u64, 1, 4, 5, 9] {
            agg.ingest(msg("a", 0, seq, 10, seq as f64));
        }
        // Missing: 2, 3 (before 4) and 6, 7, 8 (before 9) = 5 gaps.
        assert_eq!(agg.job("a").unwrap().seq_gaps, 5);
        // Per-rank numbering: a second rank starting at 0 adds no gaps.
        agg.ingest(msg("a", 1, 0, 10, 1.0));
        assert_eq!(agg.job("a").unwrap().seq_gaps, 5);
    }

    #[test]
    fn tenant_cap_evicts_longest_idle() {
        let mut agg = Aggregator::new(AggregatorConfig {
            max_jobs: 3,
            ..Default::default()
        });
        for (i, id) in ["a", "b", "c"].iter().enumerate() {
            agg.ingest(msg(id, 0, 0, 10, i as f64));
        }
        agg.ingest(msg("b", 0, 1, 10, 5.0)); // refresh b; a is now oldest
        agg.ingest(msg("d", 0, 0, 10, 6.0)); // over cap: evicts a
        assert_eq!(agg.job_ids(), vec!["b", "c", "d"]);
        assert_eq!(agg.fleet().evicted, 1);
        // Fleet counters survive the eviction.
        assert_eq!(agg.fleet().ingested, 5);
        assert_eq!(agg.fleet().bytes_read, 50);
    }

    #[test]
    fn idle_reaping_removes_silent_tenants() {
        let mut agg = Aggregator::new(AggregatorConfig {
            idle_ticks: 10,
            ..Default::default()
        });
        agg.ingest(msg("quiet", 0, 0, 10, 1.0));
        for i in 0..20u64 {
            agg.ingest(msg("busy", 0, i, 10, i as f64));
        }
        assert_eq!(agg.job_ids(), vec!["busy"]);
        assert_eq!(agg.fleet().evicted, 1);
    }

    #[test]
    fn file_table_is_pruned_to_top_files() {
        let mut agg = Aggregator::new(AggregatorConfig {
            top_files: 4,
            ..Default::default()
        });
        for seq in 0..100u64 {
            // Each session reports a distinct file; later files are bigger.
            let mut m = msg("a", 0, seq, 1000 + seq, seq as f64);
            m.report.files[0].bytes_read = 1000 + seq;
            agg.ingest(m);
        }
        let a = agg.job("a").unwrap();
        assert!(
            a.files.len() < 8,
            "bounded by 2×top_files: {}",
            a.files.len()
        );
        // The biggest file survived pruning.
        assert!(a.files.contains_key("/data/a/f99"));
        // Counter exactness is independent of pruning.
        assert_eq!(a.io.bytes_read, (0..100).map(|s| 1000 + s).sum::<u64>());
    }

    #[test]
    fn wire_version_mismatch_is_rejected_and_counted() {
        let mut agg = Aggregator::new(AggregatorConfig::default());
        let mut m = msg("a", 0, 0, 10, 1.0);
        m.v = WIRE_VERSION + 1;
        assert_eq!(agg.enqueue(m), Enqueue::Rejected);
        assert_eq!(agg.fleet().wire_rejects, 1);
        assert!(agg.job_ids().is_empty());
    }

    #[test]
    fn bandwidth_ring_rolls_and_stays_fixed_length() {
        let mut ring = BandwidthRing::new(1.0, 4);
        for i in 0..10u64 {
            ring.add(i as f64 + 0.5, 1 << 20, 0);
        }
        assert_eq!(ring.len(), 4);
        let series = ring.series();
        assert_eq!(series.len(), 4);
        assert!((series[3].0 - 10.0).abs() < 1e-9);
        assert!((series[3].1 - 1.0).abs() < 1e-9, "1 MiB in a 1s slot");
        // Same-slot adds merge.
        let mut ring = BandwidthRing::new(1.0, 4);
        ring.add(0.2, 512 << 10, 0);
        ring.add(0.7, 512 << 10, 0);
        assert_eq!(ring.len(), 1);
        assert!((ring.series()[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn metrics_exposition_renders_and_escapes_labels() {
        let mut agg = Aggregator::new(AggregatorConfig::default());
        agg.ingest(msg("job\"weird\\name", 0, 0, 1234, 1.0));
        let text = agg.render_metrics();
        assert!(text.contains("tfdarshan_jobs_live 1"));
        assert!(text.contains("tfdarshan_diffs_ingested_total 1"));
        assert!(text.contains(r#"tfdarshan_job_bytes_read_total{job="job\"weird\\name"} 1234"#));
        assert!(text.contains("# TYPE tfdarshan_job_read_bandwidth_mibps gauge"));
    }

    #[test]
    fn deterministic_for_identical_input() {
        let feed = |agg: &mut Aggregator| {
            for i in 0..50u64 {
                agg.enqueue(msg(
                    &format!("j{}", i % 7),
                    (i % 3) as u32,
                    i / 7,
                    i * 10,
                    i as f64,
                ));
                if i % 5 == 0 {
                    agg.pump();
                }
            }
            agg.pump_to_empty();
        };
        let mut a = Aggregator::new(AggregatorConfig::default());
        let mut b = Aggregator::new(AggregatorConfig::default());
        feed(&mut a);
        feed(&mut b);
        assert_eq!(a.render_metrics(), b.render_metrics());
        assert_eq!(a.footprint(), b.footprint());
    }
}
