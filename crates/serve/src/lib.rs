//! Live multi-tenant observability over streaming tf-Darshan session
//! diffs.
//!
//! The paper's tf-Darshan surfaces fine-grained I/O analysis *per run*,
//! rendered after the fact. This crate adds the fleet view: a
//! long-running daemon that many concurrent training jobs stream their
//! per-session diffs to (the O(changed) output of the incremental
//! snapshot engine), keyed by job id, with rolling per-job and
//! fleet-wide rollups served live over HTTP — Prometheus `/metrics` for
//! scrapers, JSON `/jobs` + `/jobs/<id>/report` for tooling, and a live
//! `/jobs/<id>/html` page per job (the report page tf-Darshan renders,
//! but over the job's whole streamed history while it is still running).
//!
//! Layering (see `DESIGN.md` §3.7):
//! * [`aggregator`] — the pure core: deterministic, testable without
//!   sockets or threads; bounded per-tenant queues (backpressure with
//!   counted drops), bounded file tables, fixed-length bandwidth rings,
//!   tenant cap with idle eviction.
//! * [`sink`] — the job side: [`ServeSink`] numbers each rank's sessions
//!   and publishes them through a [`Publisher`] (in-process
//!   [`LocalPublisher`] or NDJSON-over-TCP [`TcpPublisher`]); it also
//!   implements `probe::ProbeSink` for cheap live gauges off the spine.
//! * [`daemon`] — the transport shell: two `std::net` listeners (HTTP +
//!   ingest) and a pump thread around a mutexed aggregator. No external
//!   dependencies; the workspace is vendored/offline.
//!
//! The load-bearing invariant is **exactness**: session diffs are
//! additive window deltas, so the daemon's per-job counters equal the
//! job's own final reduced report, u64-exactly — the `serve_gate`
//! workload asserts this across ≥4 concurrent jobs publishing over both
//! transports while a flood test shows backpressure never perturbs other
//! tenants.

pub mod aggregator;
pub mod daemon;
pub mod http;
pub mod sink;

pub use aggregator::{
    Aggregator, AggregatorConfig, BandwidthRing, Enqueue, FleetStats, Footprint, JobAggregate,
};
pub use daemon::{JobSummary, JobsListing, ServeConfig, ServeDaemon, ServeService};
pub use http::http_get;
pub use sink::{LiveCounters, LocalPublisher, Publisher, ServeSink, TcpPublisher};
