//! A deliberately tiny HTTP/1.0 layer over `std::net` — just enough to
//! serve `/metrics` and the JSON/HTML report endpoints to curl and a
//! Prometheus scraper, with no external dependencies (the workspace is
//! fully vendored/offline). One request per connection, `Connection:
//! close`, bounded header reads.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Maximum accepted request head (request line + headers) in bytes.
const MAX_HEAD: usize = 16 * 1024;

/// A parsed request head: method and path (query strings are not split —
/// no endpoint takes one).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// The request target, e.g. `/jobs/alpha/report`.
    pub path: String,
}

/// Read and parse one request head off a stream. Returns `None` on
/// malformed input, over-long heads, or early EOF.
pub fn read_request(stream: &mut TcpStream) -> Option<Request> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut head = 0usize;
    reader.read_line(&mut line).ok()?;
    head += line.len();
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    if !path.starts_with('/') {
        return None;
    }
    // Drain headers until the blank line so the peer sees a clean close.
    loop {
        let mut h = String::new();
        let n = reader.read_line(&mut h).ok()?;
        head += n;
        if n == 0 || h == "\r\n" || h == "\n" {
            break;
        }
        if head > MAX_HEAD {
            return None;
        }
    }
    Some(Request { method, path })
}

/// Write a complete response with `Content-Length` and close semantics.
pub fn respond(stream: &mut TcpStream, status: u32, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Blocking single-shot GET client used by gates, examples, and tests.
/// Returns `(status, body)`.
pub fn http_get<A: ToSocketAddrs>(addr: A, path: &str) -> std::io::Result<(u32, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(format!("GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n").as_bytes())?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .or_else(|| raw.split_once("\n\n"))
        .unwrap_or((raw.as_str(), ""));
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    Ok((status, body.to_string()))
}

/// Percent-decode a URL path segment (enough for job ids in paths; invalid
/// escapes are passed through verbatim).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if let (Some(h), Some(l)) = (
                bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16)),
                bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16)),
            ) {
                out.push((h * 16 + l) as u8);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding_handles_escapes_and_passthrough() {
        assert_eq!(percent_decode("plain-job"), "plain-job");
        assert_eq!(percent_decode("job%20one"), "job one");
        assert_eq!(percent_decode("a%2Fb"), "a/b");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
        assert_eq!(percent_decode("trail%2"), "trail%2");
    }

    #[test]
    fn request_response_over_a_real_socket() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let req = read_request(&mut s).expect("parses");
            assert_eq!(req.method, "GET");
            assert_eq!(req.path, "/metrics");
            respond(&mut s, 200, "text/plain", "hello 1\n");
        });
        let (status, body) = http_get(addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "hello 1\n");
        server.join().unwrap();
    }
}
