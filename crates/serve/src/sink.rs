//! Job-side publishing: how a running job hands its session diffs to the
//! daemon.
//!
//! Two transports behind one [`Publisher`] trait:
//! * [`LocalPublisher`] — same-process delivery straight into the
//!   daemon's aggregator (a simulated job and its daemon sharing one OS
//!   process, the common test/bench topology);
//! * [`TcpPublisher`] — NDJSON lines over the daemon's ingest socket,
//!   the cross-process path real jobs would use.
//!
//! [`ServeSink`] sits on top: it carries the job id, numbers each rank's
//! sessions, and also implements [`probe::ProbeSink`] so it can ride the
//! probe spine for cheap *live* op/byte gauges between session
//! publications. The `ProbeSink` impl is called on sim threads at flush
//! points and therefore only touches its own atomics — no locks, no
//! syscalls, no blocking (publishing itself happens from whatever thread
//! calls [`ServeSink::publish_session`], never from `on_events`).

use std::collections::HashMap;
use std::io::{BufWriter, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use probe::{EventKind, IoEvent, ProbeSink};
use tfdarshan::wire::SessionDiffMsg;
use tfdarshan::{JobCtx, RankSession};

use crate::daemon::ServeService;

/// A destination for session-diff messages.
pub trait Publisher: Send + Sync {
    /// Deliver one message. Errors are transport failures; the daemon
    /// dropping the message under backpressure is *not* an error (the
    /// daemon counts it).
    fn publish(&self, msg: &SessionDiffMsg) -> std::io::Result<()>;
}

/// In-process delivery into a daemon's aggregation service.
pub struct LocalPublisher {
    service: Arc<ServeService>,
}

impl LocalPublisher {
    /// Publish into `service`.
    pub fn new(service: Arc<ServeService>) -> Self {
        LocalPublisher { service }
    }
}

impl Publisher for LocalPublisher {
    fn publish(&self, msg: &SessionDiffMsg) -> std::io::Result<()> {
        self.service.offer(msg.clone());
        Ok(())
    }
}

/// NDJSON-over-TCP delivery to a daemon's ingest socket. Connects lazily
/// on first publish and retries the connection once per publish after a
/// failure (a daemon restart shows up as one lost message window, not a
/// wedged publisher).
pub struct TcpPublisher {
    addr: SocketAddr,
    conn: Mutex<Option<BufWriter<TcpStream>>>,
}

impl TcpPublisher {
    /// Publish to the ingest socket at `addr`.
    pub fn new(addr: SocketAddr) -> Self {
        TcpPublisher {
            addr,
            conn: Mutex::new(None),
        }
    }

    fn send_line(&self, line: &str) -> std::io::Result<()> {
        let mut guard = self.conn.lock();
        if guard.is_none() {
            *guard = Some(BufWriter::new(TcpStream::connect(self.addr)?));
        }
        let w = guard.as_mut().expect("connected above");
        let wrote = w
            .write_all(line.as_bytes())
            .and_then(|()| w.write_all(b"\n"))
            .and_then(|()| w.flush());
        if wrote.is_err() {
            // Drop the dead connection; the next publish reconnects.
            *guard = None;
        }
        wrote
    }
}

impl Publisher for TcpPublisher {
    fn publish(&self, msg: &SessionDiffMsg) -> std::io::Result<()> {
        let line = msg.to_line();
        match self.send_line(&line) {
            Ok(()) => Ok(()),
            // One reconnect attempt per publish.
            Err(_) => self.send_line(&line),
        }
    }
}

/// Live op/byte counters folded straight off the probe spine.
#[derive(Debug, Default)]
pub struct LiveCounters {
    /// POSIX reads observed.
    pub reads: AtomicU64,
    /// POSIX writes observed.
    pub writes: AtomicU64,
    /// Bytes read.
    pub bytes_read: AtomicU64,
    /// Bytes written.
    pub bytes_written: AtomicU64,
    /// Opens observed.
    pub opens: AtomicU64,
}

/// The job-side adapter: owns the job id, per-rank sequence numbers, and
/// the transport; optionally rides the probe spine for live gauges.
pub struct ServeSink {
    job: String,
    publisher: Arc<dyn Publisher>,
    seqs: Mutex<HashMap<u32, u64>>,
    live: LiveCounters,
    publish_errors: AtomicU64,
}

impl ServeSink {
    /// A sink publishing job `job` through `publisher`.
    pub fn new(job: impl Into<String>, publisher: Arc<dyn Publisher>) -> Self {
        ServeSink {
            job: job.into(),
            publisher,
            seqs: Mutex::new(HashMap::new()),
            live: LiveCounters::default(),
            publish_errors: AtomicU64::new(0),
        }
    }

    /// The job id this sink publishes under.
    pub fn job(&self) -> &str {
        &self.job
    }

    /// Live spine-derived counters (only advance while the sink is
    /// registered on a probe bus).
    pub fn live(&self) -> &LiveCounters {
        &self.live
    }

    /// Transport failures seen so far (daemon-side drops are not
    /// errors and are counted by the daemon instead).
    pub fn publish_errors(&self) -> u64 {
        self.publish_errors.load(Ordering::Relaxed)
    }

    /// Publish one extracted session, assigning the rank's next sequence
    /// number. Returns the message actually sent (tests compare it
    /// against the daemon's rollup).
    pub fn publish_session(&self, session: &RankSession) -> SessionDiffMsg {
        let seq = {
            let mut seqs = self.seqs.lock();
            let s = seqs.entry(session.rank).or_insert(0);
            let cur = *s;
            *s += 1;
            cur
        };
        let msg = SessionDiffMsg::from_session(&self.job, seq, session);
        if self.publisher.publish(&msg).is_err() {
            self.publish_errors.fetch_add(1, Ordering::Relaxed);
        }
        msg
    }

    /// Extract and publish the current session of every rank of `job`
    /// that has one. Returns the published messages.
    pub fn publish_job(&self, job: &JobCtx) -> Vec<SessionDiffMsg> {
        job.ranks()
            .iter()
            .filter_map(|rank| rank.session())
            .map(|session| self.publish_session(&session))
            .collect()
    }

    /// Register this sink's live gauges across every **shard bus** of
    /// `job` — the fleet-scale registration: live counters are commutative
    /// folds, so they need every rank's events but not the job-wide
    /// ordering, and riding the shards avoids forcing the job to mirror
    /// all N ranks onto one spine (`JobCtx::job_bus`) just for gauges.
    /// Returns the registrations for [`ServeSink::detach_live_gauges`].
    pub fn attach_live_gauges(self: &Arc<Self>, job: &JobCtx) -> Vec<(usize, probe::SinkId)> {
        let sink: Arc<dyn ProbeSink> = self.clone();
        job.attach_shard_merge(sink)
    }

    /// Unregister gauges attached with [`ServeSink::attach_live_gauges`].
    pub fn detach_live_gauges(&self, job: &JobCtx, ids: &[(usize, probe::SinkId)]) {
        job.detach_shard_merge(ids);
    }
}

impl ProbeSink for ServeSink {
    fn on_events(&self, events: &[IoEvent]) {
        // Sim-thread context: own atomics only, relaxed is fine — these
        // are monotone gauges, not synchronization.
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut br = 0u64;
        let mut bw = 0u64;
        let mut opens = 0u64;
        for e in events {
            match e.kind {
                EventKind::Read { len, .. } => {
                    reads += 1;
                    br += len;
                }
                EventKind::Write { len, .. } => {
                    writes += 1;
                    bw += len;
                }
                EventKind::Open { .. } => opens += 1,
                _ => {}
            }
        }
        if reads > 0 {
            self.live.reads.fetch_add(reads, Ordering::Relaxed);
            self.live.bytes_read.fetch_add(br, Ordering::Relaxed);
        }
        if writes > 0 {
            self.live.writes.fetch_add(writes, Ordering::Relaxed);
            self.live.bytes_written.fetch_add(bw, Ordering::Relaxed);
        }
        if opens > 0 {
            self.live.opens.fetch_add(opens, Ordering::Relaxed);
        }
    }
}
