//! End-to-end daemon tests: real sockets, both publisher transports,
//! every endpoint, and the multi-tenant flood/backpressure contract.

use std::time::{Duration, Instant};

use serve::{
    AggregatorConfig, Enqueue, LocalPublisher, Publisher, ServeConfig, ServeDaemon, TcpPublisher,
};
use tfdarshan::analysis::FileActivity;
use tfdarshan::wire::{SessionDiffMsg, WIRE_VERSION};
use tfdarshan::TfDarshanReport;

fn msg(job: &str, rank: u32, seq: u64, bytes: u64, end: f64) -> SessionDiffMsg {
    let mut report = TfDarshanReport {
        window: (end - 1.0, end),
        ..Default::default()
    };
    report.io.reads = 3;
    report.io.bytes_read = bytes;
    report.files = vec![FileActivity {
        path: format!("/data/<{job}>/shard{seq}"),
        reads: 3,
        bytes_read: bytes,
        apparent_size: bytes,
        read_time: 0.02,
    }];
    SessionDiffMsg {
        v: WIRE_VERSION,
        job: job.into(),
        rank,
        seq,
        report,
    }
}

/// Poll `/metrics` until `pred` passes or ~5s elapse (TCP ingest is
/// asynchronous; the pump thread applies messages shortly after arrival).
fn await_metrics(daemon: &ServeDaemon, pred: impl Fn(&str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (status, body) = daemon.get("/metrics").expect("scrape");
        assert_eq!(status, 200);
        if pred(&body) {
            return body;
        }
        assert!(Instant::now() < deadline, "timed out; last body:\n{body}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn metric_value(body: &str, line_start: &str) -> Option<String> {
    body.lines()
        .find(|l| l.starts_with(line_start))
        .map(|l| l[line_start.len()..].trim().to_string())
}

#[test]
fn both_transports_feed_one_daemon_and_all_endpoints_serve() {
    let daemon = ServeDaemon::start(ServeConfig::default()).unwrap();

    // Tenant "local-α" publishes in-process; tenant "tcp-β" over TCP.
    let local = LocalPublisher::new(daemon.service());
    for seq in 0..4u64 {
        assert!(local
            .publish(&msg("local-α", 0, seq, 1000, seq as f64 + 1.0))
            .is_ok());
    }
    let tcp = TcpPublisher::new(daemon.ingest_addr());
    for seq in 0..6u64 {
        tcp.publish(&msg("tcp-β", 1, seq, 500, seq as f64 + 1.0))
            .expect("tcp publish");
    }

    let body = await_metrics(&daemon, |b| {
        metric_value(b, "tfdarshan_diffs_ingested_total ").as_deref() == Some("10")
    });
    assert_eq!(
        metric_value(&body, "tfdarshan_job_bytes_read_total{job=\"local-α\"}").as_deref(),
        Some("4000")
    );
    assert_eq!(
        metric_value(&body, "tfdarshan_job_bytes_read_total{job=\"tcp-β\"}").as_deref(),
        Some("3000")
    );
    assert_eq!(
        metric_value(&body, "tfdarshan_jobs_live ").as_deref(),
        Some("2")
    );

    // /jobs lists both tenants with exact counters.
    let (status, body) = daemon.get("/jobs").unwrap();
    assert_eq!(status, 200);
    let listing: serve::JobsListing = serde_json::from_str(&body).expect("jobs json parses");
    assert_eq!(listing.jobs.len(), 2);
    let beta = listing.jobs.iter().find(|j| j.job == "tcp-β").unwrap();
    assert_eq!(
        (beta.sessions, beta.bytes_read, beta.seq_gaps),
        (6, 3000, 0)
    );

    // /jobs/<id>/report parses back into a report with summed counters.
    let (status, body) = daemon.get("/jobs/local-%CE%B1/report").unwrap();
    assert_eq!(status, 200, "percent-encoded id resolves");
    let report = TfDarshanReport::from_json(&body).expect("report json parses");
    assert_eq!(report.io.bytes_read, 4000);
    assert_eq!(report.io.reads, 12);

    // /jobs/<id>/html serves the escaped live page.
    let (status, page) = daemon.get("/jobs/tcp-%CE%B2/html").unwrap();
    assert_eq!(status, 200);
    assert!(page.contains("live job:"));
    assert!(
        page.contains("/data/&lt;tcp-β&gt;/shard0"),
        "job-supplied paths are HTML-escaped"
    );
    assert!(!page.contains("/data/<tcp-β>"), "no raw angle brackets");

    // Unknown job and unknown route 404; non-GET 405.
    assert_eq!(daemon.get("/jobs/nope/report").unwrap().0, 404);
    assert_eq!(daemon.get("/nope").unwrap().0, 404);

    daemon.shutdown();
}

#[test]
fn malformed_ingest_lines_are_counted_not_fatal() {
    let daemon = ServeDaemon::start(ServeConfig::default()).unwrap();
    {
        use std::io::Write as _;
        let mut s = std::net::TcpStream::connect(daemon.ingest_addr()).unwrap();
        s.write_all(b"this is not json\n").unwrap();
        s.write_all((msg("ok", 0, 0, 42, 1.0).to_line() + "\n").as_bytes())
            .unwrap();
        s.write_all(b"{\"v\":999}\n").unwrap();
        s.flush().unwrap();
    }
    let body = await_metrics(&daemon, |b| {
        metric_value(b, "tfdarshan_diffs_ingested_total ").as_deref() == Some("1")
    });
    // Both bad lines (garbage + missing fields) count as parse errors; the
    // valid message landed.
    assert_eq!(
        metric_value(&body, "tfdarshan_ingest_parse_errors_total ").as_deref(),
        Some("2")
    );
    assert_eq!(
        metric_value(&body, "tfdarshan_job_bytes_read_total{job=\"ok\"}").as_deref(),
        Some("42")
    );
    daemon.shutdown();
}

#[test]
fn flood_is_bounded_and_other_tenants_stay_exact() {
    // Long pump interval: the flood outruns the pump by construction, so
    // backpressure (not the pump) is what bounds memory.
    let daemon = ServeDaemon::start(ServeConfig {
        aggregator: AggregatorConfig {
            queue_capacity: 64,
            ..Default::default()
        },
        pump_interval: Duration::from_millis(50),
    })
    .unwrap();
    let service = daemon.service();

    // The victim tenant publishes a known exact stream.
    let local = LocalPublisher::new(service.clone());
    for seq in 0..10u64 {
        local
            .publish(&msg("victim", 0, seq, 777, seq as f64 + 1.0))
            .unwrap();
    }

    // The flooder slams 50k messages in-process (faster than any pump).
    let mut dropped = 0u64;
    for seq in 0..50_000u64 {
        if service.offer(msg("flood", 0, seq, 1, seq as f64)) == Enqueue::Dropped {
            dropped += 1;
        }
    }
    assert!(dropped > 0, "the flood must overrun the queue bound");

    // Bounded: undrained queue never exceeds per-tenant capacity × tenants.
    let fp = service.footprint();
    assert!(
        fp.queued_msgs <= 2 * 64,
        "queues stay bounded under flood: {fp:?}"
    );

    let body = await_metrics(&daemon, |b| {
        metric_value(b, "tfdarshan_job_sessions_total{job=\"victim\"}").as_deref() == Some("10")
    });
    // Victim is exact despite the flood.
    assert_eq!(
        metric_value(&body, "tfdarshan_job_bytes_read_total{job=\"victim\"}").as_deref(),
        Some("7770")
    );
    assert_eq!(
        metric_value(&body, "tfdarshan_job_dropped_total{job=\"victim\"}").as_deref(),
        Some("0")
    );
    // The flood's drops are all attributed to the flooder, fleet-wide too.
    let flood_dropped: u64 = metric_value(&body, "tfdarshan_job_dropped_total{job=\"flood\"}")
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(flood_dropped, dropped);
    let fleet_dropped: u64 = metric_value(&body, "tfdarshan_diffs_dropped_total ")
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(fleet_dropped, dropped);
    // Applied + dropped = offered, for the flooder.
    let flood_sessions: u64 = metric_value(&body, "tfdarshan_job_sessions_total{job=\"flood\"}")
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(flood_sessions + flood_dropped, 50_000);

    daemon.shutdown();
}

#[test]
fn many_tcp_publishers_concurrently() {
    let daemon = ServeDaemon::start(ServeConfig::default()).unwrap();
    let n_jobs = 8usize;
    let per_job = 20u64;
    let addr = daemon.ingest_addr();
    let handles: Vec<_> = (0..n_jobs)
        .map(|j| {
            std::thread::spawn(move || {
                let p = TcpPublisher::new(addr);
                for seq in 0..per_job {
                    p.publish(&msg(
                        &format!("job{j}"),
                        0,
                        seq,
                        (j as u64 + 1) * 10,
                        seq as f64,
                    ))
                    .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let want = (n_jobs as u64 * per_job).to_string();
    let body = await_metrics(&daemon, |b| {
        metric_value(b, "tfdarshan_diffs_ingested_total ").as_deref() == Some(want.as_str())
    });
    for j in 0..n_jobs {
        let key = format!("tfdarshan_job_bytes_read_total{{job=\"job{j}\"}}");
        let got: u64 = metric_value(&body, &key).unwrap().parse().unwrap();
        assert_eq!(got, per_job * (j as u64 + 1) * 10, "job{j} exact");
    }
    daemon.shutdown();
}
