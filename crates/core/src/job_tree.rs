//! Log-depth job reduction: parallel Darshan's shared-file reduction as a
//! k-ary tree instead of a flat left fold.
//!
//! [`crate::job::reduce_job_sessions`] walks every rank's records in one
//! linear pass — fine at `world_size == 4`, an O(N) serial bottleneck at
//! 1k+ ranks. This module rebuilds the same reduction as a reduction
//! *tree*: each leaf is one rank's session, each inner node pairwise-merges
//! the partially reduced groups of its children (counters sum, byte
//! extrema max, first timestamps min-nonzero, last timestamps max), and
//! only the root materializes the final records. Two order-sensitive
//! ingredients of the flat fold — f64 cumulative-time sums and the
//! bounded common-access tracker — are carried up the tree as rank-ordered
//! deferred lists and replayed at the root, which makes the tree output
//! **byte-identical** to the flat fold for every world size and tree shape
//! (see `darshan_sim::reduce::PosixFold` and the proptests in
//! `tests/proptests_extensions.rs`).
//!
//! Two execution shapes share the same combine code:
//!
//! * [`reduce_job_sessions_tree`] — host-side, optionally fanning each
//!   tree level across OS threads (`std::thread::scope`), for callers that
//!   want the answer now;
//! * [`spawn_tree_reduce`] — a simrt *event task* that performs one tree
//!   level per poll and charges the level's modeled parallel cost
//!   (`max` over its combines, not their sum) as virtual time, so a
//!   simulated job's reduce wall time grows ~O(log N) while the flat
//!   fold's grows O(N). The fleet bench gates on exactly this ratio.

use std::collections::hash_map::Entry as HEntry;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Duration;

use darshan_sim::reduce::{PosixFold, StdioFold};
use darshan_sim::DxtSegment;
use parking_lot::Mutex;
use simrt::{EventCx, EventHandle, EventPoll, Sim};

use crate::analysis::{analyze, per_file, SnapshotDiff};
use crate::job::{missing_ranks_of, reduce_job_sessions_sized, JobReport, RankSession};
use crate::report::TfDarshanReport;

/// Modeled virtual cost of one pairwise record-group merge (a few dozen
/// counter adds/maxes — the granule the tree parallelizes).
const MERGE_NS: u64 = 150;
/// Modeled per-combine overhead: one exchange between reduction peers
/// (matches the default [`mpi_sim::NetworkModel`] latency).
const COMBINE_BASE_NS: u64 = 2_000;

/// Shape of the reduction tree and of its host-side execution.
#[derive(Clone, Copy, Debug)]
pub struct TreeReduceConfig {
    /// Children per inner node (≥ 2). 2 is the classic binary reduction;
    /// wider trees trade depth for per-node work.
    pub arity: usize,
    /// Fan tree levels across OS threads on the host path. The result is
    /// bit-identical either way — only wall time changes.
    pub host_parallel: bool,
}

impl Default for TreeReduceConfig {
    fn default() -> Self {
        TreeReduceConfig {
            arity: 2,
            host_parallel: true,
        }
    }
}

/// What the tree did, and what it would cost on a simulated cluster.
#[derive(Clone, Debug, Default)]
pub struct TreeReduceStats {
    /// Leaves (contributing sessions).
    pub leaves: usize,
    /// Tree depth (combine levels; 0 for a single session).
    pub levels: u32,
    /// Pairwise group merges performed across the whole tree.
    pub pair_merges: u64,
    /// Modeled parallel reduce time: per level, the *slowest* combine
    /// (they run concurrently); levels sum. Grows ~O(log N).
    pub modeled: Duration,
    /// Modeled cost of the flat left fold over the same sessions (every
    /// merge serial). Grows O(N); the fleet bench reports both.
    pub modeled_flat: Duration,
}

/// One partially reduced subtree: per-rec-id folds plus the associative
/// session metadata (names first-wins in rank order, window min/max,
/// partial OR, DXT kept merge-sorted by completion time).
struct ReduceNode {
    posix: BTreeMap<u64, PosixFold>,
    stdio: BTreeMap<u64, StdioFold>,
    names: HashMap<u64, String>,
    window: (f64, f64),
    partial: bool,
    dxt: Vec<(u64, DxtSegment)>,
}

fn dxt_key(e: &(u64, DxtSegment)) -> (f64, f64, u32) {
    (e.1.end, e.1.start, e.1.rank)
}

fn dxt_cmp(a: &(u64, DxtSegment), b: &(u64, DxtSegment)) -> std::cmp::Ordering {
    let (ae, as_, ar) = dxt_key(a);
    let (be, bs, br) = dxt_key(b);
    ae.total_cmp(&be).then(as_.total_cmp(&bs)).then(ar.cmp(&br))
}

impl ReduceNode {
    /// Leaf over one rank's session. The leaf's DXT run is stable-sorted
    /// so inner nodes can merge sorted runs; ties keep session order,
    /// which composed up the tree reproduces the flat path's stable sort
    /// of the rank-ordered concatenation.
    fn leaf(s: &RankSession) -> ReduceNode {
        let posix = s
            .diff
            .posix
            .iter()
            .map(|r| (r.rec_id, PosixFold::leaf(r.clone())))
            .collect();
        let stdio = s
            .diff
            .stdio
            .iter()
            .map(|r| (r.rec_id, StdioFold::leaf(r.clone())))
            .collect();
        let mut dxt = s.dxt.clone();
        dxt.sort_by(dxt_cmp);
        ReduceNode {
            posix,
            stdio,
            names: (*s.diff.names).clone(),
            window: s.diff.window,
            partial: s.diff.partial,
            dxt,
        }
    }

    /// Records in this node (the leaf/combine work proxy for the cost
    /// model).
    fn weight(&self) -> u64 {
        (self.posix.len() + self.stdio.len()) as u64
    }

    /// Merge `right` (covering higher-ranked sessions) into `self`.
    /// Returns the number of pairwise group merges performed — the
    /// combine's modeled work.
    fn absorb(&mut self, right: ReduceNode) -> u64 {
        let mut merges = 0u64;
        for (id, fold) in right.posix {
            match self.posix.entry(id) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(fold);
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    let left = std::mem::replace(
                        o.get_mut(),
                        PosixFold::leaf(darshan_sim::PosixRecord::new(id)),
                    );
                    *o.get_mut() = left.absorb(fold);
                    merges += 1;
                }
            }
        }
        for (id, fold) in right.stdio {
            match self.stdio.entry(id) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(fold);
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    let left = std::mem::replace(
                        o.get_mut(),
                        StdioFold::leaf(darshan_sim::StdioRecord::new(id)),
                    );
                    *o.get_mut() = left.absorb(fold);
                    merges += 1;
                }
            }
        }
        for (id, name) in right.names {
            if let HEntry::Vacant(v) = self.names.entry(id) {
                v.insert(name);
            }
        }
        self.window.0 = self.window.0.min(right.window.0);
        self.window.1 = self.window.1.max(right.window.1);
        self.partial |= right.partial;
        // Merge the sorted DXT runs, left-first on ties: pairwise this is
        // a stable mergesort of the session-ordered concatenation, i.e.
        // exactly the flat path's stable `sort_by`.
        let left_dxt = std::mem::take(&mut self.dxt);
        self.dxt = merge_dxt(left_dxt, right.dxt);
        merges
    }
}

fn merge_dxt(
    left: Vec<(u64, DxtSegment)>,
    right: Vec<(u64, DxtSegment)>,
) -> Vec<(u64, DxtSegment)> {
    if right.is_empty() {
        return left;
    }
    if left.is_empty() {
        return right;
    }
    let mut out = Vec::with_capacity(left.len() + right.len());
    let mut li = left.into_iter().peekable();
    let mut ri = right.into_iter().peekable();
    loop {
        match (li.peek(), ri.peek()) {
            (Some(l), Some(r)) => {
                if dxt_cmp(r, l) == std::cmp::Ordering::Less {
                    out.push(ri.next().expect("peeked"));
                } else {
                    out.push(li.next().expect("peeked"));
                }
            }
            (Some(_), None) => out.push(li.next().expect("peeked")),
            (None, Some(_)) => out.push(ri.next().expect("peeked")),
            (None, None) => break,
        }
    }
    out
}

/// One tree level: fold `arity`-sized groups of adjacent nodes, left to
/// right. Returns the next level plus this level's modeled parallel cost
/// (`max` over combines) and its total pairwise merges.
fn run_level(
    nodes: Vec<ReduceNode>,
    arity: usize,
    host_parallel: bool,
) -> (Vec<ReduceNode>, Duration, u64) {
    let fold_group = |group: Vec<ReduceNode>| -> (ReduceNode, u64) {
        let mut it = group.into_iter();
        let mut acc = it.next().expect("non-empty group");
        let mut merges = 0u64;
        for right in it {
            merges += acc.absorb(right);
        }
        (acc, merges)
    };

    // Chunk into combine groups.
    let mut groups: Vec<Vec<ReduceNode>> = Vec::new();
    let mut cur: Vec<ReduceNode> = Vec::with_capacity(arity);
    for n in nodes {
        cur.push(n);
        if cur.len() == arity {
            groups.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        groups.push(cur);
    }

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);
    let results: Vec<(ReduceNode, u64)> = if host_parallel && threads > 1 && groups.len() >= 4 {
        // Contiguous batches, one OS thread each — the combines are
        // independent, so the output is bit-identical to the serial walk.
        let per = groups.len().div_ceil(threads);
        let mut batches: Vec<Vec<Vec<ReduceNode>>> = Vec::new();
        let mut it = groups.into_iter().peekable();
        while it.peek().is_some() {
            batches.push(it.by_ref().take(per).collect());
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = batches
                .into_iter()
                .map(|batch| {
                    scope.spawn(move || batch.into_iter().map(fold_group).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("tree-reduce worker panicked"))
                .collect()
        })
    } else {
        groups.into_iter().map(fold_group).collect()
    };

    let mut level_merges = 0u64;
    let mut slowest = 0u64;
    for (_, m) in &results {
        level_merges += m;
        slowest = slowest.max(*m);
    }
    let cost = Duration::from_nanos(COMBINE_BASE_NS + MERGE_NS * slowest);
    let next = results.into_iter().map(|(n, _)| n).collect();
    (next, cost, level_merges)
}

/// Materialize the root node into the job report — the same final steps
/// as the flat path (BTreeMap walk keeps rec-id order; names become the
/// shared `Arc`; `analyze`/`per_file` run over the merged diff).
fn finish_root(root: ReduceNode, sessions: &[RankSession], world_size: u32) -> JobReport {
    let merged_posix: Vec<darshan_sim::PosixRecord> =
        root.posix.into_values().map(PosixFold::finish).collect();
    let merged_stdio: Vec<darshan_sim::StdioRecord> =
        root.stdio.into_values().map(StdioFold::finish).collect();
    let job_diff = SnapshotDiff {
        window: root.window,
        posix: merged_posix,
        stdio: merged_stdio,
        names: Arc::new(root.names),
        partial: root.partial,
    };
    let job_dxt = root.dxt;
    let (io, stdio) = analyze(&job_diff, &job_dxt);
    let job = TfDarshanReport {
        window: job_diff.window,
        io,
        stdio,
        files: per_file(&job_diff),
        sanitizer: None,
        scheduler: None,
        explore: None,
    };
    JobReport {
        world_size,
        missing_ranks: missing_ranks_of(sessions, world_size),
        job,
        per_rank: sessions.iter().map(|s| s.report()).collect(),
    }
}

/// Reduce per-rank sessions with a log-depth k-ary tree. Byte-identical
/// to [`crate::job::reduce_job_sessions_sized`] over the same sessions
/// (proptested); a single session passes through untouched, preserving
/// the `world_size == 1` byte-identity invariant. `world_size` is the
/// job's true size — sessions may be fewer (the report lists the missing
/// ranks).
pub fn reduce_job_sessions_tree(
    sessions: &[RankSession],
    world_size: u32,
    config: &TreeReduceConfig,
) -> (JobReport, TreeReduceStats) {
    assert!(config.arity >= 2, "reduction tree needs arity >= 2");
    if sessions.len() <= 1 {
        let report = reduce_job_sessions_sized(sessions, world_size);
        let stats = TreeReduceStats {
            leaves: sessions.len(),
            ..TreeReduceStats::default()
        };
        return (report, stats);
    }

    let mut nodes: Vec<ReduceNode> = sessions.iter().map(ReduceNode::leaf).collect();
    let mut stats = TreeReduceStats {
        leaves: nodes.len(),
        ..TreeReduceStats::default()
    };
    let leaf_cost = Duration::from_nanos(
        COMBINE_BASE_NS + MERGE_NS * nodes.iter().map(ReduceNode::weight).max().unwrap_or(0),
    );
    stats.modeled += leaf_cost;
    let flat_weight: u64 = nodes.iter().map(ReduceNode::weight).sum();
    stats.modeled_flat =
        Duration::from_nanos(COMBINE_BASE_NS * nodes.len() as u64 + MERGE_NS * flat_weight);
    while nodes.len() > 1 {
        let (next, cost, merges) = run_level(nodes, config.arity, config.host_parallel);
        nodes = next;
        stats.levels += 1;
        stats.pair_merges += merges;
        stats.modeled += cost;
    }
    let root = nodes.pop().expect("root");
    (finish_root(root, sessions, world_size), stats)
}

/// Handle to an in-flight [`spawn_tree_reduce`] event task; the outcome
/// appears after the simulation has run the task to completion.
pub struct TreeReduceHandle {
    slot: Arc<Mutex<Option<(JobReport, TreeReduceStats)>>>,
    handle: EventHandle,
}

impl TreeReduceHandle {
    /// The finished report and stats, once the task completed.
    pub fn take(&self) -> Option<(JobReport, TreeReduceStats)> {
        self.slot.lock().take()
    }

    /// The underlying event-task handle.
    pub fn event_handle(&self) -> &EventHandle {
        &self.handle
    }
}

/// Run the tree reduction as a simrt event task: one tree level per poll,
/// each level charging its modeled *parallel* cost (the slowest combine of
/// the level — combines of one level are independent and run concurrently
/// on a real cluster) as virtual time. A 1k-rank reduce is then ~10 level
/// charges on the calendar instead of 1k serial merges — the fleet bench's
/// reduce-time curve measures exactly this task.
pub fn spawn_tree_reduce(
    sim: &Sim,
    sessions: Vec<RankSession>,
    world_size: u32,
    config: TreeReduceConfig,
) -> TreeReduceHandle {
    assert!(config.arity >= 2, "reduction tree needs arity >= 2");
    let slot: Arc<Mutex<Option<(JobReport, TreeReduceStats)>>> = Arc::new(Mutex::new(None));
    let out = slot.clone();
    let mut nodes: Option<Vec<ReduceNode>> = None;
    let mut stats = TreeReduceStats::default();
    let handle = sim.spawn_event("tree-reduce", move |_cx: &mut EventCx| {
        if sessions.len() <= 1 {
            let report = reduce_job_sessions_sized(&sessions, world_size);
            stats.leaves = sessions.len();
            *out.lock() = Some((report, std::mem::take(&mut stats)));
            return EventPoll::Done;
        }
        match nodes.take() {
            None => {
                // First poll: build the leaves (all ranks in parallel on a
                // real cluster — charge the heaviest).
                let leaves: Vec<ReduceNode> = sessions.iter().map(ReduceNode::leaf).collect();
                stats.leaves = leaves.len();
                let flat_weight: u64 = leaves.iter().map(ReduceNode::weight).sum();
                stats.modeled_flat = Duration::from_nanos(
                    COMBINE_BASE_NS * leaves.len() as u64 + MERGE_NS * flat_weight,
                );
                let cost = Duration::from_nanos(
                    COMBINE_BASE_NS
                        + MERGE_NS * leaves.iter().map(ReduceNode::weight).max().unwrap_or(0),
                );
                stats.modeled += cost;
                nodes = Some(leaves);
                EventPoll::Sleep(cost)
            }
            Some(level) if level.len() > 1 => {
                // Event-task polls run inline on the scheduler; the host
                // work stays serial here while the *virtual* charge models
                // the level's combines running concurrently.
                let (next, cost, merges) = run_level(level, config.arity, false);
                stats.levels += 1;
                stats.pair_merges += merges;
                stats.modeled += cost;
                nodes = Some(next);
                EventPoll::Sleep(cost)
            }
            Some(mut level) => {
                let root = level.pop().expect("root");
                let report = finish_root(root, &sessions, world_size);
                *out.lock() = Some((report, std::mem::take(&mut stats)));
                EventPoll::Done
            }
        }
    });
    TreeReduceHandle { slot, handle }
}
