//! The TensorBoard-style report: the textual/JSON equivalent of the
//! paper's extended Input-Pipeline Analysis panels (Figs. 6, 7, 9) —
//! POSIX bandwidth, operation counts, read-size distribution, file-size
//! distribution, access pattern, and the STDIO (checkpoint) view.

use serde::{Deserialize, Serialize};

use crate::analysis::{histogram_rows, FileActivity, IoStats, StdioStats};

/// Everything one profiling session learned from Darshan.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TfDarshanReport {
    /// Darshan-relative window `[start, stop]` in seconds.
    pub window: (f64, f64),
    /// POSIX aggregates.
    pub io: IoStats,
    /// STDIO aggregates.
    pub stdio: StdioStats,
    /// Per-file activity table.
    pub files: Vec<FileActivity>,
    /// Summary of the iosan sanitizer run, when the job ran under the
    /// sanitizer (absent otherwise; old reports deserialize with `None`).
    #[serde(default)]
    #[serde(skip_serializing_if = "Option::is_none")]
    pub sanitizer: Option<iosan::SanitizerSummary>,
    /// Scheduler statistics of the simulation that produced this report
    /// (absent for reports built outside a full run; old reports
    /// deserialize with `None`).
    #[serde(default)]
    #[serde(skip_serializing_if = "Option::is_none")]
    pub scheduler: Option<SchedStatsReport>,
    /// Summary of a schedule-space exploration run (`crates/explore`), when
    /// the workload was model-checked rather than profiled once (absent
    /// otherwise; old reports deserialize with `None`).
    #[serde(default)]
    #[serde(skip_serializing_if = "Option::is_none")]
    pub explore: Option<ExploreSummary>,
}

/// Serializable mirror of [`simrt::SchedStats`]: what the discrete-event
/// scheduler did while producing the report — carrier context switches vs
/// inline event-task polls, task counts per flavor, and run-calendar
/// high-water marks. The scale experiments read these next to the I/O
/// counters to show that simulated concurrency costs heap entries, not OS
/// threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedStatsReport {
    /// Carrier context switches (parked-thread handovers).
    pub switches: u64,
    /// Fast-path time advances (sleeps that kept the carrier).
    pub fast_advances: u64,
    /// Event-task polls (inline resumptions).
    pub event_polls: u64,
    /// Carrier tasks spawned over the simulation's lifetime.
    pub carrier_spawns: u64,
    /// Event tasks spawned over the simulation's lifetime.
    pub event_spawns: u64,
    /// High-water mark of the run calendar (valid + stale entries).
    pub peak_heap_depth: u64,
    /// High-water mark of concurrently live tasks.
    pub peak_live_tasks: u64,
    /// Lazy compactions of the run calendar.
    pub heap_compactions: u64,
    /// Decision points where an installed `SchedulePolicy` was consulted
    /// (0 for uncontrolled runs; old reports deserialize with 0).
    #[serde(default)]
    pub decision_points: u64,
    /// Schedules executed by an exploration harness (aggregated).
    #[serde(default)]
    pub schedules_run: u64,
    /// Schedules skipped by partial-order reduction.
    #[serde(default)]
    pub schedules_pruned: u64,
    /// Maximum non-FIFO picks any explored schedule used.
    #[serde(default)]
    pub max_preemptions_used: u64,
}

impl From<simrt::SchedStats> for SchedStatsReport {
    fn from(s: simrt::SchedStats) -> Self {
        SchedStatsReport {
            switches: s.switches,
            fast_advances: s.fast_advances,
            event_polls: s.event_polls,
            carrier_spawns: s.carrier_spawns,
            event_spawns: s.event_spawns,
            peak_heap_depth: s.peak_heap_depth as u64,
            peak_live_tasks: s.peak_live_tasks as u64,
            heap_compactions: s.heap_compactions,
            decision_points: s.decision_points,
            schedules_run: s.schedules_run,
            schedules_pruned: s.schedules_pruned,
            max_preemptions_used: s.max_preemptions_used,
        }
    }
}

/// Summary of one `explore::check` model-checking run, embedded in the job
/// report next to the sanitizer summary. The full per-finding detail
/// (replay tokens, deduplicated findings) lives in the `ExploreReport` the
/// explore crate returns; this is the at-a-glance view.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExploreSummary {
    /// Schedules actually executed.
    pub schedules_run: u64,
    /// Schedules skipped by partial-order reduction.
    pub schedules_pruned: u64,
    /// Decision points seen across all executed schedules.
    pub decision_points: u64,
    /// Maximum non-FIFO picks any executed schedule used.
    pub max_preemptions_used: u64,
    /// Distinct findings after fingerprint deduplication.
    pub distinct_findings: u64,
    /// Executed schedules on which at least one finding fired.
    pub schedules_with_findings: u64,
    /// True when the schedule budget ran out with unexplored branches left.
    pub budget_exhausted: bool,
    /// Sorted, deduplicated category names of the distinct findings.
    pub categories: Vec<String>,
}

impl TfDarshanReport {
    /// Serialize to pretty JSON (what the TensorBoard plugin would load).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parse back from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Render the panels as ASCII (the stand-in for the TensorBoard web
    /// UI screenshots in the paper's figures).
    pub fn render_ascii(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let io = &self.io;
        let _ = writeln!(out, "== tf-Darshan: Input-pipeline analysis extension ==");
        let _ = writeln!(
            out,
            "profiling window: {:.3}s .. {:.3}s ({:.3}s)",
            self.window.0, self.window.1, io.window_secs
        );
        if io.partial {
            let _ = writeln!(out, "!! Darshan ran out of record memory; data is partial");
        }
        let _ = writeln!(out, "\n-- POSIX bandwidth --");
        let _ = writeln!(
            out,
            "read:  {:>10.2} MiB/s  ({} bytes)",
            io.read_bandwidth_mibps, io.bytes_read
        );
        let _ = writeln!(
            out,
            "write: {:>10.2} MiB/s  ({} bytes)",
            io.write_bandwidth_mibps, io.bytes_written
        );
        let _ = writeln!(out, "\n-- POSIX operation counts --");
        let _ = writeln!(
            out,
            "opens {} | reads {} | writes {} | seeks {} | stats {}",
            io.opens, io.reads, io.writes, io.seeks, io.stats
        );
        let _ = writeln!(out, "files opened: {}", io.files_opened);
        let _ = writeln!(out, "\n-- POSIX access pattern --");
        let _ = writeln!(
            out,
            "sequential reads:  {:>8} ({:.1}%)",
            io.seq_reads,
            100.0 * io.seq_fraction()
        );
        let _ = writeln!(
            out,
            "consecutive reads: {:>8} ({:.1}%)",
            io.consec_reads,
            100.0 * io.consec_fraction()
        );
        let _ = writeln!(
            out,
            "zero-length reads: {:>8} ({:.1}%)",
            io.zero_reads,
            100.0 * io.zero_read_fraction()
        );
        let _ = writeln!(out, "\n-- POSIX read size distribution --");
        out.push_str(&render_hist(&io.read_size_hist));
        let _ = writeln!(out, "\n-- File size distribution (files read) --");
        out.push_str(&render_hist(&io.file_size_hist));
        if !io.common_read_sizes.is_empty() {
            let _ = writeln!(out, "\n-- Most common read sizes --");
            for (size, count) in &io.common_read_sizes {
                let _ = writeln!(out, "{size:>12} B × {count}");
            }
        }
        if self.stdio.opens + self.stdio.writes + self.stdio.reads > 0 {
            let _ = writeln!(out, "\n-- STDIO layer --");
            let _ = writeln!(
                out,
                "fopens {} | fwrites {} ({} bytes) | freads {} ({} bytes) | fflushes {}",
                self.stdio.opens,
                self.stdio.writes,
                self.stdio.bytes_written,
                self.stdio.reads,
                self.stdio.bytes_read,
                self.stdio.flushes
            );
        }
        if let Some(s) = &self.sanitizer {
            let _ = writeln!(out, "\n-- iosan sanitizer --");
            if s.findings == 0 {
                let _ = writeln!(out, "clean ({} events analyzed)", s.events_analyzed);
            } else {
                let _ = writeln!(
                    out,
                    "{} finding(s): {} error(s), {} warning(s) [{}] over {} events",
                    s.findings,
                    s.errors,
                    s.warnings,
                    s.categories.join(", "),
                    s.events_analyzed
                );
            }
        }
        if let Some(s) = &self.scheduler {
            let _ = writeln!(out, "\n-- scheduler --");
            let _ = writeln!(
                out,
                "tasks: {} carrier + {} event (peak live {}) | switches {} | fast advances {} | event polls {}",
                s.carrier_spawns,
                s.event_spawns,
                s.peak_live_tasks,
                s.switches,
                s.fast_advances,
                s.event_polls
            );
            let _ = writeln!(
                out,
                "run calendar: peak depth {} | compactions {}",
                s.peak_heap_depth, s.heap_compactions
            );
            if s.decision_points > 0 || s.schedules_run > 0 {
                let _ = writeln!(
                    out,
                    "exploration: {} decision point(s) | {} schedule(s) run | {} pruned | max preemptions {}",
                    s.decision_points, s.schedules_run, s.schedules_pruned, s.max_preemptions_used
                );
            }
        }
        if let Some(e) = &self.explore {
            let _ = writeln!(out, "\n-- schedule exploration --");
            let _ = writeln!(
                out,
                "{} schedule(s) run, {} pruned | {} decision point(s) | max preemptions {}{}",
                e.schedules_run,
                e.schedules_pruned,
                e.decision_points,
                e.max_preemptions_used,
                if e.budget_exhausted {
                    " | budget exhausted"
                } else {
                    ""
                }
            );
            if e.distinct_findings == 0 {
                let _ = writeln!(out, "verdict: clean on every explored schedule");
            } else {
                let _ = writeln!(
                    out,
                    "verdict: {} distinct finding(s) [{}] on {} schedule(s)",
                    e.distinct_findings,
                    e.categories.join(", "),
                    e.schedules_with_findings
                );
            }
        }
        out
    }
}

fn render_hist(hist: &[u64; 10]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let max = hist.iter().copied().max().unwrap_or(0).max(1);
    for (label, count) in histogram_rows(hist) {
        if count == 0 {
            continue;
        }
        let bar = "#".repeat(((count * 40) / max).max(1) as usize);
        let _ = writeln!(out, "{label:>9}: {count:>10} {bar}");
    }
    if out.is_empty() {
        out.push_str("  (no operations)\n");
    }
    out
}

/// Escape a string for safe interpolation into HTML markup, in both text
/// and attribute positions. File paths and job ids land in reports
/// verbatim from the workload, which becomes a real injection surface the
/// moment reports are *served* over HTTP instead of written to disk — so
/// everything job-supplied goes through here.
pub fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#x27;"),
            _ => out.push(c),
        }
    }
    out
}

impl TfDarshanReport {
    /// Render a self-contained HTML page with the same panels — the
    /// stand-in for the modified TensorBoard Profile plugin's web view
    /// (tables and textual histograms; no external assets).
    pub fn render_html(&self) -> String {
        let io = &self.io;
        let esc = html_escape;
        let hist_pre =
            |hist: &[u64; 10]| -> String { esc(&super::report::render_hist_for_html(hist)) };
        let mut files_rows = String::new();
        for f in self.files.iter().take(50) {
            files_rows.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{:.4}</td></tr>\n",
                esc(&f.path),
                f.reads,
                f.bytes_read,
                f.apparent_size,
                f.read_time
            ));
        }
        format!(
            r#"<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>tf-Darshan report</title>
<style>
 body {{ font-family: sans-serif; margin: 2em; }}
 table {{ border-collapse: collapse; margin: 1em 0; }}
 td, th {{ border: 1px solid #999; padding: 4px 10px; text-align: right; }}
 th {{ background: #eee; }} td:first-child {{ text-align: left; }}
 pre {{ background: #f6f6f6; padding: 1em; }}
 .warn {{ color: #a00; font-weight: bold; }}
</style></head><body>
<h1>tf-Darshan — Input-pipeline analysis extension</h1>
<p>profiling window: {:.3}s … {:.3}s ({:.3}s){}</p>
<h2>POSIX bandwidth</h2>
<table><tr><th></th><th>MiB/s</th><th>bytes</th></tr>
<tr><td>read</td><td>{:.2}</td><td>{}</td></tr>
<tr><td>write</td><td>{:.2}</td><td>{}</td></tr></table>
<h2>POSIX operation counts</h2>
<table><tr><th>opens</th><th>reads</th><th>writes</th><th>seeks</th><th>stats</th><th>files</th></tr>
<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr></table>
<h2>Access pattern</h2>
<table><tr><th>sequential reads</th><th>consecutive reads</th><th>zero-length reads</th></tr>
<tr><td>{} ({:.1}%)</td><td>{} ({:.1}%)</td><td>{} ({:.1}%)</td></tr></table>
<h2>POSIX read size distribution</h2><pre>{}</pre>
<h2>File size distribution</h2><pre>{}</pre>
<h2>Per-file activity (top 50)</h2>
<table><tr><th>file</th><th>reads</th><th>bytes read</th><th>size</th><th>read time (s)</th></tr>
{}</table>
</body></html>
"#,
            self.window.0,
            self.window.1,
            io.window_secs,
            if io.partial {
                r#" <span class="warn">— PARTIAL (Darshan record memory exhausted)</span>"#
            } else {
                ""
            },
            io.read_bandwidth_mibps,
            io.bytes_read,
            io.write_bandwidth_mibps,
            io.bytes_written,
            io.opens,
            io.reads,
            io.writes,
            io.seeks,
            io.stats,
            io.files_opened,
            io.seq_reads,
            100.0 * io.seq_fraction(),
            io.consec_reads,
            100.0 * io.consec_fraction(),
            io.zero_reads,
            100.0 * io.zero_read_fraction(),
            hist_pre(&io.read_size_hist),
            hist_pre(&io.file_size_hist),
            files_rows,
        )
    }
}

pub(crate) fn render_hist_for_html(hist: &[u64; 10]) -> String {
    render_hist(hist)
}

/// The TF-Profiler overview line tf-Darshan extends: combines the
/// TensorFlow-level step breakdown with Darshan's system-level numbers.
pub fn overview(input_bound_fraction: f64, io: &IoStats) -> String {
    format!(
        "step time breakdown: {:.1}% waiting for input data | POSIX read bandwidth {:.2} MiB/s over {} files",
        input_bound_fraction * 100.0,
        io.read_bandwidth_mibps,
        io.files_opened,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TfDarshanReport {
        let mut io = IoStats {
            window_secs: 10.0,
            opens: 100,
            reads: 200,
            zero_reads: 100,
            seq_reads: 200,
            consec_reads: 100,
            bytes_read: 100 * 88_000,
            read_bandwidth_mibps: 0.84,
            files_opened: 100,
            ..Default::default()
        };
        io.read_size_hist[0] = 100;
        io.read_size_hist[3] = 100;
        io.file_size_hist[3] = 100;
        io.common_read_sizes = vec![(88_000, 100), (0, 100)];
        TfDarshanReport {
            window: (0.0, 10.0),
            io,
            stdio: StdioStats {
                opens: 10,
                writes: 1400,
                bytes_written: 2_330_000_000,
                ..Default::default()
            },
            files: vec![],
            sanitizer: None,
            scheduler: None,
            explore: None,
        }
    }

    #[test]
    fn ascii_panels_contain_key_numbers() {
        let text = sample().render_ascii();
        assert!(text.contains("0.84 MiB/s"));
        assert!(text.contains("opens 100 | reads 200"));
        assert!(text.contains("zero-length reads:      100 (50.0%)"));
        assert!(text.contains("10K-100K"));
        assert!(text.contains("fwrites 1400"));
        assert!(text.contains("88000 B × 100"));
    }

    #[test]
    fn sanitizer_section_renders_and_roundtrips() {
        let mut r = sample();
        assert!(!r.render_ascii().contains("iosan sanitizer"));
        assert!(!r.to_json().contains("sanitizer"), "absent when None");
        r.sanitizer = Some(iosan::SanitizerSummary {
            findings: 2,
            errors: 1,
            warnings: 1,
            events_analyzed: 500,
            categories: vec!["data-race".into(), "fd-leak".into()],
        });
        let text = r.render_ascii();
        assert!(text.contains("iosan sanitizer"));
        assert!(text.contains("2 finding(s): 1 error(s), 1 warning(s) [data-race, fd-leak]"));
        let back = TfDarshanReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back.sanitizer, r.sanitizer);
        // Reports written before the sanitizer existed still parse.
        let old = sample().to_json();
        assert!(TfDarshanReport::from_json(&old)
            .unwrap()
            .sanitizer
            .is_none());
    }

    #[test]
    fn scheduler_section_renders_and_roundtrips() {
        let mut r = sample();
        assert!(!r.render_ascii().contains("-- scheduler --"));
        assert!(!r.to_json().contains("scheduler"), "absent when None");
        r.scheduler = Some(SchedStatsReport {
            switches: 42,
            fast_advances: 7,
            event_polls: 10_000,
            carrier_spawns: 4,
            event_spawns: 2_000,
            peak_heap_depth: 2_004,
            peak_live_tasks: 2_004,
            heap_compactions: 1,
            ..Default::default()
        });
        let text = r.render_ascii();
        assert!(text.contains("-- scheduler --"));
        assert!(text.contains("tasks: 4 carrier + 2000 event (peak live 2004)"));
        assert!(text.contains("peak depth 2004 | compactions 1"));
        assert!(
            !text.contains("exploration:"),
            "exploration line absent when all counters are zero"
        );
        let back = TfDarshanReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back.scheduler, r.scheduler);
        // Reports written before the scheduler stats existed still parse.
        let old = sample().to_json();
        assert!(TfDarshanReport::from_json(&old)
            .unwrap()
            .scheduler
            .is_none());
        // Reports written before the exploration counters were added to the
        // scheduler block still parse, with the new fields defaulting to 0.
        let pre_explore = r.to_json().replace("\"decision_points\": 0,", "");
        let back = TfDarshanReport::from_json(&pre_explore).unwrap();
        assert_eq!(back.scheduler.unwrap().decision_points, 0);
    }

    #[test]
    fn explore_section_renders_and_roundtrips() {
        let mut r = sample();
        assert!(!r.render_ascii().contains("-- schedule exploration --"));
        assert!(!r.to_json().contains("explore"), "absent when None");
        r.explore = Some(ExploreSummary {
            schedules_run: 37,
            schedules_pruned: 12,
            decision_points: 210,
            max_preemptions_used: 2,
            distinct_findings: 1,
            schedules_with_findings: 4,
            budget_exhausted: false,
            categories: vec!["data-race".into()],
        });
        let text = r.render_ascii();
        assert!(text.contains("-- schedule exploration --"));
        assert!(text.contains("37 schedule(s) run, 12 pruned"));
        assert!(text.contains("verdict: 1 distinct finding(s) [data-race] on 4 schedule(s)"));
        let back = TfDarshanReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back.explore, r.explore);
        // Scheduler exploration counters render when nonzero.
        r.scheduler = Some(SchedStatsReport {
            decision_points: 210,
            schedules_run: 37,
            schedules_pruned: 12,
            max_preemptions_used: 2,
            ..Default::default()
        });
        assert!(r
            .render_ascii()
            .contains("exploration: 210 decision point(s) | 37 schedule(s) run | 12 pruned"));
        // A clean exploration says so.
        r.explore.as_mut().unwrap().distinct_findings = 0;
        r.explore.as_mut().unwrap().categories.clear();
        assert!(r
            .render_ascii()
            .contains("verdict: clean on every explored schedule"));
    }

    #[test]
    fn json_roundtrip() {
        let r = sample();
        let back = TfDarshanReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back.io.reads, 200);
        assert_eq!(back.stdio.writes, 1400);
        assert_eq!(back.io.common_read_sizes, r.io.common_read_sizes);
    }

    #[test]
    fn html_report_contains_panels() {
        let html = sample().render_html();
        assert!(html.contains("<h1>tf-Darshan"));
        assert!(html.contains("0.84"));
        assert!(html.contains("zero-length reads"));
        assert!(html.contains("10K-100K"));
        assert!(!html.contains("PARTIAL"));
        let mut partial = sample();
        partial.io.partial = true;
        assert!(partial.render_html().contains("PARTIAL"));
    }

    #[test]
    fn html_report_escapes_job_supplied_paths() {
        let mut r = sample();
        r.files = vec![FileActivity {
            path: r#"/data/<script>alert("x")</script>&'"#.into(),
            reads: 1,
            bytes_read: 10,
            apparent_size: 10,
            read_time: 0.1,
        }];
        let html = r.render_html();
        assert!(!html.contains("<script>alert"));
        assert!(html.contains("&lt;script&gt;alert(&quot;x&quot;)&lt;/script&gt;&amp;&#x27;"));
        assert_eq!(
            html_escape(r#"<a href="x">&'b'</a>"#),
            "&lt;a href=&quot;x&quot;&gt;&amp;&#x27;b&#x27;&lt;/a&gt;"
        );
    }

    #[test]
    fn overview_line() {
        let s = overview(0.96, &sample().io);
        assert!(s.contains("96.0% waiting"));
        assert!(s.contains("100 files"));
    }
}
