//! In-situ analysis of Darshan data: snapshot diffing and the derived
//! statistics tf-Darshan shows on its TensorBoard panels (paper §III.C:
//! "the two samples collected during start and stop are analyzed by
//! tf-Darshan to retrieve relevant statistics").

use std::collections::HashMap;

use darshan_sim::{
    DxtOp, DxtSegment, PosixCounter as P, PosixFCounter as PF, PosixRecord, Snapshot,
    StdioCounter as S, StdioRecord, SIZE_BUCKET_LABELS,
};
use serde::{Deserialize, Serialize};

/// Per-file deltas between the start and stop snapshots of a profiling
/// session (counters are monotonic, so subtraction gives in-window
/// activity; files absent at start contribute their full stop values).
#[derive(Clone, Debug)]
pub struct SnapshotDiff {
    /// Darshan-relative window: `[start.taken_at, stop.taken_at]`.
    pub window: (f64, f64),
    /// POSIX per-file deltas (only files with in-window activity).
    pub posix: Vec<PosixRecord>,
    /// STDIO per-file deltas.
    pub stdio: Vec<StdioRecord>,
    /// Record-id → path (shared with the stop snapshot, zero-copy).
    pub names: std::sync::Arc<HashMap<u64, String>>,
    /// Either module hit its record-memory cap.
    pub partial: bool,
}

// Diffing walks the stop snapshot but skips every record whose
// `dirty_epoch` predates the start snapshot in O(1) — those records were
// not mutated inside the window, so their delta is identically zero. Only
// changed records pay the clone + subtraction, making the whole diff
// O(total) pointer chases + O(changed) record work. Records that *were*
// changed find their baseline by binary search (snapshots are sorted by
// record id). The any-nonzero `active` filter is kept for changed records
// whose integer counters happen not to move (e.g. only timestamps did).

fn diff_posix(start: &Snapshot, stop: &Snapshot) -> Vec<PosixRecord> {
    let mut out = Vec::new();
    for r in stop.posix.iter() {
        if r.dirty_epoch <= start.epoch {
            continue; // unchanged since `start`: zero delta
        }
        let mut d = (**r).clone();
        if let Ok(i) = start.posix.binary_search_by_key(&r.rec_id, |x| x.rec_id) {
            let b = &start.posix[i];
            for i in 0..d.counters.len() {
                d.counters[i] -= b.counters[i];
            }
            // Durations subtract; timestamps keep the stop values (last
            // observed) — matching how tf-Darshan reports windows.
            for c in [
                PF::POSIX_F_READ_TIME,
                PF::POSIX_F_WRITE_TIME,
                PF::POSIX_F_META_TIME,
            ] {
                d.fcounters[c as usize] -= b.fcounters[c as usize];
            }
        }
        let active = d.counters.iter().any(|c| *c != 0);
        if active {
            out.push(d);
        }
    }
    out
}

fn diff_stdio(start: &Snapshot, stop: &Snapshot) -> Vec<StdioRecord> {
    let mut out = Vec::new();
    for r in stop.stdio.iter() {
        if r.dirty_epoch <= start.epoch {
            continue;
        }
        let mut d = (**r).clone();
        if let Ok(i) = start.stdio.binary_search_by_key(&r.rec_id, |x| x.rec_id) {
            let b = &start.stdio[i];
            for i in 0..d.counters.len() {
                d.counters[i] -= b.counters[i];
            }
        }
        if d.counters.iter().any(|c| *c != 0) {
            out.push(d);
        }
    }
    out
}

/// Diff two snapshots taken from the same runtime (`start` first).
pub fn diff(start: &Snapshot, stop: &Snapshot) -> SnapshotDiff {
    SnapshotDiff {
        window: (start.taken_at, stop.taken_at),
        posix: diff_posix(start, stop),
        stdio: diff_stdio(start, stop),
        names: stop.names.clone(),
        partial: stop.posix_partial || stop.stdio_partial,
    }
}

/// Aggregated POSIX statistics of a profiling window — the numbers on the
/// paper's Fig. 7a/9 panels.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct IoStats {
    /// Window length in seconds.
    pub window_secs: f64,
    /// Files opened in the window (POSIX).
    pub files_opened: u64,
    /// Files with any in-window POSIX activity.
    pub files_active: u64,
    /// POSIX opens.
    pub opens: u64,
    /// POSIX reads (including zero-length).
    pub reads: u64,
    /// POSIX writes.
    pub writes: u64,
    /// POSIX seeks.
    pub seeks: u64,
    /// POSIX stats.
    pub stats: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Derived read bandwidth over the window, MiB/s.
    pub read_bandwidth_mibps: f64,
    /// Derived write bandwidth, MiB/s.
    pub write_bandwidth_mibps: f64,
    /// Sequential reads (offset ≥ previous end).
    pub seq_reads: u64,
    /// Consecutive reads (offset = previous end).
    pub consec_reads: u64,
    /// Reads that returned zero bytes (EOF probes), from DXT.
    pub zero_reads: u64,
    /// Read-size histogram over Darshan's ten buckets.
    pub read_size_hist: [u64; 10],
    /// Write-size histogram.
    pub write_size_hist: [u64; 10],
    /// Histogram of sizes of the files read in the window (proxy:
    /// max byte read + 1 per file).
    pub file_size_hist: [u64; 10],
    /// Most common read sizes `(size, count)` from DXT (exact), top 4.
    pub common_read_sizes: Vec<(u64, u64)>,
    /// Total time spent inside POSIX reads, seconds.
    pub read_time: f64,
    /// Total time inside POSIX metadata calls, seconds.
    pub meta_time: f64,
    /// Any module dropped records.
    pub partial: bool,
}

impl IoStats {
    /// Fraction of reads that were sequential.
    pub fn seq_fraction(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.seq_reads as f64 / self.reads as f64
        }
    }

    /// Fraction of reads that were consecutive.
    pub fn consec_fraction(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.consec_reads as f64 / self.reads as f64
        }
    }

    /// Fraction of reads that returned zero bytes.
    pub fn zero_read_fraction(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.zero_reads as f64 / self.reads as f64
        }
    }
}

/// STDIO-side aggregates (the §IV.D checkpoint panel).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StdioStats {
    /// Streams opened.
    pub opens: u64,
    /// `fwrite` calls.
    pub writes: u64,
    /// `fread` calls.
    pub reads: u64,
    /// Bytes written via STDIO.
    pub bytes_written: u64,
    /// Bytes read via STDIO.
    pub bytes_read: u64,
    /// Flush calls.
    pub flushes: u64,
}

/// Compute window statistics from a diff plus the window's DXT segments.
pub fn analyze(d: &SnapshotDiff, dxt: &[(u64, DxtSegment)]) -> (IoStats, StdioStats) {
    let mut io = IoStats {
        window_secs: (d.window.1 - d.window.0).max(0.0),
        partial: d.partial,
        ..Default::default()
    };
    for r in &d.posix {
        let opens = r.get(P::POSIX_OPENS).max(0) as u64;
        io.opens += opens;
        if opens > 0 {
            io.files_opened += 1;
        }
        io.files_active += 1;
        io.reads += r.get(P::POSIX_READS).max(0) as u64;
        io.writes += r.get(P::POSIX_WRITES).max(0) as u64;
        io.seeks += r.get(P::POSIX_SEEKS).max(0) as u64;
        io.stats += r.get(P::POSIX_STATS).max(0) as u64;
        io.bytes_read += r.get(P::POSIX_BYTES_READ).max(0) as u64;
        io.bytes_written += r.get(P::POSIX_BYTES_WRITTEN).max(0) as u64;
        io.seq_reads += r.get(P::POSIX_SEQ_READS).max(0) as u64;
        io.consec_reads += r.get(P::POSIX_CONSEC_READS).max(0) as u64;
        for b in 0..10 {
            io.read_size_hist[b] += r.counters[P::POSIX_SIZE_READ_0_100 as usize + b].max(0) as u64;
            io.write_size_hist[b] +=
                r.counters[P::POSIX_SIZE_WRITE_0_100 as usize + b].max(0) as u64;
        }
        if r.get(P::POSIX_READS) > 0 {
            let size = (r.get(P::POSIX_MAX_BYTE_READ).max(0) as u64).saturating_add(1);
            io.file_size_hist[darshan_sim::size_bucket(size)] += 1;
        }
        io.read_time += r.fget(PF::POSIX_F_READ_TIME).max(0.0);
        io.meta_time += r.fget(PF::POSIX_F_META_TIME).max(0.0);
    }
    if io.window_secs > 0.0 {
        let mib = 1024.0 * 1024.0;
        io.read_bandwidth_mibps = io.bytes_read as f64 / mib / io.window_secs;
        io.write_bandwidth_mibps = io.bytes_written as f64 / mib / io.window_secs;
    }
    // Exact zero-read count and common sizes from the trace.
    let mut sizes = darshan_sim::CommonValues::default();
    for (_, seg) in dxt {
        if seg.op == DxtOp::Read {
            if seg.length == 0 {
                io.zero_reads += 1;
            }
            sizes.add(seg.length);
        }
    }
    io.common_read_sizes = sizes.top(4);

    let mut st = StdioStats::default();
    for r in &d.stdio {
        st.opens += r.get(S::STDIO_OPENS).max(0) as u64;
        st.writes += r.get(S::STDIO_WRITES).max(0) as u64;
        st.reads += r.get(S::STDIO_READS).max(0) as u64;
        st.bytes_written += r.get(S::STDIO_BYTES_WRITTEN).max(0) as u64;
        st.bytes_read += r.get(S::STDIO_BYTES_READ).max(0) as u64;
        st.flushes += r.get(S::STDIO_FLUSHES).max(0) as u64;
    }
    (io, st)
}

/// Per-file view used by the report's file table and the staging advisor.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FileActivity {
    /// File path.
    pub path: String,
    /// POSIX reads in window.
    pub reads: u64,
    /// Bytes read in window.
    pub bytes_read: u64,
    /// Apparent size (max byte read + 1).
    pub apparent_size: u64,
    /// Total time in reads of this file, seconds.
    pub read_time: f64,
}

/// Extract the per-file table from a diff.
pub fn per_file(d: &SnapshotDiff) -> Vec<FileActivity> {
    let mut v: Vec<FileActivity> = d
        .posix
        .iter()
        .filter(|r| r.get(P::POSIX_READS) > 0)
        .map(|r| FileActivity {
            path: d
                .names
                .get(&r.rec_id)
                .cloned()
                .unwrap_or_else(|| format!("<{:#x}>", r.rec_id)),
            reads: r.get(P::POSIX_READS) as u64,
            bytes_read: r.get(P::POSIX_BYTES_READ).max(0) as u64,
            apparent_size: (r.get(P::POSIX_MAX_BYTE_READ).max(0) as u64).saturating_add(1),
            read_time: r.fget(PF::POSIX_F_READ_TIME).max(0.0),
        })
        .collect();
    v.sort_by(|a, b| a.path.cmp(&b.path));
    v
}

/// Derive a bandwidth-over-time series from DXT segments: bytes completed
/// per `bucket_secs` interval, in MiB/s — a per-session equivalent of the
/// Fig. 3/4 dstat line computed entirely from Darshan's own trace.
pub fn bandwidth_series(dxt: &[(u64, DxtSegment)], bucket_secs: f64) -> Vec<(f64, f64)> {
    assert!(bucket_secs > 0.0);
    let mut buckets: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for (_, seg) in dxt {
        if seg.op == DxtOp::Read && seg.length > 0 {
            let b = (seg.end / bucket_secs) as u64;
            *buckets.entry(b).or_default() += seg.length;
        }
    }
    let Some((&first, _)) = buckets.iter().next() else {
        return Vec::new();
    };
    let last = *buckets.keys().last().expect("nonempty");
    (first..=last)
        .map(|b| {
            let bytes = buckets.get(&b).copied().unwrap_or(0);
            (
                (b as f64 + 1.0) * bucket_secs,
                bytes as f64 / (1024.0 * 1024.0) / bucket_secs,
            )
        })
        .collect()
}

/// Pretty-print a size-bucket histogram row set.
pub fn histogram_rows(hist: &[u64; 10]) -> Vec<(String, u64)> {
    SIZE_BUCKET_LABELS
        .iter()
        .zip(hist.iter())
        .map(|(l, c)| (l.to_string(), *c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use darshan_sim::{DarshanConfig, DarshanRuntime};
    use simrt::{Sim, SimTime};

    fn at(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn diff_isolates_window_activity() {
        let sim = Sim::new();
        sim.spawn("t", || {
            let rt = DarshanRuntime::new(DarshanConfig::default());
            let a = rt.posix_open("/d/a", at(0), at(1)).unwrap();
            rt.posix_read(a, 0, 1000, at(1), at(2));
            let start = rt.snapshot();
            rt.posix_read(a, 1000, 500, at(3), at(4));
            let b = rt.posix_open("/d/b", at(4), at(5)).unwrap();
            rt.posix_read(b, 0, 300, at(5), at(6));
            let stop = rt.snapshot();
            let d = diff(&start, &stop);
            assert_eq!(d.posix.len(), 2);
            let da = d.posix.iter().find(|r| r.rec_id == a).unwrap();
            assert_eq!(da.get(P::POSIX_READS), 1, "only the in-window read");
            assert_eq!(da.get(P::POSIX_BYTES_READ), 500);
            assert_eq!(da.get(P::POSIX_OPENS), 0, "open was before the window");
            let db = d.posix.iter().find(|r| r.rec_id == b).unwrap();
            assert_eq!(db.get(P::POSIX_OPENS), 1);
            assert_eq!(db.get(P::POSIX_BYTES_READ), 300);
        });
        sim.run();
    }

    #[test]
    fn diff_additivity() {
        // diff(a, c) == diff(a, b) + diff(b, c) on every integer counter.
        let sim = Sim::new();
        sim.spawn("t", || {
            let rt = DarshanRuntime::new(DarshanConfig::default());
            let f = rt.posix_open("/d/f", at(0), at(1)).unwrap();
            let s_a = rt.snapshot();
            rt.posix_read(f, 0, 100, at(1), at(2));
            let s_b = rt.snapshot();
            rt.posix_read(f, 100, 900, at(2), at(3));
            rt.posix_write(f, 0, 50, at(3), at(4));
            let s_c = rt.snapshot();
            let ab = diff(&s_a, &s_b);
            let bc = diff(&s_b, &s_c);
            let ac = diff(&s_a, &s_c);
            let get = |d: &SnapshotDiff, c: P| {
                d.posix
                    .iter()
                    .find(|r| r.rec_id == f)
                    .map(|r| r.get(c))
                    .unwrap_or(0)
            };
            for c in [
                P::POSIX_READS,
                P::POSIX_WRITES,
                P::POSIX_BYTES_READ,
                P::POSIX_BYTES_WRITTEN,
                P::POSIX_SEQ_READS,
            ] {
                assert_eq!(get(&ab, c) + get(&bc, c), get(&ac, c), "{}", c.name());
            }
        });
        sim.run();
    }

    #[test]
    fn analyze_produces_imagenet_shape() {
        // 10 files, each: open + full read + zero-length read — the Fig 7a
        // pattern (reads ≈ 2 × opens, ~50% zero reads).
        let sim = Sim::new();
        sim.spawn("t", || {
            let rt = DarshanRuntime::new(DarshanConfig::default());
            let start = rt.snapshot();
            let t0 = 10u64;
            for i in 0..10u64 {
                let id = rt
                    .posix_open(&format!("/d/{i}"), at(t0 + i * 10), at(t0 + i * 10 + 1))
                    .unwrap();
                rt.posix_read(id, 0, 88_000, at(t0 + i * 10 + 1), at(t0 + i * 10 + 5));
                rt.posix_read(id, 88_000, 0, at(t0 + i * 10 + 5), at(t0 + i * 10 + 6));
            }
            // Advance the clock past the synthetic event timestamps so the
            // stop snapshot's window covers them.
            simrt::sleep(std::time::Duration::from_millis(500));
            let stop = rt.snapshot();
            let d = diff(&start, &stop);
            let dxt = rt.dxt_range(d.window.0, d.window.1);
            let (io, _st) = analyze(&d, &dxt);
            assert_eq!(io.opens, 10);
            assert_eq!(io.reads, 20);
            assert_eq!(io.zero_reads, 10);
            assert!((io.zero_read_fraction() - 0.5).abs() < 1e-9);
            assert_eq!(io.bytes_read, 880_000);
            assert_eq!(io.read_size_hist[0], 10, "zero reads in 0-100");
            assert_eq!(io.read_size_hist[3], 10, "88 KB reads in 10K-100K");
            assert_eq!(io.file_size_hist[3], 10);
            // 88 KB data reads and zero-length probes tie at 10 each.
            assert!(io.common_read_sizes.contains(&(88_000, 10)));
            assert!(io.common_read_sizes.contains(&(0, 10)));
            assert!(io.read_bandwidth_mibps > 0.0);
            assert_eq!(io.seq_fraction(), 1.0);
        });
        sim.run();
    }

    #[test]
    fn bandwidth_series_buckets_bytes_by_completion_time() {
        let seg = |end: f64, length: u64| {
            (
                1u64,
                DxtSegment {
                    op: DxtOp::Read,
                    offset: 0,
                    length,
                    start: end - 0.01,
                    end,
                    rank: 0,
                },
            )
        };
        let dxt = vec![
            seg(0.5, 10 << 20),
            seg(0.9, 10 << 20),
            seg(1.5, 5 << 20),
            // A gap: nothing completes in [2, 3).
            seg(3.2, 20 << 20),
        ];
        let series = bandwidth_series(&dxt, 1.0);
        assert_eq!(series.len(), 4);
        assert_eq!(series[0], (1.0, 20.0));
        assert_eq!(series[1], (2.0, 5.0));
        assert_eq!(series[2], (3.0, 0.0), "gaps show as zero");
        assert_eq!(series[3], (4.0, 20.0));
        assert!(bandwidth_series(&[], 1.0).is_empty());
    }

    #[test]
    fn per_file_table() {
        let sim = Sim::new();
        sim.spawn("t", || {
            let rt = DarshanRuntime::new(DarshanConfig::default());
            let start = rt.snapshot();
            let id = rt.posix_open("/d/x", at(0), at(1)).unwrap();
            rt.posix_read(id, 0, 4_000_000, at(1), at(2));
            let stop = rt.snapshot();
            let d = diff(&start, &stop);
            let files = per_file(&d);
            assert_eq!(files.len(), 1);
            assert_eq!(files[0].path, "/d/x");
            assert_eq!(files[0].apparent_size, 4_000_000);
        });
        sim.run();
    }

    #[test]
    fn stdio_stats_aggregate() {
        let sim = Sim::new();
        sim.spawn("t", || {
            let rt = DarshanRuntime::new(DarshanConfig::default());
            let start = rt.snapshot();
            let id = rt.stdio_open("/d/ckpt", at(0), at(1)).unwrap();
            for i in 0..140u64 {
                rt.stdio_write(id, i * 1000, 1000, at(i), at(i + 1));
            }
            let stop = rt.snapshot();
            let d = diff(&start, &stop);
            let (_, st) = analyze(&d, &[]);
            assert_eq!(st.opens, 1);
            assert_eq!(st.writes, 140);
            assert_eq!(st.bytes_written, 140_000);
        });
        sim.run();
    }
}
