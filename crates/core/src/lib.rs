//! # tfdarshan — fine-grained I/O profiling for ML workloads
//!
//! The paper's contribution: a TensorFlow profiler-and-tracer that attaches
//! Darshan instrumentation **at runtime** and analyzes its buffers
//! *in situ*, surfacing system-level POSIX/STDIO detail inside the
//! TensorFlow profiling workflow (TensorBoard panels + TraceViewer
//! timelines).
//!
//! Components (paper §III):
//! * [`wrapper::TfDarshanWrapper`] — the middle-man: `dlopen`s the Darshan
//!   library, patches the process GOT, and manages start/stop snapshots;
//! * [`tracer::DarshanTracer`] / [`tracer::DarshanTracerFactory`] — the
//!   profiler plugin registered with the TensorFlow runtime;
//! * [`analysis`] — snapshot diffing and window statistics;
//! * [`report::TfDarshanReport`] — the TensorBoard-panel data (bandwidth,
//!   op counts, size distributions, access pattern, STDIO view);
//! * [`staging`] — the §V.B profile-guided optimization (stage small files
//!   to a fast tier).
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use storage_sim::{Device, DeviceSpec, FileSystem, LocalFs, LocalFsParams,
//!                   PageCache, StorageStack};
//! use tfdarshan::{DarshanTracerFactory, TfDarshanConfig, TfDarshanWrapper};
//! use tfsim::{Dataset, Parallelism, ProfilerOptions, TfRuntime};
//!
//! // Build a machine: one SSD, a filesystem, a process, a TF runtime.
//! let sim = simrt::Sim::new();
//! let fs = LocalFs::new(Device::new(DeviceSpec::sata_ssd("ssd0")),
//!                       Arc::new(PageCache::new(1 << 30)),
//!                       LocalFsParams::default());
//! let stack = StorageStack::new();
//! stack.mount("/data", fs.clone() as Arc<dyn FileSystem>);
//! for i in 0..32u64 {
//!     fs.create_synthetic(&format!("/data/img{i}"), 88 * 1024, i).unwrap();
//! }
//! let process = posix_sim::Process::new(stack);
//! let rt = TfRuntime::new(process.clone(), sim.clone(), 8);
//!
//! // Install tf-Darshan and register its tracer with the TF profiler.
//! let wrapper = TfDarshanWrapper::install(process, TfDarshanConfig::default());
//! let tfd = DarshanTracerFactory::register(&rt, wrapper);
//!
//! sim.spawn("main", move || {
//!     let files: Vec<String> = (0..32).map(|i| format!("/data/img{i}")).collect();
//!     let ds = Dataset::from_files(files)
//!         .map(Arc::new(|ctx: &tfsim::PipelineCtx, index, path: &str| {
//!             let bytes = tfsim::ops::read_file(&ctx.rt, path).unwrap_or(0);
//!             tfsim::Element { index, bytes }
//!         }), Parallelism::Fixed(2))
//!         .batch(8)
//!         .prefetch(2);
//!     rt.profiler_start(ProfilerOptions::default()).unwrap();
//!     let mut it = ds.iterate(&rt);
//!     while it.next().is_some() {}
//!     let _trace = rt.profiler_stop().unwrap();
//!     let report = tfd.last_report().expect("darshan analyzed the session");
//!     assert_eq!(report.io.files_opened, 32);
//!     assert_eq!(report.io.reads, 64); // data read + EOF probe per file
//! });
//! sim.run();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advisor;
pub mod analysis;
pub mod autotune;
pub mod job;
pub mod job_tree;
pub mod report;
pub mod staging;
pub mod tracer;
pub mod wire;
pub mod wrapper;

pub use advisor::{recommend, seed_plan, AdvisorContext, Recommendation, StorageClass};
pub use analysis::{
    analyze, bandwidth_series, diff, per_file, FileActivity, IoStats, SnapshotDiff, StdioStats,
};
pub use autotune::{IoAutoTuner, TuneStep};
pub use job::{
    reduce_job_sessions, reduce_job_sessions_sized, JobCtx, JobReport, RankCtx, RankSession,
    DEFAULT_SHARD_RANKS,
};
pub use job_tree::{
    reduce_job_sessions_tree, spawn_tree_reduce, TreeReduceConfig, TreeReduceHandle,
    TreeReduceStats,
};
pub use report::{html_escape, overview, SchedStatsReport, TfDarshanReport};
pub use staging::{
    advise_threshold, apply as apply_staging, plan_by_threshold, plan_within_budget, StagingPlan,
};
pub use tracer::{DarshanTracer, DarshanTracerFactory, ANALYSIS_PLANE, DXT_PLANE};
pub use wire::{SessionDiffMsg, WIRE_VERSION};
pub use wrapper::{TfDarshanConfig, TfDarshanWrapper};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;
    use storage_sim::{
        Device, DeviceSpec, FileSystem, LocalFs, LocalFsParams, PageCache, StorageStack,
    };
    use tfsim::{Dataset, Element, Parallelism, PipelineCtx, ProfilerOptions, TfRuntime};

    struct Fixture {
        sim: simrt::Sim,
        rt: Arc<TfRuntime>,
        tfd: Arc<DarshanTracerFactory>,
        files: Vec<String>,
    }

    fn fixture(n_files: usize, file_size: u64) -> Fixture {
        let sim = simrt::Sim::new();
        let fs = LocalFs::new(
            Device::new(DeviceSpec::sata_ssd("ssd0")),
            Arc::new(PageCache::new(1 << 32)),
            LocalFsParams::default(),
        );
        let stack = StorageStack::new();
        stack.mount("/data", fs.clone() as Arc<dyn FileSystem>);
        let files: Vec<String> = (0..n_files)
            .map(|i| {
                let p = format!("/data/f{i}");
                fs.create_synthetic(&p, file_size, i as u64).unwrap();
                p
            })
            .collect();
        let process = posix_sim::Process::new(stack);
        let rt = TfRuntime::new(process.clone(), sim.clone(), 8);
        let wrapper = TfDarshanWrapper::install(process, TfDarshanConfig::default());
        let tfd = DarshanTracerFactory::register(&rt, wrapper);
        Fixture {
            sim,
            rt,
            tfd,
            files,
        }
    }

    fn reader_map() -> tfsim::MapFn {
        Arc::new(|ctx: &PipelineCtx, index, path: &str| {
            let bytes = tfsim::ops::read_file(&ctx.rt, path).unwrap_or(0);
            Element { index, bytes }
        })
    }

    #[test]
    fn end_to_end_profile_produces_report_and_trace() {
        let f = fixture(24, 88 * 1024);
        let (rt, tfd, files) = (f.rt, f.tfd.clone(), f.files);
        f.sim.spawn("main", move || {
            let ds = Dataset::from_files(files)
                .map(reader_map(), Parallelism::Fixed(4))
                .batch(8)
                .prefetch(2);
            rt.profiler_start(ProfilerOptions::default()).unwrap();
            let mut it = ds.iterate(&rt);
            while it.next().is_some() {}
            let space = rt.profiler_stop().unwrap();
            // Darshan planes exist alongside the host plane.
            assert!(space.plane("/host:CPU").is_some());
            assert!(space.plane(ANALYSIS_PLANE).is_some());
            let dxt = space.plane(DXT_PLANE).expect("DXT timelines");
            assert_eq!(dxt.lines.len(), 24, "one TraceViewer line per file");
            // Every file line ends with a zero-length read (Fig. 8).
            for line in &dxt.lines {
                let last = line.events.last().unwrap();
                assert_eq!(last.name, "pread");
                assert_eq!(
                    last.stats
                        .iter()
                        .find(|s| s.name == "length")
                        .unwrap()
                        .value,
                    "0"
                );
            }
            let report = tfd.last_report().unwrap();
            assert_eq!(report.io.files_opened, 24);
            assert_eq!(report.io.opens, 24);
            assert_eq!(report.io.reads, 48);
            assert_eq!(report.io.zero_reads, 24);
            assert_eq!(report.io.bytes_read, 24 * 88 * 1024);
            assert!(report.io.read_bandwidth_mibps > 0.0);
            assert!((report.io.zero_read_fraction() - 0.5).abs() < 1e-9);
            // The chrome trace is exportable.
            let chrome = space.to_chrome_trace();
            assert!(chrome["traceEvents"].as_array().unwrap().len() > 48);
        });
        f.sim.run();
    }

    #[test]
    fn windows_isolate_activity_between_sessions() {
        let f = fixture(20, 10_000);
        let (rt, tfd, files) = (f.rt, f.tfd.clone(), f.files);
        f.sim.spawn("main", move || {
            let half_a: Vec<String> = files[..10].to_vec();
            let half_b: Vec<String> = files[10..].to_vec();
            for (half, expect_files) in [(half_a, 10u64), (half_b, 10u64)] {
                let ds = Dataset::from_files(half)
                    .map(reader_map(), Parallelism::Fixed(2))
                    .batch(5);
                rt.profiler_start(ProfilerOptions::default()).unwrap();
                let mut it = ds.iterate(&rt);
                while it.next().is_some() {}
                rt.profiler_stop().unwrap();
                let report = tfd.last_report().unwrap();
                assert_eq!(report.io.files_opened, expect_files);
                assert_eq!(report.io.bytes_read, expect_files * 10_000);
            }
        });
        f.sim.run();
    }

    #[test]
    fn unprofiled_io_never_reaches_reports() {
        let f = fixture(10, 1000);
        let (rt, tfd, files) = (f.rt, f.tfd.clone(), f.files);
        f.sim.spawn("main", move || {
            // Session 1 over nothing.
            rt.profiler_start(ProfilerOptions::default()).unwrap();
            rt.profiler_stop().unwrap();
            // I/O outside any session (still instrumented once attached,
            // but not part of a window).
            let ds = Dataset::from_files(files)
                .map(reader_map(), Parallelism::Fixed(2))
                .batch(5);
            let mut it = ds.iterate(&rt);
            while it.next().is_some() {}
            // Session 2 over nothing: the outside-I/O must not leak in.
            rt.profiler_start(ProfilerOptions::default()).unwrap();
            rt.profiler_stop().unwrap();
            let report = tfd.last_report().unwrap();
            assert_eq!(report.io.reads, 0);
            assert_eq!(report.io.bytes_read, 0);
        });
        f.sim.run();
    }

    #[test]
    fn attachment_happens_at_first_session_only() {
        let f = fixture(1, 100);
        let (rt, tfd) = (f.rt, f.tfd.clone());
        f.sim.spawn("main", move || {
            assert!(!tfd.wrapper().is_attached(), "lazy until first profile");
            rt.profiler_start(ProfilerOptions::default()).unwrap();
            assert!(tfd.wrapper().is_attached());
            rt.profiler_stop().unwrap();
            // Stays attached between sessions (cheap restarts).
            assert!(tfd.wrapper().is_attached());
            tfd.wrapper().detach().unwrap();
            assert!(!tfd.wrapper().is_attached());
        });
        f.sim.run();
    }

    #[test]
    fn full_export_toggle_changes_cost_and_planes() {
        let run = |full: bool| -> (bool, Duration) {
            let sim = simrt::Sim::new();
            let fs = LocalFs::new(
                Device::new(DeviceSpec::sata_ssd("ssd0")),
                Arc::new(PageCache::new(1 << 30)),
                LocalFsParams::default(),
            );
            let stack = StorageStack::new();
            stack.mount("/data", fs.clone() as Arc<dyn FileSystem>);
            let files: Vec<String> = (0..50)
                .map(|i| {
                    let p = format!("/data/f{i}");
                    fs.create_synthetic(&p, 10_000, i).unwrap();
                    p
                })
                .collect();
            let process = posix_sim::Process::new(stack);
            let rt = TfRuntime::new(process.clone(), sim.clone(), 8);
            let wrapper = TfDarshanWrapper::install(
                process,
                TfDarshanConfig {
                    full_export: full,
                    ..Default::default()
                },
            );
            let _tfd = DarshanTracerFactory::register(&rt, wrapper);
            let had_dxt = Arc::new(parking_lot::Mutex::new(false));
            let h2 = had_dxt.clone();
            sim.spawn("main", move || {
                let ds = Dataset::from_files(files)
                    .map(reader_map(), Parallelism::Fixed(4))
                    .batch(10);
                rt.profiler_start(ProfilerOptions::default()).unwrap();
                let mut it = ds.iterate(&rt);
                while it.next().is_some() {}
                let space = rt.profiler_stop().unwrap();
                *h2.lock() = space.plane(DXT_PLANE).is_some();
            });
            sim.run();
            let t = sim.now();
            let had = *had_dxt.lock();
            (had, Duration::from_nanos(t.as_nanos()))
        };
        let (with_dxt, t_full) = run(true);
        let (without_dxt, t_light) = run(false);
        assert!(with_dxt);
        assert!(!without_dxt);
        assert!(
            t_full > t_light,
            "timeline export must cost time: {t_full:?} vs {t_light:?}"
        );
    }
}
