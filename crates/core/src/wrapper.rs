//! The tf-Darshan "middle-man" wrapper (paper §III.B): loads the Darshan
//! shared library into the process at runtime (`dlopen`), patches the GOT,
//! and manages profile-data extraction (start/stop snapshots), without
//! requiring `LD_PRELOAD` and without modifying the application.

use std::sync::Arc;
use std::time::Duration;

use darshan_sim::{DarshanConfig, DarshanLibrary, DxtSegment, Snapshot, SONAME};
use parking_lot::Mutex;
use posix_sim::{GotError, Process};

/// tf-Darshan configuration.
#[derive(Clone, Debug)]
pub struct TfDarshanConfig {
    /// Configuration of the underlying Darshan runtime.
    pub darshan: DarshanConfig,
    /// In-situ analysis cost per active file record, charged when a
    /// session's report is generated (the "trace data collection and
    /// analysis after profiling stops" the paper identifies as the main
    /// overhead).
    pub analyze_cost_per_record: Duration,
    /// Trace-export cost per DXT segment written to the TraceViewer.
    pub export_cost_per_segment: Duration,
    /// Cost per record of the lightweight counter diff (paid even in
    /// bandwidth-only mode).
    pub diff_cost_per_record: Duration,
    /// Export the full DXT timeline into the trace. The paper's §VII
    /// proposes making this optional to cut overhead ("detailed timeline
    /// tracing can be optionally discarded if not required") — set false
    /// for the cheap bandwidth-only mode used in the STREAM validation.
    pub full_export: bool,
}

impl Default for TfDarshanConfig {
    fn default() -> Self {
        TfDarshanConfig {
            darshan: DarshanConfig::default(),
            analyze_cost_per_record: Duration::from_millis(2),
            export_cost_per_segment: Duration::from_micros(200),
            diff_cost_per_record: Duration::from_micros(5),
            full_export: true,
        }
    }
}

/// The middle-man: owns the dynamically loaded Darshan library and the
/// start/stop snapshot pair of the current profiling session.
pub struct TfDarshanWrapper {
    process: Arc<Process>,
    lib: Arc<DarshanLibrary>,
    config: TfDarshanConfig,
    session: Mutex<SessionState>,
}

#[derive(Default)]
struct SessionState {
    start: Option<Snapshot>,
    stop: Option<Snapshot>,
}

impl TfDarshanWrapper {
    /// Install into `process`: `dlopen` the Darshan library (loading and
    /// registering it first if the "file" is not present), but do **not**
    /// attach yet — attachment happens at the first profiling session.
    pub fn install(process: Arc<Process>, config: TfDarshanConfig) -> Arc<Self> {
        let lib = match process.dlopen(SONAME) {
            Ok(any) => any
                .downcast::<DarshanLibrary>()
                .expect("libdarshan.so is not a Darshan library"),
            Err(_) => DarshanLibrary::load_into(&process, config.darshan.clone()),
        };
        Arc::new(TfDarshanWrapper {
            process,
            lib,
            config,
            session: Mutex::new(SessionState::default()),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &TfDarshanConfig {
        &self.config
    }

    /// The loaded Darshan library.
    pub fn library(&self) -> &Arc<DarshanLibrary> {
        &self.lib
    }

    /// The instrumented process.
    pub fn process(&self) -> &Arc<Process> {
        &self.process
    }

    /// Scan the GOT and patch the instrumented symbols (idempotent).
    pub fn attach(&self) -> Result<(), GotError> {
        self.lib.attach(&self.process)
    }

    /// Restore original bindings (idempotent).
    pub fn detach(&self) -> Result<(), GotError> {
        self.lib.detach(&self.process)
    }

    /// Whether Darshan is currently attached.
    pub fn is_attached(&self) -> bool {
        self.lib.is_attached()
    }

    /// Begin a profiling window: attach if needed and take the start
    /// snapshot ("our tracer calls the wrapper to make a copy of the
    /// Darshan module data structures" — §III.C). Snapshots are
    /// incremental: the extraction copies only records dirtied since the
    /// previous one, and carries the extraction epoch plus the DXT append
    /// watermarks the stop-side analysis threads through to `diff` and
    /// [`TfDarshanWrapper::session_dxt`].
    pub fn mark_start(&self) -> Result<(), GotError> {
        self.attach()?;
        let snap = self.lib.runtime().snapshot();
        let mut s = self.session.lock();
        s.start = Some(snap);
        s.stop = None;
        Ok(())
    }

    /// End the profiling window with the stop snapshot.
    pub fn mark_stop(&self) {
        let snap = self.lib.runtime().snapshot();
        self.session.lock().stop = Some(snap);
    }

    /// The start/stop snapshot pair of the last completed window. Cheap:
    /// snapshots share their records via `Arc`, so the clone is pointer
    /// bumps, not record copies.
    pub fn session_snapshots(&self) -> Option<(Snapshot, Snapshot)> {
        let s = self.session.lock();
        match (&s.start, &s.stop) {
            (Some(a), Some(b)) => Some((a.clone(), b.clone())),
            _ => None,
        }
    }

    /// DXT segments appended during the last window, extracted via the
    /// snapshots' per-record append watermarks — O(session segments)
    /// instead of a scan over every segment ever recorded, and a segment
    /// ending exactly at a snapshot boundary lands in exactly one window.
    pub fn session_dxt(&self) -> Vec<(u64, DxtSegment)> {
        let Some((a, b)) = self.session_snapshots() else {
            return Vec::new();
        };
        self.lib.runtime().dxt_between(&a, &b)
    }

    /// Cheap bandwidth probe over the last window (MiB/s of POSIX reads),
    /// what the §IV.B STREAM validation derives every five batches.
    pub fn session_read_bandwidth(&self) -> Option<f64> {
        let (a, b) = self.session_snapshots()?;
        let secs = b.taken_at - a.taken_at;
        if secs <= 0.0 {
            return None;
        }
        let sum = |s: &Snapshot| -> i64 {
            s.posix
                .iter()
                .map(|r| r.get(darshan_sim::PosixCounter::POSIX_BYTES_READ))
                .sum()
        };
        let bytes = (sum(&b) - sum(&a)).max(0) as f64;
        Some(bytes / (1024.0 * 1024.0) / secs)
    }
}
