//! `DarshanTracer`: the TensorFlow-profiler plugin (paper Fig. 1's
//! "DarshanTracer" box) and its factory.
//!
//! Lifecycle per profiling session:
//! 1. the TensorFlow runtime creates the tracer via
//!    [`DarshanTracerFactory`] → the wrapper attaches (first time) and
//!    takes the **start** snapshot;
//! 2. `stop()` takes the **stop** snapshot;
//! 3. `collect()` diffs the snapshots, runs the in-situ analysis, charges
//!    the analysis/export costs, and writes both the statistics and the
//!    per-file DXT timelines into the session's `XSpace`.

use std::sync::Arc;

use darshan_sim::DxtOp;
use parking_lot::Mutex;
use simrt::sleep;
use tfsim::{ProfilerOptions, TfRuntime, Tracer, TracerFactory, XEvent, XSpace};

use crate::analysis::{analyze, diff, per_file};
use crate::report::TfDarshanReport;
use crate::wrapper::TfDarshanWrapper;

/// Plane name of the Darshan statistics.
pub const ANALYSIS_PLANE: &str = "/darshan:analysis";
/// Plane name of the per-file DXT timelines (TraceViewer lines, Fig. 8/10).
pub const DXT_PLANE: &str = "/darshan:POSIX";

/// The tracer created per profiling session.
pub struct DarshanTracer {
    wrapper: Arc<TfDarshanWrapper>,
    /// Report of the last collected session (shared with the factory).
    report_slot: Arc<Mutex<Option<TfDarshanReport>>>,
}

impl Tracer for DarshanTracer {
    fn name(&self) -> &str {
        "darshan"
    }

    fn stop(&self) {
        self.wrapper.mark_stop();
    }

    fn collect(&self, space: &mut XSpace) {
        let Some((start, stop)) = self.wrapper.session_snapshots() else {
            return;
        };
        let cfg = self.wrapper.config().clone();
        let d = diff(&start, &stop);
        if !cfg.diff_cost_per_record.is_zero() && !d.posix.is_empty() {
            sleep(cfg.diff_cost_per_record * d.posix.len() as u32);
        }
        // Bandwidth-only mode (paper §VII: "detailed timeline tracing can
        // be optionally discarded"): skip the DXT walk and the per-record
        // in-situ analysis; only the counter diff is paid for.
        let dxt = if cfg.full_export {
            self.wrapper.session_dxt()
        } else {
            Vec::new()
        };
        if cfg.full_export && !cfg.analyze_cost_per_record.is_zero() && !d.posix.is_empty() {
            sleep(cfg.analyze_cost_per_record * d.posix.len() as u32);
        }
        let (io, stdio) = analyze(&d, &dxt);
        let files = per_file(&d);
        let report = TfDarshanReport {
            window: d.window,
            io: io.clone(),
            stdio,
            files,
            sanitizer: None,
            scheduler: None,
            explore: None,
        };

        // Statistics plane: one summary event carrying the headline stats.
        let init = self.wrapper.library().runtime().init_time();
        let abs = |secs: f64| init.as_nanos() + (secs * 1e9) as u64;
        {
            let plane = space.plane_mut(ANALYSIS_PLANE);
            let line = plane.line_mut("summary");
            let ev = XEvent::new(
                "tf-darshan",
                abs(d.window.0),
                ((d.window.1 - d.window.0).max(0.0) * 1e9) as u64,
            )
            .with_stat(
                "posix_read_bw_mibps",
                format!("{:.3}", io.read_bandwidth_mibps),
            )
            .with_stat("posix_opens", io.opens)
            .with_stat("posix_reads", io.reads)
            .with_stat("posix_writes", io.writes)
            .with_stat("zero_reads", io.zero_reads)
            .with_stat("seq_reads", io.seq_reads)
            .with_stat("consec_reads", io.consec_reads)
            .with_stat("bytes_read", io.bytes_read)
            .with_stat("files_opened", io.files_opened);
            line.events.push(ev);
        }

        // DXT timelines: one line per file, as TraceViewer shows them.
        if cfg.full_export && !dxt.is_empty() {
            if !cfg.export_cost_per_segment.is_zero() {
                sleep(cfg.export_cost_per_segment * dxt.len() as u32);
            }
            let names = &d.names;
            let plane = space.plane_mut(DXT_PLANE);
            for (rec, seg) in &dxt {
                let mut file = names
                    .get(rec)
                    .cloned()
                    .unwrap_or_else(|| format!("<{rec:#x}>"));
                // Rank lane: in a distributed job each rank's segments get
                // their own TraceViewer line per file (parallel Darshan's
                // DXT records always carry the rank; rank 0 keeps the bare
                // file name so single-process traces are unchanged).
                if seg.rank != 0 {
                    file = format!("{file} [rank {}]", seg.rank);
                }
                let mut ev = XEvent::new(
                    match seg.op {
                        DxtOp::Read => "pread",
                        DxtOp::Write => "pwrite",
                    },
                    abs(seg.start),
                    ((seg.end - seg.start).max(0.0) * 1e9) as u64,
                )
                .with_stat("offset", seg.offset)
                .with_stat("length", seg.length);
                if seg.rank != 0 {
                    ev = ev.with_stat("rank", seg.rank);
                }
                plane.line_mut(&file).events.push(ev);
            }
        }

        *self.report_slot.lock() = Some(report);
    }
}

/// Registers tf-Darshan with the TensorFlow profiler. Holds the wrapper;
/// attachment happens lazily at the first session (runtime attachment —
/// Table I "Runtime start/stop: yes").
pub struct DarshanTracerFactory {
    wrapper: Arc<TfDarshanWrapper>,
    report_slot: Arc<Mutex<Option<TfDarshanReport>>>,
}

impl DarshanTracerFactory {
    /// Create the factory and register it with the runtime. Returns the
    /// factory handle, which doubles as the report access point.
    pub fn register(rt: &TfRuntime, wrapper: Arc<TfDarshanWrapper>) -> Arc<Self> {
        let f = Arc::new(DarshanTracerFactory {
            wrapper,
            report_slot: Arc::new(Mutex::new(None)),
        });
        rt.register_tracer_factory(f.clone());
        f
    }

    /// The wrapper.
    pub fn wrapper(&self) -> &Arc<TfDarshanWrapper> {
        &self.wrapper
    }

    /// The report of the most recently collected session.
    pub fn last_report(&self) -> Option<TfDarshanReport> {
        self.report_slot.lock().clone()
    }
}

impl TracerFactory for DarshanTracerFactory {
    fn create(&self, _rt: &Arc<TfRuntime>, _options: &ProfilerOptions) -> Option<Arc<dyn Tracer>> {
        if self.wrapper.mark_start().is_err() {
            return None;
        }
        Some(Arc::new(DarshanTracer {
            wrapper: self.wrapper.clone(),
            report_slot: self.report_slot.clone(),
        }))
    }
}
