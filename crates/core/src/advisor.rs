//! Rule-based optimization advice from a tf-Darshan report — the paper's
//! central value proposition ("we show how the information from tf-Darshan
//! can guide optimization", §V) expressed as executable rules:
//!
//! * metadata-latency-bound small-file pipelines → raise
//!   `num_parallel_calls` and/or pack into containers (case study §V.A,
//!   the §VII TFRecord remark);
//! * contention-bound large-file pipelines on rotational storage → lower
//!   `num_parallel_calls` (Fig. 11a);
//! * a small-file population holding few bytes → stage below a threshold
//!   to the fast tier (case study §V.B);
//! * zero-length-read-heavy traces → the ReadFile EOF-probe signature
//!   (informational; an application-level fix in TensorFlow).

use serde::{Deserialize, Serialize};

use crate::analysis::{FileActivity, IoStats};
use crate::report::TfDarshanReport;
use crate::staging::{advise_threshold, plan_by_threshold, plan_within_budget, StagingPlan};

/// The storage class behind the profiled mount (the advisor needs to know
/// whether interleaved streams pay seeks).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StorageClass {
    /// Rotational disk: interleaving costs seeks.
    Rotational,
    /// Flash (SSD/NVMe): parallel small reads scale.
    Flash,
    /// Parallel filesystem client: per-open metadata RPCs dominate small
    /// files; concurrency is capped by RPC slots.
    ParallelFs,
}

/// Context the report alone cannot know.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AdvisorContext {
    /// Storage class of the dataset's tier.
    pub storage: StorageClass,
    /// Current `num_parallel_calls`.
    pub threads: usize,
    /// Bytes available on a faster tier (0 = none).
    pub fast_tier_budget: u64,
}

/// One recommendation, strongest expected impact first.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Recommendation {
    /// Raise `num_parallel_calls` to ~`to` (latency-bound pipeline).
    IncreaseParallelism {
        /// Suggested setting.
        to: usize,
        /// Why.
        rationale: String,
    },
    /// Lower `num_parallel_calls` to ~`to` (head contention).
    DecreaseParallelism {
        /// Suggested setting.
        to: usize,
        /// Why.
        rationale: String,
    },
    /// Stage files smaller than `threshold` to the fast tier.
    StageSmallFiles {
        /// Size threshold in bytes.
        threshold: u64,
        /// Bytes that would move.
        staged_bytes: u64,
        /// Fraction of dataset bytes that would move.
        byte_fraction: f64,
        /// Why.
        rationale: String,
    },
    /// Pack samples into container files (TFRecord).
    UseContainers {
        /// Why.
        rationale: String,
    },
    /// Informational: the trailing zero-length-read signature.
    ZeroReadSignature {
        /// Fraction of reads that were EOF probes.
        fraction: f64,
    },
}

fn small_read_fraction(io: &IoStats) -> f64 {
    if io.reads == 0 {
        return 0.0;
    }
    // Buckets up to 100 KB, excluding the zero probes.
    let small: u64 = io.read_size_hist[..4].iter().sum::<u64>() - io.zero_reads.min(io.reads);
    small as f64 / io.reads as f64
}

/// Produce recommendations from a profiling report plus context.
pub fn recommend(report: &TfDarshanReport, ctx: &AdvisorContext) -> Vec<Recommendation> {
    let io = &report.io;
    let mut out = Vec::new();
    let meta_heavy = io.meta_time > io.read_time * 0.5;
    let small_files = small_read_fraction(io) > 0.4 || meta_heavy;

    match ctx.storage {
        StorageClass::ParallelFs => {
            if small_files && ctx.threads < 8 {
                out.push(Recommendation::IncreaseParallelism {
                    to: 8.max(ctx.threads * 8).min(32),
                    rationale: format!(
                        "per-file metadata latency dominates ({:.0}% of I/O time is \
                         metadata; {} files at {:.2} MiB/s): more concurrent pipelines \
                         overlap the RPCs",
                        100.0 * io.meta_time / (io.meta_time + io.read_time).max(1e-9),
                        io.files_opened,
                        io.read_bandwidth_mibps
                    ),
                });
            }
            if small_files {
                out.push(Recommendation::UseContainers {
                    rationale: format!(
                        "{} opens for {} bytes means one metadata round-trip per \
                         ~{} KB; containers amortize opens over many samples",
                        io.opens,
                        io.bytes_read,
                        io.bytes_read / io.opens.max(1) / 1024
                    ),
                });
            }
        }
        StorageClass::Rotational => {
            let large_sequential = io.seq_fraction() > 0.8 && small_read_fraction(io) < 0.4;
            if large_sequential && ctx.threads > 2 {
                out.push(Recommendation::DecreaseParallelism {
                    to: 1,
                    rationale: format!(
                        "{} threads interleave {} sequential streams on a rotational \
                         disk: every ~1 MB segment pays a seek",
                        ctx.threads, ctx.threads
                    ),
                });
            }
            if ctx.fast_tier_budget > 0 {
                // Pick the knee of the size distribution: the largest
                // threshold whose staged set is still a small byte
                // fraction (seeks removed per byte spent on the fast
                // tier stay high) and fits the budget.
                let mut threshold = 0u64;
                let mut t = 64 * 1024u64;
                while t <= 1 << 32 {
                    let p = plan_by_threshold(&report.files, t);
                    if !p.files.is_empty()
                        && p.staged_bytes <= ctx.fast_tier_budget
                        && p.byte_fraction() <= 0.25
                    {
                        threshold = t;
                    }
                    t *= 2;
                }
                let plan = plan_by_threshold(&report.files, threshold);
                if !plan.files.is_empty() && plan.byte_fraction() < 0.5 {
                    out.push(Recommendation::StageSmallFiles {
                        threshold,
                        staged_bytes: plan.staged_bytes,
                        byte_fraction: plan.byte_fraction(),
                        rationale: format!(
                            "{} files ({:.0}% of files) hold only {:.1}% of bytes but \
                             cost a seek each; staging them frees the disk for \
                             sequential streaming",
                            plan.files.len(),
                            100.0 * plan.file_fraction(),
                            100.0 * plan.byte_fraction()
                        ),
                    });
                }
            }
        }
        StorageClass::Flash => {
            if small_files && ctx.threads < 4 {
                out.push(Recommendation::IncreaseParallelism {
                    to: 8,
                    rationale: "flash serves concurrent small reads in parallel".into(),
                });
            }
        }
    }

    if io.zero_read_fraction() > 0.3 {
        out.push(Recommendation::ZeroReadSignature {
            fraction: io.zero_read_fraction(),
        });
    }
    out
}

/// Advisor → staging-daemon handoff: the initial plan an online staging
/// daemon (`crates/prefetch`) seeds from a prior profile. Picks the
/// paper's power-of-two threshold for the budget; when the sweep cannot
/// produce a usable plan (zero/insufficient budget, all-equal-size ties)
/// it falls back to a smallest-first budget fill. The result never
/// overcommits `fast_tier_budget`.
pub fn seed_plan(files: &[FileActivity], fast_tier_budget: u64) -> StagingPlan {
    let thr = advise_threshold(files, fast_tier_budget);
    let by_threshold = plan_by_threshold(files, thr);
    if by_threshold.files.is_empty() || by_threshold.staged_bytes > fast_tier_budget {
        plan_within_budget(files, fast_tier_budget)
    } else {
        by_threshold
    }
}

/// Render recommendations as a human-readable block.
pub fn render(recs: &[Recommendation]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if recs.is_empty() {
        out.push_str("no recommendations: the pipeline looks well matched to its storage\n");
        return out;
    }
    for (i, r) in recs.iter().enumerate() {
        let _ = match r {
            Recommendation::IncreaseParallelism { to, rationale } => writeln!(
                out,
                "{}. raise num_parallel_calls to ~{to} — {rationale}",
                i + 1
            ),
            Recommendation::DecreaseParallelism { to, rationale } => writeln!(
                out,
                "{}. lower num_parallel_calls to ~{to} — {rationale}",
                i + 1
            ),
            Recommendation::StageSmallFiles {
                threshold,
                staged_bytes,
                byte_fraction,
                rationale,
            } => writeln!(
                out,
                "{}. stage files < {} KB to the fast tier ({:.2} GB, {:.1}% of bytes) — {rationale}",
                i + 1,
                threshold / 1024,
                *staged_bytes as f64 / 1e9,
                byte_fraction * 100.0
            ),
            Recommendation::UseContainers { rationale } => {
                writeln!(out, "{}. pack samples into TFRecord shards — {rationale}", i + 1)
            }
            Recommendation::ZeroReadSignature { fraction } => writeln!(
                out,
                "{}. note: {:.0}% of reads are zero-length EOF probes (TensorFlow's \
                 ReadFile loops on pread until 0) — harmless but inflates op counts",
                i + 1,
                fraction * 100.0
            ),
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::FileActivity;

    fn imagenet_like() -> TfDarshanReport {
        let mut io = IoStats {
            window_secs: 100.0,
            opens: 1000,
            reads: 2000,
            zero_reads: 1000,
            seq_reads: 2000,
            bytes_read: 1000 * 88_000,
            read_bandwidth_mibps: 3.0,
            files_opened: 1000,
            read_time: 8.0,
            meta_time: 13.0,
            ..Default::default()
        };
        io.read_size_hist[0] = 1000; // probes
        io.read_size_hist[3] = 1000; // 88 KB data reads
        TfDarshanReport {
            window: (0.0, 100.0),
            io,
            stdio: Default::default(),
            files: vec![],
            sanitizer: None,
            scheduler: None,
            explore: None,
        }
    }

    fn malware_like(files: Vec<FileActivity>) -> TfDarshanReport {
        let mut io = IoStats {
            window_secs: 100.0,
            opens: 1000,
            reads: 6000,
            zero_reads: 1000,
            seq_reads: 6000,
            consec_reads: 5000,
            bytes_read: 48_000_000_000,
            read_bandwidth_mibps: 77.0,
            files_opened: 1000,
            read_time: 90.0,
            meta_time: 5.0,
            ..Default::default()
        };
        io.read_size_hist[0] = 1000;
        io.read_size_hist[4] = 5000; // 100K-1M segments
        TfDarshanReport {
            window: (0.0, 100.0),
            io,
            stdio: Default::default(),
            files,
            sanitizer: None,
            scheduler: None,
            explore: None,
        }
    }

    #[test]
    fn lustre_small_files_get_threads_and_containers() {
        let recs = recommend(
            &imagenet_like(),
            &AdvisorContext {
                storage: StorageClass::ParallelFs,
                threads: 1,
                fast_tier_budget: 0,
            },
        );
        assert!(matches!(
            recs[0],
            Recommendation::IncreaseParallelism { to, .. } if to >= 8
        ));
        assert!(recs
            .iter()
            .any(|r| matches!(r, Recommendation::UseContainers { .. })));
        assert!(recs.iter().any(
            |r| matches!(r, Recommendation::ZeroReadSignature { fraction } if *fraction > 0.45)
        ));
    }

    #[test]
    fn hdd_threaded_large_files_get_backoff_and_staging() {
        let files: Vec<FileActivity> = (0..100)
            .map(|i| FileActivity {
                path: format!("/hdd/f{i}"),
                reads: 6,
                bytes_read: if i < 40 { 800_000 } else { 7_000_000 },
                apparent_size: if i < 40 { 800_000 } else { 7_000_000 },
                read_time: 0.05,
            })
            .collect();
        let recs = recommend(
            &malware_like(files),
            &AdvisorContext {
                storage: StorageClass::Rotational,
                threads: 16,
                fast_tier_budget: 100_000_000,
            },
        );
        assert!(matches!(
            recs[0],
            Recommendation::DecreaseParallelism { to: 1, .. }
        ));
        let stage = recs
            .iter()
            .find_map(|r| match r {
                Recommendation::StageSmallFiles { byte_fraction, .. } => Some(*byte_fraction),
                _ => None,
            })
            .expect("staging advice");
        assert!(stage < 0.2, "staged bytes are a small fraction: {stage}");
    }

    #[test]
    fn one_thread_on_hdd_gets_no_backoff() {
        let recs = recommend(
            &malware_like(vec![]),
            &AdvisorContext {
                storage: StorageClass::Rotational,
                threads: 1,
                fast_tier_budget: 0,
            },
        );
        assert!(!recs
            .iter()
            .any(|r| matches!(r, Recommendation::DecreaseParallelism { .. })));
    }

    #[test]
    fn render_is_readable() {
        let recs = recommend(
            &imagenet_like(),
            &AdvisorContext {
                storage: StorageClass::ParallelFs,
                threads: 1,
                fast_tier_budget: 0,
            },
        );
        let text = render(&recs);
        assert!(text.contains("raise num_parallel_calls"));
        assert!(text.contains("TFRecord"));
        assert!(render(&[]).contains("no recommendations"));
    }
}
