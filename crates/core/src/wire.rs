//! The stable wire schema of the live observability service.
//!
//! A training job streams its profiling output to the serve daemon as a
//! sequence of [`SessionDiffMsg`]s — one per completed profiling session
//! per rank. The payload is the session's [`TfDarshanReport`], i.e. the
//! *analyzed* O(changed) output of the incremental snapshot engine: the
//! per-file table only carries files with in-window activity, and every
//! integer counter is a window delta, so messages are additive — summing
//! the `io`/`stdio` counters of a job's messages reproduces the counters
//! of one report over the union window exactly (the diff-additivity
//! invariant `diff(a,c) = diff(a,b) + diff(b,c)` proven in
//! `analysis::tests::diff_additivity`).
//!
//! Messages travel as single-line JSON (NDJSON) over the daemon's ingest
//! socket, or in-process through `serve::ServeSink`. The schema is
//! versioned ([`WIRE_VERSION`]); the daemon rejects (and counts) any
//! message whose `v` it does not speak, so schema drift is loud instead of
//! silent. Fields added later must be `#[serde(default)]`-tolerant the
//! same way `TfDarshanReport.sanitizer`/`.scheduler` are.

use serde::{Deserialize, Serialize};

use crate::job::RankSession;
use crate::report::TfDarshanReport;

/// Version of the session-diff wire schema. Bump on any incompatible
/// change to [`SessionDiffMsg`] or the report types it embeds.
pub const WIRE_VERSION: u32 = 1;

/// One completed profiling session of one rank of one job, on the wire.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SessionDiffMsg {
    /// Wire schema version ([`WIRE_VERSION`]).
    pub v: u32,
    /// Job id — the multi-tenancy key. Job-supplied and untrusted: the
    /// daemon escapes it wherever it lands in markup or exposition text.
    pub job: String,
    /// Rank within the job that produced this session.
    pub rank: u32,
    /// Per-`(job, rank)` sequence number, starting at 0. Lets the
    /// aggregator spot gaps (sessions lost to backpressure upstream).
    pub seq: u64,
    /// The session's analyzed window: counters are in-window deltas,
    /// `files` holds only files with in-window activity.
    pub report: TfDarshanReport,
}

impl SessionDiffMsg {
    /// Wrap one rank's extracted session for job `job` as message `seq`.
    pub fn from_session(job: &str, seq: u64, session: &RankSession) -> Self {
        SessionDiffMsg {
            v: WIRE_VERSION,
            job: job.to_string(),
            rank: session.rank,
            seq,
            report: session.report(),
        }
    }

    /// Encode as one NDJSON line (no interior newlines — JSON string
    /// escaping keeps `\n` out of the payload), terminator not included.
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("wire message serializes")
    }

    /// Decode one NDJSON line.
    pub fn from_line(line: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{IoStats, StdioStats};

    fn msg() -> SessionDiffMsg {
        let mut io = IoStats {
            window_secs: 2.0,
            reads: 10,
            bytes_read: 1 << 20,
            read_bandwidth_mibps: 0.5,
            ..Default::default()
        };
        io.read_size_hist[3] = 10;
        SessionDiffMsg {
            v: WIRE_VERSION,
            job: "job-a\nwith \"quotes\"".into(),
            rank: 3,
            seq: 7,
            report: TfDarshanReport {
                window: (1.0, 3.0),
                io,
                stdio: StdioStats::default(),
                files: vec![],
                sanitizer: None,
                scheduler: None,
                explore: None,
            },
        }
    }

    #[test]
    fn line_roundtrip_is_single_line_and_field_identical() {
        let m = msg();
        let line = m.to_line();
        assert!(!line.contains('\n'), "NDJSON payload must be one line");
        let back = SessionDiffMsg::from_line(&line).unwrap();
        assert_eq!(back.v, WIRE_VERSION);
        assert_eq!(back.job, m.job);
        assert_eq!(back.rank, 3);
        assert_eq!(back.seq, 7);
        assert_eq!(back.report.io.bytes_read, 1 << 20);
        assert_eq!(back.report.io.read_size_hist, m.report.io.read_size_hist);
        // Byte-stable: re-encoding the decoded message is identical.
        assert_eq!(back.to_line(), line);
    }

    #[test]
    fn garbage_and_truncated_lines_error() {
        assert!(SessionDiffMsg::from_line("not json").is_err());
        let line = msg().to_line();
        assert!(SessionDiffMsg::from_line(&line[..line.len() / 2]).is_err());
        assert!(SessionDiffMsg::from_line("{}").is_err(), "missing fields");
    }
}
