//! I/O-aware auto-tuning from in-situ Darshan data — the paper's §VII
//! vision made concrete: "Once introducing the capability of runtime
//! attachment, Darshan has the capability of providing information for
//! such as auto-tuning during execution. … The information from tf-Darshan
//! has the potential of improving this process with I/O specific
//! information."
//!
//! [`IoAutoTuner`] periodically closes a Darshan measurement window (via
//! the runtime-extraction API, no profiler session needed), derives the
//! window's POSIX read bandwidth, and hill-climbs the pipeline's
//! `num_parallel_calls` through a [`DynamicParallelism`] knob. The same
//! controller walks *up* on latency-bound storage (Lustre small files)
//! and *down* on contention-bound storage (HDD large files) — the two
//! opposite optimizations of the paper's case studies.

use std::sync::Arc;

use tfsim::{Callback, DynamicParallelism, TfRuntime};

use crate::wrapper::TfDarshanWrapper;

/// One tuning decision, for post-hoc inspection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TuneStep {
    /// Training step at which the window closed.
    pub step: usize,
    /// Parallelism during the window.
    pub target: usize,
    /// Window read bandwidth, MiB/s.
    pub bandwidth: f64,
    /// Parallelism chosen for the next window.
    pub next_target: usize,
}

/// Hill-climbing controller over `num_parallel_calls`, fed by Darshan
/// window bandwidth. Use as a Keras callback, or call
/// [`IoAutoTuner::window_closed`] manually from a custom loop.
pub struct IoAutoTuner {
    wrapper: Arc<TfDarshanWrapper>,
    ctl: Arc<DynamicParallelism>,
    /// Steps per measurement window.
    pub window_steps: usize,
    direction: f64,
    /// Relative drop that triggers a direction reversal (default 0.95).
    pub reverse_tolerance: f64,
    last_bandwidth: Option<f64>,
    steps_in_window: usize,
    step: usize,
    /// Decision log.
    pub history: Vec<TuneStep>,
}

impl IoAutoTuner {
    /// Tune `ctl` using Darshan windows of `window_steps` steps.
    pub fn new(
        wrapper: Arc<TfDarshanWrapper>,
        ctl: Arc<DynamicParallelism>,
        window_steps: usize,
    ) -> Self {
        IoAutoTuner {
            wrapper,
            ctl,
            window_steps: window_steps.max(1),
            direction: 1.5,
            reverse_tolerance: 0.95,
            last_bandwidth: None,
            steps_in_window: 0,
            step: 0,
            history: Vec::new(),
        }
    }

    /// The knob being tuned.
    pub fn ctl(&self) -> &Arc<DynamicParallelism> {
        &self.ctl
    }

    /// Final parallelism after tuning.
    pub fn converged_target(&self) -> usize {
        self.ctl.target()
    }

    fn adjust(&mut self, bandwidth: f64) -> usize {
        let cur = self.ctl.target();
        if let Some(last) = self.last_bandwidth {
            // Worse than before (beyond noise): reverse the direction.
            // The tolerance is loose because window bandwidth is noisy
            // (different windows read different file-size mixes) and the
            // thread→bandwidth response can be flat over wide ranges
            // (Fig. 11a: any interleaving ≥2 streams pays the seeks).
            if bandwidth < last * self.reverse_tolerance {
                self.direction = 1.0 / self.direction;
            }
        }
        self.last_bandwidth = Some(bandwidth);
        // Multiplicative step, moving by at least one.
        let mut next = if self.direction > 1.0 {
            (((cur as f64) * self.direction).round() as usize).max(cur + 1)
        } else {
            (((cur as f64) * self.direction).round() as usize).min(cur.saturating_sub(1))
        }
        .clamp(1, self.ctl.max);
        if next == cur {
            // Pinned at a bound: probe the other direction instead of
            // sitting still forever.
            self.direction = 1.0 / self.direction;
            next = if self.direction > 1.0 {
                (cur + 1).min(self.ctl.max)
            } else {
                cur.saturating_sub(1).max(1)
            };
        }
        self.ctl.set_target(next);
        next
    }

    /// Close the current Darshan window, decide, and open the next one.
    pub fn window_closed(&mut self, step: usize) {
        self.wrapper.mark_stop();
        let bandwidth = self.wrapper.session_read_bandwidth().unwrap_or(0.0);
        let target = self.ctl.target();
        let next = self.adjust(bandwidth);
        self.history.push(TuneStep {
            step,
            target,
            bandwidth,
            next_target: next,
        });
        let _ = self.wrapper.mark_start();
    }
}

impl Callback for IoAutoTuner {
    fn on_train_begin(&mut self, _rt: &Arc<TfRuntime>) {
        let _ = self.wrapper.mark_start();
    }

    fn on_step_end(&mut self, _rt: &Arc<TfRuntime>, step: usize) {
        self.step = step;
        self.steps_in_window += 1;
        if self.steps_in_window >= self.window_steps {
            self.steps_in_window = 0;
            self.window_closed(step);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wrapper::TfDarshanConfig;
    use posix_sim::Process;
    use storage_sim::StorageStack;

    /// Drive `adjust` with a synthetic bandwidth curve peaking at `peak`.
    fn converge(start: usize, max: usize, peak: usize) -> usize {
        let sim = simrt::Sim::new();
        let stack = StorageStack::new();
        let process = Process::new(stack);
        let wrapper = TfDarshanWrapper::install(process, TfDarshanConfig::default());
        let ctl = DynamicParallelism::new(start, max);
        let mut tuner = IoAutoTuner::new(wrapper, ctl.clone(), 5);
        // Concave response: bandwidth drops on either side of `peak`.
        let bw = move |t: usize| -> f64 {
            let t = t as f64;
            let p = peak as f64;
            100.0 - (t - p).abs() * 8.0
        };
        let h = sim.spawn("tuner", move || {
            for _ in 0..24 {
                let measured = bw(ctl.target());
                let next = tuner.adjust(measured);
                ctl.set_target(next);
            }
            tuner.ctl().target()
        });
        sim.run();
        h.join()
    }

    #[test]
    fn climbs_up_when_more_threads_help() {
        let end = converge(1, 28, 24);
        assert!((16..=28).contains(&end), "converged to {end}");
    }

    #[test]
    fn climbs_down_when_threads_hurt() {
        let end = converge(16, 16, 1);
        assert!(end <= 4, "converged to {end}");
    }

    #[test]
    fn respects_bounds() {
        assert!(converge(1, 4, 28) <= 4);
        assert!(converge(4, 4, 1) >= 1);
    }
}
