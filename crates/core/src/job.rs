//! Rank as a first-class dimension: per-rank tf-Darshan sessions and the
//! job-level reduction.
//!
//! The paper's §III forward-compatibility argument ("if TensorFlow employs
//! MPI as a distributed strategy … one can employ the parallel version of
//! Darshan with the MPI module with a similar technique"), implemented:
//!
//! * [`RankCtx`] — one rank's view: its [`Process`] (with its own probe
//!   bus) plus an attached tf-Darshan session whose DXT segments are
//!   stamped with the rank;
//! * [`JobCtx`] — owns N `RankCtx`s over one shared [`StorageStack`] (the
//!   cluster's parallel filesystem) plus rank-group **shard buses**
//!   ([`DEFAULT_SHARD_RANKS`] ranks each): every rank's probe events are
//!   mirrored onto its shard so wide jobs stop serializing on one spine;
//!   consumers that need the strict job-wide op-completion order (the
//!   sanitizer) get a lazily-attached job-wide bus via
//!   [`JobCtx::job_bus`], while per-rank consumers keep reading the
//!   rank's own bus;
//! * [`JobReport`] — per-rank reports plus the job-level merge, using
//!   parallel Darshan's shared-file reduction semantics: records of files
//!   touched by several ranks merge (counters sum, extrema min/max, first
//!   timestamps min-nonzero, last timestamps max), records of rank-private
//!   files pass through **unchanged** — which makes the `world_size == 1`
//!   job report byte-identical to the single-process path.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;

use darshan_sim::{reduce, DxtSegment, PosixRecord, StdioRecord};
use mpi_sim::MpiWorld;
use posix_sim::{GotError, Process};
use probe::ProbeBus;
use serde::{Deserialize, Serialize};
use simrt::{EventHandle, EventTask, Sim};
use storage_sim::StorageStack;

use crate::analysis::{analyze, diff, per_file, SnapshotDiff};
use crate::report::TfDarshanReport;
use crate::wrapper::{TfDarshanConfig, TfDarshanWrapper};

/// One rank's profiling context: the rank's process, its own probe bus
/// (reachable via [`RankCtx::probe`]), and an attached tf-Darshan session
/// whose DXT segments carry this rank's id.
pub struct RankCtx {
    rank: u32,
    process: Arc<Process>,
    wrapper: Arc<TfDarshanWrapper>,
}

impl RankCtx {
    /// Wrap `process` as rank `rank` and install tf-Darshan into it. The
    /// Darshan runtime is configured with the rank so every DXT segment it
    /// records is rank-tagged.
    pub fn new(rank: u32, process: Arc<Process>, mut config: TfDarshanConfig) -> Self {
        config.darshan.rank = rank;
        let wrapper = TfDarshanWrapper::install(process.clone(), config);
        RankCtx {
            rank,
            process,
            wrapper,
        }
    }

    /// This rank.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// The rank's process.
    pub fn process(&self) -> &Arc<Process> {
        &self.process
    }

    /// The rank's own probe bus (sees only this rank's events).
    pub fn probe(&self) -> &ProbeBus {
        self.process.probe()
    }

    /// The rank's tf-Darshan wrapper.
    pub fn wrapper(&self) -> &Arc<TfDarshanWrapper> {
        &self.wrapper
    }

    /// The rank's last completed session (diff + window DXT), or `None`
    /// if no start/stop pair exists yet.
    pub fn session(&self) -> Option<RankSession> {
        let (start, stop) = self.wrapper.session_snapshots()?;
        Some(RankSession {
            rank: self.rank,
            diff: diff(&start, &stop),
            dxt: self.wrapper.session_dxt(),
        })
    }
}

/// One rank's extracted session: the per-rank snapshot diff plus the
/// window's (rank-tagged) DXT segments. Input to the job reduction.
pub struct RankSession {
    /// The contributing rank.
    pub rank: u32,
    /// Per-file counter deltas of the rank's window.
    pub diff: SnapshotDiff,
    /// DXT segments of the rank's window.
    pub dxt: Vec<(u64, DxtSegment)>,
}

impl RankSession {
    /// This rank's own report — exactly what the single-process tracer
    /// produces from the same diff and DXT.
    pub fn report(&self) -> TfDarshanReport {
        let (io, stdio) = analyze(&self.diff, &self.dxt);
        TfDarshanReport {
            window: self.diff.window,
            io,
            stdio,
            files: per_file(&self.diff),
            sanitizer: None,
            scheduler: None,
            explore: None,
        }
    }
}

/// The job view: per-rank reports plus the job-level merge.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobReport {
    /// The job's true world size — **not** the number of sessions that
    /// contributed. A rank that failed to produce a session no longer
    /// silently shrinks the reported world; it shows up in
    /// [`JobReport::missing_ranks`] instead.
    pub world_size: u32,
    /// Ranks in `0..world_size` that contributed no session (crashed
    /// before `mark_stop`, never attached, …). Empty for a complete job.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub missing_ranks: Vec<u32>,
    /// The job-level report over the merged records and the concatenated
    /// rank-tagged DXT timeline.
    pub job: TfDarshanReport,
    /// Per-rank reports, in rank order.
    pub per_rank: Vec<TfDarshanReport>,
}

/// Ranks in `0..world_size` with no session in `sessions`.
pub(crate) fn missing_ranks_of(sessions: &[RankSession], world_size: u32) -> Vec<u32> {
    let have: std::collections::HashSet<u32> = sessions.iter().map(|s| s.rank).collect();
    (0..world_size).filter(|r| !have.contains(r)).collect()
}

/// Merge per-rank sessions into the job view with parallel Darshan's
/// shared-file reduction semantics: a record id appearing in more than one
/// rank's diff is merged ([`darshan_sim::reduce::merge_posix_records`] /
/// [`darshan_sim::reduce::merge_stdio_records`] — counters sum, byte
/// extrema max, first timestamps min-nonzero, last timestamps max,
/// cumulative times sum); a record id unique to one rank passes through
/// unchanged. The job window spans min-start..max-stop; the job DXT is the
/// rank-tagged concatenation (kept in end-time order for `world_size > 1`).
///
/// This is the historical entry point and derives the world size from the
/// session count — callers that know the true world size (and want missing
/// ranks surfaced rather than silently absorbed) use
/// [`reduce_job_sessions_sized`]; wide jobs use the log-depth
/// [`crate::job_tree::reduce_job_sessions_tree`], which is byte-identical.
pub fn reduce_job_sessions(sessions: &[RankSession]) -> JobReport {
    reduce_job_sessions_sized(sessions, sessions.len() as u32)
}

/// [`reduce_job_sessions`] with the job's true `world_size` threaded
/// through: the report carries it verbatim and lists the ranks that
/// produced no session instead of pretending the world was smaller.
pub fn reduce_job_sessions_sized(sessions: &[RankSession], world_size: u32) -> JobReport {
    assert!(
        !sessions.is_empty(),
        "job reduction needs at least one rank"
    );

    // Group records by id across ranks, preserving rec-id order (diffs are
    // already rec-id-sorted, and so is a BTreeMap walk).
    let mut posix: BTreeMap<u64, Vec<&PosixRecord>> = BTreeMap::new();
    let mut stdio: BTreeMap<u64, Vec<&StdioRecord>> = BTreeMap::new();
    for s in sessions {
        for r in &s.diff.posix {
            posix.entry(r.rec_id).or_default().push(r);
        }
        for r in &s.diff.stdio {
            stdio.entry(r.rec_id).or_default().push(r);
        }
    }
    let merged_posix: Vec<PosixRecord> = posix
        .into_values()
        .filter_map(|group| {
            if group.len() == 1 {
                Some(group[0].clone()) // rank-private file: pass through
            } else {
                let owned: Vec<PosixRecord> = group.into_iter().cloned().collect();
                reduce::merge_posix_records(&owned)
            }
        })
        .collect();
    let merged_stdio: Vec<StdioRecord> = stdio
        .into_values()
        .filter_map(|group| {
            if group.len() == 1 {
                Some(group[0].clone())
            } else {
                let owned: Vec<StdioRecord> = group.into_iter().cloned().collect();
                reduce::merge_stdio_records(&owned)
            }
        })
        .collect();

    // Names: the union across ranks (identical Arc reused for one rank, so
    // the single-rank job path shares rather than copies).
    let names = if sessions.len() == 1 {
        sessions[0].diff.names.clone()
    } else {
        let mut union: HashMap<u64, String> = HashMap::new();
        for s in sessions {
            for (id, name) in s.diff.names.iter() {
                union.entry(*id).or_insert_with(|| name.clone());
            }
        }
        Arc::new(union)
    };

    let window = (
        sessions
            .iter()
            .map(|s| s.diff.window.0)
            .fold(f64::INFINITY, f64::min),
        sessions
            .iter()
            .map(|s| s.diff.window.1)
            .fold(f64::NEG_INFINITY, f64::max),
    );
    let job_diff = SnapshotDiff {
        window,
        posix: merged_posix,
        stdio: merged_stdio,
        names,
        partial: sessions.iter().any(|s| s.diff.partial),
    };

    // Job DXT: every rank's segments on one timeline. A single rank's
    // session order is preserved as-is (byte-identity with the
    // single-process path); multiple ranks interleave by completion time.
    let mut job_dxt: Vec<(u64, DxtSegment)> = Vec::new();
    for s in sessions {
        job_dxt.extend(s.dxt.iter().copied());
    }
    if sessions.len() > 1 {
        job_dxt.sort_by(|a, b| {
            a.1.end
                .total_cmp(&b.1.end)
                .then(a.1.start.total_cmp(&b.1.start))
                .then(a.1.rank.cmp(&b.1.rank))
        });
    }

    let (io, stdio) = analyze(&job_diff, &job_dxt);
    let job = TfDarshanReport {
        window: job_diff.window,
        io,
        stdio,
        files: per_file(&job_diff),
        sanitizer: None,
        scheduler: None,
        explore: None,
    };
    JobReport {
        world_size,
        missing_ranks: missing_ranks_of(sessions, world_size),
        job,
        per_rank: sessions.iter().map(|s| s.report()).collect(),
    }
}

/// Default ranks per probe-bus shard: one shard per "node" of a typical
/// cluster generation, and small enough that a shard-local consumer sees
/// 1/16th of a 1k-rank job's traffic.
pub const DEFAULT_SHARD_RANKS: usize = 64;

/// N ranks over one shared storage stack, with rank-group **shard buses**
/// and an on-demand job-wide bus.
///
/// Every rank's process mirrors its events onto its shard's [`ProbeBus`]
/// (ranks `[k·shard_ranks, (k+1)·shard_ranks)` share shard `k`), so
/// shard-local consumers — per-node dstat attribution, serve's live
/// gauges — register on one shard and never see (or slow down) the other
/// shards' sink snapshots. Consumers that need the strict job-wide
/// op-completion order (the sanitizer's happens-before analysis) call
/// [`JobCtx::job_bus`], which lazily attaches one more shared spine to
/// every rank: a job that never asks for it — the fleet-scale default —
/// pays nothing for it.
pub struct JobCtx {
    stack: StorageStack,
    shard_ranks: usize,
    shards: Vec<ProbeBus>,
    job_bus: std::sync::OnceLock<ProbeBus>,
    ranks: Vec<RankCtx>,
}

impl JobCtx {
    /// Create `world_size` ranks, each with its own fresh [`Process`] over
    /// the shared `stack`, tf-Darshan installed per rank, and the rank's
    /// shard bus attached to its process ([`DEFAULT_SHARD_RANKS`] ranks
    /// per shard).
    pub fn new(stack: &StorageStack, world_size: usize, config: &TfDarshanConfig) -> Self {
        assert!(world_size > 0);
        let processes = (0..world_size)
            .map(|_| Process::new(stack.clone()))
            .collect();
        Self::from_processes(stack.clone(), processes, config, DEFAULT_SHARD_RANKS)
    }

    /// [`JobCtx::new`] with an explicit shard width (ranks per shard bus).
    pub fn with_shard_ranks(
        stack: &StorageStack,
        world_size: usize,
        config: &TfDarshanConfig,
        shard_ranks: usize,
    ) -> Self {
        assert!(world_size > 0);
        let processes = (0..world_size)
            .map(|_| Process::new(stack.clone()))
            .collect();
        Self::from_processes(stack.clone(), processes, config, shard_ranks)
    }

    /// Wrap an existing [`MpiWorld`]'s rank processes — the path a
    /// distributed training job takes: `mpi-sim` owns the ranks and the
    /// collectives; the job context adds per-rank tf-Darshan sessions and
    /// the shard buses on top.
    pub fn over_world(world: &MpiWorld, config: &TfDarshanConfig) -> Self {
        let processes: Vec<Arc<Process>> = (0..world.size()).map(|r| world.process(r)).collect();
        let stack = processes[0].stack().clone();
        Self::from_processes(stack, processes, config, DEFAULT_SHARD_RANKS)
    }

    fn from_processes(
        stack: StorageStack,
        processes: Vec<Arc<Process>>,
        config: &TfDarshanConfig,
        shard_ranks: usize,
    ) -> Self {
        assert!(shard_ranks > 0, "shards need at least one rank");
        let shard_count = processes.len().div_ceil(shard_ranks);
        let shards: Vec<ProbeBus> = (0..shard_count).map(|_| ProbeBus::new()).collect();
        let ranks = processes
            .into_iter()
            .enumerate()
            .map(|(r, p)| {
                p.attach_shared_spine(&shards[r / shard_ranks]);
                RankCtx::new(r as u32, p, config.clone())
            })
            .collect();
        JobCtx {
            stack,
            shard_ranks,
            shards,
            job_bus: std::sync::OnceLock::new(),
            ranks,
        }
    }

    /// Number of ranks.
    pub fn world_size(&self) -> usize {
        self.ranks.len()
    }

    /// A rank's context.
    pub fn rank(&self, rank: usize) -> &RankCtx {
        &self.ranks[rank]
    }

    /// All ranks, rank order.
    pub fn ranks(&self) -> &[RankCtx] {
        &self.ranks
    }

    /// Ranks per shard bus.
    pub fn shard_ranks(&self) -> usize {
        self.shard_ranks
    }

    /// Number of shard buses.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard bus `shard` (events of ranks `shard·shard_ranks ..`).
    pub fn shard_bus(&self, shard: usize) -> &ProbeBus {
        &self.shards[shard]
    }

    /// The shard a rank's events land on.
    pub fn shard_of_rank(&self, rank: u32) -> usize {
        rank as usize / self.shard_ranks
    }

    /// Register one order-insensitive sink on **every shard bus** — the
    /// merge stage for job-wide consumers that fold commutative counters
    /// (dstat gauges, serve's live op/byte counters). The sink sees every
    /// rank's events, each shard's stream in op-completion order, with no
    /// ordering defined *across* shards — consumers that need the strict
    /// job-wide order use [`JobCtx::job_bus`] instead. Returns one
    /// `(shard, sink id)` pair per shard for
    /// [`JobCtx::detach_shard_merge`].
    pub fn attach_shard_merge(
        &self,
        sink: Arc<dyn probe::ProbeSink>,
    ) -> Vec<(usize, probe::SinkId)> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, bus)| (i, bus.register(sink.clone())))
            .collect()
    }

    /// Unregister a sink attached with [`JobCtx::attach_shard_merge`].
    pub fn detach_shard_merge(&self, ids: &[(usize, probe::SinkId)]) {
        for (shard, id) in ids {
            self.shards[*shard].unregister(*id);
        }
    }

    /// The job-wide bus: all ranks' I/O events (and, via
    /// `probe::SyncBridge`, the job's sync events) in one
    /// op-completion-ordered stream. Job-wide consumers must read this one
    /// bus — cross-bus ordering is not defined.
    ///
    /// Created (and attached to every rank's process as an additional
    /// shared spine) on first call: ranks only pay the job-wide mirroring
    /// when something actually consumes it. Call before the events you
    /// care about are emitted — typically before `sim.run()`.
    pub fn job_bus(&self) -> &ProbeBus {
        self.job_bus.get_or_init(|| {
            let bus = ProbeBus::new();
            for r in &self.ranks {
                r.process.attach_shared_spine(&bus);
            }
            bus
        })
    }

    /// The shared storage stack (the parallel filesystem).
    pub fn stack(&self) -> &StorageStack {
        &self.stack
    }

    /// Begin a job-wide profiling window: every rank attaches (first time)
    /// and takes its start snapshot.
    ///
    /// Marking is charged in virtual time (`snapshot_cost_per_record` per
    /// dirty record, on the calling task), so one caller marking all N
    /// ranks serializes O(N) snapshot work on its carrier. Fleet-scale
    /// drivers that already have one task per rank group should mark
    /// concurrently via [`JobCtx::mark_start_span`] instead.
    pub fn mark_start(&self) -> Result<(), GotError> {
        self.mark_start_span(0, self.ranks.len())
    }

    /// End the job-wide window with per-rank stop snapshots. Same O(N)
    /// caveat as [`JobCtx::mark_start`]; see [`JobCtx::mark_stop_span`].
    pub fn mark_stop(&self) {
        self.mark_stop_span(0, self.ranks.len());
    }

    /// [`JobCtx::mark_start`] for the rank span `lo..hi` only — in real
    /// darshan the window marks are collectives where every rank snapshots
    /// *its own* state concurrently, and this is the simulated shape: each
    /// node carrier marks the ranks it drives, so the per-rank snapshot
    /// cost parallelizes over carriers instead of serializing on one.
    pub fn mark_start_span(&self, lo: usize, hi: usize) -> Result<(), GotError> {
        for r in &self.ranks[lo..hi] {
            r.wrapper.mark_start()?;
        }
        Ok(())
    }

    /// [`JobCtx::mark_stop`] for the rank span `lo..hi` only.
    pub fn mark_stop_span(&self, lo: usize, hi: usize) {
        for r in &self.ranks[lo..hi] {
            r.wrapper.mark_stop();
        }
    }

    /// Extract every rank's session and reduce to the job view. `None`
    /// until a start/stop pair exists on every rank. Runs the log-depth
    /// tree reduction (byte-identical to [`reduce_job_sessions`]).
    pub fn collect(&self) -> Option<JobReport> {
        let sessions: Vec<RankSession> = self.ranks.iter().filter_map(|r| r.session()).collect();
        if sessions.len() != self.ranks.len() {
            return None;
        }
        let (report, _) = crate::job_tree::reduce_job_sessions_tree(
            &sessions,
            self.ranks.len() as u32,
            &crate::job_tree::TreeReduceConfig::default(),
        );
        Some(report)
    }

    /// [`JobCtx::collect`] that tolerates missing ranks: reduces whatever
    /// sessions exist (`None` only when no rank has one) and surfaces the
    /// sessionless ranks in [`JobReport::missing_ranks`].
    pub fn collect_partial(&self) -> Option<JobReport> {
        let sessions: Vec<RankSession> = self.ranks.iter().filter_map(|r| r.session()).collect();
        if sessions.is_empty() {
            return None;
        }
        let (report, _) = crate::job_tree::reduce_job_sessions_tree(
            &sessions,
            self.ranks.len() as u32,
            &crate::job_tree::TreeReduceConfig::default(),
        );
        Some(report)
    }

    /// Spawn one *event task* per rank as the rank's driver — the scalable
    /// path for wide jobs: each rank costs a run-calendar entry instead of
    /// a parked OS thread, so a 1k-rank job needs a 1k-entry heap, not 1k
    /// stacks. `f` builds rank `r`'s state machine from its id and
    /// process; the machine is polled inline by the scheduler and must use
    /// the poll-flavored sync/collective APIs (blocking calls from a poll
    /// panic). Ranks that genuinely need blocking POSIX code keep using
    /// carrier threads via `sim.spawn` — the two flavors interleave on one
    /// calendar with identical virtual-time semantics.
    pub fn spawn_rank_events<M, F>(&self, sim: &Sim, f: F) -> Vec<EventHandle>
    where
        M: EventTask + 'static,
        F: Fn(u32, Arc<Process>) -> M,
    {
        self.ranks
            .iter()
            .map(|r| sim.spawn_event(format!("rank{}", r.rank), f(r.rank, r.process.clone())))
            .collect()
    }

    /// Detach the job-wide bus (if one was created) from every rank's
    /// process; the shard buses, per-rank buses and sessions stay live.
    pub fn detach_job_bus(&self) {
        if let Some(bus) = self.job_bus.get() {
            for r in &self.ranks {
                r.process.detach_spine(bus);
            }
        }
    }

    /// Detach every shared spine — shard buses and the job-wide bus — from
    /// every rank's process (the per-rank buses and sessions stay live).
    pub fn detach_all_spines(&self) {
        for r in &self.ranks {
            r.process.detach_shared_spine();
        }
    }
}
