//! Profile-guided data staging (paper §V.B).
//!
//! The paper's optimization: tf-Darshan shows that files below the
//! single-read threshold (reads ≤ ~1 MB segments) dominate the HDD's seek
//! budget while accounting for a small fraction of bytes; moving exactly
//! those files to the Optane tier buys a 19% bandwidth improvement while
//! consuming only 8% of the dataset's bytes on the expensive tier. The
//! advisor picks the threshold from profile data; `apply` migrates the
//! files and returns the path remapping for the dataset's file list.

use serde::{Deserialize, Serialize};
use storage_sim::{FsError, StorageStack};

use crate::analysis::FileActivity;

/// A staging decision.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StagingPlan {
    /// Size threshold: files strictly smaller move to the fast tier.
    pub threshold: u64,
    /// `(path, size)` of files to move.
    pub files: Vec<(String, u64)>,
    /// Total bytes staged.
    pub staged_bytes: u64,
    /// Total bytes of the examined population.
    pub total_bytes: u64,
    /// Total files examined.
    pub total_files: usize,
}

impl StagingPlan {
    /// Fraction of bytes staged.
    pub fn byte_fraction(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.staged_bytes as f64 / self.total_bytes as f64
        }
    }

    /// Fraction of files staged.
    pub fn file_fraction(&self) -> f64 {
        if self.total_files == 0 {
            0.0
        } else {
            self.files.len() as f64 / self.total_files as f64
        }
    }
}

/// Build a plan from profiled file activity: stage files smaller than
/// `threshold` bytes.
pub fn plan_by_threshold(files: &[FileActivity], threshold: u64) -> StagingPlan {
    let mut plan = StagingPlan {
        threshold,
        total_files: files.len(),
        ..Default::default()
    };
    for f in files {
        plan.total_bytes += f.apparent_size;
        if f.apparent_size < threshold {
            plan.files.push((f.path.clone(), f.apparent_size));
            plan.staged_bytes += f.apparent_size;
        }
    }
    plan
}

/// Choose the largest power-of-two threshold whose staged bytes fit in
/// `fast_tier_budget` — maximizing the number of small files (and thereby
/// removed HDD seeks) per staged byte, which is the paper's argument for
/// why size alone would mislead ("one might intuitively stage the larger
/// files… which in the end may not provide a big improvement").
///
/// The returned threshold never overcommits: the plan it induces via
/// [`plan_by_threshold`] stages at most `fast_tier_budget` bytes. Edge
/// cases resolve conservatively — with a zero/insufficient budget the
/// sweep stops at the largest *vacuous* threshold (the plan is empty), and
/// when every file has the same size the staged set is all-or-nothing, so
/// an over-budget population stages nothing rather than overflowing. Use
/// [`plan_within_budget`] when partial budget fill matters more than the
/// threshold shape.
pub fn advise_threshold(files: &[FileActivity], fast_tier_budget: u64) -> u64 {
    let mut best = 0u64;
    let mut thr = 64 * 1024u64;
    while thr <= 1 << 32 {
        let staged: u64 = files
            .iter()
            .filter(|f| f.apparent_size < thr)
            .map(|f| f.apparent_size)
            .sum();
        if staged <= fast_tier_budget {
            best = thr;
        } else {
            break;
        }
        thr *= 2;
    }
    best
}

/// Build a plan that fills `fast_tier_budget` smallest-files-first and
/// never overcommits: files are considered in ascending size order (ties
/// broken by path, so the plan is deterministic) and taken while they fit.
/// A zero budget yields an empty plan; an all-equal-size population stages
/// exactly ⌊budget / size⌋ files. This is what the online staging daemon
/// seeds from — the power-of-two sweep of [`advise_threshold`] can leave
/// half the budget idle when the size distribution straddles a doubling.
pub fn plan_within_budget(files: &[FileActivity], fast_tier_budget: u64) -> StagingPlan {
    let mut by_size: Vec<&FileActivity> = files.iter().collect();
    by_size.sort_by(|a, b| {
        a.apparent_size
            .cmp(&b.apparent_size)
            .then_with(|| a.path.cmp(&b.path))
    });
    let mut plan = StagingPlan {
        total_files: files.len(),
        total_bytes: files.iter().map(|f| f.apparent_size).sum(),
        ..Default::default()
    };
    for f in by_size {
        if plan.staged_bytes + f.apparent_size > fast_tier_budget {
            break;
        }
        plan.staged_bytes += f.apparent_size;
        plan.files.push((f.path.clone(), f.apparent_size));
        // Effective threshold: one past the largest staged size.
        plan.threshold = plan.threshold.max(f.apparent_size + 1);
    }
    plan
}

/// Execute a plan: promote each file from under `src_prefix` to the same
/// relative path under `dst_prefix` (untimed — staging happens before the
/// measured epoch, as in the paper). This is the one-shot mode of the
/// online staging daemon (`crates/prefetch`): each file is cloned to the
/// fast tier via [`StorageStack::promote_untimed`] and the stack redirects
/// subsequent opens of the original path, so callers need not rewrite
/// their file lists — the original stays in place as the backing copy for
/// cheap eviction. Returns `(old, new)` mappings for callers that want to
/// rewrite the dataset's file list anyway (both paths resolve to the fast
/// copy).
pub fn apply(
    stack: &StorageStack,
    plan: &StagingPlan,
    src_prefix: &str,
    dst_prefix: &str,
) -> Result<Vec<(String, String)>, FsError> {
    let mut mapping = Vec::with_capacity(plan.files.len());
    for (path, _) in &plan.files {
        let rel = path.strip_prefix(src_prefix).ok_or(FsError::NotFound)?;
        let dst = format!("{dst_prefix}{rel}");
        stack.promote_untimed(path, &dst)?;
        mapping.push((path.clone(), dst));
    }
    Ok(mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use storage_sim::{Device, DeviceSpec, FileSystem, LocalFs, LocalFsParams, PageCache};

    fn activity(sizes: &[u64]) -> Vec<FileActivity> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| FileActivity {
                path: format!("/hdd/f{i}"),
                reads: 1,
                bytes_read: s,
                apparent_size: s,
                read_time: 0.0,
            })
            .collect()
    }

    #[test]
    fn plan_selects_small_files() {
        let files = activity(&[100, 2 << 20, 1 << 20, 10 << 20]);
        let plan = plan_by_threshold(&files, 2 << 20);
        assert_eq!(plan.files.len(), 2);
        assert_eq!(plan.staged_bytes, 100 + (1 << 20));
        assert!(plan.byte_fraction() < 0.1);
        assert_eq!(plan.file_fraction(), 0.5);
    }

    #[test]
    fn advise_respects_budget() {
        // 100 files of 1 MB + 10 files of 100 MB.
        let mut sizes = vec![1 << 20; 100];
        sizes.extend(vec![100 << 20; 10]);
        let files = activity(&sizes);
        let thr = advise_threshold(&files, 200 << 20);
        // All 1 MB files fit (100 MB), the 100 MB files would not.
        assert!(thr > (1 << 20), "threshold {thr} must cover the 1MB files");
        assert!(thr <= (100 << 20));
        let plan = plan_by_threshold(&files, thr);
        assert!(plan.staged_bytes <= 200 << 20);
        assert_eq!(plan.files.len(), 100);
    }

    #[test]
    fn advise_zero_budget_picks_vacuous_threshold() {
        // With no budget, the largest threshold that stages nothing wins.
        let files = activity(&[1 << 20]);
        assert_eq!(advise_threshold(&files, 0), 1 << 20);
        assert!(plan_by_threshold(&files, 1 << 20).files.is_empty());
    }

    #[test]
    fn apply_migrates_and_maps() {
        let cache = Arc::new(PageCache::new(1 << 30));
        let hdd = LocalFs::new(
            Device::new(DeviceSpec::hdd("hdd0")),
            cache.clone(),
            LocalFsParams::default(),
        );
        let optane = LocalFs::new(
            Device::new(DeviceSpec::optane("nvme0")),
            cache,
            LocalFsParams::default(),
        );
        let stack = StorageStack::new();
        stack.mount("/hdd", hdd.clone() as Arc<dyn FileSystem>);
        stack.mount("/fast", optane.clone() as Arc<dyn FileSystem>);
        stack.create_synthetic("/hdd/a", 100, 1).unwrap();
        stack.create_synthetic("/hdd/b", 5 << 20, 2).unwrap();

        let files = vec![
            FileActivity {
                path: "/hdd/a".into(),
                reads: 1,
                bytes_read: 100,
                apparent_size: 100,
                read_time: 0.0,
            },
            FileActivity {
                path: "/hdd/b".into(),
                reads: 5,
                bytes_read: 5 << 20,
                apparent_size: 5 << 20,
                read_time: 0.0,
            },
        ];
        let plan = plan_by_threshold(&files, 2 << 20);
        let sim = simrt::Sim::new();
        let stack2 = stack.clone();
        let mapping = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let m2 = mapping.clone();
        sim.spawn("t", move || {
            *m2.lock() = apply(&stack2, &plan, "/hdd", "/fast").unwrap();
        });
        sim.run();
        let mapping = mapping.lock().clone();
        assert_eq!(mapping, vec![("/hdd/a".to_string(), "/fast/a".to_string())]);
        // content_info charges no virtual time, so it is host-callable.
        assert!(optane.content_info("/fast/a").is_ok());
        // Promote is copy + redirect: the original remains as the backing
        // copy, and opens of the old path route to the fast tier.
        assert!(hdd.content_info("/hdd/a").is_ok());
        assert!(stack.is_staged("/hdd/a"));
        assert_eq!(stack.staged_bytes(), 100);
        assert!(!stack.is_staged("/hdd/b"));
        assert!(hdd.content_info("/hdd/b").is_ok());
    }

    #[test]
    fn advise_insufficient_budget_never_overcommits() {
        // Every file is 32 KB — below the smallest threshold the sweep
        // tries — and the budget covers none of them: the induced plan
        // must be empty, not over budget.
        let files = activity(&[32 << 10; 8]);
        let thr = advise_threshold(&files, 16 << 10);
        let plan = plan_by_threshold(&files, thr);
        assert!(plan.files.is_empty(), "threshold {thr} overcommits");
        assert_eq!(plan.staged_bytes, 0);
    }

    #[test]
    fn plan_within_budget_zero_budget_is_empty() {
        let files = activity(&[100, 200, 300]);
        let plan = plan_within_budget(&files, 0);
        assert!(plan.files.is_empty());
        assert_eq!(plan.staged_bytes, 0);
        assert_eq!(plan.total_files, 3);
        assert_eq!(plan.total_bytes, 600);
    }

    #[test]
    fn plan_within_budget_equal_sizes_fill_exactly() {
        // All-equal-size tie: exactly ⌊budget / size⌋ files stage, chosen
        // deterministically, never overcommitting.
        let files = activity(&[1 << 20; 10]);
        let plan = plan_within_budget(&files, (3 << 20) + (1 << 19));
        assert_eq!(plan.files.len(), 3);
        assert_eq!(plan.staged_bytes, 3 << 20);
        let again = plan_within_budget(&files, (3 << 20) + (1 << 19));
        assert_eq!(plan.files, again.files, "tie-break is deterministic");
    }

    #[test]
    fn plan_within_budget_prefers_small_files() {
        let files = activity(&[4 << 20, 100, 2 << 20, 300]);
        let plan = plan_within_budget(&files, 2 << 20);
        // Smallest first: 100 and 300 fit; 2 MB would overflow with them.
        assert_eq!(plan.staged_bytes, 400);
        assert_eq!(plan.files.len(), 2);
        assert!(plan.threshold > 300 && plan.threshold <= 2 << 20);
    }
}
