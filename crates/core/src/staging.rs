//! Profile-guided data staging (paper §V.B).
//!
//! The paper's optimization: tf-Darshan shows that files below the
//! single-read threshold (reads ≤ ~1 MB segments) dominate the HDD's seek
//! budget while accounting for a small fraction of bytes; moving exactly
//! those files to the Optane tier buys a 19% bandwidth improvement while
//! consuming only 8% of the dataset's bytes on the expensive tier. The
//! advisor picks the threshold from profile data; `apply` migrates the
//! files and returns the path remapping for the dataset's file list.

use serde::{Deserialize, Serialize};
use storage_sim::{FsError, StorageStack};

use crate::analysis::FileActivity;

/// A staging decision.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StagingPlan {
    /// Size threshold: files strictly smaller move to the fast tier.
    pub threshold: u64,
    /// `(path, size)` of files to move.
    pub files: Vec<(String, u64)>,
    /// Total bytes staged.
    pub staged_bytes: u64,
    /// Total bytes of the examined population.
    pub total_bytes: u64,
    /// Total files examined.
    pub total_files: usize,
}

impl StagingPlan {
    /// Fraction of bytes staged.
    pub fn byte_fraction(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.staged_bytes as f64 / self.total_bytes as f64
        }
    }

    /// Fraction of files staged.
    pub fn file_fraction(&self) -> f64 {
        if self.total_files == 0 {
            0.0
        } else {
            self.files.len() as f64 / self.total_files as f64
        }
    }
}

/// Build a plan from profiled file activity: stage files smaller than
/// `threshold` bytes.
pub fn plan_by_threshold(files: &[FileActivity], threshold: u64) -> StagingPlan {
    let mut plan = StagingPlan {
        threshold,
        total_files: files.len(),
        ..Default::default()
    };
    for f in files {
        plan.total_bytes += f.apparent_size;
        if f.apparent_size < threshold {
            plan.files.push((f.path.clone(), f.apparent_size));
            plan.staged_bytes += f.apparent_size;
        }
    }
    plan
}

/// Choose the largest power-of-two threshold whose staged bytes fit in
/// `fast_tier_budget` — maximizing the number of small files (and thereby
/// removed HDD seeks) per staged byte, which is the paper's argument for
/// why size alone would mislead ("one might intuitively stage the larger
/// files… which in the end may not provide a big improvement").
pub fn advise_threshold(files: &[FileActivity], fast_tier_budget: u64) -> u64 {
    let mut best = 0u64;
    let mut thr = 64 * 1024u64;
    while thr <= 1 << 32 {
        let staged: u64 = files
            .iter()
            .filter(|f| f.apparent_size < thr)
            .map(|f| f.apparent_size)
            .sum();
        if staged <= fast_tier_budget {
            best = thr;
        } else {
            break;
        }
        thr *= 2;
    }
    best
}

/// Execute a plan: migrate each file from under `src_prefix` to the same
/// relative path under `dst_prefix` (untimed — staging happens before the
/// measured epoch, as in the paper). Returns `(old, new)` mappings for
/// rewriting the dataset's file list.
pub fn apply(
    stack: &StorageStack,
    plan: &StagingPlan,
    src_prefix: &str,
    dst_prefix: &str,
) -> Result<Vec<(String, String)>, FsError> {
    let mut mapping = Vec::with_capacity(plan.files.len());
    for (path, _) in &plan.files {
        let rel = path.strip_prefix(src_prefix).ok_or(FsError::NotFound)?;
        let dst = format!("{dst_prefix}{rel}");
        stack.migrate(path, &dst, false)?;
        mapping.push((path.clone(), dst));
    }
    Ok(mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use storage_sim::{Device, DeviceSpec, FileSystem, LocalFs, LocalFsParams, PageCache};

    fn activity(sizes: &[u64]) -> Vec<FileActivity> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| FileActivity {
                path: format!("/hdd/f{i}"),
                reads: 1,
                bytes_read: s,
                apparent_size: s,
                read_time: 0.0,
            })
            .collect()
    }

    #[test]
    fn plan_selects_small_files() {
        let files = activity(&[100, 2 << 20, 1 << 20, 10 << 20]);
        let plan = plan_by_threshold(&files, 2 << 20);
        assert_eq!(plan.files.len(), 2);
        assert_eq!(plan.staged_bytes, 100 + (1 << 20));
        assert!(plan.byte_fraction() < 0.1);
        assert_eq!(plan.file_fraction(), 0.5);
    }

    #[test]
    fn advise_respects_budget() {
        // 100 files of 1 MB + 10 files of 100 MB.
        let mut sizes = vec![1 << 20; 100];
        sizes.extend(vec![100 << 20; 10]);
        let files = activity(&sizes);
        let thr = advise_threshold(&files, 200 << 20);
        // All 1 MB files fit (100 MB), the 100 MB files would not.
        assert!(thr > (1 << 20), "threshold {thr} must cover the 1MB files");
        assert!(thr <= (100 << 20));
        let plan = plan_by_threshold(&files, thr);
        assert!(plan.staged_bytes <= 200 << 20);
        assert_eq!(plan.files.len(), 100);
    }

    #[test]
    fn advise_zero_budget_picks_vacuous_threshold() {
        // With no budget, the largest threshold that stages nothing wins.
        let files = activity(&[1 << 20]);
        assert_eq!(advise_threshold(&files, 0), 1 << 20);
        assert!(plan_by_threshold(&files, 1 << 20).files.is_empty());
    }

    #[test]
    fn apply_migrates_and_maps() {
        let cache = Arc::new(PageCache::new(1 << 30));
        let hdd = LocalFs::new(
            Device::new(DeviceSpec::hdd("hdd0")),
            cache.clone(),
            LocalFsParams::default(),
        );
        let optane = LocalFs::new(
            Device::new(DeviceSpec::optane("nvme0")),
            cache,
            LocalFsParams::default(),
        );
        let stack = StorageStack::new();
        stack.mount("/hdd", hdd.clone() as Arc<dyn FileSystem>);
        stack.mount("/fast", optane.clone() as Arc<dyn FileSystem>);
        stack.create_synthetic("/hdd/a", 100, 1).unwrap();
        stack.create_synthetic("/hdd/b", 5 << 20, 2).unwrap();

        let files = vec![
            FileActivity {
                path: "/hdd/a".into(),
                reads: 1,
                bytes_read: 100,
                apparent_size: 100,
                read_time: 0.0,
            },
            FileActivity {
                path: "/hdd/b".into(),
                reads: 5,
                bytes_read: 5 << 20,
                apparent_size: 5 << 20,
                read_time: 0.0,
            },
        ];
        let plan = plan_by_threshold(&files, 2 << 20);
        let sim = simrt::Sim::new();
        let stack2 = stack.clone();
        let mapping = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let m2 = mapping.clone();
        sim.spawn("t", move || {
            *m2.lock() = apply(&stack2, &plan, "/hdd", "/fast").unwrap();
        });
        sim.run();
        let mapping = mapping.lock().clone();
        assert_eq!(mapping, vec![("/hdd/a".to_string(), "/fast/a".to_string())]);
        // content_info charges no virtual time, so it is host-callable.
        assert!(optane.content_info("/fast/a").is_ok());
        assert!(hdd.content_info("/hdd/a").is_err());
        assert!(hdd.content_info("/hdd/b").is_ok());
    }
}
