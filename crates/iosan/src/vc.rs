//! Vector clocks over simulated-thread ids.
//!
//! The probe spine delivers events in global op-completion order (one
//! simulated thread runs at a time and every descheduling point flushes), so
//! the analyzer can maintain one clock per task and process events in a
//! single pass: event `a` happens-before event `b` iff
//! `a.clock[a.task] <= b.clock[a.task]` — the standard epoch test, sound
//! because `a`'s own component only advances at release-half operations.

use std::collections::BTreeMap;

/// A sparse vector clock: task id → logical time. Missing components are 0.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock {
    c: BTreeMap<u64, u64>,
}

impl VectorClock {
    /// The zero clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Component of `task` (0 when absent).
    pub fn get(&self, task: u64) -> u64 {
        self.c.get(&task).copied().unwrap_or(0)
    }

    /// Advance `task`'s own component.
    pub fn tick(&mut self, task: u64) {
        *self.c.entry(task).or_insert(0) += 1;
    }

    /// Component-wise maximum with `other` (the receive-half of an edge).
    pub fn join(&mut self, other: &VectorClock) {
        for (&t, &v) in &other.c {
            let e = self.c.entry(t).or_insert(0);
            if *e < v {
                *e = v;
            }
        }
    }

    /// Number of non-zero components.
    pub fn len(&self) -> usize {
        self.c.len()
    }

    /// True when every component is zero.
    pub fn is_empty(&self) -> bool {
        self.c.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_test_models_happens_before() {
        // Task 1 writes, releases (tick); task 2 acquires (join) then reads.
        let mut c1 = VectorClock::new();
        c1.tick(1); // task 1 at epoch 1
        let own_at_write = c1.get(1);
        let release_snapshot = c1.clone();
        c1.tick(1); // release-half advances the component

        let mut c2 = VectorClock::new();
        c2.tick(2);
        assert!(own_at_write > c2.get(1), "unordered before the join");
        c2.join(&release_snapshot);
        assert!(own_at_write <= c2.get(1), "ordered after the join");
    }

    #[test]
    fn join_is_componentwise_max() {
        let mut a = VectorClock::new();
        a.tick(1);
        a.tick(1);
        let mut b = VectorClock::new();
        b.tick(2);
        b.join(&a);
        assert_eq!(b.get(1), 2);
        assert_eq!(b.get(2), 1);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }
}
